//! The daemon's durable job registry.
//!
//! Everything the scheduler must survive a restart with lives in one
//! state directory:
//!
//! * `jobs.json` — the registry proper: the next id to assign and, per
//!   job, its full [`JobSpec`], lifecycle [`JobState`], and failure
//!   reason. Written atomically (write-then-rename) after every
//!   transition.
//! * `job-<id>.manifest.json` — one farm manifest per job, the same
//!   [`FarmManifest`] format the jumble farm checkpoints with: which
//!   adjusted seeds are planned, and for each `Done` seed the tree and
//!   its likelihood. Written after every completed jumble.
//!
//! A restarted daemon reloads both, requeues every `Pending` seed, and
//! resumes — no jumble is lost, and none runs twice, because a seed is
//! only marked `Done` when its result is already on disk.

use fdml_comm::job::{JobId, JobSpec, JobState, JobStatus};
use fdml_core::checkpoint::FarmManifest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// One job's durable record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobEntry {
    /// The id assigned at admission.
    pub id: JobId,
    /// The complete submitted spec.
    pub spec: JobSpec,
    /// Lifecycle state at the last save.
    pub state: JobState,
    /// Failure reason, when `state` is [`JobState::Failed`].
    pub failure: Option<String>,
}

/// The `jobs.json` wire form (ids are also inside the entries; a list
/// keeps the JSON portable — object keys must be strings).
#[derive(Debug, Serialize, Deserialize)]
struct PersistedRegistry {
    next_id: JobId,
    jobs: Vec<JobEntry>,
}

/// The durable registry: admission, state transitions, and per-job
/// manifests, all backed by one state directory.
pub struct Registry {
    dir: PathBuf,
    next_id: JobId,
    jobs: BTreeMap<JobId, JobEntry>,
}

impl Registry {
    /// Open (or create) the registry in `dir`, reloading `jobs.json` if a
    /// previous daemon left one behind.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Registry> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("jobs.json");
        let (next_id, jobs) = if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            let persisted: PersistedRegistry = serde_json::from_str(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
            let jobs = persisted.jobs.into_iter().map(|j| (j.id, j)).collect();
            (persisted.next_id, jobs)
        } else {
            (1, BTreeMap::new())
        };
        Ok(Registry { dir, next_id, jobs })
    }

    /// Admit a spec: assign the next id, record the job as
    /// [`JobState::Queued`], create its manifest, and persist both.
    pub fn admit(&mut self, spec: JobSpec, seeds: &[u64]) -> io::Result<JobId> {
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobEntry {
                id,
                spec,
                state: JobState::Queued,
                failure: None,
            },
        );
        FarmManifest::new(seeds).save(&self.manifest_path(id))?;
        self.save()?;
        Ok(id)
    }

    /// Move `id` to `state` (clearing any failure) and persist.
    pub fn set_state(&mut self, id: JobId, state: JobState) -> io::Result<()> {
        if let Some(job) = self.jobs.get_mut(&id) {
            job.state = state;
            job.failure = None;
            self.save()?;
        }
        Ok(())
    }

    /// Mark `id` failed with `reason` and persist.
    pub fn set_failed(&mut self, id: JobId, reason: String) -> io::Result<()> {
        if let Some(job) = self.jobs.get_mut(&id) {
            job.state = JobState::Failed;
            job.failure = Some(reason);
            self.save()?;
        }
        Ok(())
    }

    /// The job's durable record, if admitted.
    pub fn get(&self, id: JobId) -> Option<&JobEntry> {
        self.jobs.get(&id)
    }

    /// Every admitted job, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobEntry> {
        self.jobs.values()
    }

    /// Jobs counted against the admission queue (everything not yet
    /// finished).
    pub fn active_jobs(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
            .count()
    }

    /// Where `id`'s farm manifest lives.
    pub fn manifest_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("job-{id}.manifest.json"))
    }

    /// Reload `id`'s manifest from disk (a fresh all-`Pending` one if the
    /// file is somehow missing).
    pub fn load_manifest(&self, id: JobId, seeds: &[u64]) -> FarmManifest {
        let path = self.manifest_path(id);
        std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| FarmManifest::from_json(&text).ok())
            .unwrap_or_else(|| FarmManifest::new(seeds))
    }

    /// Assemble the `--status` answer for `id` given its manifest
    /// progress.
    pub fn status(&self, id: JobId, done: usize, total: usize) -> Option<JobStatus> {
        self.jobs.get(&id).map(|j| JobStatus {
            job: id,
            state: j.state,
            done,
            total,
            label: j.spec.label.clone(),
            failure: j.failure.clone(),
        })
    }

    /// Persist `jobs.json` atomically (write a temporary sibling, then
    /// rename over the target — a kill mid-write never torn-writes the
    /// registry).
    pub fn save(&self) -> io::Result<()> {
        let persisted = PersistedRegistry {
            next_id: self.next_id,
            jobs: self.jobs.values().cloned().collect(),
        };
        let text = serde_json::to_string_pretty(&persisted)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        let path = self.dir.join("jobs.json");
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &path)
    }
}

/// Atomically save `manifest` for job `id` under `dir`-less registries'
/// convention (helper for the scheduler, which holds manifests in memory).
pub fn save_manifest(path: &Path, manifest: &FarmManifest) -> io::Result<()> {
    manifest.save(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_comm::job::JobSpec;

    fn spec(label: &str) -> JobSpec {
        JobSpec {
            phylip: " 4 4\na ACGT\nb ACGA\nc AGGT\nd ACTT\n".into(),
            config_json: "{}".into(),
            jumbles: 2,
            base_seed: 1,
            max_ranks: 0,
            max_wall_ms: 0,
            intra_threads: 1,
            label: label.into(),
        }
    }

    #[test]
    fn ids_are_stable_across_reopen() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut reg = Registry::open(&dir).unwrap();
            assert_eq!(reg.admit(spec("a"), &[1, 3]).unwrap(), 1);
            assert_eq!(reg.admit(spec("b"), &[5, 7]).unwrap(), 2);
            reg.set_state(2, JobState::Running).unwrap();
        }
        {
            let mut reg = Registry::open(&dir).unwrap();
            assert_eq!(reg.jobs().count(), 2);
            assert_eq!(reg.get(2).unwrap().state, JobState::Running);
            assert_eq!(reg.get(1).unwrap().spec.label, "a");
            // The next id continues where the dead daemon stopped.
            assert_eq!(reg.admit(spec("c"), &[9]).unwrap(), 3);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_through_the_state_dir() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-m-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut reg = Registry::open(&dir).unwrap();
        let id = reg.admit(spec("m"), &[1, 3, 5]).unwrap();
        let mut manifest = reg.load_manifest(id, &[1, 3, 5]);
        manifest.mark_done(3, "(a,b,(c,d));".into(), -42.0);
        manifest.save(&reg.manifest_path(id)).unwrap();
        let back = reg.load_manifest(id, &[1, 3, 5]);
        assert_eq!(back.unfinished(), vec![1, 5]);
        assert!(!back.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_reason_is_persisted() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-f-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut reg = Registry::open(&dir).unwrap();
            let id = reg.admit(spec("f"), &[1]).unwrap();
            reg.set_failed(id, "wall-time quota exhausted".into())
                .unwrap();
        }
        let reg = Registry::open(&dir).unwrap();
        let status = reg.status(1, 0, 1).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert_eq!(status.failure.as_deref(), Some("wall-time quota exhausted"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
