//! The daemon's durable job registry.
//!
//! Everything the scheduler must survive a restart with lives in one
//! state directory:
//!
//! * `jobs.json` — the registry proper: the next id to assign and, per
//!   job, its full [`JobSpec`], lifecycle [`JobState`], and failure
//!   reason. Stored as a [`fdml_core::durable`] framed snapshot log: each
//!   save appends one CRC32-framed snapshot record, fsynced before the
//!   daemon acknowledges the transition. A torn or corrupt tail recovers
//!   to the last valid snapshot (with a [`Event::DurableRecovered`]
//!   warning naming the file and byte offset) instead of aborting
//!   startup, and the log compacts back to a single record once it grows.
//!   Files from daemons predating the framed format (plain JSON) are read
//!   and migrated on the first save.
//! * `job-<id>.manifest.json` — one farm manifest per job, the same
//!   [`FarmManifest`] format the jumble farm checkpoints with: which
//!   adjusted seeds are planned, and for each `Done` seed the tree and
//!   its likelihood. Written after every completed jumble, through the
//!   same durable layer.
//!
//! A restarted daemon reloads both, requeues every `Pending` seed, and
//! resumes — no jumble is lost, and none runs twice, because a seed is
//! only marked `Done` when its result is already on disk.

use fdml_comm::job::{JobId, JobSpec, JobState, JobStatus};
use fdml_core::checkpoint::FarmManifest;
use fdml_core::durable::{self, LogWriter};
use fdml_obs::{Event, Obs};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Compact the snapshot log back to one record when it accumulates this
/// many; keeps `jobs.json` bounded regardless of how many transitions a
/// long-lived daemon performs.
const COMPACT_AT: u64 = 64;

/// One job's durable record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobEntry {
    /// The id assigned at admission.
    pub id: JobId,
    /// The complete submitted spec.
    pub spec: JobSpec,
    /// Lifecycle state at the last save.
    pub state: JobState,
    /// Failure reason, when `state` is [`JobState::Failed`].
    pub failure: Option<String>,
}

/// The `jobs.json` wire form (ids are also inside the entries; a list
/// keeps the JSON portable — object keys must be strings).
#[derive(Debug, Serialize, Deserialize)]
struct PersistedRegistry {
    next_id: JobId,
    jobs: Vec<JobEntry>,
}

/// The durable registry: admission, state transitions, and per-job
/// manifests, all backed by one state directory.
pub struct Registry {
    dir: PathBuf,
    next_id: JobId,
    jobs: BTreeMap<JobId, JobEntry>,
    log: LogWriter,
    snapshots_in_log: u64,
}

impl Registry {
    /// Open (or create) the registry in `dir`, reloading `jobs.json` if a
    /// previous daemon left one behind. Unobserved; the daemon proper
    /// uses [`Registry::open_observed`] so recovery warnings reach the
    /// event stream.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Registry> {
        Registry::open_observed(dir, &Obs::disabled())
    }

    /// Open the registry, emitting an [`Event::DurableRecovered`] warning
    /// (file and byte offset) if `jobs.json` had a torn or corrupt tail
    /// that was rolled back to the last valid snapshot.
    pub fn open_observed(dir: impl Into<PathBuf>, obs: &Obs) -> io::Result<Registry> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("wal"))?;
        let path = dir.join("jobs.json");
        let raw = match std::fs::read(&path) {
            Ok(raw) => Some(raw),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let (persisted, snapshots_in_log, migrate) = match raw {
            None => (None, 0, false),
            // A daemon predating the framed format left plain JSON:
            // read it as one snapshot and migrate on the first save.
            Some(raw) if raw.first() == Some(&b'{') => {
                match std::str::from_utf8(&raw)
                    .ok()
                    .and_then(|text| serde_json::from_str::<PersistedRegistry>(text).ok())
                {
                    Some(p) => (Some(p), 0, true),
                    None => {
                        // Corrupt legacy file: nothing salvageable (plain
                        // JSON has no record boundaries). Warn and start
                        // empty rather than refuse to boot.
                        obs.emit(|| Event::DurableRecovered {
                            path: path.display().to_string(),
                            valid_bytes: 0,
                            dropped_bytes: raw.len() as u64,
                        });
                        (None, 0, true)
                    }
                }
            }
            Some(raw) => {
                let recovered = durable::validate_log_bytes(&raw);
                // Walk back from the newest record to the last snapshot
                // that parses: framing guards against torn writes, the
                // parse guards against semantic corruption.
                let mut last = None;
                let mut valid = recovered.records.len();
                for rec in recovered.records.iter().rev() {
                    if let Some(p) = std::str::from_utf8(rec)
                        .ok()
                        .and_then(|text| serde_json::from_str::<PersistedRegistry>(text).ok())
                    {
                        last = Some(p);
                        break;
                    }
                    valid -= 1;
                }
                if recovered.dropped_bytes > 0 || valid < recovered.records.len() {
                    obs.emit(|| Event::DurableRecovered {
                        path: path.display().to_string(),
                        valid_bytes: recovered.valid_bytes,
                        dropped_bytes: recovered.dropped_bytes,
                    });
                }
                (last, valid as u64, false)
            }
        };
        let (next_id, jobs) = match persisted {
            Some(p) => {
                let jobs: BTreeMap<JobId, JobEntry> =
                    p.jobs.into_iter().map(|j| (j.id, j)).collect();
                (p.next_id, jobs)
            }
            None => (1, BTreeMap::new()),
        };
        // `resume` truncates any torn tail so appends continue cleanly;
        // for a fresh or legacy path it starts a new framed log.
        let log = if migrate {
            let mut reg = Registry {
                dir,
                next_id,
                jobs,
                log: LogWriter::create(&path)?,
                snapshots_in_log: 0,
            };
            reg.save()?;
            return Ok(reg);
        } else {
            let (log, _) = LogWriter::resume(&path)?;
            log
        };
        Ok(Registry {
            dir,
            next_id,
            jobs,
            log,
            snapshots_in_log,
        })
    }

    /// Admit a spec: assign the next id, record the job as
    /// [`JobState::Queued`], create its manifest, and persist both.
    pub fn admit(&mut self, spec: JobSpec, seeds: &[u64]) -> io::Result<JobId> {
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobEntry {
                id,
                spec,
                state: JobState::Queued,
                failure: None,
            },
        );
        FarmManifest::new(seeds).save(&self.manifest_path(id))?;
        self.save()?;
        Ok(id)
    }

    /// Move `id` to `state` (clearing any failure) and persist.
    pub fn set_state(&mut self, id: JobId, state: JobState) -> io::Result<()> {
        if let Some(job) = self.jobs.get_mut(&id) {
            job.state = state;
            job.failure = None;
            self.save()?;
        }
        Ok(())
    }

    /// Mark `id` failed with `reason` and persist.
    pub fn set_failed(&mut self, id: JobId, reason: String) -> io::Result<()> {
        if let Some(job) = self.jobs.get_mut(&id) {
            job.state = JobState::Failed;
            job.failure = Some(reason);
            self.save()?;
        }
        Ok(())
    }

    /// The job's durable record, if admitted.
    pub fn get(&self, id: JobId) -> Option<&JobEntry> {
        self.jobs.get(&id)
    }

    /// Every admitted job, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobEntry> {
        self.jobs.values()
    }

    /// Jobs counted against the admission queue (everything not yet
    /// finished).
    pub fn active_jobs(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
            .count()
    }

    /// Where `id`'s farm manifest lives.
    pub fn manifest_path(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("job-{id}.manifest.json"))
    }

    /// Where every job's write-ahead round logs live (one file per
    /// in-flight jumble, namespaced by job id; see `fdml_core::wal`).
    pub fn wal_dir(&self) -> PathBuf {
        self.dir.join("wal")
    }

    /// Reload `id`'s manifest from disk (a fresh all-`Pending` one if the
    /// file is somehow missing).
    pub fn load_manifest(&self, id: JobId, seeds: &[u64]) -> FarmManifest {
        let path = self.manifest_path(id);
        std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| FarmManifest::from_json(&text).ok())
            .unwrap_or_else(|| FarmManifest::new(seeds))
    }

    /// Assemble the `--status` answer for `id` given its manifest
    /// progress.
    pub fn status(&self, id: JobId, done: usize, total: usize) -> Option<JobStatus> {
        self.jobs.get(&id).map(|j| JobStatus {
            job: id,
            state: j.state,
            done,
            total,
            label: j.spec.label.clone(),
            failure: j.failure.clone(),
        })
    }

    /// Persist the registry durably: append one fsynced snapshot record
    /// to the framed `jobs.json` log. When this returns, the transition
    /// survives a crash — the daemon acks only after it. The log compacts
    /// back to a single snapshot once [`COMPACT_AT`] records accumulate.
    pub fn save(&mut self) -> io::Result<()> {
        let persisted = PersistedRegistry {
            next_id: self.next_id,
            jobs: self.jobs.values().cloned().collect(),
        };
        let text = serde_json::to_string_pretty(&persisted)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        let path = self.dir.join("jobs.json");
        if self.snapshots_in_log >= COMPACT_AT {
            durable::write_log_atomic(&path, &[text.as_bytes()])?;
            let (log, _) = LogWriter::resume(&path)?;
            self.log = log;
            self.snapshots_in_log = 1;
        } else {
            self.log.append(text.as_bytes())?;
            self.snapshots_in_log += 1;
        }
        Ok(())
    }

    /// Bytes currently in the `jobs.json` snapshot log (compaction keeps
    /// this bounded).
    pub fn log_bytes(&self) -> u64 {
        self.log.len_bytes()
    }
}

/// Durably save `manifest` (helper for the scheduler, which holds
/// manifests in memory). Routed through [`FarmManifest::save`], which
/// uses the crash-consistent storage layer: the jumble is acknowledged
/// only after its result is fsynced.
pub fn save_manifest(path: &Path, manifest: &FarmManifest) -> io::Result<()> {
    manifest.save(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_comm::job::JobSpec;

    fn spec(label: &str) -> JobSpec {
        JobSpec {
            phylip: " 4 4\na ACGT\nb ACGA\nc AGGT\nd ACTT\n".into(),
            config_json: "{}".into(),
            jumbles: 2,
            base_seed: 1,
            max_ranks: 0,
            max_wall_ms: 0,
            intra_threads: 1,
            label: label.into(),
        }
    }

    #[test]
    fn ids_are_stable_across_reopen() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut reg = Registry::open(&dir).unwrap();
            assert_eq!(reg.admit(spec("a"), &[1, 3]).unwrap(), 1);
            assert_eq!(reg.admit(spec("b"), &[5, 7]).unwrap(), 2);
            reg.set_state(2, JobState::Running).unwrap();
        }
        {
            let mut reg = Registry::open(&dir).unwrap();
            assert_eq!(reg.jobs().count(), 2);
            assert_eq!(reg.get(2).unwrap().state, JobState::Running);
            assert_eq!(reg.get(1).unwrap().spec.label, "a");
            // The next id continues where the dead daemon stopped.
            assert_eq!(reg.admit(spec("c"), &[9]).unwrap(), 3);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_through_the_state_dir() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-m-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut reg = Registry::open(&dir).unwrap();
        let id = reg.admit(spec("m"), &[1, 3, 5]).unwrap();
        let mut manifest = reg.load_manifest(id, &[1, 3, 5]);
        manifest.mark_done(3, "(a,b,(c,d));".into(), -42.0);
        manifest.save(&reg.manifest_path(id)).unwrap();
        let back = reg.load_manifest(id, &[1, 3, 5]);
        assert_eq!(back.unfinished(), vec![1, 5]);
        assert!(!back.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_jobs_json_recovers_to_last_valid_snapshot() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-t-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut reg = Registry::open(&dir).unwrap();
            reg.admit(spec("a"), &[1]).unwrap();
            reg.admit(spec("b"), &[3]).unwrap();
            reg.set_state(2, JobState::Running).unwrap();
        }
        // Tear the snapshot log mid-record, as a crash during save would.
        let path = dir.join("jobs.json");
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 10]).unwrap();
        // Startup succeeds on the previous snapshot and warns, naming the
        // file and byte offset.
        let mem = fdml_obs::MemorySink::new();
        let obs = fdml_obs::Obs::new(Box::new(mem.clone()));
        let reg = Registry::open_observed(&dir, &obs).unwrap();
        assert_eq!(reg.jobs().count(), 2);
        // The torn record was the Running transition: rolled back.
        assert_eq!(reg.get(2).unwrap().state, JobState::Queued);
        let records = mem.take();
        let warn = records
            .iter()
            .find_map(|r| match &r.event {
                fdml_obs::Event::DurableRecovered {
                    path: p,
                    valid_bytes,
                    dropped_bytes,
                } => Some((p.clone(), *valid_bytes, *dropped_bytes)),
                _ => None,
            })
            .expect("expected a DurableRecovered warning");
        assert!(warn.0.ends_with("jobs.json"));
        assert!(warn.1 > 0 && warn.2 > 0);
        // The next save appends cleanly past the truncation point.
        let mut reg = Registry::open(&dir).unwrap();
        reg.set_state(2, JobState::Running).unwrap();
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.get(2).unwrap().state, JobState::Running);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_plain_json_registry_is_migrated() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-l-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-framed-format daemon wrote plain JSON.
        let legacy = serde_json::to_string_pretty(&PersistedRegistry {
            next_id: 5,
            jobs: vec![JobEntry {
                id: 4,
                spec: spec("old"),
                state: JobState::Done,
                failure: None,
            }],
        })
        .unwrap();
        std::fs::write(dir.join("jobs.json"), &legacy).unwrap();
        let mut reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.get(4).unwrap().spec.label, "old");
        assert_eq!(reg.admit(spec("new"), &[1]).unwrap(), 5);
        // The file is now a framed log and keeps round-tripping.
        let raw = std::fs::read(dir.join("jobs.json")).unwrap();
        assert!(raw.starts_with(fdml_core::durable::LOG_MAGIC));
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.jobs().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsalvageable_registry_warns_and_starts_empty() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-u-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("jobs.json"), "{\"next_id\": 3, \"jo").unwrap();
        let mem = fdml_obs::MemorySink::new();
        let obs = fdml_obs::Obs::new(Box::new(mem.clone()));
        let reg = Registry::open_observed(&dir, &obs).unwrap();
        assert_eq!(reg.jobs().count(), 0);
        assert!(mem
            .take()
            .iter()
            .any(|r| matches!(&r.event, fdml_obs::Event::DurableRecovered { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_log_compacts_and_stays_bounded() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-c-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut reg = Registry::open(&dir).unwrap();
        let id = reg.admit(spec("churn"), &[1]).unwrap();
        // Enough transitions to force several compactions.
        let mut max_bytes = 0u64;
        for i in 0..(3 * COMPACT_AT) {
            let state = if i % 2 == 0 {
                JobState::Running
            } else {
                JobState::Queued
            };
            reg.set_state(id, state).unwrap();
            max_bytes = max_bytes.max(reg.log_bytes());
        }
        // The log never exceeds COMPACT_AT-and-change snapshots' worth.
        let one_snapshot = {
            let raw = std::fs::read(dir.join("jobs.json")).unwrap();
            fdml_core::durable::validate_log_bytes(&raw);
            reg.log_bytes() / reg.snapshots_in_log.max(1)
        };
        assert!(
            max_bytes < one_snapshot * (COMPACT_AT + 4),
            "log grew unbounded: {max_bytes} bytes"
        );
        // And the latest state survives compaction.
        let reg2 = Registry::open(&dir).unwrap();
        assert_eq!(reg2.get(id).unwrap().state, reg.get(id).unwrap().state);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_reason_is_persisted() {
        let dir = std::env::temp_dir().join(format!("fdml-reg-f-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut reg = Registry::open(&dir).unwrap();
            let id = reg.admit(spec("f"), &[1]).unwrap();
            reg.set_failed(id, "wall-time quota exhausted".into())
                .unwrap();
        }
        let reg = Registry::open(&dir).unwrap();
        let status = reg.status(1, 0, 1).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert_eq!(status.failure.as_deref(), Some("wall-time quota exhausted"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
