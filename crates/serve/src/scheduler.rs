//! The daemon's fair-share scheduler: one loop owning the hub, the job
//! registry, and the shared worker fleet.
//!
//! Topology: the daemon process hosts the [`TcpHub`] (rank 0) and dials
//! its own loopback twice — rank 1 is the scheduler's transport (the
//! foreman slot, so worker [`Message::JobTaskResult`] replies route
//! here), rank 2 a placeholder monitor connection keeping the classic
//! rank convention (workers at 3 and up). Worker processes are either
//! forked by the daemon or join externally with
//! `fastdnaml --net worker --connect ADDR`; either way they are one
//! *shared* fleet, multiplexed across every admitted job.
//!
//! Fair share: active jobs sit in a round-robin ring; each dispatch round
//! hands one jumble to one idle worker per eligible job, cycling until
//! workers or work run out. A job's `max_ranks` quota caps how many
//! workers it occupies at once, so a wide job cannot starve a narrow one.
//!
//! Durability: every admission and state transition is written through
//! [`Registry`] before it is acknowledged, and every completed jumble
//! lands in the job's farm manifest before the in-memory ledger advances.
//! A daemon killed at any point restarts by requeueing exactly the
//! `Pending` seeds — nothing lost, nothing run twice.

use crate::registry::Registry;
use fdml_comm::job::{JobId, JobResult, JobSpec, JobState, JobStatus, JobTree, RejectReason};
use fdml_comm::message::Message;
use fdml_comm::transport::{ranks, Rank, Transport};
use fdml_core::checkpoint::{FarmManifest, JumbleStatus};
use fdml_core::job::ResolvedJob;
use fdml_core::wal::{self, WalRound, WalWriter};
use fdml_net::wire::{write_frame, Frame};
use fdml_net::{ServiceRequest, TcpHub, TcpTransport};
use fdml_obs::{Event, MemorySink, Obs, RunReport};
use fdml_phylo::consensus::consensus;
use fdml_phylo::newick;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scheduler run mode, shared with the [`crate::Daemon`] handle.
pub(crate) const MODE_RUN: u8 = 0;
/// Graceful stop: workers get `Shutdown`, state is flushed.
pub(crate) const MODE_STOP: u8 = 1;
/// Hard stop: drop everything mid-flight, as a crash would.
pub(crate) const MODE_KILL: u8 = 2;

/// Most finished-job results kept in memory for fast `Attach` answers.
/// Older results are evicted; attaching to an evicted job rebuilds its
/// result from the durable manifest (as a post-restart attach does).
const RESULT_CACHE: usize = 64;

/// Admission ceilings, from [`crate::ServeOptions`].
pub(crate) struct Limits {
    /// Most jobs admitted-but-unfinished at once.
    pub max_jobs: usize,
    /// Ceiling on a spec's `max_ranks` request (0 = none).
    pub max_job_ranks: usize,
    /// Ceiling on a spec's `max_wall_ms` request, and the default budget
    /// for specs that ask for none (0 = none).
    pub max_wall_ms: u64,
}

/// One admitted, unfinished job's live state.
struct Active {
    resolved: ResolvedJob,
    manifest: FarmManifest,
    /// Seeds not yet dispatched, in plan order (requeues go to the front
    /// so a restart-heavy run still drains oldest-first).
    pending: VecDeque<u64>,
    /// Jumbles currently on a worker.
    in_flight: usize,
    /// Effective worker cap (0 = share the whole fleet).
    width: usize,
    /// Effective wall budget (0 = unlimited), armed at first dispatch.
    wall_ms: u64,
    deadline: Option<Instant>,
    started: bool,
    /// Per-job event buffer behind the per-job run report.
    sink: MemorySink,
    obs: Obs,
    /// Streams attached with `Attach`, fed progress and the final result.
    attached: Vec<TcpStream>,
}

/// One shared-fleet worker's state.
#[derive(Default)]
struct Worker {
    /// The task currently on this worker, if any.
    busy: Option<u64>,
    /// Jobs whose `JobData` this worker process has already received.
    knows: HashSet<JobId>,
}

/// An outstanding dispatch.
struct Flight {
    job: JobId,
    seed: u64,
    rank: Rank,
}

pub(crate) struct Scheduler {
    hub: TcpHub,
    foreman: TcpTransport,
    /// Holds the monitor rank open so workers start at rank 3.
    _monitor: TcpTransport,
    registry: Registry,
    obs: Obs,
    limits: Limits,
    active: HashMap<JobId, Active>,
    ring: VecDeque<JobId>,
    results: HashMap<JobId, JobResult>,
    /// Insertion order of `results`, for bounded eviction.
    results_order: VecDeque<JobId>,
    workers: HashMap<Rank, Worker>,
    in_flight: HashMap<u64, Flight>,
    /// Append handle for each in-flight jumble's write-ahead round log,
    /// keyed by (job, seed); entries leave when the jumble lands in the
    /// manifest (log retired) or its log goes bad (log abandoned).
    wal_writers: HashMap<(JobId, u64), WalWriter>,
    next_task: u64,
    mode: Arc<AtomicU8>,
}

impl Scheduler {
    pub(crate) fn new(
        hub: TcpHub,
        foreman: TcpTransport,
        monitor: TcpTransport,
        registry: Registry,
        obs: Obs,
        limits: Limits,
        mode: Arc<AtomicU8>,
    ) -> Scheduler {
        let mut s = Scheduler {
            hub,
            foreman,
            _monitor: monitor,
            registry,
            obs,
            limits,
            active: HashMap::new(),
            ring: VecDeque::new(),
            results: HashMap::new(),
            results_order: VecDeque::new(),
            workers: HashMap::new(),
            in_flight: HashMap::new(),
            wal_writers: HashMap::new(),
            next_task: 1,
            mode,
        };
        s.revive();
        s
    }

    /// Re-admit every unfinished job a previous daemon left in the state
    /// directory: reload its manifest and requeue exactly the `Pending`
    /// seeds.
    fn revive(&mut self) {
        let unfinished: Vec<(JobId, JobSpec)> = self
            .registry
            .jobs()
            .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
            .map(|j| (j.id, j.spec.clone()))
            .collect();
        for (id, spec) in unfinished {
            match ResolvedJob::from_spec(&spec) {
                Ok(resolved) => {
                    let manifest = self.registry.load_manifest(id, &resolved.seeds);
                    if manifest.is_complete() {
                        // It finished just before the old daemon died;
                        // only the registry transition was lost.
                        let result = assemble_result(id, &resolved, &manifest, None);
                        let _ = self.registry.set_state(id, JobState::Done);
                        self.cache_result(id, result);
                        continue;
                    }
                    self.activate(id, &spec, resolved, manifest);
                }
                Err(e) => {
                    let _ = self
                        .registry
                        .set_failed(id, format!("unresolvable after restart: {e}"));
                }
            }
        }
    }

    fn activate(
        &mut self,
        id: JobId,
        spec: &JobSpec,
        resolved: ResolvedJob,
        manifest: FarmManifest,
    ) {
        let slots = effective(spec.max_ranks as u64, self.limits.max_job_ranks as u64) as usize;
        // A rank running `intra_threads` kernel threads occupies that many
        // hardware slots, so the job's concurrent-rank width is its slot
        // budget divided by its per-rank thread count (min 1 — a budget,
        // once granted, always admits at least one rank).
        let threads = spec.intra_threads.max(1);
        let width = if slots == 0 {
            0
        } else {
            (slots / threads).max(1)
        };
        let wall_ms = effective(spec.max_wall_ms, self.limits.max_wall_ms);
        let pending: VecDeque<u64> = manifest.unfinished().into();
        let sink = MemorySink::new();
        let obs = Obs::new(Box::new(sink.clone()));
        self.active.insert(
            id,
            Active {
                resolved,
                manifest,
                pending,
                in_flight: 0,
                width,
                wall_ms,
                deadline: None,
                started: false,
                sink,
                obs,
                attached: Vec::new(),
            },
        );
        self.ring.push_back(id);
    }

    /// The scheduler loop: drain service connections, drain worker
    /// results, refresh the fleet, enforce wall quotas, dispatch.
    pub(crate) fn run(mut self) {
        loop {
            match self.mode.load(Ordering::SeqCst) {
                MODE_RUN => {}
                MODE_STOP => {
                    for (&rank, _) in self.workers.iter() {
                        let _ = self.foreman.send(rank, &Message::Shutdown);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                    return;
                }
                _ => return,
            }

            // Service plane: Submit / Query / Attach openers.
            let mut service_wait = Duration::from_millis(10);
            while let Some(req) = self.hub.accept_service(service_wait) {
                service_wait = Duration::ZERO;
                self.handle_service(req);
            }

            // Compute plane: results and liveness, via the foreman slot.
            let mut recv_wait = Duration::from_millis(10);
            while let Ok(Some((from, msg))) = self.foreman.recv_timeout(recv_wait) {
                recv_wait = Duration::ZERO;
                self.handle_message(from, msg);
            }

            // The hub's own rank-0 queue gets liveness notifications too;
            // nothing reads it in daemon mode, so drain and discard.
            while let Ok(Some(_)) = self.hub.recv_timeout(Duration::ZERO) {}

            self.refresh_workers();
            self.enforce_wall_quotas();
            self.dispatch();
        }
    }

    /// Reconcile the worker table with the hub's live connections.
    fn refresh_workers(&mut self) {
        let connected: HashSet<Rank> = self
            .hub
            .peer_ranks()
            .into_iter()
            .filter(|&r| r >= ranks::FIRST_WORKER)
            .collect();
        for &rank in &connected {
            self.workers.entry(rank).or_default();
        }
        let gone: Vec<Rank> = self
            .workers
            .keys()
            .filter(|r| !connected.contains(r))
            .copied()
            .collect();
        for rank in gone {
            self.worker_lost(rank);
        }
    }

    /// A worker's connection dropped: requeue whatever it carried. Its
    /// late result, should the process somehow still deliver one through
    /// a rejoin, is deduplicated against the manifest.
    fn worker_lost(&mut self, rank: Rank) {
        let Some(worker) = self.workers.remove(&rank) else {
            return;
        };
        if let Some(task) = worker.busy {
            self.requeue(task);
        }
    }

    /// A worker reconnected under the same rank: it may be a fresh
    /// replacement process with no engines, so its `JobData` cache resets
    /// and anything it carried is requeued.
    fn worker_rejoined(&mut self, rank: Rank) {
        if let Some(worker) = self.workers.get_mut(&rank) {
            let busy = worker.busy.take();
            worker.knows.clear();
            if let Some(task) = busy {
                self.requeue(task);
            }
        }
    }

    fn requeue(&mut self, task: u64) {
        if let Some(flight) = self.in_flight.remove(&task) {
            if let Some(job) = self.active.get_mut(&flight.job) {
                job.in_flight = job.in_flight.saturating_sub(1);
                let still_pending = job
                    .manifest
                    .entries
                    .iter()
                    .any(|e| e.seed == flight.seed && e.status == JumbleStatus::Pending);
                if still_pending {
                    job.pending.push_front(flight.seed);
                }
            }
        }
    }

    fn handle_message(&mut self, _from: Rank, msg: Message) {
        match msg {
            Message::JobTaskResult {
                job,
                task,
                seed,
                newick,
                ln_likelihood,
                ..
            } => self.absorb_result(job, task, seed, newick, ln_likelihood),
            Message::WalRound {
                job,
                seed,
                index,
                entry,
            } => self.absorb_wal_round(job, seed, index, entry),
            Message::PeerDown { rank } => self.worker_lost(rank),
            Message::PeerUp { rank } => self.worker_rejoined(rank),
            // Stray WorkerReady (ping answers), heartbeat artifacts, and
            // legacy single-job traffic are not the scheduler's concern.
            _ => {}
        }
    }

    /// A worker committed one search round: append it to the jumble's
    /// log. All failure modes here cost only crash-tolerance granularity,
    /// never correctness, so none of them is allowed to disturb the job:
    /// a missing writer is a finished jumble's late stream (drop), an
    /// unparseable entry is a bad worker payload (drop), a duplicate
    /// index is a restarted worker re-streaming its prefix (deduped by
    /// the writer), and an append error or index gap abandons this one
    /// log while the jumble keeps running toward the manifest.
    fn absorb_wal_round(&mut self, job_id: JobId, seed: u64, index: u64, entry: String) {
        let Some(writer) = self.wal_writers.get_mut(&(job_id, seed)) else {
            return;
        };
        let Ok(round) = WalRound::from_json(&entry) else {
            return;
        };
        match writer.append(&round) {
            Ok(Some(bytes)) => {
                let ev = Event::WalAppend {
                    job: job_id,
                    seed,
                    index,
                    bytes,
                };
                self.obs.emit(|| ev.clone());
                if let Some(job) = self.active.get(&job_id) {
                    job.obs.emit(|| ev);
                }
            }
            Ok(None) => {}
            Err(_) => {
                self.wal_writers.remove(&(job_id, seed));
            }
        }
    }

    fn absorb_result(&mut self, job_id: JobId, task: u64, seed: u64, newick: String, lnl: f64) {
        let flight = self.in_flight.remove(&task);
        if let Some(f) = &flight {
            if let Some(worker) = self.workers.get_mut(&f.rank) {
                if worker.busy == Some(task) {
                    worker.busy = None;
                }
            }
        }
        let Some(job) = self.active.get_mut(&job_id) else {
            return; // late result for a finished/failed job
        };
        // Only a flight that was still on the books for this job releases
        // an in-flight count: a task already requeued by the liveness
        // machinery was decremented there, and decrementing again for its
        // late result would let in_flight hit zero while the recomputation
        // is still on a worker.
        if flight.as_ref().is_some_and(|f| f.job == job_id) {
            job.in_flight = job.in_flight.saturating_sub(1);
        }
        let fresh = job
            .manifest
            .entries
            .iter()
            .any(|e| e.seed == seed && e.status == JumbleStatus::Pending);
        if fresh {
            // The liveness machinery may have requeued this seed while its
            // original result was in transit; pull it back out so the
            // jumble is not dispatched a second time.
            job.pending.retain(|&s| s != seed);
            job.manifest.mark_done(seed, newick, lnl);
            let _ = job.manifest.save(&self.registry.manifest_path(job_id));
            // The result is durable in the manifest: the round log has
            // served its purpose.
            self.wal_writers.remove(&(job_id, seed));
            let _ = wal::retire(&self.registry.wal_dir(), job_id, seed);
            let done = job
                .manifest
                .entries
                .iter()
                .filter(|e| e.status == JumbleStatus::Done)
                .count();
            let total = job.manifest.entries.len();
            let ev = Event::JumbleCompleted {
                seed,
                ln_likelihood: lnl,
                reused: false,
            };
            self.obs.emit(|| ev.clone());
            job.obs.emit(|| ev);
            let progress = Event::FarmProgress {
                completed: done,
                in_flight: job.in_flight,
                pending: job.pending.len(),
                total,
            };
            self.obs.emit(|| progress.clone());
            job.obs.emit(|| progress);
            let line = format!("jumble seed={seed} lnL={lnl:.4} ({done}/{total})");
            notify_attached(&mut job.attached, job_id, &line);
        }
        // Completion is checked on the duplicate path too: when a late
        // original result marked the final seed Done, the recomputation's
        // duplicate may be the message that brings in_flight to zero.
        if job.manifest.is_complete() && job.pending.is_empty() && job.in_flight == 0 {
            self.finish(job_id);
        }
    }

    /// Every jumble landed: assemble the result, persist `Done`, answer
    /// the attached clients.
    fn finish(&mut self, id: JobId) {
        let Some(mut job) = self.active.remove(&id) else {
            return;
        };
        self.ring.retain(|&j| j != id);
        self.retire_job(id);
        self.sweep_wal(id);
        let report = RunReport::from_events(&job.sink.snapshot());
        let report_json = serde_json::to_string(&report).ok();
        let result = assemble_result(id, &job.resolved, &job.manifest, report_json);
        let _ = self.registry.set_state(id, JobState::Done);
        let ev = Event::JobCompleted {
            job: id,
            best_ln_likelihood: result.best_ln_likelihood,
        };
        self.obs.emit(|| ev.clone());
        job.obs.emit(|| ev);
        for mut stream in job.attached.drain(..) {
            let _ = write_frame(
                &mut stream,
                &Frame::Done {
                    job: id,
                    result: result.clone(),
                },
            );
        }
        self.cache_result(id, result);
    }

    /// Tell the whole fleet to evict this job's cached engine, and forget
    /// who knows it. Without retirement a long-lived fleet leaks one
    /// engine per job served — on both sides. The broadcast goes to every
    /// connected worker, not just those marked as knowing the job: a
    /// worker that rejoined mid-job had its `knows` entry cleared but may
    /// still hold the engine, and eviction of an unknown job is a no-op.
    fn retire_job(&mut self, id: JobId) {
        for (&rank, worker) in self.workers.iter_mut() {
            worker.knows.remove(&id);
            let _ = self.foreman.send(rank, &Message::JobRetire { job: id });
        }
    }

    /// A job left the active table (finished or failed): its round logs
    /// are dead weight — drop the writers and delete the files so the
    /// wal directory stays bounded by the number of in-flight jumbles.
    fn sweep_wal(&mut self, id: JobId) {
        let dir = self.registry.wal_dir();
        let seeds: Vec<u64> = self
            .wal_writers
            .keys()
            .filter(|&&(j, _)| j == id)
            .map(|&(_, s)| s)
            .collect();
        for seed in seeds {
            self.wal_writers.remove(&(id, seed));
            let _ = wal::retire(&dir, id, seed);
        }
    }

    /// Remember a finished job's result, evicting the oldest entries past
    /// [`RESULT_CACHE`].
    fn cache_result(&mut self, id: JobId, result: JobResult) {
        if self.results.insert(id, result).is_none() {
            self.results_order.push_back(id);
            while self.results_order.len() > RESULT_CACHE {
                if let Some(old) = self.results_order.pop_front() {
                    self.results.remove(&old);
                }
            }
        }
    }

    fn fail(&mut self, id: JobId, reason: String) {
        let Some(mut job) = self.active.remove(&id) else {
            return;
        };
        self.ring.retain(|&j| j != id);
        self.retire_job(id);
        self.sweep_wal(id);
        let _ = self.registry.set_failed(id, reason.clone());
        let ev = Event::JobFailed {
            job: id,
            reason: reason.clone(),
        };
        self.obs.emit(|| ev.clone());
        job.obs.emit(|| ev);
        for mut stream in job.attached.drain(..) {
            let _ = write_frame(
                &mut stream,
                &Frame::Rejected {
                    reason: RejectReason::JobFailed {
                        job: id,
                        reason: reason.clone(),
                    },
                },
            );
        }
        // In-flight tasks stay in the flight table; their late results
        // find no active job and are discarded.
    }

    fn enforce_wall_quotas(&mut self) {
        let now = Instant::now();
        let expired: Vec<(JobId, u64)> = self
            .active
            .iter()
            .filter_map(|(&id, job)| match job.deadline {
                Some(d) if now >= d => Some((id, job.wall_ms)),
                _ => None,
            })
            .collect();
        for (id, wall_ms) in expired {
            self.fail(id, format!("wall-time quota exhausted ({wall_ms} ms)"));
        }
    }

    /// Fair-share dispatch: one jumble per eligible job per ring cycle,
    /// until idle workers or eligible work run out.
    fn dispatch(&mut self) {
        loop {
            let Some(rank) = self.idle_worker() else {
                return;
            };
            let mut assigned = false;
            for _ in 0..self.ring.len() {
                let Some(id) = self.ring.pop_front() else {
                    break;
                };
                let eligible = self
                    .active
                    .get(&id)
                    .map(|j| !j.pending.is_empty() && (j.width == 0 || j.in_flight < j.width))
                    .unwrap_or(false);
                self.ring.push_back(id);
                if eligible {
                    self.assign(id, rank);
                    assigned = true;
                    break;
                }
            }
            if !assigned {
                return;
            }
        }
    }

    fn idle_worker(&self) -> Option<Rank> {
        self.workers
            .iter()
            .filter(|(_, w)| w.busy.is_none())
            .map(|(&r, _)| r)
            .min()
    }

    fn assign(&mut self, id: JobId, rank: Rank) {
        let Some(job) = self.active.get_mut(&id) else {
            return;
        };
        let Some(seed) = job.pending.pop_front() else {
            return;
        };
        let task = self.next_task;
        self.next_task += 1;
        // The jumble travels with its committed WAL prefix: the worker
        // replays it (scoring skipped), runs the rest live, and streams
        // each newly committed round back as a `WalRound`. A daemon killed
        // mid-jumble re-dispatches the longer prefix on restart.
        let task_msg = match open_wal(
            &self.registry.wal_dir(),
            id,
            seed,
            job.resolved.alignment.num_taxa(),
        ) {
            Ok((entries, writer)) => {
                if !entries.is_empty() {
                    let replayed = entries.len() as u64;
                    let ev = Event::WalReplay {
                        job: id,
                        seed,
                        rounds: replayed,
                    };
                    self.obs.emit(|| ev.clone());
                    job.obs.emit(|| ev);
                }
                self.wal_writers.insert((id, seed), writer);
                Message::JumbleResume {
                    job: id,
                    task,
                    seed,
                    wal: entries,
                }
            }
            Err(_) => {
                // A sick wal directory must not wedge the job: degrade to
                // a WAL-less dispatch, widening this jumble's crash window
                // back to manifest granularity.
                self.wal_writers.remove(&(id, seed));
                Message::JobTask {
                    job: id,
                    task,
                    seed,
                }
            }
        };
        // First contact between this worker and this job ships the
        // alignment and the first jumble in one `Batch` envelope, so a
        // dispatch always costs exactly one frame; the worker unpacks the
        // batch in order, installing the engine before the task arrives.
        let introduce = !self.workers.entry(rank).or_default().knows.contains(&id);
        let frame = if introduce {
            Message::Batch {
                msgs: vec![
                    Message::JobData {
                        job: id,
                        phylip: fdml_phylo::phylip::write(&job.resolved.alignment),
                        config_json: job.resolved.config.engine_config_json(),
                    },
                    task_msg,
                ],
            }
        } else {
            task_msg
        };
        if self.foreman.send(rank, &frame).is_err() {
            job.pending.push_front(seed);
            return;
        }
        let worker = self.workers.get_mut(&rank).expect("worker present");
        if introduce {
            worker.knows.insert(id);
        }
        worker.busy = Some(task);
        self.in_flight.insert(
            task,
            Flight {
                job: id,
                seed,
                rank,
            },
        );
        job.in_flight += 1;
        if !job.started {
            job.started = true;
            if job.wall_ms > 0 {
                job.deadline = Some(Instant::now() + Duration::from_millis(job.wall_ms));
            }
            let _ = self.registry.set_state(id, JobState::Running);
            let ev = Event::JobStarted { job: id };
            self.obs.emit(|| ev.clone());
            job.obs.emit(|| ev);
        }
        let ev = Event::JumbleStarted { seed };
        self.obs.emit(|| ev.clone());
        job.obs.emit(|| ev);
    }

    // ----- service plane -------------------------------------------------

    fn handle_service(&mut self, req: ServiceRequest) {
        let ServiceRequest { mut stream, first } = req;
        match first {
            Frame::Submit { spec } => {
                let answer = match self.admit(spec) {
                    Ok(job) => Frame::Accepted { job },
                    Err(reason) => Frame::Rejected { reason },
                };
                let _ = write_frame(&mut stream, &answer);
            }
            Frame::Query { job } => {
                let answer = match self.status_of(job) {
                    Some(status) => Frame::Status { status },
                    None => Frame::Rejected {
                        reason: RejectReason::UnknownJob { job },
                    },
                };
                let _ = write_frame(&mut stream, &answer);
            }
            Frame::Attach { job } => self.attach(job, stream),
            _ => {}
        }
    }

    /// Admission control: validate the spec, check it against the
    /// daemon's quotas, and only then assign an id and persist.
    fn admit(&mut self, spec: JobSpec) -> Result<JobId, RejectReason> {
        let resolved = ResolvedJob::from_spec(&spec).map_err(|e| RejectReason::Malformed {
            reason: e.to_string(),
        })?;
        if self.limits.max_job_ranks > 0 && spec.max_ranks > self.limits.max_job_ranks {
            return Err(RejectReason::QuotaExceeded {
                quota: "max_ranks".into(),
                requested: spec.max_ranks as u64,
                limit: self.limits.max_job_ranks as u64,
            });
        }
        if self.limits.max_wall_ms > 0 && spec.max_wall_ms > self.limits.max_wall_ms {
            return Err(RejectReason::QuotaExceeded {
                quota: "max_wall_ms".into(),
                requested: spec.max_wall_ms,
                limit: self.limits.max_wall_ms,
            });
        }
        if self.registry.active_jobs() >= self.limits.max_jobs {
            return Err(RejectReason::QueueFull {
                limit: self.limits.max_jobs,
            });
        }
        let id = self
            .registry
            .admit(spec.clone(), &resolved.seeds)
            .map_err(|e| RejectReason::Malformed {
                reason: format!("state dir unwritable: {e}"),
            })?;
        let manifest = FarmManifest::new(&resolved.seeds);
        self.activate(id, &spec, resolved, manifest);
        let jumbles = spec.jumbles;
        let label = spec.label;
        let ev = Event::JobSubmitted {
            job: id,
            jumbles,
            label,
        };
        self.obs.emit(|| ev.clone());
        if let Some(job) = self.active.get(&id) {
            job.obs.emit(|| ev);
        }
        Ok(id)
    }

    fn status_of(&self, id: JobId) -> Option<JobStatus> {
        if let Some(job) = self.active.get(&id) {
            let done = job
                .manifest
                .entries
                .iter()
                .filter(|e| e.status == JumbleStatus::Done)
                .count();
            return self.registry.status(id, done, job.manifest.entries.len());
        }
        let entry = self.registry.get(id)?;
        let manifest = self.registry.load_manifest(id, &[]);
        let done = manifest
            .entries
            .iter()
            .filter(|e| e.status == JumbleStatus::Done)
            .count();
        let total = if manifest.entries.is_empty() {
            entry.spec.jumbles
        } else {
            manifest.entries.len()
        };
        self.registry.status(id, done, total)
    }

    fn attach(&mut self, id: JobId, mut stream: TcpStream) {
        if let Some(result) = self.results.get(&id) {
            // Keep the stream shape uniform whether the client attached
            // before or after completion: at least one event, then Done.
            let _ = write_frame(
                &mut stream,
                &Frame::JobEvent {
                    job: id,
                    text: "attached (already complete)".into(),
                },
            );
            let _ = write_frame(
                &mut stream,
                &Frame::Done {
                    job: id,
                    result: result.clone(),
                },
            );
            return;
        }
        if let Some(job) = self.active.get_mut(&id) {
            let _ = write_frame(
                &mut stream,
                &Frame::JobEvent {
                    job: id,
                    text: "attached".into(),
                },
            );
            job.attached.push(stream);
            return;
        }
        let answer = match self.registry.get(id) {
            Some(entry) if entry.state == JobState::Done => {
                // Completed before a restart; rebuild the result from the
                // durable manifest (the in-memory report did not survive).
                match ResolvedJob::from_spec(&entry.spec) {
                    Ok(resolved) => {
                        let manifest = self.registry.load_manifest(id, &resolved.seeds);
                        let result = assemble_result(id, &resolved, &manifest, None);
                        self.cache_result(id, result.clone());
                        Frame::Done { job: id, result }
                    }
                    Err(e) => Frame::Rejected {
                        reason: RejectReason::JobFailed {
                            job: id,
                            reason: format!("result unrecoverable: {e}"),
                        },
                    },
                }
            }
            Some(entry) if entry.state == JobState::Failed => Frame::Rejected {
                reason: RejectReason::JobFailed {
                    job: id,
                    reason: entry
                        .failure
                        .clone()
                        .unwrap_or_else(|| "unknown failure".into()),
                },
            },
            _ => Frame::Rejected {
                reason: RejectReason::UnknownJob { job: id },
            },
        };
        if matches!(answer, Frame::Done { .. }) {
            let _ = write_frame(
                &mut stream,
                &Frame::JobEvent {
                    job: id,
                    text: "attached (already complete)".into(),
                },
            );
        }
        let _ = write_frame(&mut stream, &answer);
    }
}

/// Recover (or start) the WAL for one (job, seed): returns the committed
/// rounds as wire-ready JSON entries plus the append handle continuing at
/// the next index.
fn open_wal(
    dir: &std::path::Path,
    job: JobId,
    seed: u64,
    num_taxa: usize,
) -> std::io::Result<(Vec<String>, WalWriter)> {
    match wal::load(dir, job, seed)? {
        Some(state) => {
            let writer = WalWriter::resume(dir, job, seed, &state)?;
            let entries = state.rounds.iter().map(|r| r.to_json()).collect();
            Ok((entries, writer))
        }
        None => {
            let writer = WalWriter::create(dir, job, seed, num_taxa)?;
            Ok((Vec::new(), writer))
        }
    }
}

/// `requested` capped by `ceiling`, where 0 means "unset" on both sides.
fn effective(requested: u64, ceiling: u64) -> u64 {
    match (requested, ceiling) {
        (0, c) => c,
        (r, 0) => r,
        (r, c) => r.min(c),
    }
}

/// Push one progress line to every attached stream, dropping streams
/// whose client went away.
fn notify_attached(attached: &mut Vec<TcpStream>, job: JobId, text: &str) {
    attached.retain_mut(|stream| {
        write_frame(
            stream,
            &Frame::JobEvent {
                job,
                text: text.into(),
            },
        )
        .is_ok()
    });
}

/// Build the final [`JobResult`] from a complete manifest: trees in plan
/// order, the best tree (first on ties), and the majority-rule consensus
/// for multi-jumble jobs — byte-identical to a serial farm over the same
/// seeds, because every jumble ran through `run_one_jumble`.
fn assemble_result(
    id: JobId,
    resolved: &ResolvedJob,
    manifest: &FarmManifest,
    report: Option<String>,
) -> JobResult {
    let trees: Vec<JobTree> = manifest
        .entries
        .iter()
        .map(|e| JobTree {
            seed: e.seed,
            newick: e.newick.clone().unwrap_or_default(),
            ln_likelihood: e.ln_likelihood.unwrap_or(f64::NEG_INFINITY),
        })
        .collect();
    // Strictly-greater comparison keeps the first tree in plan order on
    // ties, matching the serial farm's tie-break.
    let mut best = JobTree {
        seed: 0,
        newick: String::new(),
        ln_likelihood: f64::NEG_INFINITY,
    };
    for t in &trees {
        if t.ln_likelihood > best.ln_likelihood {
            best = t.clone();
        }
    }
    let consensus_newick = if trees.len() > 1 {
        let parsed: Result<Vec<_>, _> = trees
            .iter()
            .map(|t| newick::parse_tree(&t.newick, &resolved.alignment))
            .collect();
        parsed.ok().and_then(|ts| {
            let names = resolved.alignment.names().to_vec();
            consensus(&ts, names.len(), 0.5, &names)
                .ok()
                .map(|c| newick::write(&c.tree))
        })
    } else {
        None
    };
    JobResult {
        job: id,
        trees,
        consensus_newick,
        best_newick: best.newick,
        best_ln_likelihood: best.ln_likelihood,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_core::config::SearchConfig;
    use fdml_net::{ClientConfig, NetConfig};
    use std::path::PathBuf;

    #[test]
    fn effective_caps_compose() {
        assert_eq!(effective(0, 0), 0);
        assert_eq!(effective(0, 8), 8);
        assert_eq!(effective(4, 0), 4);
        assert_eq!(effective(16, 8), 8);
        assert_eq!(effective(4, 8), 4);
    }

    // ----- duplicate / late-result accounting ---------------------------
    //
    // These drive the scheduler's internals directly (no real worker
    // processes): a "worker" is an entry in the worker table, and results
    // are injected via absorb_result, so the exact interleavings of the
    // liveness machinery and in-transit results can be replayed.

    fn test_scheduler(tag: &str) -> (Scheduler, PathBuf) {
        let dir = std::env::temp_dir().join(format!("fdml-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let hub = TcpHub::bind_reserved(
            "127.0.0.1:0",
            4,
            &[1, 2],
            NetConfig::default(),
            Obs::disabled(),
        )
        .unwrap();
        let addr = hub.local_addr();
        let claim = |rank| {
            TcpTransport::connect_observed(
                addr,
                ClientConfig {
                    claim: Some(rank),
                    ..ClientConfig::default()
                },
                Obs::disabled(),
            )
            .unwrap()
        };
        let foreman = claim(1);
        let monitor = claim(2);
        let registry = Registry::open(&dir).unwrap();
        let scheduler = Scheduler::new(
            hub,
            foreman,
            monitor,
            registry,
            Obs::disabled(),
            Limits {
                max_jobs: 8,
                max_job_ranks: 0,
                max_wall_ms: 0,
            },
            Arc::new(AtomicU8::new(MODE_RUN)),
        );
        (scheduler, dir)
    }

    fn one_jumble_spec() -> JobSpec {
        JobSpec::builder()
            .phylip(" 3 12\nt0 ACGTACGTACGT\nt1 ACGTACGAACGT\nt2 ACTTACGAACGA\n")
            .config_json(SearchConfig::default().engine_config_json())
            .jumbles(1)
            .base_seed(7)
            .label("late-result")
            .build()
            .unwrap()
    }

    #[test]
    fn width_accounts_intra_threads_as_slots() {
        // A rank running N kernel threads occupies N hardware slots: a
        // 4-slot budget admits 2 concurrent ranks at 2 threads each, and
        // an oversubscribed request still gets one rank.
        let (mut s, dir) = test_scheduler("slots");
        let wide = JobSpec {
            max_ranks: 4,
            intra_threads: 2,
            ..one_jumble_spec()
        };
        let id = s.admit(wide).unwrap();
        assert_eq!(s.active[&id].width, 2);
        let over = JobSpec {
            max_ranks: 4,
            intra_threads: 16,
            ..one_jumble_spec()
        };
        let id2 = s.admit(over).unwrap();
        assert_eq!(s.active[&id2].width, 1);
        let uncapped = one_jumble_spec();
        let id3 = s.admit(uncapped).unwrap();
        assert_eq!(s.active[&id3].width, 0, "no budget, no cap");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn late_result_after_requeue_completes_the_job() {
        // A busy worker's connection flaps: PeerUp requeues its seed, then
        // the original result still arrives. The job must finish — with
        // the seed pulled back out of the pending queue, not recomputed.
        let (mut s, dir) = test_scheduler("flap");
        let id = s.admit(one_jumble_spec()).unwrap();
        s.workers.insert(3, Worker::default());
        s.dispatch();
        assert_eq!(s.active[&id].in_flight, 1);
        assert!(s.active[&id].pending.is_empty());

        s.worker_rejoined(3);
        assert_eq!(s.active[&id].in_flight, 0);
        assert_eq!(s.active[&id].pending.len(), 1);
        let seed = s.active[&id].pending[0];

        // The original worker's result for the requeued seed arrives
        // before the seed is re-dispatched.
        s.absorb_result(id, 1, seed, "(t0:0.1,t1:0.1,t2:0.1);".into(), -42.0);
        assert!(!s.active.contains_key(&id), "job should have finished");
        assert!(s.results.contains_key(&id));
        assert_eq!(
            s.registry.get(id).unwrap().state,
            JobState::Done,
            "completion must be persisted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recomputed_duplicate_still_completes_the_job() {
        // Worse interleaving: the requeued seed is *re-dispatched* before
        // the original result lands. The late original marks the seed
        // Done; the recomputation's duplicate must then (a) not
        // double-decrement in_flight and (b) still trigger completion.
        let (mut s, dir) = test_scheduler("dup");
        let id = s.admit(one_jumble_spec()).unwrap();
        s.workers.insert(3, Worker::default());
        s.dispatch(); // task 1
        s.worker_rejoined(3); // requeue: seed back to pending
        let seed = s.active[&id].pending[0];
        s.dispatch(); // task 2: the recomputation
        assert_eq!(s.active[&id].in_flight, 1);

        // Late original result for task 1: no flight on the books, so
        // in_flight must stay 1 (the recomputation is still out).
        s.absorb_result(id, 1, seed, "(t0:0.1,t1:0.1,t2:0.1);".into(), -42.0);
        assert!(s.active.contains_key(&id), "recomputation still in flight");
        assert_eq!(s.active[&id].in_flight, 1);

        // The recomputation's result is a duplicate (seed already Done),
        // but it is what brings in_flight to zero — completion must run.
        s.absorb_result(id, 2, seed, "(t0:0.1,t1:0.1,t2:0.1);".into(), -42.0);
        assert!(!s.active.contains_key(&id), "job should have finished");
        assert!(s.results.contains_key(&id));
        assert_eq!(s.registry.get(id).unwrap().state, JobState::Done);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
