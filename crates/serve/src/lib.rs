//! `fdml-serve`: the always-on, multi-tenant inference daemon.
//!
//! The paper's runtime tears the whole PVM/MPI universe down after every
//! analysis. This crate promotes the TCP hub into a persistent service:
//! the daemon stays up across jobs, a shared worker fleet stays
//! connected, and clients submit work over the same versioned wire
//! protocol the compute plane uses — alignment and configuration in,
//! streamed progress and the final trees out.
//!
//! * [`ServeOptions`] / [`Daemon`] — configure and run the daemon: the
//!   hub (rank 0), the scheduler's loopback foreman connection (rank 1),
//!   a monitor placeholder (rank 2), and optionally forked worker
//!   processes (ranks 3+).
//! * [`registry::Registry`] — durable job state under one directory:
//!   `jobs.json` plus a farm manifest per job, written through before
//!   any acknowledgement, so a killed daemon resumes its in-flight jobs
//!   with no jumble lost or repeated.
//! * [`client`] — the submit / status / attach calls the CLI's
//!   `--submit`, `--status`, and `--attach` modes wrap.
//!
//! Scheduling is fair-share round-robin: each eligible job receives one
//! jumble per cycle, bounded by its admitted `max_ranks` quota, so
//! concurrent farms interleave over one fleet instead of queueing behind
//! each other — and every jumble still runs through the same
//! `run_one_jumble` code path, keeping results byte-identical to a
//! serial run of the same seeds.
//!
//! The daemon speaks the `fdml-wire` binary codec by default
//! ([`ServeOptions::wire`]) and introduces each job to a worker in a
//! single `Batch` frame (alignment + first jumble together). Its
//! scheduling scope stays **flat**, though: the unit of work is a whole
//! jumble — thousands of candidate evaluations per frame — so a single
//! scheduler saturates far more workers than the per-candidate dispatch
//! path does, and the two-level foreman tree (`--regions`, see the
//! one-shot coordinator) is deliberately not replicated here.

#![warn(missing_docs)]

pub mod client;
pub mod registry;
mod scheduler;

pub use registry::{JobEntry, Registry};

use fdml_comm::transport::{ranks, Rank, Transport};
use fdml_net::{ClientConfig, NetConfig, TcpHub, TcpTransport, WireFormat};
use fdml_obs::{Obs, Sink};
use scheduler::{Limits, Scheduler, MODE_KILL, MODE_RUN, MODE_STOP};
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration for one daemon instance.
pub struct ServeOptions {
    /// Address to listen on (`"127.0.0.1:0"` picks a free port).
    pub listen: String,
    /// Universe size: rank 0 (hub) + rank 1 (scheduler) + rank 2
    /// (monitor placeholder) + workers. Must be at least 4.
    pub num_ranks: usize,
    /// Durable state directory (`jobs.json` + per-job manifests).
    pub state_dir: PathBuf,
    /// Most admitted-but-unfinished jobs at once; further submissions
    /// get a typed `QueueFull` rejection.
    pub max_jobs: usize,
    /// Ceiling on a job's `max_ranks` quota request (0 = none).
    pub max_job_ranks: usize,
    /// Ceiling on a job's `max_wall_ms` request, and the default budget
    /// for jobs that request none (0 = none).
    pub max_wall_ms: u64,
    /// Fork this binary as the worker fleet (`--net worker --connect`).
    /// `None` leaves the fleet to external joiners.
    pub spawn: Option<PathBuf>,
    /// Observability sinks for the daemon-global event stream (each job
    /// additionally gets its own in-memory sink behind its run report).
    pub sinks: Vec<Box<dyn Sink>>,
    /// Wire format the hub writes its data-plane frames in. Workers that
    /// did not advertise codec-sniffing support are written JSON
    /// regardless, so a mixed fleet keeps working.
    pub wire: WireFormat,
}

impl ServeOptions {
    /// Defaults: queue limit 8, no rank/wall ceilings, no forked
    /// workers, unobserved, binary wire.
    pub fn new(
        listen: impl Into<String>,
        num_ranks: usize,
        state_dir: impl Into<PathBuf>,
    ) -> ServeOptions {
        ServeOptions {
            listen: listen.into(),
            num_ranks,
            state_dir: state_dir.into(),
            max_jobs: 8,
            max_job_ranks: 0,
            max_wall_ms: 0,
            spawn: None,
            sinks: Vec::new(),
            wire: WireFormat::Binary,
        }
    }
}

/// A running daemon: the hub, the scheduler thread, and any forked
/// workers. Dropping the handle hard-stops everything (like a crash);
/// call [`Daemon::stop`] for a graceful shutdown.
pub struct Daemon {
    addr: SocketAddr,
    mode: Arc<AtomicU8>,
    thread: Option<JoinHandle<()>>,
    children: Vec<Child>,
}

impl Daemon {
    /// Bind the hub, dial the scheduler and monitor ranks, fork workers
    /// if asked, revive unfinished jobs from the state directory, and
    /// start scheduling.
    pub fn start(options: ServeOptions) -> io::Result<Daemon> {
        assert!(
            options.num_ranks >= 4,
            "a daemon universe needs hub + scheduler + monitor + at least one worker"
        );
        let obs = Obs::multi(options.sinks);
        // Ranks 1 and 2 are reserved before the hub starts accepting, so
        // an external worker (or a stale client) dialing the listen
        // address during startup cannot race the daemon for its own
        // scheduler and monitor slots.
        let hub = TcpHub::bind_reserved(
            options.listen.as_str(),
            options.num_ranks,
            &[ranks::FOREMAN, ranks::MONITOR],
            NetConfig {
                wire: options.wire,
                ..NetConfig::default()
            },
            obs.clone(),
        )?;
        let addr = hub.local_addr();
        // Explicit claims pin the scheduler to rank 1 (the foreman slot,
        // where workers address their results) and the placeholder to
        // rank 2, leaving 3.. for the fleet.
        let claim = |rank: Rank, what: &str| -> io::Result<TcpTransport> {
            let transport = TcpTransport::connect_observed(
                addr,
                ClientConfig {
                    claim: Some(rank),
                    ..ClientConfig::default()
                },
                Obs::disabled(),
            )?;
            if transport.rank() != rank {
                return Err(io::Error::other(format!(
                    "{what} claimed rank {rank} but was assigned {}",
                    transport.rank()
                )));
            }
            Ok(transport)
        };
        let foreman = claim(ranks::FOREMAN, "scheduler")?;
        let monitor = claim(ranks::MONITOR, "monitor placeholder")?;
        let mut children = Vec::new();
        if let Some(program) = &options.spawn {
            for _ in 3..options.num_ranks {
                let child = Command::new(program)
                    .arg("--net")
                    .arg("worker")
                    .arg("--connect")
                    .arg(addr.to_string())
                    .arg("--quiet")
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()?;
                children.push(child);
            }
        }
        // Observed open: a torn `jobs.json` tail recovers to the last
        // valid snapshot with a DurableRecovered warning instead of
        // aborting startup.
        let registry = Registry::open_observed(&options.state_dir, &obs)?;
        let limits = Limits {
            max_jobs: options.max_jobs,
            max_job_ranks: options.max_job_ranks,
            max_wall_ms: options.max_wall_ms,
        };
        let mode = Arc::new(AtomicU8::new(MODE_RUN));
        let scheduler = Scheduler::new(
            hub,
            foreman,
            monitor,
            registry,
            obs,
            limits,
            Arc::clone(&mode),
        );
        let thread = std::thread::Builder::new()
            .name("fdml-serve-sched".into())
            .spawn(move || scheduler.run())?;
        Ok(Daemon {
            addr,
            mode,
            thread: Some(thread),
            children,
        })
    }

    /// The address the daemon actually serves on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: workers receive `Shutdown`, durable state is
    /// already on disk, forked children are reaped.
    pub fn stop(mut self) {
        self.halt(MODE_STOP);
    }

    /// Hard stop, simulating a daemon crash: no farewell to anyone.
    /// Durable state stays exactly as the last write-through left it —
    /// the restart-resume path's test hook.
    pub fn kill(mut self) {
        self.halt(MODE_KILL);
    }

    fn halt(&mut self, mode: u8) {
        self.mode.store(mode, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.halt(MODE_KILL);
    }
}
