//! The service-plane client: submit a job to a running daemon, poll its
//! status, or attach and stream its progress to completion.
//!
//! Each call opens one TCP connection to the daemon's hub, sends one
//! service frame (`Submit` / `Query` / `Attach`), and reads the answer.
//! The hub recognizes a service opener during its handshake and hands the
//! socket to the scheduler, so the same listening port serves both the
//! compute universe and the job API.

use fdml_comm::job::{JobId, JobResult, JobSpec, JobStatus, RejectReason};
use fdml_net::wire::{read_frame, write_frame, Frame};
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A service-plane call's failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The daemon refused, with its typed verdict.
    Rejected(RejectReason),
    /// The daemon answered with something the call cannot interpret.
    Protocol(String),
    /// No terminal answer arrived inside the caller's patience.
    TimedOut,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Rejected(reason) => write!(f, "rejected: {reason}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
            ClientError::TimedOut => f.write_str("timed out waiting for the daemon"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

fn open(addr: impl ToSocketAddrs) -> Result<TcpStream, ClientError> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| ClientError::Protocol("address resolves to nothing".into()))?;
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

/// Submit `spec` to the daemon at `addr`; returns the admitted job id.
pub fn submit(addr: impl ToSocketAddrs, spec: &JobSpec) -> Result<JobId, ClientError> {
    let mut stream = open(addr)?;
    write_frame(&mut stream, &Frame::Submit { spec: spec.clone() })?;
    match read_frame(&mut stream, Duration::from_secs(10))? {
        Some(Frame::Accepted { job }) => Ok(job),
        Some(Frame::Rejected { reason }) => Err(ClientError::Rejected(reason)),
        Some(other) => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        None => Err(ClientError::TimedOut),
    }
}

/// Ask the daemon at `addr` where job `job` stands.
pub fn status(addr: impl ToSocketAddrs, job: JobId) -> Result<JobStatus, ClientError> {
    let mut stream = open(addr)?;
    write_frame(&mut stream, &Frame::Query { job })?;
    match read_frame(&mut stream, Duration::from_secs(10))? {
        Some(Frame::Status { status }) => Ok(status),
        Some(Frame::Rejected { reason }) => Err(ClientError::Rejected(reason)),
        Some(other) => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        None => Err(ClientError::TimedOut),
    }
}

/// Attach to job `job` on the daemon at `addr`: progress lines stream
/// into `on_event` until the job completes (returning its result) or
/// fails (a typed [`ClientError::Rejected`]). Gives up after `patience`
/// with no terminal answer.
pub fn attach(
    addr: impl ToSocketAddrs,
    job: JobId,
    patience: Duration,
    on_event: &mut dyn FnMut(&str),
) -> Result<JobResult, ClientError> {
    let mut stream = open(addr)?;
    write_frame(&mut stream, &Frame::Attach { job })?;
    let deadline = Instant::now() + patience;
    loop {
        match read_frame(&mut stream, Duration::from_millis(500))? {
            Some(Frame::JobEvent { text, .. }) => on_event(&text),
            Some(Frame::Done { result, .. }) => return Ok(result),
            Some(Frame::Rejected { reason }) => return Err(ClientError::Rejected(reason)),
            Some(other) => return Err(ClientError::Protocol(format!("unexpected {other:?}"))),
            None => {
                if Instant::now() >= deadline {
                    return Err(ClientError::TimedOut);
                }
            }
        }
    }
}
