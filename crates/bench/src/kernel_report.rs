//! Benchmark-gated kernel performance report.
//!
//! The `kernel_report` binary times the gated likelihood workloads under
//! both [`fdml_likelihood::KernelMode`]s and emits `BENCH_kernels.json`:
//! mean wall time, pattern throughput, and the optimized-over-reference
//! speedup per workload. The reference kernels reproduce the seed
//! implementation (including its per-call allocations), so the speedup
//! column is an honest before/after for the kernel rewrite. CI runs the
//! binary with `--quick` as a smoke test; the checked-in report comes from
//! a full run.

use serde::Serialize;
use std::time::Instant;

/// One kernel mode's timing for one workload.
#[derive(Debug, Clone, Serialize)]
pub struct ModeStats {
    /// Timed samples (after one untimed warmup).
    pub samples: usize,
    /// Mean wall time of one run, seconds.
    pub mean_seconds: f64,
    /// Fastest observed run, seconds.
    pub min_seconds: f64,
    /// Per-pattern kernel operations one run performs
    /// (`WorkCounter::total_pattern_updates`; identical across modes).
    pub pattern_updates: u64,
    /// `pattern_updates / mean_seconds`.
    pub patterns_per_sec: f64,
    /// `mean_seconds / pattern_updates`, in nanoseconds.
    pub ns_per_pattern: f64,
}

/// One workload's optimized-vs-reference comparison.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadReport {
    /// Workload id, matching the Criterion bench names
    /// (e.g. `tree_evaluate/optimize/101`).
    pub name: String,
    /// Timing under the optimized kernels (the engine default).
    pub optimized: ModeStats,
    /// Timing under the scalar reference kernels (seed behavior).
    pub reference: ModeStats,
    /// `reference.mean_seconds / optimized.mean_seconds`.
    pub speedup: f64,
}

/// One intra-rank scaling row: the same optimized workload run serially
/// and with `threads` pattern-block threads.
///
/// The gated number is `modeled_speedup` — the critical-path speedup of
/// the round-robin block→thread assignment (heaviest thread's pattern
/// load versus the whole alignment), a deterministic function of the
/// pattern count and [`fdml_likelihood::PAR_BLOCK`]. Wall speedup is
/// reported alongside but only meaningful when the host actually has
/// `threads` cores; a one-core CI box oversubscribes and measures noise.
#[derive(Debug, Clone, Serialize)]
pub struct IntraScalingReport {
    /// Workload id (e.g. `intra_scaling/evaluate_by_sites/4`).
    pub name: String,
    /// Pattern-block threads in the threaded run.
    pub threads: usize,
    /// Hardware threads the measuring host had.
    pub host_cores: usize,
    /// Compressed pattern count of the workload's alignment.
    pub patterns: usize,
    /// Critical-path speedup of the block schedule at `threads` threads.
    pub modeled_speedup: f64,
    /// Measured wall speedup, `serial.mean / threaded.mean`.
    pub wall_speedup: f64,
    /// Timing at one thread (the serial fold).
    pub serial: ModeStats,
    /// Timing at `threads` threads.
    pub threaded: ModeStats,
}

/// Cost of the write-ahead round log on the golden search: the same
/// stepwise search timed bare and with a [`fdml_core::wal`] session
/// appending (and `fdatasync`ing) every committed round, including log
/// creation and retirement. The gated number is the min-of-N wall ratio —
/// the WAL's floor cost with scheduler noise squeezed out.
#[derive(Debug, Clone, Serialize)]
pub struct WalOverheadReport {
    /// Workload id (e.g. `wal_overhead/golden_search/16`).
    pub name: String,
    /// Timed samples per arm (after one untimed warmup each).
    pub samples: usize,
    /// Committed rounds logged per search (one durable append each).
    pub rounds: u64,
    /// Final log size in bytes, magic header included.
    pub wal_bytes: u64,
    /// Mean wall time of the bare search, seconds.
    pub baseline_mean_seconds: f64,
    /// Fastest bare run, seconds.
    pub baseline_min_seconds: f64,
    /// Mean wall time with the WAL attached, seconds.
    pub wal_mean_seconds: f64,
    /// Fastest WAL run, seconds.
    pub wal_min_seconds: f64,
    /// `wal_min_seconds / baseline_min_seconds - 1` — the gated fraction.
    pub overhead: f64,
}

/// The whole report, serialized to `BENCH_kernels.json`.
#[derive(Debug, Clone, Serialize)]
pub struct KernelReport {
    /// Tool that wrote the file.
    pub generated_by: String,
    /// True when produced by the `--quick` CI smoke configuration
    /// (smaller datasets, fewer samples — not for the gate).
    pub quick: bool,
    /// Per-workload comparisons.
    pub workloads: Vec<WorkloadReport>,
    /// Intra-rank thread-scaling rows (empty before the rayon kernels).
    #[serde(default)]
    pub intra_scaling: Vec<IntraScalingReport>,
    /// Write-ahead-log overhead rows (empty before the WAL).
    #[serde(default)]
    pub wal_overhead: Vec<WalOverheadReport>,
}

impl KernelReport {
    /// Pretty JSON for the report file.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Times `run` (`samples` timed passes after one untimed warmup) and
/// derives throughput stats; `pattern_updates` is the per-run operation
/// count the workload reports.
pub fn measure(samples: usize, pattern_updates: u64, mut run: impl FnMut()) -> ModeStats {
    run(); // warmup: page in CLVs, warm caches, trigger lazy allocation
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        run();
        let dt = start.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / samples as f64;
    ModeStats {
        samples,
        mean_seconds: mean,
        min_seconds: min,
        pattern_updates,
        patterns_per_sec: pattern_updates as f64 / mean,
        ns_per_pattern: mean * 1e9 / pattern_updates.max(1) as f64,
    }
}

/// Combines two mode timings into a workload row.
pub fn compare(name: &str, optimized: ModeStats, reference: ModeStats) -> WorkloadReport {
    let speedup = reference.mean_seconds / optimized.mean_seconds;
    WorkloadReport {
        name: name.to_string(),
        optimized,
        reference,
        speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_and_rates() {
        let mut calls = 0u32;
        let stats = measure(5, 1000, || calls += 1);
        assert_eq!(calls, 6, "warmup + samples");
        assert_eq!(stats.samples, 5);
        assert!(stats.mean_seconds >= 0.0);
        assert!(stats.min_seconds <= stats.mean_seconds * (1.0 + 1e-9));
        assert!(stats.patterns_per_sec > 0.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let s = |mean: f64| ModeStats {
            samples: 3,
            mean_seconds: mean,
            min_seconds: mean,
            pattern_updates: 100,
            patterns_per_sec: 100.0 / mean,
            ns_per_pattern: mean * 1e9 / 100.0,
        };
        let report = KernelReport {
            generated_by: "fdml-bench kernel_report".into(),
            quick: false,
            workloads: vec![compare("w", s(1.0), s(2.0))],
            wal_overhead: vec![WalOverheadReport {
                name: "wal_overhead/golden_search/16".into(),
                samples: 3,
                rounds: 20,
                wal_bytes: 4000,
                baseline_mean_seconds: 1.0,
                baseline_min_seconds: 0.9,
                wal_mean_seconds: 1.01,
                wal_min_seconds: 0.91,
                overhead: 0.91 / 0.9 - 1.0,
            }],
            intra_scaling: vec![IntraScalingReport {
                name: "intra_scaling/w/4".into(),
                threads: 4,
                host_cores: 1,
                patterns: 1500,
                modeled_speedup: fdml_likelihood::par::modeled_speedup(1500, 4),
                wall_speedup: 1.0,
                serial: s(2.0),
                threaded: s(2.0),
            }],
        };
        assert!((report.workloads[0].speedup - 2.0).abs() < 1e-12);
        let json = report.to_json();
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"tree_evaluate\"") || json.contains("\"w\""));
        assert!(json.contains("\"intra_scaling\""));
        assert!(json.contains("\"modeled_speedup\""));
        assert!(json.contains("\"wal_overhead\""));
        assert!(json.contains("\"overhead\""));
    }
}
