//! §1.1 of the paper: the number of unrooted bifurcating trees.
//!
//! "For 50 taxa the number of possible trees is 2.8 x 10^74; for 100 taxa,
//! 1.7 x 10^182; and for 150 taxa, 4.2 x 10^301."

use fdml_phylo::counting::{
    log10_num_unrooted_trees, num_unrooted_trees_exact, num_unrooted_trees_scientific,
};

fn main() {
    println!("Unrooted bifurcating tree counts, B(n) = (2n-5)!! — paper §1.1\n");
    println!("{:>6} {:>14} {:>18}", "taxa", "log10 B(n)", "B(n)");
    for n in [4usize, 5, 6, 7, 8, 10, 20, 50, 100, 150] {
        let (m, e) = num_unrooted_trees_scientific(n);
        let rendered = if n <= 20 {
            num_unrooted_trees_exact(n)
        } else {
            format!("{m:.1}e{e}")
        };
        println!(
            "{:>6} {:>14.2} {:>18}",
            n,
            log10_num_unrooted_trees(n),
            rendered
        );
    }
    println!("\npaper quotes: 50 → 2.8e74, 100 → 1.7e182, 150 → 4.2e301");
}
