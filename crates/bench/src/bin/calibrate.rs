//! Measure nanoseconds per work unit on this host and print the implied
//! simulated Power3+ rate (see EXPERIMENTS.md, calibration).

use fdml_bench::calibrate::{calibrate_host, HOST_SPEEDUP_VS_POWER3};
use fdml_simsp::CostModel;

fn main() {
    let c = calibrate_host();
    println!("host calibration:");
    println!("  work units measured : {}", c.work_units);
    println!("  wall seconds        : {:.3}", c.wall_seconds);
    println!("  ns per work unit    : {:.2}", c.ns_per_work_unit);
    let model = CostModel::from_host_calibration(c.ns_per_work_unit, HOST_SPEEDUP_VS_POWER3);
    println!("\nimplied Power3+ model (host ≈ {HOST_SPEEDUP_VS_POWER3}× a 375 MHz Power3+):");
    println!(
        "  seconds per work unit (simulated) : {:.3e}",
        model.seconds_per_work_unit
    );
    println!(
        "  default model constant            : {:.3e}",
        CostModel::power3_sp().seconds_per_work_unit
    );
}
