//! Supporting measurement: *real* (not simulated) parallel speedup of the
//! threaded runtime on this host, up to the available cores. The workers do
//! full per-tree evaluations exactly like the paper's MPI workers.
//!
//! Usage: measured_speedup [--taxa 24] [--sites 400] [--radius 2] [--max-workers 8]

use fdml_bench::Args;
use fdml_core::config::SearchConfig;
use fdml_core::job::ResolvedJob;
use fdml_core::runner::{parallel_search, serial_search, RunOptions};
use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let taxa: usize = args.get("taxa", 24);
    let sites: usize = args.get("sites", 400);
    let radius: usize = args.get("radius", 2);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let max_workers: usize = args.get("max-workers", host_cores.saturating_sub(1).clamp(1, 8));
    let tree = yule_tree(taxa, 0.08, 99);
    let alignment = evolve(&tree, sites, &EvolutionConfig::default(), 7, "taxon");
    let config = SearchConfig {
        jumble_seed: 1,
        rearrange_radius: radius,
        final_radius: radius,
        ..SearchConfig::default()
    };
    println!("Measured threaded speedup, {taxa} taxa × {sites} sites, radius {radius}");
    println!("(host has {host_cores} cores; 3 ranks are control processes)\n");
    let t0 = Instant::now();
    let serial = serial_search(&alignment, &config).expect("serial search");
    let serial_time = t0.elapsed().as_secs_f64();
    println!(
        "{:>8} {:>12} {:>10} {:>14}",
        "workers", "seconds", "speedup", "lnL"
    );
    println!(
        "{:>8} {:>12.2} {:>10.2} {:>14.3}  (serial)",
        1, serial_time, 1.0, serial.ln_likelihood
    );
    let mut workers = 1usize;
    while workers <= max_workers {
        let ranks = workers + 3;
        let t0 = Instant::now();
        let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1)
            .expect("resolve benchmark job");
        let outcome = parallel_search(&job, ranks, RunOptions::default()).expect("parallel search");
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "{:>8} {:>12.2} {:>10.2} {:>14.3}  (ranks={ranks}, util cv={:.2})",
            workers,
            wall,
            serial_time / wall,
            outcome.result.ln_likelihood,
            outcome.monitor.load_imbalance()
        );
        workers *= 2;
    }
}
