//! **Figure 4**: speedup ratio versus processor count against the
//! perfect-scaling line, for the three datasets.
//!
//! Usage: fig4_speedup [--scale 0.25] [--jumbles 3] [--radius 5] [--full]

use fdml_bench::{load_or_build_traces, Args, TraceRequest};
use fdml_datagen::datasets::PaperDataset;
use fdml_simsp::{scaling_table, CostModel};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let jumbles: usize = args.get("jumbles", 3);
    let radius: usize = args.get("radius", 5);
    let processors = [1usize, 4, 8, 16, 32, 64];
    let cost = CostModel::power3_sp();
    println!("Figure 4 — speedup vs processors (perfect scaling = processor count)");
    println!("settings: site scale {scale}, {jumbles} jumbles, radius {radius}\n");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12}",
        "procs", "perfect", "50 taxa", "101 taxa", "150 taxa"
    );
    let mut per_dataset = Vec::new();
    for d in PaperDataset::all() {
        let mut req = TraceRequest::paper(d, scale, jumbles);
        req.radius = radius;
        req.full_evaluation = args.has_flag("full");
        let traces = load_or_build_traces(&req);
        per_dataset.push(scaling_table(&traces, &processors, &cost));
    }
    for (i, &p) in processors.iter().enumerate() {
        println!(
            "{:>6} {:>8} {:>12.2} {:>12.2} {:>12.2}",
            p,
            p,
            per_dataset[0][i].mean_speedup,
            per_dataset[1][i].mean_speedup,
            per_dataset[2][i].mean_speedup
        );
    }
    // Relative speedup 16 → 64, the paper's "quite good" regime.
    println!("\nrelative speedup 16→64 processors (perfect would be 61/13 = 4.69×):");
    for (name, rows) in ["50", "101", "150"].iter().zip(&per_dataset) {
        let s16 = rows
            .iter()
            .find(|r| r.processors == 16)
            .unwrap()
            .mean_speedup;
        let s64 = rows
            .iter()
            .find(|r| r.processors == 64)
            .unwrap()
            .mean_speedup;
        println!("  {name:>4} taxa: {:.2}×", s64 / s16);
    }
}
