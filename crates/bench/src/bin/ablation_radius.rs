//! §3.2 ablation: "Setting the number of vertices crossed to one …
//! decreases the efficiency of scalability because there is a smaller
//! total amount of work done between synchronizations. Increasing the
//! number of vertices to be crossed would improve the scaling behavior."
//!
//! Usage: ablation_radius [--scale 0.25] [--jumbles 2]

use fdml_bench::{load_or_build_traces, Args, TraceRequest};
use fdml_datagen::datasets::PaperDataset;
use fdml_simsp::{scaling_table, CostModel};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let jumbles: usize = args.get("jumbles", 2);
    let cost = CostModel::power3_sp();
    let processors = [1usize, 16, 64];
    println!("Rearrangement-radius ablation on the 50-taxon dataset (§3.2)\n");
    println!(
        "{:>7} {:>16} {:>14} {:>14} {:>12}",
        "radius", "cands/round", "speedup@16", "speedup@64", "util@64"
    );
    for radius in [1usize, 2, 5] {
        let mut req = TraceRequest::paper(PaperDataset::Taxa50, scale, jumbles);
        req.radius = radius;
        let traces = load_or_build_traces(&req);
        let mean_round: f64 = traces
            .iter()
            .map(|t| t.total_candidates() as f64 / t.rounds.len() as f64)
            .sum::<f64>()
            / traces.len() as f64;
        let rows = scaling_table(&traces, &processors, &cost);
        let s16 = rows.iter().find(|r| r.processors == 16).unwrap();
        let s64 = rows.iter().find(|r| r.processors == 64).unwrap();
        println!(
            "{:>7} {:>16.1} {:>14.2} {:>14.2} {:>12.3}",
            radius, mean_round, s16.mean_speedup, s64.mean_speedup, s64.mean_utilization
        );
    }
    println!("\nexpected shape: larger radius → bigger rounds → better speedup at 64.");
}
