//! §3.2's forward prediction: "the scalability will likely fall off at
//! between 100 and 200 processors, since the number of processors will
//! equal or exceed the number of trees analyzed in the taxon addition step
//! for much of the execution of the program."
//!
//! Usage: falloff_prediction [--scale 0.25] [--jumbles 2] [--dataset 150]

use fdml_bench::{load_or_build_traces, Args, TraceRequest};
use fdml_datagen::datasets::PaperDataset;
use fdml_simsp::{scaling_table, CostModel};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let jumbles: usize = args.get("jumbles", 2);
    let which = args.get_str("dataset", "150");
    let dataset = match which.as_str() {
        "50" => PaperDataset::Taxa50,
        "101" => PaperDataset::Taxa101,
        _ => PaperDataset::Taxa150,
    };
    let req = TraceRequest::paper(dataset, scale, jumbles);
    let traces = load_or_build_traces(&req);
    // Round-size distribution: the paper's §3.2 argument is that scalability
    // is limited by the taxon-addition rounds, whose sizes are fixed at
    // 2i-5 ≤ 2n-5; rearrangement rounds are far larger under radius 5.
    let mut add_sizes: Vec<usize> = Vec::new();
    let mut rearr_sizes: Vec<usize> = Vec::new();
    for t in &traces {
        for r in &t.rounds {
            match r.kind {
                fdml_core::trace::RoundKind::TaxonAddition => {
                    add_sizes.push(r.candidate_work.len())
                }
                _ => rearr_sizes.push(r.candidate_work.len()),
            }
        }
    }
    let stats = |v: &mut Vec<usize>| -> (usize, usize, usize) {
        v.sort_unstable();
        (v[0], v[v.len() / 2], v[v.len() - 1])
    };
    let (a_min, a_med, a_max) = stats(&mut add_sizes);
    let (r_min, r_med, r_max) = stats(&mut rearr_sizes);
    println!(
        "round sizes — addition: min {a_min} / median {a_med} / max {a_max}; \
rearrangement: min {r_min} / median {r_med} / max {r_max}\n"
    );
    let processors = [1usize, 16, 32, 64, 100, 128, 160, 200, 256];
    let cost = CostModel::power3_sp();
    let rows = scaling_table(&traces, &processors, &cost);
    println!(
        "Scalability falloff prediction, {} (§3.2)\n",
        dataset.label()
    );
    println!(
        "{:>7} {:>12} {:>14} {:>16}",
        "procs", "speedup", "utilization", "marginal gain"
    );
    let mut prev: Option<f64> = None;
    for r in rows.iter().skip(1) {
        let marginal = prev.map(|p| r.mean_speedup / p).unwrap_or(f64::NAN);
        println!(
            "{:>7} {:>12.2} {:>14.3} {:>16.3}",
            r.processors, r.mean_speedup, r.mean_utilization, marginal
        );
        prev = Some(r.mean_speedup);
    }
    println!("\nexpected shape: marginal gains collapse toward 1.0 past 100–200 processors,");
    println!("where workers outnumber the trees of the taxon-addition rounds.");
}
