//! Scaling study past the paper's 64-processor ceiling: the two-level
//! foreman tree with `fdml-wire` binary batching versus the flat
//! single-foreman, per-task-JSON design, from 4 to 4096 simulated ranks.
//! Writes `BENCH_scaling.json` — the extension of the paper's Figure 3/4
//! curves into territory the RS/6000 SP never reached.
//!
//! Usage: scaling_report [--quick] [--rounds N] [--round-size N] [--out PATH]
//!
//! Two gates are enforced (the process exits non-zero if either fails):
//!
//! 1. **Byte-identical at scale**: at 1024 ranks the hierarchical replay
//!    must complete exactly the task set the flat foreman completes, with
//!    the same total compute — the topology must be invisible in the
//!    result, mirroring the runtime's `cmp`-level guarantees.
//! 2. **Efficiency held**: per-rank efficiency (speedup ÷ processors) of
//!    the hierarchical topology at 1024 ranks must be within 20% of its
//!    64-rank figure, and at 4096 ranks the tree must beat the flat
//!    JSON-era design outright — master dispatch is no longer the
//!    bottleneck.

use fdml_bench::Args;
use fdml_core::trace::{RoundKind, RoundRecord, SearchTrace};
use fdml_obs::{Event, MemorySink, Obs};
use fdml_simsp::{
    binary_edit_task_bytes, simulate_trace, simulate_trace_hierarchical,
    simulate_trace_hierarchical_observed, simulate_trace_observed, CostModel, HierConfig,
    SimConfig, SimReport,
};
use serde::Serialize;
use std::collections::BTreeSet;

/// One scaling-curve point.
#[derive(Serialize)]
struct ScaleRow {
    topology: String,
    processors: usize,
    regions: usize,
    workers: usize,
    wall_seconds: f64,
    speedup: f64,
    /// Per-rank efficiency: speedup ÷ processors.
    efficiency: f64,
    utilization: f64,
}

#[derive(Serialize)]
struct EfficiencyGate {
    efficiency_64: f64,
    efficiency_1024: f64,
    ratio: f64,
    threshold: f64,
    pass: bool,
}

#[derive(Serialize)]
struct DispatchGate {
    flat_json_wall_4096: f64,
    hierarchical_wall_4096: f64,
    pass: bool,
}

#[derive(Serialize)]
struct ScaleSmoke {
    processors: usize,
    tasks: usize,
    identical_task_set: bool,
    identical_busy_seconds: bool,
    identical_final_ln_likelihood: bool,
}

#[derive(Serialize)]
struct ScalingReport {
    /// Measured wire bytes of one binary `TreeEditTask` frame.
    task_frame_bytes: usize,
    rounds: usize,
    round_size: usize,
    rows: Vec<ScaleRow>,
    efficiency_gate: EfficiencyGate,
    dispatch_gate: DispatchGate,
    smoke: ScaleSmoke,
}

/// Deterministic synthetic trace of a large analysis — rounds wide enough
/// (thousands of candidates) that a 4096-rank fleet has work for everyone,
/// with per-candidate variance shaped like the real searches.
fn scale_trace(rounds: usize, round_size: usize) -> SearchTrace {
    let rs = (0..rounds)
        .map(|r| RoundRecord {
            kind: RoundKind::Rearrangement,
            taxa_in_tree: 200,
            candidate_work: (0..round_size)
                .map(|j| 2_000_000 + ((r * 131 + j * 977) % 1_500_000) as u64)
                .collect(),
            master_work: 300_000,
            improved: true,
        })
        .collect();
    SearchTrace {
        dataset: "scale-synthetic".into(),
        num_taxa: 200,
        num_sites: 2000,
        num_patterns: 900,
        jumble_seed: 1,
        full_evaluation: true,
        rounds: rs,
        final_ln_likelihood: -250_000.0,
        final_newick: String::new(),
    }
}

/// Regions for a processor count: sized so no regional foreman owns more
/// than ~64 workers — the per-coordinator ceiling the paper established.
fn regions_for(processors: usize) -> usize {
    (processors - 3).div_ceil(65)
}

/// The flat design's cost at scale: the single foreman's link carries
/// every per-task JSON frame, so each dispatch occupies it for the frame's
/// wire time on top of the queueing overhead.
fn flat_json_cost() -> CostModel {
    let base = CostModel::power3_sp();
    let frame = base.tree_message_bytes(200);
    CostModel {
        foreman_overhead: base.foreman_overhead + frame as f64 / base.bandwidth,
        ..base
    }
}

fn row(topology: &str, regions: usize, r: &SimReport) -> ScaleRow {
    let workers = r.processors - 3 - regions;
    ScaleRow {
        topology: topology.into(),
        processors: r.processors,
        regions,
        workers,
        wall_seconds: r.wall_seconds,
        speedup: r.speedup(),
        efficiency: r.speedup() / r.processors as f64,
        utilization: r.utilization,
    }
}

/// Completed task ids and final likelihood from an event log.
fn outcome(events: &[fdml_obs::Record]) -> (BTreeSet<u64>, f64) {
    let mut tasks = BTreeSet::new();
    let mut lnl = f64::NAN;
    for rec in events {
        match rec.event {
            Event::TaskCompleted { task, .. } => {
                tasks.insert(task);
            }
            Event::RunFinished { ln_likelihood } => lnl = ln_likelihood,
            _ => {}
        }
    }
    (tasks, lnl)
}

fn main() {
    let args = Args::from_env();
    let quick = args.has_flag("quick");
    let rounds: usize = args.get("rounds", if quick { 3 } else { 12 });
    let round_size: usize = args.get("round-size", 8192);
    let out = args.get_str("out", "BENCH_scaling.json");
    let trace = scale_trace(rounds, round_size);
    let cost = CostModel::power3_sp();
    let cfg = |p: usize, c: &CostModel| SimConfig {
        processors: p,
        cost: c.clone(),
    };

    println!("Scaling past the paper's ceiling — {rounds} rounds × {round_size} candidates");
    println!(
        "binary task frame: {} B (vs ~{} B JSON whole-tree)\n",
        binary_edit_task_bytes(),
        cost.tree_message_bytes(200)
    );
    println!("topology      procs  regions      seconds    speedup  efficiency");
    let mut rows = Vec::new();
    let mut emit = |r: ScaleRow| {
        println!(
            "{:<12} {:>6} {:>8} {:>12.1} {:>10.1} {:>11.3}",
            r.topology, r.processors, r.regions, r.wall_seconds, r.speedup, r.efficiency
        );
        rows.push(r);
    };

    // The paper's range, flat topology, JSON-era frames (the baseline
    // curve of Figures 3/4).
    let json_cost = flat_json_cost();
    for p in [4usize, 8, 16, 32, 64] {
        emit(row(
            "flat-json",
            0,
            &simulate_trace(&trace, &cfg(p, &json_cost)),
        ));
    }
    // Past the ceiling: flat-json hits the dispatch wall...
    for p in [256usize, 1024, 4096] {
        emit(row(
            "flat-json",
            0,
            &simulate_trace(&trace, &cfg(p, &json_cost)),
        ));
    }
    // ...the foreman tree with binary batched frames does not.
    for p in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let regions = regions_for(p);
        let r = simulate_trace_hierarchical(&trace, &cfg(p, &cost), &HierConfig::binary(regions));
        emit(row("hierarchical", regions, &r));
    }
    // Intra-rank threading: every worker rank drives 4 pattern-block
    // threads, so the machine's effective reach becomes ranks × cores.
    // Worker compute shrinks by the modeled critical-path speedup of the
    // block schedule (not by 4 — the trace's 900 patterns cap it).
    let intra_cost = CostModel {
        intra_threads: 4,
        ..cost.clone()
    };
    println!(
        "  (intra4: {:.2}x modeled per-rank speedup on {} patterns)",
        intra_cost.intra_speedup(trace.num_patterns),
        trace.num_patterns
    );
    for p in [64usize, 256, 1024, 4096] {
        let regions = regions_for(p);
        let r =
            simulate_trace_hierarchical(&trace, &cfg(p, &intra_cost), &HierConfig::binary(regions));
        emit(row("hier-intra4", regions, &r));
    }

    // Gate 1: byte-identical replay at 1024 ranks.
    let flat_mem = MemorySink::new();
    let flat = simulate_trace_observed(
        &trace,
        &cfg(1024, &cost),
        &Obs::new(Box::new(flat_mem.clone())),
    );
    let hier_mem = MemorySink::new();
    let hier = simulate_trace_hierarchical_observed(
        &trace,
        &cfg(1024, &cost),
        &HierConfig::binary(regions_for(1024)),
        &Obs::new(Box::new(hier_mem.clone())),
    );
    let (flat_tasks, flat_lnl) = outcome(&flat_mem.take());
    let (hier_tasks, hier_lnl) = outcome(&hier_mem.take());
    let smoke = ScaleSmoke {
        processors: 1024,
        tasks: hier_tasks.len(),
        identical_task_set: hier_tasks == flat_tasks && hier_tasks.len() == rounds * round_size,
        identical_busy_seconds: (hier.worker_busy_seconds - flat.worker_busy_seconds).abs() < 1e-6,
        identical_final_ln_likelihood: hier_lnl == flat_lnl,
    };
    println!(
        "\nscale smoke @1024 ranks: {} tasks, task set identical: {}, compute identical: {}",
        smoke.tasks, smoke.identical_task_set, smoke.identical_busy_seconds
    );

    // Gate 2: efficiency held from 64 to 1024 ranks on the hierarchical
    // curve, and the tree beats flat-json outright at 4096.
    let eff = |p: usize| {
        rows.iter()
            .find(|r| r.topology == "hierarchical" && r.processors == p)
            .expect("hierarchical row present")
            .efficiency
    };
    let wall = |topo: &str, p: usize| {
        rows.iter()
            .find(|r| r.topology == topo && r.processors == p)
            .expect("row present")
            .wall_seconds
    };
    let efficiency_gate = EfficiencyGate {
        efficiency_64: eff(64),
        efficiency_1024: eff(1024),
        ratio: eff(1024) / eff(64),
        threshold: 0.8,
        pass: eff(1024) >= 0.8 * eff(64),
    };
    let dispatch_gate = DispatchGate {
        flat_json_wall_4096: wall("flat-json", 4096),
        hierarchical_wall_4096: wall("hierarchical", 4096),
        pass: wall("hierarchical", 4096) < wall("flat-json", 4096),
    };
    println!(
        "efficiency: 64 ranks {:.3} → 1024 ranks {:.3} (ratio {:.3}, gate ≥ 0.8)",
        efficiency_gate.efficiency_64, efficiency_gate.efficiency_1024, efficiency_gate.ratio
    );
    println!(
        "4096 ranks: hierarchical {:.1}s vs flat-json {:.1}s",
        dispatch_gate.hierarchical_wall_4096, dispatch_gate.flat_json_wall_4096
    );

    let report = ScalingReport {
        task_frame_bytes: binary_edit_task_bytes(),
        rounds,
        round_size,
        rows,
        efficiency_gate,
        dispatch_gate,
        smoke,
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");

    assert!(
        report.smoke.identical_task_set
            && report.smoke.identical_busy_seconds
            && report.smoke.identical_final_ln_likelihood,
        "hierarchical replay diverged from flat at 1024 ranks"
    );
    assert!(
        report.efficiency_gate.pass,
        "per-rank efficiency at 1024 ranks fell more than 20% below the 64-rank figure: {:.3} vs {:.3}",
        report.efficiency_gate.efficiency_1024, report.efficiency_gate.efficiency_64
    );
    assert!(
        report.dispatch_gate.pass,
        "flat-json outran the foreman tree at 4096 ranks"
    );
}
