//! Pre-generate (and cache) the simulator input traces.
//!
//! Usage: trace_gen [--dataset 50|101|150|all] [--scale 0.25] [--jumbles 10]
//!                  [--radius 5] [--full]

use fdml_bench::{load_or_build_traces, Args, TraceRequest};
use fdml_datagen::datasets::PaperDataset;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let jumbles: usize = args.get("jumbles", 10);
    let radius: usize = args.get("radius", 5);
    let which = args.get_str("dataset", "all");
    let datasets: Vec<PaperDataset> = match which.as_str() {
        "50" => vec![PaperDataset::Taxa50],
        "101" => vec![PaperDataset::Taxa101],
        "150" => vec![PaperDataset::Taxa150],
        _ => PaperDataset::all().to_vec(),
    };
    for d in datasets {
        let mut req = TraceRequest::paper(d, scale, jumbles);
        req.radius = radius;
        req.full_evaluation = args.has_flag("full");
        let traces = load_or_build_traces(&req);
        let total: usize = traces.iter().map(|t| t.total_candidates()).sum();
        println!(
            "{}: {} traces, {} candidate evaluations total",
            d.label(),
            traces.len(),
            total
        );
    }
}
