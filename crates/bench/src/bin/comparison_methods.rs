//! Method-class scaling comparison — the §3.2 context: "Snell et al.
//! discussed parallel implementation of a parsimony method … Parsimony
//! methods are less computationally complex than maximum likelihood
//! methods. The implementation of Snell et al. did not seem to scale
//! beyond eight processors."
//!
//! The same master/foreman/worker structure is simulated with two per-tree
//! costs: the ML evaluation (measured trace) and the Fitch parsimony
//! evaluation (deterministic integer work, ~3 orders of magnitude
//! cheaper). With cheap tasks, dispatch serialization and message overhead
//! dominate and the speedup curve flattens early — reproducing *why* the
//! parsimony code stopped scaling while fastDNAml kept going.
//!
//! Usage: comparison_methods [--scale 0.25] [--jumbles 2]

use fdml_bench::{load_or_build_traces, Args, TraceRequest};
use fdml_core::trace::SearchTrace;
use fdml_datagen::datasets::PaperDataset;
use fdml_simsp::{simulate_trace, CostModel, SimConfig};

/// Rewrite a measured ML trace as if each candidate were scored by Fitch
/// parsimony instead: per tree, one pass of (taxa−1)·patterns set
/// operations (~4 integer ops each ≈ 0.1 work units per pattern-node).
fn parsimony_trace(ml: &SearchTrace) -> SearchTrace {
    let mut t = ml.clone();
    t.dataset = format!("{}-parsimony", ml.dataset);
    t.full_evaluation = true; // no ML floor: the recorded units are total
    for round in &mut t.rounds {
        let fitch_ops = (round.taxa_in_tree.saturating_sub(1)) as u64 * ml.num_patterns as u64;
        let units = (fitch_ops / 10).max(1);
        for w in &mut round.candidate_work {
            *w = units;
        }
        round.master_work /= 1000;
    }
    t
}

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let jumbles: usize = args.get("jumbles", 2);
    let cost = CostModel::power3_sp();
    let req = TraceRequest::paper(PaperDataset::Taxa50, scale, jumbles);
    let ml_traces = load_or_build_traces(&req);
    println!("Scaling of the same dispatch structure under two per-tree costs");
    println!("(50-taxon dataset, radius 5; parsimony = Fitch, ML = measured)\n");
    println!(
        "{:>6} {:>14} {:>18}",
        "procs", "ML speedup", "parsimony speedup"
    );
    for p in [4usize, 8, 16, 32, 64] {
        let cfg = SimConfig {
            processors: p,
            cost: cost.clone(),
        };
        let mut ml = 0.0;
        let mut pars = 0.0;
        for t in &ml_traces {
            ml += simulate_trace(t, &cfg).speedup();
            pars += simulate_trace(&parsimony_trace(t), &cfg).speedup();
        }
        println!(
            "{:>6} {:>14.2} {:>18.2}",
            p,
            ml / ml_traces.len() as f64,
            pars / ml_traces.len() as f64
        );
    }
    println!("\nexpected shape: parsimony's cheap evaluations starve on dispatch and");
    println!("message overhead and its curve flattens within the first ~8–16");
    println!("processors (Snell et al.'s observation); ML keeps near-linear to 64.");
}
