//! Wire-codec study: bytes per dispatched task and codec throughput for
//! the three eras of the dispatch path — per-task JSON whole trees (the
//! paper's design), per-task binary edits (`fdml-wire`), and lease-batched
//! binary edits (the hierarchical scheduler's unit). Writes
//! `BENCH_wire.json`.
//!
//! Usage: wire_report [--quick] [--taxa N] [--tasks N] [--out PATH]
//!
//! One gate is enforced (the process exits non-zero if it fails): the
//! binary edit-task frame must carry a dispatch in at least **5× fewer
//! bytes** than the JSON whole-tree frame it replaces.

use fdml_bench::Args;
use fdml_comm::{Message, TreeEdit};
use fdml_wire::{decode_auto, encode_message, WireFormat};
use serde::Serialize;
use std::time::Instant;

/// One codec × payload row of the study.
#[derive(Serialize)]
struct WireRow {
    /// What travelled: `json-tree`, `json-edit`, `binary-edit`, or
    /// `binary-batch64`.
    scheme: String,
    /// Frames put on the wire for the whole round.
    frames: usize,
    /// Total wire bytes for the round.
    total_bytes: usize,
    /// Wire bytes per dispatched task.
    bytes_per_task: f64,
    /// Encode throughput, tasks per second.
    encode_tasks_per_sec: f64,
    /// Decode throughput, tasks per second.
    decode_tasks_per_sec: f64,
}

#[derive(Serialize)]
struct ReductionGate {
    json_tree_bytes_per_task: f64,
    binary_edit_bytes_per_task: f64,
    reduction: f64,
    threshold: f64,
    pass: bool,
}

#[derive(Serialize)]
struct WireReport {
    taxa: usize,
    tasks: usize,
    rows: Vec<WireRow>,
    gate: ReductionGate,
}

/// A Newick caterpillar with `taxa` leaves and realistic branch lengths —
/// the payload the JSON era shipped once per candidate.
fn caterpillar(taxa: usize) -> String {
    let mut s = String::from("(t0:0.0123456,t1:0.0234567");
    for i in 2..taxa {
        s = format!("({s}:0.0{}1234,t{i}:0.0{}4321", i % 97, (i * 7) % 97);
    }
    s.push_str(");");
    s
}

/// The candidate edits of one dispatch round, deterministic in `i`.
fn round_edits(tasks: usize, taxa: usize) -> Vec<(u64, TreeEdit)> {
    let nodes = (2 * taxa - 2) as u32;
    (0..tasks)
        .map(|i| {
            let edit = TreeEdit::Regraft {
                root: (i as u32 * 7) % nodes,
                attachment: (i as u32 * 13 + 1) % nodes,
                a: (i as u32 * 29 + 2) % nodes,
                b: (i as u32 * 31 + 3) % nodes,
            };
            (i as u64, edit)
        })
        .collect()
}

/// Measure one scheme: encode every frame, decode every frame back, and
/// report sizes plus throughput. `tasks_per_frame` converts frame counts
/// into per-task figures for the batched scheme.
fn measure(
    scheme: &str,
    frames: &[Message],
    tasks: usize,
    encode: impl Fn(&Message) -> Vec<u8>,
) -> WireRow {
    let t0 = Instant::now();
    let encoded: Vec<Vec<u8>> = frames.iter().map(&encode).collect();
    let encode_secs = t0.elapsed().as_secs_f64();
    let total_bytes: usize = encoded.iter().map(Vec::len).sum();
    let t1 = Instant::now();
    for bytes in &encoded {
        let msg = decode_auto(bytes).expect("round-trip decodes");
        std::hint::black_box(msg);
    }
    let decode_secs = t1.elapsed().as_secs_f64();
    WireRow {
        scheme: scheme.into(),
        frames: frames.len(),
        total_bytes,
        bytes_per_task: total_bytes as f64 / tasks as f64,
        encode_tasks_per_sec: tasks as f64 / encode_secs.max(1e-9),
        decode_tasks_per_sec: tasks as f64 / decode_secs.max(1e-9),
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.has_flag("quick");
    let taxa: usize = args.get("taxa", 200);
    let tasks: usize = args.get("tasks", if quick { 2048 } else { 16384 });
    let out = args.get_str("out", "BENCH_wire.json");

    let base = caterpillar(taxa);
    let edits = round_edits(tasks, taxa);

    // The paper's era: every candidate ships as a whole Newick tree in a
    // JSON frame.
    let json_trees: Vec<Message> = edits
        .iter()
        .map(|(task, _)| Message::TreeTask {
            task: *task,
            newick: base.clone(),
        })
        .collect();
    // The edit era, same JSON codec: the payload shrank before the codec
    // did.
    let edit_msgs: Vec<Message> = edits
        .iter()
        .map(|(task, edit)| Message::TreeEditTask {
            task: *task,
            base_id: 42,
            edit: *edit,
            base_newick: None,
        })
        .collect();
    // The hierarchical scheduler's unit: one binary frame per 64-task
    // lease grant.
    let batches: Vec<Message> = edit_msgs
        .chunks(fdml_core::hierarchy::GRANT_CAP)
        .map(|chunk| Message::Batch {
            msgs: chunk.to_vec(),
        })
        .collect();

    let json = |m: &Message| WireFormat::Json.encode(m).expect("json encodes");
    let rows = vec![
        measure("json-tree", &json_trees, tasks, json),
        measure("json-edit", &edit_msgs, tasks, json),
        measure("binary-edit", &edit_msgs, tasks, encode_message),
        measure("binary-batch64", &batches, tasks, encode_message),
    ];

    println!("Wire study — {tasks} tasks, {taxa}-taxon base tree\n");
    println!("scheme           frames  total bytes  bytes/task   enc Mtask/s   dec Mtask/s");
    for r in &rows {
        println!(
            "{:<15} {:>7} {:>12} {:>11.1} {:>13.2} {:>13.2}",
            r.scheme,
            r.frames,
            r.total_bytes,
            r.bytes_per_task,
            r.encode_tasks_per_sec / 1e6,
            r.decode_tasks_per_sec / 1e6
        );
    }

    let per_task = |scheme: &str| {
        rows.iter()
            .find(|r| r.scheme == scheme)
            .expect("scheme present")
            .bytes_per_task
    };
    let gate = ReductionGate {
        json_tree_bytes_per_task: per_task("json-tree"),
        binary_edit_bytes_per_task: per_task("binary-edit"),
        reduction: per_task("json-tree") / per_task("binary-edit"),
        threshold: 5.0,
        pass: per_task("json-tree") >= 5.0 * per_task("binary-edit"),
    };
    println!(
        "\nbytes/task: json whole-tree {:.1} → binary edit {:.1} ({:.0}× reduction, gate ≥ {:.0}×)",
        gate.json_tree_bytes_per_task,
        gate.binary_edit_bytes_per_task,
        gate.reduction,
        gate.threshold
    );

    let report = WireReport {
        taxa,
        tasks,
        rows,
        gate,
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");

    assert!(
        report.gate.pass,
        "binary edit frames must be ≥5× smaller per task than JSON whole-tree frames: {:.1} vs {:.1}",
        report.gate.binary_edit_bytes_per_task, report.gate.json_tree_bytes_per_task
    );
}
