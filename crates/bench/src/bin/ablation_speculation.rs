//! Speculative dispatch study — the follow-up the paper announces in §3.2:
//! "Ceron's parallel DNAml implementation performs speculative calculations
//! based on the relatively low probability of a local rearrangement
//! improving the likelihood … We have not studied the runtime behavior of
//! our implementation … to see if such a feature would enhance the
//! scalability of the parallel version of fastDNAml. We plan to do so."
//!
//! Here it is, in simulation: fruitless rearrangement rounds (the common
//! case) overlap with the round that follows them.
//!
//! Usage: ablation_speculation [--scale 0.25] [--jumbles 3]

use fdml_bench::{load_or_build_traces, Args, TraceRequest};
use fdml_datagen::datasets::PaperDataset;
use fdml_simsp::{simulate_trace, simulate_trace_speculative, CostModel, SimConfig};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let jumbles: usize = args.get("jumbles", 3);
    let cost = CostModel::power3_sp();
    println!("Speculative dispatch (Ceron et al.) vs plain barriers, radius 5\n");
    println!(
        "{:<16} {:>6} {:>14} {:>14} {:>8}",
        "dataset", "procs", "plain (s)", "speculative", "gain"
    );
    for d in PaperDataset::all() {
        let req = TraceRequest::paper(d, scale, jumbles);
        let traces = load_or_build_traces(&req);
        for p in [16usize, 64, 128] {
            let cfg = SimConfig {
                processors: p,
                cost: cost.clone(),
            };
            let (mut plain, mut spec) = (0.0, 0.0);
            for t in &traces {
                plain += simulate_trace(t, &cfg).wall_seconds;
                spec += simulate_trace_speculative(t, &cfg).wall_seconds;
            }
            plain /= traces.len() as f64;
            spec /= traces.len() as f64;
            println!(
                "{:<16} {:>6} {:>14.1} {:>14.1} {:>7.1}%",
                d.label(),
                p,
                plain,
                spec,
                100.0 * (plain - spec) / plain
            );
        }
    }
    println!("\nfruitless rearrangement rounds stop being barriers: the gain grows");
    println!("with the processor count, answering the paper's open question.");
}
