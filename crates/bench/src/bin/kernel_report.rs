//! Times the gated likelihood workloads under both kernel modes and writes
//! `BENCH_kernels.json` (see `fdml_bench::kernel_report`).
//!
//! Usage:
//!   kernel_report [--quick] [--samples N] [--out PATH] [--intra-threads N]
//!
//! `--quick` shrinks the datasets and sample counts to a CI smoke test;
//! the checked-in report must come from a full (default) run.
//! `--intra-threads N` sets the thread count of the intra-rank scaling
//! rows (default 4, the gated configuration).

use fdml_bench::kernel_report::{
    compare, measure, IntraScalingReport, KernelReport, WalOverheadReport, WorkloadReport,
};
use fdml_bench::Args;
use fdml_core::config::SearchConfig;
use fdml_core::executor::ScorerExecutor;
use fdml_core::search::StepwiseSearch;
use fdml_core::wal::{self, WalSession, WalWriter};
use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
use fdml_likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fdml_likelihood::incremental::ClvCache;
use fdml_likelihood::KernelMode;
use fdml_obs::Obs;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::ops::{apply_move, enumerate_insertion_moves, enumerate_spr_moves, TreeMove};
use fdml_phylo::tree::Tree;
use std::hint::black_box;

fn dataset(taxa: usize, sites: usize) -> (Alignment, Tree) {
    let tree = yule_tree(taxa, 0.08, 42);
    let alignment = evolve(&tree, sites, &EvolutionConfig::default(), 7, "t");
    (alignment, tree)
}

/// Runs one workload under both modes. `work_of` performs one pass and
/// returns its pattern-update count (identical in both modes).
fn run_workload(
    name: &str,
    samples: usize,
    engine: &mut LikelihoodEngine,
    mut pass: impl FnMut(&LikelihoodEngine) -> u64,
) -> WorkloadReport {
    engine.set_kernel_mode(KernelMode::Optimized);
    let updates = pass(engine);
    let optimized = measure(samples, updates, || {
        black_box(pass(engine));
    });
    engine.set_kernel_mode(KernelMode::Reference);
    let reference = measure(samples, updates, || {
        black_box(pass(engine));
    });
    engine.set_kernel_mode(KernelMode::Optimized);
    let row = compare(name, optimized, reference);
    println!(
        "{:<32} opt {:>9.3} ms  ref {:>9.3} ms  {:>7.0} kpat/s  speedup {:.2}x",
        row.name,
        row.optimized.mean_seconds * 1e3,
        row.reference.mean_seconds * 1e3,
        row.optimized.patterns_per_sec / 1e3,
        row.speedup
    );
    row
}

/// Times one candidate batch both ways: incrementally through a fresh
/// per-pass [`ClvCache`] (the build's two full sweeps are included, as in a
/// real round) and from scratch, the way a worker treats a whole-tree task
/// (clone the base, apply the move, optimize the full tree). The
/// `optimized` column holds the incremental timing, so `speedup` is
/// incremental-over-from-scratch.
fn run_incremental_workload(
    name: &str,
    samples: usize,
    engine: &LikelihoodEngine,
    base: &Tree,
    moves: &[TreeMove],
) -> WorkloadReport {
    let opts = OptimizeOptions::default();
    let incremental_pass = || {
        let mut cache = ClvCache::build(engine, base.clone());
        let mut updates = cache.build_work().total_pattern_updates();
        for mv in moves {
            let s = cache.score_edit(engine, mv, &opts).expect("edit scores");
            updates += s.work.total_pattern_updates();
            black_box(s.ln_likelihood);
        }
        updates
    };
    let scratch_pass = || {
        let mut updates = 0u64;
        for mv in moves {
            let mut t = base.clone();
            apply_move(&mut t, mv).expect("move applies to base");
            let r = engine.optimize(&mut t, &opts);
            updates += r.work.total_pattern_updates();
            black_box(r.ln_likelihood);
        }
        updates
    };
    let incremental = measure(samples, incremental_pass(), || {
        black_box(incremental_pass());
    });
    let from_scratch = measure(samples, scratch_pass(), || {
        black_box(scratch_pass());
    });
    let row = compare(name, incremental, from_scratch);
    println!(
        "{:<32} inc {:>9.3} ms  full {:>8.3} ms  {} moves          speedup {:.2}x",
        row.name,
        row.optimized.mean_seconds * 1e3,
        row.reference.mean_seconds * 1e3,
        moves.len(),
        row.speedup
    );
    row
}

/// Times one evaluate pass serially and at `threads` pattern-block
/// threads on the same optimized engine, checking the two log-likelihoods
/// are bit-identical (the determinism contract) along the way. The gated
/// number is the modeled critical-path speedup of the block schedule; the
/// wall ratio rides along and is only meaningful when the host has at
/// least `threads` cores.
fn run_intra_scaling(
    name: &str,
    samples: usize,
    engine: &mut LikelihoodEngine,
    tree: &Tree,
    threads: usize,
) -> IntraScalingReport {
    engine.set_kernel_mode(KernelMode::Optimized);
    engine.set_intra_threads(1);
    let serial_eval = engine.evaluate(tree);
    let updates = serial_eval.work.total_pattern_updates();
    let serial = measure(samples, updates, || {
        black_box(engine.evaluate(tree).ln_likelihood);
    });
    engine.set_intra_threads(threads);
    let threaded_eval = engine.evaluate(tree);
    assert_eq!(
        serial_eval.ln_likelihood.to_bits(),
        threaded_eval.ln_likelihood.to_bits(),
        "intra-rank threading changed the log-likelihood bits"
    );
    let threaded = measure(samples, updates, || {
        black_box(engine.evaluate(tree).ln_likelihood);
    });
    engine.set_intra_threads(1);
    let patterns = engine.patterns().num_patterns();
    let row = IntraScalingReport {
        name: name.to_string(),
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        patterns,
        modeled_speedup: fdml_likelihood::par::modeled_speedup(patterns, threads),
        wall_speedup: serial.mean_seconds / threaded.mean_seconds,
        serial,
        threaded,
    };
    println!(
        "{:<32} 1t {:>10.3} ms  {}t {:>8.3} ms  modeled {:.2}x  wall {:.2}x",
        row.name,
        row.serial.mean_seconds * 1e3,
        row.threads,
        row.threaded.mean_seconds * 1e3,
        row.modeled_speedup,
        row.wall_speedup
    );
    row
}

/// Times the golden search bare and with a write-ahead round log attached
/// — session open, one durable append per committed round, retirement on
/// success — and gates the min-of-N overhead at 3% in full runs. Also
/// asserts the logged search reproduces the bare search's log-likelihood
/// bit for bit: the hook must observe the search, never steer it.
///
/// Full runs use the wide golden-generator dataset (the
/// `evaluate_by_sites` dimensions): the WAL's cost is one `fdatasync` per
/// committed round, a fixed fee that only means anything relative to how
/// much scoring a round buys. On a toy alignment the fee is the round; at
/// realistic pattern counts a round costs hundreds of times more than the
/// sync, which is the regime the 3% gate protects.
fn run_wal_overhead(samples: usize, quick: bool) -> WalOverheadReport {
    let (taxa, sites) = if quick { (12, 200) } else { (32, 1858) };
    let (alignment, _) = dataset(taxa, sites);
    let config = SearchConfig {
        jumble_seed: 7,
        ..SearchConfig::default()
    };
    let engine = config.build_engine(&alignment);
    let search = || {
        StepwiseSearch::new(
            &config,
            ScorerExecutor::new(&engine, config.optimize),
            alignment.num_taxa(),
        )
        .with_names(alignment.names().to_vec())
    };
    let baseline_result = search().run().expect("golden search");

    // One untimed instrumented run to learn the log's shape.
    let dir = std::env::temp_dir().join(format!("fdml-wal-bench-{}", std::process::id()));
    let writer = std::cell::RefCell::new(
        WalWriter::create(&dir, 0, config.jumble_seed, alignment.num_taxa()).expect("wal create"),
    );
    let logged_result = search()
        .on_wal(|round| {
            writer.borrow_mut().append(round).expect("wal append");
        })
        .run()
        .expect("golden search under wal");
    assert_eq!(
        baseline_result.ln_likelihood.to_bits(),
        logged_result.ln_likelihood.to_bits(),
        "attaching the wal hook changed the search result"
    );
    let (rounds, wal_bytes) = {
        let w = writer.borrow();
        (w.next_index(), w.len_bytes())
    };
    drop(writer);
    wal::retire(&dir, 0, config.jumble_seed).expect("wal retire");

    let baseline = measure(samples, rounds.max(1), || {
        black_box(search().run().expect("golden search").ln_likelihood);
    });
    let obs = Obs::disabled();
    let wal_arm = measure(samples, rounds.max(1), || {
        let session = WalSession::open(&dir, 0, config.jumble_seed, alignment.num_taxa(), &obs)
            .expect("wal open");
        black_box(
            search()
                .on_wal(session.hook())
                .run()
                .expect("golden search under wal")
                .ln_likelihood,
        );
        session.finish_and_retire().expect("wal retire");
    });
    let overhead = wal_arm.min_seconds / baseline.min_seconds - 1.0;
    let row = WalOverheadReport {
        name: format!("wal_overhead/golden_search/{taxa}"),
        samples,
        rounds,
        wal_bytes,
        baseline_mean_seconds: baseline.mean_seconds,
        baseline_min_seconds: baseline.min_seconds,
        wal_mean_seconds: wal_arm.mean_seconds,
        wal_min_seconds: wal_arm.min_seconds,
        overhead,
    };
    println!(
        "{:<32} bare {:>8.3} ms  wal {:>9.3} ms  {} rounds, {} B    overhead {:+.2}%",
        row.name,
        row.baseline_min_seconds * 1e3,
        row.wal_min_seconds * 1e3,
        row.rounds,
        row.wal_bytes,
        row.overhead * 1e2
    );
    // The min-of-N ratio squeezes out scheduler noise; --quick runs (3
    // samples on a loaded CI box) still jitter past any honest bound, so
    // the gate holds for full runs only.
    if !quick {
        assert!(
            row.overhead <= 0.03,
            "wal overhead on the golden search exceeded the 3% gate: {:+.2}%",
            row.overhead * 1e2
        );
    }
    row
}

fn main() {
    let args = Args::from_env();
    let quick = args.has_flag("quick");
    let samples = args.get("samples", if quick { 3 } else { 15 });
    let out = args.get_str("out", "BENCH_kernels.json");
    let intra_threads: usize = args.get("intra-threads", 4usize).max(2);

    let (eval_taxa, eval_sites) = if quick { (24, 200) } else { (101, 500) };
    let by_sites = if quick { (16, 300) } else { (32, 1858) };

    let mut workloads = Vec::new();
    let mut intra_scaling = Vec::new();

    {
        let (alignment, tree) = dataset(eval_taxa, eval_sites);
        let mut engine = SearchConfig::default().build_engine(&alignment);
        workloads.push(run_workload(
            &format!("tree_evaluate/evaluate/{eval_taxa}"),
            samples,
            &mut engine,
            |e| e.evaluate(&tree).work.total_pattern_updates(),
        ));
        workloads.push(run_workload(
            &format!("tree_evaluate/optimize/{eval_taxa}"),
            samples,
            &mut engine,
            |e| {
                let mut t = tree.clone();
                e.optimize(&mut t, &OptimizeOptions::default())
                    .work
                    .total_pattern_updates()
            },
        ));
    }

    {
        let (alignment, tree) = dataset(by_sites.0, by_sites.1);
        let mut engine = LikelihoodEngine::new(&alignment);
        workloads.push(run_workload(
            &format!("evaluate_by_sites/{}", by_sites.1),
            samples,
            &mut engine,
            |e| e.evaluate(&tree).work.total_pattern_updates(),
        ));
        // Intra-rank thread scaling on the widest alignment: one row at 2
        // threads and one at the gated configuration.
        for threads in [2usize, intra_threads] {
            if intra_scaling
                .iter()
                .any(|r: &IntraScalingReport| r.threads == threads)
            {
                continue;
            }
            intra_scaling.push(run_intra_scaling(
                &format!("intra_scaling/evaluate_by_sites/{threads}"),
                samples,
                &mut engine,
                &tree,
                threads,
            ));
        }
    }

    // The intra-rank gate. The block schedule itself is deterministic, so
    // the gated number is the modeled critical-path speedup at 4 threads on
    // the full-size pattern load — it regresses only if the block size or
    // the round-robin assignment gets less balanced, independent of how
    // many cores this host happens to have. Wall time is gated only on
    // hosts that can actually run 4 threads in parallel, and only in full
    // (non-quick) runs.
    {
        const GATE_PATTERNS: usize = 1500;
        const GATE_THREADS: usize = 4;
        let modeled = fdml_likelihood::par::modeled_speedup(GATE_PATTERNS, GATE_THREADS);
        assert!(
            modeled >= 2.5,
            "modeled intra-rank speedup at {GATE_THREADS} threads regressed below the \
             2.5x gate: {modeled:.2}x over {GATE_PATTERNS} patterns"
        );
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if !quick && cores >= GATE_THREADS {
            if let Some(row) = intra_scaling.iter().find(|r| r.threads == GATE_THREADS) {
                assert!(
                    row.wall_speedup >= 1.3,
                    "wall intra-rank speedup at {GATE_THREADS} threads on a {cores}-core \
                     host fell below 1.3x: {:.2}x",
                    row.wall_speedup
                );
            }
        }
    }

    {
        // The shared-CLV incremental path versus whole-tree scoring, on the
        // two candidate batches the search actually dispatches: a taxon-
        // addition round (one insertion per base edge, paper step 3) and a
        // radius-1 rearrangement round (paper step 4).
        let (alignment, _) = dataset(eval_taxa, eval_sites);
        let engine = SearchConfig::default().build_engine(&alignment);
        // Grow the round's base by stepwise insertion (deterministic edge
        // choice), leaving the last taxon out — exactly the state a taxon-
        // addition round starts from.
        let grown = |taxa: u32| {
            let mut t = Tree::triplet(0, 1, 2);
            for taxon in 3..taxa {
                let n = t.edge_ids().count();
                let e = t.edge_ids().nth(taxon as usize * 7 % n).expect("edge");
                t.insert_taxon(taxon, e).expect("taxon inserts");
            }
            t
        };
        let last = (eval_taxa - 1) as u32;
        let base = grown(last);
        let full = grown(eval_taxa as u32);
        let inserts = enumerate_insertion_moves(&base, last);
        let round = run_incremental_workload(
            &format!("candidate_round/{eval_taxa}"),
            samples,
            &engine,
            &base,
            &inserts,
        );
        assert!(
            round.speedup >= 3.0,
            "incremental candidate-round speedup regressed below the 3x gate: {:.2}x",
            round.speedup
        );
        workloads.push(round);
        let sprs = enumerate_spr_moves(&full, 1);
        workloads.push(run_incremental_workload(
            &format!("rearrange_k1/{eval_taxa}"),
            samples,
            &engine,
            &full,
            &sprs,
        ));
    }

    let wal_overhead = vec![run_wal_overhead(samples, quick)];

    let report = KernelReport {
        generated_by: "fdml-bench kernel_report".into(),
        quick,
        workloads,
        intra_scaling,
        wal_overhead,
    };
    std::fs::write(&out, report.to_json() + "\n").expect("write report");
    println!("wrote {out}");
}
