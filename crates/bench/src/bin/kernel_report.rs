//! Times the gated likelihood workloads under both kernel modes and writes
//! `BENCH_kernels.json` (see `fdml_bench::kernel_report`).
//!
//! Usage:
//!   kernel_report [--quick] [--samples N] [--out PATH]
//!
//! `--quick` shrinks the datasets and sample counts to a CI smoke test;
//! the checked-in report must come from a full (default) run.

use fdml_bench::kernel_report::{compare, measure, KernelReport, WorkloadReport};
use fdml_bench::Args;
use fdml_core::config::SearchConfig;
use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
use fdml_likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fdml_likelihood::KernelMode;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::tree::Tree;
use std::hint::black_box;

fn dataset(taxa: usize, sites: usize) -> (Alignment, Tree) {
    let tree = yule_tree(taxa, 0.08, 42);
    let alignment = evolve(&tree, sites, &EvolutionConfig::default(), 7, "t");
    (alignment, tree)
}

/// Runs one workload under both modes. `work_of` performs one pass and
/// returns its pattern-update count (identical in both modes).
fn run_workload(
    name: &str,
    samples: usize,
    engine: &mut LikelihoodEngine,
    mut pass: impl FnMut(&LikelihoodEngine) -> u64,
) -> WorkloadReport {
    engine.set_kernel_mode(KernelMode::Optimized);
    let updates = pass(engine);
    let optimized = measure(samples, updates, || {
        black_box(pass(engine));
    });
    engine.set_kernel_mode(KernelMode::Reference);
    let reference = measure(samples, updates, || {
        black_box(pass(engine));
    });
    engine.set_kernel_mode(KernelMode::Optimized);
    let row = compare(name, optimized, reference);
    println!(
        "{:<32} opt {:>9.3} ms  ref {:>9.3} ms  {:>7.0} kpat/s  speedup {:.2}x",
        row.name,
        row.optimized.mean_seconds * 1e3,
        row.reference.mean_seconds * 1e3,
        row.optimized.patterns_per_sec / 1e3,
        row.speedup
    );
    row
}

fn main() {
    let args = Args::from_env();
    let quick = args.has_flag("quick");
    let samples = args.get("samples", if quick { 3 } else { 15 });
    let out = args.get_str("out", "BENCH_kernels.json");

    let (eval_taxa, eval_sites) = if quick { (24, 200) } else { (101, 500) };
    let by_sites = if quick { (16, 300) } else { (32, 1858) };

    let mut workloads = Vec::new();

    {
        let (alignment, tree) = dataset(eval_taxa, eval_sites);
        let mut engine = SearchConfig::default().build_engine(&alignment);
        workloads.push(run_workload(
            &format!("tree_evaluate/evaluate/{eval_taxa}"),
            samples,
            &mut engine,
            |e| e.evaluate(&tree).work.total_pattern_updates(),
        ));
        workloads.push(run_workload(
            &format!("tree_evaluate/optimize/{eval_taxa}"),
            samples,
            &mut engine,
            |e| {
                let mut t = tree.clone();
                e.optimize(&mut t, &OptimizeOptions::default())
                    .work
                    .total_pattern_updates()
            },
        ));
    }

    {
        let (alignment, tree) = dataset(by_sites.0, by_sites.1);
        let mut engine = LikelihoodEngine::new(&alignment);
        workloads.push(run_workload(
            &format!("evaluate_by_sites/{}", by_sites.1),
            samples,
            &mut engine,
            |e| e.evaluate(&tree).work.total_pattern_updates(),
        ));
    }

    let report = KernelReport {
        generated_by: "fdml-bench kernel_report".into(),
        quick,
        workloads,
    };
    std::fs::write(&out, report.to_json() + "\n").expect("write report");
    println!("wrote {out}");
}
