//! Synthetic client swarm against the `fdml-serve` daemon: many clients
//! submit farm jobs concurrently over one shared worker fleet, and the
//! harness reports admission, completion, and latency figures — the
//! service-mode analogue of the paper's throughput measurements.
//!
//! Usage: serve_swarm [--clients 4] [--jobs-per-client 3] [--jumbles 3]
//!                    [--taxa 8] [--sites 120] [--workers 2]

use fdml_bench::Args;
use fdml_comm::job::JobSpec;
use fdml_core::config::SearchConfig;
use fdml_core::worker::run_worker;
use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
use fdml_net::TcpTransport;
use fdml_obs::Obs;
use fdml_phylo::phylip;
use fdml_serve::{client, Daemon, ServeOptions};
use std::thread;
use std::time::{Duration, Instant};

fn main() {
    let args = Args::from_env();
    let clients: usize = args.get("clients", 4);
    let jobs_per_client: usize = args.get("jobs-per-client", 3);
    let jumbles: usize = args.get("jumbles", 3);
    let taxa: usize = args.get("taxa", 8);
    let sites: usize = args.get("sites", 120);
    let workers: usize = args.get("workers", 2);

    let state_dir = std::env::temp_dir().join(format!("fdml-swarm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let total_jobs = clients * jobs_per_client;
    let mut options = ServeOptions::new("127.0.0.1:0", 3 + workers.max(1), &state_dir);
    options.max_jobs = total_jobs;
    let daemon = Daemon::start(options).expect("start daemon");
    let addr = daemon.local_addr();
    let fleet: Vec<_> = (0..workers)
        .map(|_| {
            thread::spawn(move || {
                if let Ok(transport) = TcpTransport::connect(addr) {
                    let _ = run_worker(transport, Obs::disabled());
                }
            })
        })
        .collect();

    println!(
        "Client swarm: {clients} clients × {jobs_per_client} jobs × {jumbles} jumbles, \
         {taxa} taxa × {sites} sites, {workers} workers on {addr}"
    );
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            thread::spawn(move || {
                let mut latencies = Vec::new();
                for j in 0..jobs_per_client {
                    // Every job is a distinct dataset: distinct tree seed,
                    // distinct jumble seeds.
                    let stamp = (c * 1000 + j) as u64;
                    let tree = yule_tree(taxa, 0.08, 21 + stamp);
                    let alignment =
                        evolve(&tree, sites, &EvolutionConfig::default(), 5 + stamp, "t");
                    let spec = JobSpec::builder()
                        .phylip(phylip::write(&alignment))
                        .config_json(SearchConfig::default().engine_config_json())
                        .jumbles(jumbles)
                        .base_seed(1 + stamp)
                        .label(format!("swarm-{c}-{j}"))
                        .build()
                        .expect("swarm spec");
                    let t = Instant::now();
                    let job = client::submit(addr, &spec).expect("submit");
                    let result = client::attach(addr, job, Duration::from_secs(600), &mut |_| {})
                        .expect("attach");
                    assert_eq!(result.trees.len(), jumbles);
                    latencies.push(t.elapsed().as_secs_f64());
                }
                latencies
            })
        })
        .collect();
    let latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    daemon.stop();
    for w in fleet {
        let _ = w.join();
    }
    let _ = std::fs::remove_dir_all(&state_dir);

    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let max = latencies.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{total_jobs} jobs ({} jumbles total) in {wall:.2}s = {:.2} jobs/s",
        total_jobs * jumbles,
        total_jobs as f64 / wall
    );
    println!("submit→result latency: mean {mean:.2}s, max {max:.2}s");
}
