//! §6's time-to-solution claims: "The analysis of a single randomization of
//! 150 taxa required roughly 9 days using the serial version … A complete
//! analysis … involving 200 different randomizations would at this rate
//! take nearly five years. With 64 processors the parallel version …
//! required less than four hours to analyze a single randomization … or
//! about a month running continually on 64 processors to analyze 200
//! randomizations."
//!
//! Usage: text_numbers [--scale 0.25] [--jumbles 2]

use fdml_bench::{load_or_build_traces, Args, TraceRequest};
use fdml_datagen::datasets::PaperDataset;
use fdml_simsp::{simulate_trace, CostModel, SimConfig};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let jumbles: usize = args.get("jumbles", 2);
    let req = TraceRequest::paper(PaperDataset::Taxa150, scale, jumbles);
    let traces = load_or_build_traces(&req);
    let cost = CostModel::power3_sp();
    let mut serial = 0.0;
    let mut p64 = 0.0;
    for t in &traces {
        serial += simulate_trace(
            t,
            &SimConfig {
                processors: 1,
                cost: cost.clone(),
            },
        )
        .wall_seconds;
        p64 += simulate_trace(
            t,
            &SimConfig {
                processors: 64,
                cost: cost.clone(),
            },
        )
        .wall_seconds;
    }
    serial /= traces.len() as f64;
    p64 /= traces.len() as f64;
    // The traces were built at a reduced alignment length; worker cost is
    // linear in patterns, so scale the absolute numbers back to full length
    // for the comparison with the paper (documented in EXPERIMENTS.md).
    let length_correction = 1.0 / scale;
    let serial_full = serial * length_correction;
    let p64_full = p64 * length_correction;
    let hours = |s: f64| s / 3600.0;
    let days = |s: f64| s / 86400.0;
    println!("§6 time-to-solution, 150-taxon dataset (simulated Power3+ seconds,");
    println!("corrected ×{length_correction:.1} for the reduced alignment length)\n");
    println!(
        "  one jumble, serial      : {:>10.1} h  ({:.1} days)   [paper: ~192 h ≈ 9 days]",
        hours(serial_full),
        days(serial_full)
    );
    println!(
        "  one jumble, 64 procs    : {:>10.1} h               [paper: < 4 h]",
        hours(p64_full)
    );
    println!(
        "  200 jumbles, serial     : {:>10.1} years            [paper: ~5 years]",
        days(serial_full) * 200.0 / 365.0
    );
    println!(
        "  200 jumbles, 64 procs   : {:>10.1} months           [paper: ~1 month]",
        days(p64_full) * 200.0 / 30.0
    );
    println!("  speedup at 64 processors: {:>10.1}×", serial / p64);
}
