//! **Figure 3**: time to complete the analysis of one random taxon
//! ordering versus processor count, for the 50-, 101-, and 150-taxon
//! datasets; each point the average of the jumbles run (the paper averages
//! ten).
//!
//! Usage: fig3_scaling [--scale 0.25] [--jumbles 3] [--radius 5]
//!                     [--datasets all|50|101|150] [--full]
//!
//! `--jumbles 10 --scale 1.0` is the paper's full protocol (slow: the
//! traces are real searches, cached under traces/).

use fdml_bench::{load_or_build_traces, Args, TraceRequest};
use fdml_datagen::datasets::PaperDataset;
use fdml_simsp::report::format_rows;
use fdml_simsp::{scaling_table, CostModel};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let jumbles: usize = args.get("jumbles", 3);
    let radius: usize = args.get("radius", 5);
    let which = args.get_str("datasets", "all");
    let processors = [1usize, 4, 8, 16, 32, 64];
    let cost = CostModel::power3_sp();
    println!("Figure 3 — wall time (simulated RS/6000 SP seconds) vs processors");
    println!("settings: site scale {scale}, {jumbles} jumbles, rearrangement radius {radius}\n");
    let datasets: Vec<PaperDataset> = match which.as_str() {
        "50" => vec![PaperDataset::Taxa50],
        "101" => vec![PaperDataset::Taxa101],
        "150" => vec![PaperDataset::Taxa150],
        _ => PaperDataset::all().to_vec(),
    };
    for d in datasets {
        let mut req = TraceRequest::paper(d, scale, jumbles);
        req.radius = radius;
        req.full_evaluation = args.has_flag("full");
        let traces = load_or_build_traces(&req);
        let rows = scaling_table(&traces, &processors, &cost);
        println!("{}", format_rows(&rows));
        // The paper's headline check: P=4 slower than serial.
        let serial = rows.iter().find(|r| r.processors == 1).unwrap();
        let p4 = rows.iter().find(|r| r.processors == 4).unwrap();
        println!(
            "  4-processor run is {:.4}× the serial time (paper: >1, i.e. slower)\n",
            p4.mean_wall_seconds / serial.mean_wall_seconds
        );
    }
}
