//! Trace generation with on-disk caching.
//!
//! Generating a paper-scale trace means actually running the search once
//! per dataset per jumble; the results are cached as JSON under `traces/`
//! so the figure binaries are fast to re-run and the simulator inputs are
//! inspectable.

use fdml_core::config::SearchConfig;
use fdml_core::runner::traced_search;
use fdml_core::trace::SearchTrace;
use fdml_datagen::datasets::{paper_dataset, PaperDataset};
use std::fs;
use std::path::PathBuf;

/// What traces to produce.
#[derive(Debug, Clone)]
pub struct TraceRequest {
    /// Which dataset.
    pub dataset: PaperDataset,
    /// Alignment-length scale in `(0, 1]` (1.0 = the paper's full length).
    pub site_scale: f64,
    /// Jumble seeds (the paper uses ten per dataset).
    pub seeds: Vec<u64>,
    /// Rearrangement radius (the paper's runs use 5).
    pub radius: usize,
    /// Evaluate every candidate fully (slow, faithful) instead of with
    /// incremental scoring.
    pub full_evaluation: bool,
    /// Cache directory.
    pub cache_dir: PathBuf,
}

impl TraceRequest {
    /// The paper's protocol for one dataset, scaled for tractability.
    pub fn paper(dataset: PaperDataset, site_scale: f64, jumbles: usize) -> TraceRequest {
        TraceRequest {
            dataset,
            site_scale,
            seeds: (0..jumbles as u64).map(|i| 2 * i + 1).collect(),
            radius: 5,
            full_evaluation: false,
            cache_dir: PathBuf::from("traces"),
        }
    }

    fn cache_path(&self, seed: u64) -> PathBuf {
        let mode = if self.full_evaluation { "full" } else { "fast" };
        self.cache_dir.join(format!(
            "{}_s{:.3}_r{}_{}_j{}.json",
            self.dataset.label(),
            self.site_scale,
            self.radius,
            mode,
            seed
        ))
    }
}

/// Load cached traces or run the searches to build them. Returns one trace
/// per seed, in seed order. Progress goes to stderr.
pub fn load_or_build_traces(request: &TraceRequest) -> Vec<SearchTrace> {
    fs::create_dir_all(&request.cache_dir).ok();
    let mut dataset_cache = None;
    request
        .seeds
        .iter()
        .map(|&seed| {
            let path = request.cache_path(seed);
            if let Ok(text) = fs::read_to_string(&path) {
                if let Ok(trace) = serde_json::from_str::<SearchTrace>(&text) {
                    eprintln!("[traces] loaded {}", path.display());
                    return trace;
                }
            }
            let (alignment, _) = dataset_cache
                .get_or_insert_with(|| paper_dataset(request.dataset, request.site_scale))
                .clone();
            let config = SearchConfig {
                jumble_seed: seed,
                rearrange_radius: request.radius,
                final_radius: request.radius,
                ..SearchConfig::default()
            };
            eprintln!(
                "[traces] building {} seed {} ({} taxa × {} sites, radius {})…",
                request.dataset.label(),
                seed,
                alignment.num_taxa(),
                alignment.num_sites(),
                request.radius
            );
            let start = std::time::Instant::now();
            let (_, trace) = traced_search(
                &alignment,
                &config,
                request.dataset.label(),
                request.full_evaluation,
            )
            .expect("search must succeed");
            eprintln!(
                "[traces]   {} rounds, {} candidates, {:.1}s wall",
                trace.rounds.len(),
                trace.total_candidates(),
                start.elapsed().as_secs_f64()
            );
            if let Ok(json) = serde_json::to_string(&trace) {
                fs::write(&path, json).ok();
            }
            trace
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fdml_trace_test_{}", std::process::id()));
        let request = TraceRequest {
            dataset: PaperDataset::Taxa50,
            site_scale: 0.01, // 19 sites — tiny, just exercises the plumbing
            seeds: vec![1],
            radius: 1,
            full_evaluation: false,
            cache_dir: dir.clone(),
        };
        let first = load_or_build_traces(&request);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].num_taxa, 50);
        // Second call hits the cache and returns identical content.
        let second = load_or_build_traces(&request);
        assert_eq!(first, second);
        fs::remove_dir_all(dir).ok();
    }
}
