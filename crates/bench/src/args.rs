//! A tiny `--key value` argument parser for the figure binaries (keeps the
//! workspace free of CLI dependencies).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args`.
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// Parse from an iterator (testable).
    pub fn parse(items: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut iter = items.into_iter().peekable();
        while let Some(item) = iter.next() {
            if let Some(key) = item.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = iter.next().expect("peeked");
                        out.values.insert(key.to_string(), v);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else {
                out.flags.push(item);
            }
        }
        out
    }

    /// Value of `--key`, parsed, with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String value of `--key`.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Was a bare `--flag` given?
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = args("--scale 0.25 --jumbles 3 --full --out x.json");
        assert_eq!(a.get("scale", 1.0f64), 0.25);
        assert_eq!(a.get("jumbles", 10usize), 3);
        assert!(a.has_flag("full"));
        assert_eq!(a.get_str("out", "-"), "x.json");
        assert!(!a.has_flag("quick"));
    }

    #[test]
    fn defaults_apply() {
        let a = args("");
        assert_eq!(a.get("scale", 0.5f64), 0.5);
        assert_eq!(a.get_str("mode", "fast"), "fast");
    }

    #[test]
    fn malformed_numbers_fall_back() {
        let a = args("--scale banana");
        assert_eq!(a.get("scale", 0.5f64), 0.5);
    }
}
