//! Host calibration: measure nanoseconds per work unit on this machine so
//! the simulator's Power3+ rate is grounded in measurement rather than
//! guesswork (see `CostModel::from_host_calibration`).

use fdml_core::config::SearchConfig;
use fdml_datagen::datasets::{paper_dataset, PaperDataset};
use fdml_likelihood::engine::OptimizeOptions;
use std::time::Instant;

/// Result of a calibration run.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Measured nanoseconds per work unit on this host.
    pub ns_per_work_unit: f64,
    /// Work units exercised.
    pub work_units: u64,
    /// Wall seconds of the measurement.
    pub wall_seconds: f64,
}

/// Approximate single-core speed ratio of a modern x86-64 server core to a
/// 375 MHz Power3+ on likelihood-style code (documented assumption used to
/// translate host measurements into simulated Power3+ seconds).
pub const HOST_SPEEDUP_VS_POWER3: f64 = 60.0;

/// Measure ns/work-unit by fully evaluating trees of a mid-size dataset.
pub fn calibrate_host() -> Calibration {
    let (alignment, tree) = paper_dataset(PaperDataset::Taxa50, 0.25);
    let config = SearchConfig::default();
    let engine = config.build_engine(&alignment);
    let opts = OptimizeOptions::default();
    // Warm up once, then measure repeated full optimizations.
    let mut t = tree.clone();
    engine.optimize(&mut t, &opts);
    let mut units = 0u64;
    let start = Instant::now();
    let reps = 5;
    for _ in 0..reps {
        let mut t = tree.clone();
        let r = engine.optimize(&mut t, &opts);
        units += r.work.work_units();
    }
    let wall = start.elapsed().as_secs_f64();
    Calibration {
        ns_per_work_unit: wall * 1e9 / units as f64,
        work_units: units,
        wall_seconds: wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_sane() {
        let c = calibrate_host();
        assert!(c.work_units > 0);
        // A work unit is ~40 flops; any machine lands between 0.5ns and
        // 10µs per unit (debug builds are slow, release fast).
        assert!(
            c.ns_per_work_unit > 0.5 && c.ns_per_work_unit < 10_000.0,
            "ns/unit = {}",
            c.ns_per_work_unit
        );
    }
}
