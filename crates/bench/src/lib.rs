//! Shared machinery for the benchmark harness: trace generation with
//! on-disk caching, a tiny argument parser, and host calibration.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md's per-experiment index); Criterion
//! microbenches live in `benches/`.

pub mod args;
pub mod calibrate;
pub mod kernel_report;
pub mod traces;

pub use args::Args;
pub use traces::{load_or_build_traces, TraceRequest};
