//! End-to-end search benches: the serial program, the incremental-scoring
//! program, and the threaded parallel program on a small dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use fdml_core::config::SearchConfig;
use fdml_core::job::ResolvedJob;
use fdml_core::runner::{fast_serial_search, parallel_search, serial_search, RunOptions};
use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
use fdml_phylo::alignment::Alignment;
use std::hint::black_box;

fn dataset() -> Alignment {
    let tree = yule_tree(12, 0.08, 21);
    evolve(&tree, 300, &EvolutionConfig::default(), 5, "t")
}

fn bench_search_modes(c: &mut Criterion) {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 1,
        rearrange_radius: 1,
        final_radius: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("search_12taxa");
    group.sample_size(10);
    group.bench_function("serial_full_eval", |b| {
        b.iter(|| black_box(serial_search(&alignment, &config).unwrap().ln_likelihood))
    });
    group.bench_function("serial_incremental", |b| {
        b.iter(|| {
            black_box(
                fast_serial_search(&alignment, &config)
                    .unwrap()
                    .ln_likelihood,
            )
        })
    });
    group.bench_function("parallel_6ranks", |b| {
        let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1)
            .expect("resolve benchmark job");
        b.iter(|| {
            black_box(
                parallel_search(&job, 6, RunOptions::default())
                    .unwrap()
                    .result
                    .ln_likelihood,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_search_modes
}
criterion_main!(benches);
