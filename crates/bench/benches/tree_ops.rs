//! Criterion microbenches of the tree machinery the master uses to
//! generate candidate rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
use fdml_phylo::bipartition::{topology_fingerprint, SplitSet};
use fdml_phylo::newick;
use fdml_phylo::nj::{neighbor_joining, DistanceMatrix};
use fdml_phylo::ops::{enumerate_insertion_moves, enumerate_spr_moves};
use fdml_phylo::parsimony::fitch_score;
use fdml_phylo::patterns::PatternAlignment;
use std::hint::black_box;

fn bench_move_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_moves");
    for taxa in [50usize, 101, 150] {
        let tree = yule_tree(taxa, 0.08, 9);
        group.bench_with_input(BenchmarkId::new("insertions", taxa), &taxa, |b, _| {
            b.iter(|| black_box(enumerate_insertion_moves(&tree, taxa as u32).len()))
        });
        group.bench_with_input(BenchmarkId::new("spr_radius1", taxa), &taxa, |b, _| {
            b.iter(|| black_box(enumerate_spr_moves(&tree, 1).len()))
        });
        group.bench_with_input(BenchmarkId::new("spr_radius5", taxa), &taxa, |b, _| {
            b.iter(|| black_box(enumerate_spr_moves(&tree, 5).len()))
        });
    }
    group.finish();
}

fn bench_topology_identity(c: &mut Criterion) {
    let tree = yule_tree(150, 0.08, 9);
    c.bench_function("topology_fingerprint_150", |b| {
        b.iter(|| black_box(topology_fingerprint(&tree)))
    });
    c.bench_function("splitset_150", |b| {
        b.iter(|| black_box(SplitSet::of_tree(&tree, 150).len()))
    });
    let names: Vec<String> = (0..150).map(|i| format!("taxon{i:03}")).collect();
    c.bench_function("newick_roundtrip_150", |b| {
        b.iter(|| {
            let text = newick::write_tree(&tree, &names);
            black_box(
                newick::parse_tree_with_names(&text, &names)
                    .unwrap()
                    .num_tips(),
            )
        })
    });
}

fn bench_baseline_methods(c: &mut Criterion) {
    // The §3.2 comparators: a Fitch parsimony evaluation vs the ML kernel
    // (see the likelihood benches), and the NJ construction.
    let tree = yule_tree(50, 0.08, 9);
    let alignment = evolve(&tree, 500, &EvolutionConfig::default(), 3, "t");
    let patterns = PatternAlignment::compress(&alignment);
    c.bench_function("fitch_parsimony_50taxa", |b| {
        b.iter(|| black_box(fitch_score(&tree, &patterns).0))
    });
    let matrix = DistanceMatrix::from_tree(&tree);
    c.bench_function("neighbor_joining_50taxa", |b| {
        b.iter(|| black_box(neighbor_joining(&matrix).num_tips()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_move_enumeration, bench_topology_identity, bench_baseline_methods
}
criterion_main!(benches);
