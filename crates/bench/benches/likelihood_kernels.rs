//! Criterion microbenches of the likelihood kernels — the computation the
//! paper's workers spend their time in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdml_core::config::SearchConfig;
use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
use fdml_likelihood::categories::RateCategories;
use fdml_likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fdml_likelihood::f84::F84Model;
use fdml_likelihood::kernels::{self, KernelMode, KernelScratch};
use fdml_likelihood::reference;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::tree::Tree;
use std::hint::black_box;

fn dataset(taxa: usize, sites: usize) -> (Alignment, Tree) {
    let tree = yule_tree(taxa, 0.08, 42);
    let alignment = evolve(&tree, sites, &EvolutionConfig::default(), 7, "t");
    (alignment, tree)
}

fn bench_transition_matrix(c: &mut Criterion) {
    let model = F84Model::new([0.26, 0.22, 0.31, 0.21], 2.0);
    c.bench_function("f84_transition_matrix", |b| {
        b.iter(|| black_box(model.transition_matrix(black_box(0.137), 1.0)))
    });
    c.bench_function("f84_coefficients_d2", |b| {
        b.iter(|| black_box(model.coefficients_d2(black_box(0.137), 1.0)))
    });
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_evaluate");
    for taxa in [16usize, 50, 101] {
        let (alignment, tree) = dataset(taxa, 500);
        let engine = SearchConfig::default().build_engine(&alignment);
        group.bench_with_input(BenchmarkId::new("evaluate", taxa), &taxa, |b, _| {
            b.iter(|| black_box(engine.evaluate(&tree).ln_likelihood))
        });
        group.bench_with_input(BenchmarkId::new("optimize", taxa), &taxa, |b, _| {
            b.iter(|| {
                let mut t = tree.clone();
                black_box(
                    engine
                        .optimize(&mut t, &OptimizeOptions::default())
                        .ln_likelihood,
                )
            })
        });
    }
    group.finish();
}

fn bench_patterns_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_by_sites");
    for sites in [200usize, 800, 1858] {
        let (alignment, tree) = dataset(32, sites);
        let engine = LikelihoodEngine::new(&alignment);
        group.bench_with_input(BenchmarkId::from_parameter(sites), &sites, |b, _| {
            b.iter(|| black_box(engine.evaluate(&tree).ln_likelihood))
        });
    }
    group.finish();
}

/// The raw CLV-combine kernel, optimized vs reference, isolated from the
/// engine (no tree traversal, no Newton).
fn bench_combine_kernels(c: &mut Criterion) {
    let np = 1024usize;
    let cats = RateCategories::single(np);
    let model = F84Model::new([0.26, 0.22, 0.31, 0.21], 2.0);
    let mut scratch = KernelScratch::new(&cats);
    let clv1: Vec<f64> = (0..np * 4).map(|i| 0.05 + (i % 17) as f64 / 18.0).collect();
    let clv2: Vec<f64> = (0..np * 4).map(|i| 0.05 + (i % 13) as f64 / 14.0).collect();
    let scale = vec![0i32; np];
    let mut out = vec![0.0; np * 4];
    let mut sc_out = vec![0i32; np];
    let mut group = c.benchmark_group("combine_clv_1024");
    for mode in [KernelMode::Optimized, KernelMode::Reference] {
        let label = match mode {
            KernelMode::Optimized => "optimized",
            KernelMode::Reference => "reference",
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(kernels::combine_edges(
                    mode,
                    &model,
                    &cats,
                    &mut scratch,
                    0.13,
                    black_box(&clv1),
                    &scale,
                    0.29,
                    black_box(&clv2),
                    &scale,
                    &mut out,
                    &mut sc_out,
                ))
            })
        });
    }
    group.finish();

    let mut w_opt = vec![fdml_likelihood::clv::WTerms::ZERO; np];
    let mut group = c.benchmark_group("w_terms_1024");
    group.bench_function("optimized", |b| {
        b.iter(|| {
            black_box(kernels::compute_w_terms(
                KernelMode::Optimized,
                &model,
                &fdml_likelihood::IntraPar::serial(),
                black_box(&clv1),
                black_box(&clv2),
                &mut w_opt,
            ))
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            black_box(reference::edge_w_terms(
                &model,
                black_box(&clv1),
                black_box(&clv2),
                &mut w_opt,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_transition_matrix, bench_full_evaluation, bench_patterns_scaling,
        bench_combine_kernels
}
criterion_main!(benches);
