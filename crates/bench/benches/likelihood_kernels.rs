//! Criterion microbenches of the likelihood kernels — the computation the
//! paper's workers spend their time in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdml_core::config::SearchConfig;
use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
use fdml_likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fdml_likelihood::f84::F84Model;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::tree::Tree;
use std::hint::black_box;

fn dataset(taxa: usize, sites: usize) -> (Alignment, Tree) {
    let tree = yule_tree(taxa, 0.08, 42);
    let alignment = evolve(&tree, sites, &EvolutionConfig::default(), 7, "t");
    (alignment, tree)
}

fn bench_transition_matrix(c: &mut Criterion) {
    let model = F84Model::new([0.26, 0.22, 0.31, 0.21], 2.0);
    c.bench_function("f84_transition_matrix", |b| {
        b.iter(|| black_box(model.transition_matrix(black_box(0.137), 1.0)))
    });
    c.bench_function("f84_coefficients_d2", |b| {
        b.iter(|| black_box(model.coefficients_d2(black_box(0.137), 1.0)))
    });
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_evaluate");
    for taxa in [16usize, 50, 101] {
        let (alignment, tree) = dataset(taxa, 500);
        let engine = SearchConfig::default().build_engine(&alignment);
        group.bench_with_input(BenchmarkId::new("evaluate", taxa), &taxa, |b, _| {
            b.iter(|| black_box(engine.evaluate(&tree).ln_likelihood))
        });
        group.bench_with_input(BenchmarkId::new("optimize", taxa), &taxa, |b, _| {
            b.iter(|| {
                let mut t = tree.clone();
                black_box(
                    engine
                        .optimize(&mut t, &OptimizeOptions::default())
                        .ln_likelihood,
                )
            })
        });
    }
    group.finish();
}

fn bench_patterns_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_by_sites");
    for sites in [200usize, 800, 1858] {
        let (alignment, tree) = dataset(32, sites);
        let engine = LikelihoodEngine::new(&alignment);
        group.bench_with_input(BenchmarkId::from_parameter(sites), &sites, |b, _| {
            b.iter(|| black_box(engine.evaluate(&tree).ln_likelihood))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_transition_matrix, bench_full_evaluation, bench_patterns_scaling
}
criterion_main!(benches);
