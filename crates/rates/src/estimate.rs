//! Per-site maximum-likelihood rate estimation on a fixed tree.

use fdml_likelihood::engine::LikelihoodEngine;
use fdml_phylo::tree::Tree;

/// A geometric grid of candidate rate multipliers.
#[derive(Debug, Clone, Copy)]
pub struct RateGrid {
    /// Smallest rate considered (sites that never change pin here).
    pub min: f64,
    /// Largest rate considered.
    pub max: f64,
    /// Number of grid points (≥ 3).
    pub points: usize,
}

impl Default for RateGrid {
    fn default() -> RateGrid {
        RateGrid {
            min: 0.05,
            max: 20.0,
            points: 25,
        }
    }
}

impl RateGrid {
    /// The grid values, geometrically spaced.
    pub fn values(&self) -> Vec<f64> {
        assert!(self.points >= 3 && self.min > 0.0 && self.max > self.min);
        let step = (self.max / self.min).ln() / (self.points - 1) as f64;
        (0..self.points)
            .map(|i| self.min * (step * i as f64).exp())
            .collect()
    }
}

/// The result of a rate estimation.
#[derive(Debug, Clone)]
pub struct RateEstimate {
    /// ML rate per pattern (the engine's working unit).
    pub per_pattern: Vec<f64>,
    /// ML rate per original alignment site.
    pub per_site: Vec<f64>,
}

/// For every site, find the rate multiplier maximizing that site's
/// likelihood on `tree` (grid scan with parabolic refinement in log-rate,
/// as DNArates does with its iterative search).
pub fn estimate_rates(engine: &LikelihoodEngine, tree: &Tree, grid: &RateGrid) -> RateEstimate {
    let values = grid.values();
    // One full likelihood pass per grid point gives lnL per pattern.
    let table: Vec<Vec<f64>> = values
        .iter()
        .map(|&r| engine.per_pattern_lnl_at_rate(tree, r))
        .collect();
    let np = engine.patterns().num_patterns();
    let mut per_pattern = Vec::with_capacity(np);
    for p in 0..np {
        let mut best = 0usize;
        for (gi, row) in table.iter().enumerate() {
            if row[p] > table[best][p] {
                best = gi;
            }
        }
        // Parabolic refinement in ln(rate) when the optimum is interior.
        let rate = if best == 0 || best == values.len() - 1 {
            values[best]
        } else {
            let x0 = values[best - 1].ln();
            let x1 = values[best].ln();
            let x2 = values[best + 1].ln();
            let y0 = table[best - 1][p];
            let y1 = table[best][p];
            let y2 = table[best + 1][p];
            let denom = (x1 - x0) * (y1 - y2) - (x1 - x2) * (y1 - y0);
            if denom.abs() < 1e-30 {
                values[best]
            } else {
                let num = (x1 - x0) * (x1 - x0) * (y1 - y2) - (x1 - x2) * (x1 - x2) * (y1 - y0);
                let x = x1 - 0.5 * num / denom;
                x.exp().clamp(grid.min, grid.max)
            }
        };
        per_pattern.push(rate);
    }
    let per_site = engine.patterns().expand_to_sites(&per_pattern);
    RateEstimate {
        per_pattern,
        per_site,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
    use fdml_likelihood::engine::OptimizeOptions;
    use fdml_phylo::alignment::Alignment;

    #[test]
    fn grid_is_geometric() {
        let g = RateGrid {
            min: 0.1,
            max: 10.0,
            points: 5,
        };
        let v = g.values();
        assert_eq!(v.len(), 5);
        assert!((v[0] - 0.1).abs() < 1e-12);
        assert!((v[4] - 10.0).abs() < 1e-9);
        // Constant ratio.
        let r = v[1] / v[0];
        for w in v.windows(2) {
            assert!((w[1] / w[0] - r).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_sites_get_minimum_rate() {
        let a = Alignment::from_strings(&[
            ("t0", "AAAAACGT"),
            ("t1", "AAAAAGGA"),
            ("t2", "AAAAATGC"),
            ("t3", "AAAAACCA"),
        ])
        .unwrap();
        let engine = LikelihoodEngine::new(&a);
        let mut tree = fdml_phylo::tree::Tree::triplet(0, 1, 2);
        let e = tree.incident_edges(tree.tip_of(2).unwrap())[0];
        tree.insert_taxon(3, e).unwrap();
        engine.optimize(&mut tree, &OptimizeOptions::default());
        let grid = RateGrid::default();
        let est = estimate_rates(&engine, &tree, &grid);
        // The first five columns are constant → minimum rate; the variable
        // tail gets a higher rate.
        for site in 0..5 {
            assert!(
                (est.per_site[site] - grid.min).abs() < 1e-9,
                "constant site {site} got rate {}",
                est.per_site[site]
            );
        }
        for site in 5..8 {
            assert!(est.per_site[site] > grid.min * 2.0, "variable site {site}");
        }
    }

    #[test]
    fn recovers_rate_ranking_from_simulation() {
        // Simulate with known slow/fast halves by splicing two alignments.
        let tree = yule_tree(12, 0.12, 3);
        let slow_cfg = EvolutionConfig {
            rate_sigma: 0.0,
            prop_invariant: 0.0,
            missing_fraction: 0.0,
            ..Default::default()
        };
        let slow = evolve(&tree, 300, &slow_cfg, 10, "t");
        // Fast half: same process on a tree with 5× branch lengths.
        let mut fast_tree = tree.clone();
        for e in fast_tree.edge_ids().collect::<Vec<_>>() {
            let len = fast_tree.length(e);
            fast_tree.set_length(e, len * 5.0);
        }
        let fast = evolve(&fast_tree, 300, &slow_cfg, 11, "t");
        let rows: Vec<(String, Vec<fdml_phylo::dna::Nucleotide>)> = (0..12u32)
            .map(|t| {
                let mut seq = slow.sequence(t).to_vec();
                seq.extend_from_slice(fast.sequence(t));
                (slow.name(t).to_string(), seq)
            })
            .collect();
        let spliced = Alignment::new(rows).unwrap();
        let engine = LikelihoodEngine::new(&spliced);
        let mut ref_tree = tree.clone();
        engine.optimize(&mut ref_tree, &OptimizeOptions::default());
        let est = estimate_rates(&engine, &ref_tree, &RateGrid::default());
        let mean_slow: f64 = est.per_site[..300].iter().sum::<f64>() / 300.0;
        let mean_fast: f64 = est.per_site[300..].iter().sum::<f64>() / 300.0;
        assert!(
            mean_fast > mean_slow * 2.0,
            "fast half must be detected: slow {mean_slow:.3} vs fast {mean_fast:.3}"
        );
    }

    #[test]
    fn per_site_expansion_matches_patterns() {
        let a = Alignment::from_strings(&[("x", "AACC"), ("y", "GGTT")]).unwrap();
        let engine = LikelihoodEngine::new(&a);
        let tree = fdml_phylo::tree::Tree::pair(0, 1);
        let est = estimate_rates(
            &engine,
            &tree,
            &RateGrid {
                min: 0.1,
                max: 5.0,
                points: 7,
            },
        );
        assert_eq!(est.per_site.len(), 4);
        // Sites 0,1 share a pattern, as do 2,3.
        assert_eq!(est.per_site[0], est.per_site[1]);
        assert_eq!(est.per_site[2], est.per_site[3]);
    }
}
