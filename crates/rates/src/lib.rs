//! Per-site evolutionary rate estimation — the DNArates analog.
//!
//! fastDNAml adjusts the Markov process "at each sequence position to
//! account for differences between loci in propensity to show genetic
//! changes. … One program that performs such estimations is Olsen's
//! DNArates" (paper §2). This crate reproduces that companion program:
//! given a reference tree, it finds for each site the rate multiplier that
//! maximizes the site's likelihood, then groups sites into a small number
//! of rate categories consumed by the likelihood engine.

#![warn(missing_docs)]

pub mod categorize;
pub mod estimate;
pub mod io;

pub use categorize::categorize;
pub use estimate::{estimate_rates, RateEstimate, RateGrid};
pub use io::{parse_report, write_report, RateReport};
