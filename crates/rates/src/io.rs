//! The DNArates report format: how the `dnarates` program hands categories
//! to `fastdnaml`.
//!
//! ```text
//! # dnarates: <taxa> taxa, <sites> sites, <patterns> patterns, <k> categories
//! category rates: r0 r1 … r{k-1}
//! <site> <rate> <category>
//! …
//! ```
//!
//! One line per alignment site, 1-based site numbers. `fastdnaml
//! --rates-file` consumes this to run the search under the estimated
//! category model.

use fdml_likelihood::categories::RateCategories;
use fdml_phylo::patterns::PatternAlignment;
use std::fmt::Write as _;

/// A parsed rate report.
#[derive(Debug, Clone, PartialEq)]
pub struct RateReport {
    /// Category rates.
    pub rates: Vec<f64>,
    /// Per-site ML rate estimates.
    pub per_site_rate: Vec<f64>,
    /// Per-site category index.
    pub per_site_category: Vec<u32>,
}

impl RateReport {
    /// Convert the per-site assignment into the per-pattern categories the
    /// likelihood engine needs. Sites mapping to the same pattern must
    /// agree on their category (they do when the report was produced for
    /// this alignment); on conflict the first site wins.
    pub fn to_categories(&self, patterns: &PatternAlignment) -> RateCategories {
        assert_eq!(self.per_site_category.len(), patterns.num_sites());
        let mut per_pattern = vec![u32::MAX; patterns.num_patterns()];
        for (site, &cat) in self.per_site_category.iter().enumerate() {
            let p = patterns.pattern_of_site(site) as usize;
            if per_pattern[p] == u32::MAX {
                per_pattern[p] = cat;
            }
        }
        // Patterns not covered (cannot happen for a matching alignment)
        // default to the slowest category.
        for c in &mut per_pattern {
            if *c == u32::MAX {
                *c = 0;
            }
        }
        RateCategories::new(self.rates.clone(), per_pattern)
    }
}

/// Render a report.
pub fn write_report(
    rates: &[f64],
    per_site_rate: &[f64],
    per_site_category: &[u32],
    header: &str,
) -> String {
    assert_eq!(per_site_rate.len(), per_site_category.len());
    let mut out = String::new();
    writeln!(out, "# dnarates: {header}").unwrap();
    write!(out, "category rates:").unwrap();
    for r in rates {
        write!(out, " {r:.6}").unwrap();
    }
    writeln!(out).unwrap();
    for (site, (&rate, &cat)) in per_site_rate.iter().zip(per_site_category).enumerate() {
        writeln!(out, "{:>6} {:>10.6} {:>4}", site + 1, rate, cat).unwrap();
    }
    out
}

/// Parse a report.
pub fn parse_report(text: &str) -> Result<RateReport, String> {
    let mut rates: Option<Vec<f64>> = None;
    let mut per_site_rate = Vec::new();
    let mut per_site_category = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("category rates:") {
            let parsed: Result<Vec<f64>, _> =
                rest.split_whitespace().map(str::parse::<f64>).collect();
            rates = Some(parsed.map_err(|e| format!("line {}: {e}", lineno + 1))?);
            continue;
        }
        let mut parts = line.split_whitespace();
        let site: usize = parts
            .next()
            .ok_or_else(|| format!("line {}: missing site", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let rate: f64 = parts
            .next()
            .ok_or_else(|| format!("line {}: missing rate", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let cat: u32 = parts
            .next()
            .ok_or_else(|| format!("line {}: missing category", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if site != per_site_rate.len() + 1 {
            return Err(format!(
                "line {}: sites must be consecutive from 1, got {site}",
                lineno + 1
            ));
        }
        per_site_rate.push(rate);
        per_site_category.push(cat);
    }
    let rates = rates.ok_or("missing 'category rates:' line")?;
    if per_site_rate.is_empty() {
        return Err("no site lines".into());
    }
    if let Some(&bad) = per_site_category
        .iter()
        .find(|&&c| c as usize >= rates.len())
    {
        return Err(format!(
            "category {bad} out of range ({} rates)",
            rates.len()
        ));
    }
    Ok(RateReport {
        rates,
        per_site_rate,
        per_site_category,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::alignment::Alignment;

    #[test]
    fn roundtrip() {
        let text = write_report(
            &[0.2, 1.0, 4.0],
            &[0.3, 0.9, 3.3, 0.3],
            &[0, 1, 2, 0],
            "test",
        );
        let report = parse_report(&text).unwrap();
        assert_eq!(report.rates, vec![0.2, 1.0, 4.0]);
        assert_eq!(report.per_site_category, vec![0, 1, 2, 0]);
        assert!((report.per_site_rate[2] - 3.3).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_report("").is_err());
        assert!(parse_report("category rates: 1.0\n").is_err()); // no sites
        assert!(parse_report("1 0.5 0\n").is_err()); // no rates line
        let gap = "category rates: 1.0\n1 0.5 0\n3 0.5 0\n";
        assert!(parse_report(gap).is_err()); // non-consecutive sites
        let bad_cat = "category rates: 1.0\n1 0.5 5\n";
        assert!(parse_report(bad_cat).is_err());
    }

    #[test]
    fn to_categories_maps_sites_to_patterns() {
        // Alignment with repeated columns: AABA over two taxa.
        let a = Alignment::from_strings(&[("x", "AACA"), ("y", "GGTG")]).unwrap();
        let patterns = PatternAlignment::compress(&a);
        assert_eq!(patterns.num_patterns(), 2);
        let report = RateReport {
            rates: vec![0.5, 2.0],
            per_site_rate: vec![0.5, 0.5, 2.0, 0.5],
            per_site_category: vec![0, 0, 1, 0],
        };
        let cats = report.to_categories(&patterns);
        assert_eq!(cats.num_patterns(), 2);
        let p_common = patterns.pattern_of_site(0) as usize;
        let p_rare = patterns.pattern_of_site(2) as usize;
        assert_eq!(cats.category_of(p_common), 0);
        assert_eq!(cats.category_of(p_rare), 1);
    }
}
