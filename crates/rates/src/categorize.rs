//! Grouping per-site rates into categories.
//!
//! DNArates emits a small number of rate categories plus a per-site
//! assignment, which fastDNAml consumes. Sites are binned by rank in
//! log-rate space; each category's rate is the weighted geometric mean of
//! its member sites, and the whole set is normalized so the weighted mean
//! rate is one (keeping branch lengths in expected substitutions per site).

use fdml_likelihood::categories::RateCategories;

/// Build `k` rate categories from per-pattern rates and pattern weights.
pub fn categorize(per_pattern: &[f64], weights: &[u32], k: usize) -> RateCategories {
    assert!(k >= 1, "at least one category");
    assert_eq!(per_pattern.len(), weights.len());
    assert!(!per_pattern.is_empty());
    let np = per_pattern.len();
    let k = k.min(np);

    // Rank patterns by rate; split into k bins of (weighted) equal size.
    let mut idx: Vec<usize> = (0..np).collect();
    idx.sort_by(|&a, &b| per_pattern[a].total_cmp(&per_pattern[b]).then(a.cmp(&b)));
    let total_weight: u64 = weights.iter().map(|&w| w as u64).sum();
    let mut assignment = vec![0u32; np];
    let mut sums = vec![0.0f64; k]; // Σ w·ln r per bin
    let mut wsum = vec![0.0f64; k];
    let mut seen: u64 = 0;
    for &p in &idx {
        let bin = (((seen as u128 * k as u128) / total_weight.max(1) as u128) as usize).min(k - 1);
        assignment[p] = bin as u32;
        sums[bin] += weights[p] as f64 * per_pattern[p].max(1e-9).ln();
        wsum[bin] += weights[p] as f64;
        seen += weights[p] as u64;
    }
    // Weighted geometric mean per bin; empty bins inherit a neighbor.
    let mut rates = vec![1.0f64; k];
    for c in 0..k {
        if wsum[c] > 0.0 {
            rates[c] = (sums[c] / wsum[c]).exp();
        } else if c > 0 {
            rates[c] = rates[c - 1];
        }
    }
    // Collapse labels of empty bins onto their populated neighbours is not
    // needed: assignments only reference populated bins by construction,
    // but keep rates strictly positive either way.
    RateCategories::new(rates, assignment).normalized(weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_category_is_unit_rate() {
        let cats = categorize(&[0.5, 2.0, 1.0], &[1, 1, 1], 1);
        assert_eq!(cats.num_categories(), 1);
        assert!(
            (cats.rate(0) - 1.0).abs() < 1e-12,
            "normalization forces mean 1"
        );
    }

    #[test]
    fn slow_and_fast_separate() {
        let rates = [0.1, 0.1, 0.1, 5.0, 5.0, 5.0];
        let weights = [1u32; 6];
        let cats = categorize(&rates, &weights, 2);
        assert_eq!(cats.num_categories(), 2);
        // First three patterns in the slow bin, rest in the fast bin.
        for p in 0..3 {
            assert_eq!(cats.category_of(p), 0);
        }
        for p in 3..6 {
            assert_eq!(cats.category_of(p), 1);
        }
        assert!(cats.rate(1) > cats.rate(0) * 10.0);
        // Weighted mean is one.
        let mean: f64 = (0..6).map(|p| cats.rate_of_pattern(p)).sum::<f64>() / 6.0;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_shift_bin_boundaries() {
        // One heavy slow pattern vs several light fast ones: the heavy
        // pattern fills the first bin alone.
        let rates = [0.1, 2.0, 2.0, 2.0];
        let weights = [30u32, 1, 1, 1];
        let cats = categorize(&rates, &weights, 2);
        assert_eq!(cats.category_of(0), 0);
        assert_eq!(cats.category_of(1), 1);
        assert_eq!(cats.category_of(3), 1);
    }

    #[test]
    fn more_categories_than_patterns_is_clamped() {
        let cats = categorize(&[1.0, 3.0], &[1, 1], 10);
        assert!(cats.num_categories() <= 2);
    }

    #[test]
    fn ties_are_deterministic() {
        let rates = [1.0; 8];
        let weights = [1u32; 8];
        let a = categorize(&rates, &weights, 4);
        let b = categorize(&rates, &weights, 4);
        assert_eq!(a.assignment(), b.assignment());
    }
}
