//! Property-based tests of the cluster simulator on randomized traces.

use fdml_core::trace::{RoundKind, RoundRecord, SearchTrace};
use fdml_simsp::{simulate_trace, simulate_trace_speculative, CostModel, SimConfig};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = SearchTrace> {
    (
        4usize..60, // taxa
        1usize..20, // rounds
        proptest::collection::vec((1usize..120, 0u64..1_000_000, any::<bool>()), 1..20),
    )
        .prop_map(|(taxa, _, round_specs)| {
            let rounds: Vec<RoundRecord> = round_specs
                .iter()
                .enumerate()
                .map(|(i, &(size, work_seed, improved))| RoundRecord {
                    kind: if i % 3 == 0 {
                        RoundKind::TaxonAddition
                    } else {
                        RoundKind::Rearrangement
                    },
                    taxa_in_tree: taxa,
                    candidate_work: (0..size)
                        .map(|j| 100_000 + (work_seed.wrapping_mul(j as u64 + 1)) % 900_000)
                        .collect(),
                    master_work: work_seed % 100_000,
                    improved: improved || i % 3 == 0,
                })
                .collect();
            SearchTrace {
                dataset: "prop".into(),
                num_taxa: taxa,
                num_sites: 500,
                num_patterns: 180,
                jumble_seed: 1,
                full_evaluation: true,
                rounds,
                final_ln_likelihood: -1.0,
                final_newick: String::new(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wall_time_is_monotone_in_processors(trace in arb_trace()) {
        let cost = CostModel::power3_sp();
        let mut last = f64::INFINITY;
        for p in [4usize, 8, 16, 32, 64, 128] {
            let r = simulate_trace(&trace, &SimConfig { processors: p, cost: cost.clone() });
            prop_assert!(r.wall_seconds <= last * (1.0 + 1e-9), "P={}", p);
            prop_assert!(r.wall_seconds.is_finite() && r.wall_seconds > 0.0);
            prop_assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
            last = r.wall_seconds;
        }
    }

    #[test]
    fn parallel_never_beats_the_work_lower_bound(trace in arb_trace()) {
        // Wall time is bounded below by total work / workers and by the
        // largest single candidate.
        let cost = CostModel::power3_sp();
        for p in [4usize, 16, 64] {
            let cfg = SimConfig { processors: p, cost: cost.clone() };
            let r = simulate_trace(&trace, &cfg);
            let per_worker = r.worker_busy_seconds / cfg.workers() as f64;
            prop_assert!(r.wall_seconds >= per_worker - 1e-9);
            let slowest = trace
                .rounds
                .iter()
                .flat_map(|round| {
                    let cost = &cost;
                    round.candidate_work.iter().map(move |&w| {
                        cost.candidate_seconds(w, round.taxa_in_tree, trace.num_patterns, true)
                    })
                })
                .fold(0.0f64, f64::max);
            prop_assert!(r.wall_seconds >= slowest - 1e-9);
        }
    }

    #[test]
    fn speculation_helps_or_ties_never_hurts_much(trace in arb_trace()) {
        // Speculation removes barriers; it can reorder work so tiny
        // regressions from scheduling are possible in theory, but it must
        // never cost more than a whisker.
        let cost = CostModel::power3_sp();
        for p in [4usize, 32, 128] {
            let cfg = SimConfig { processors: p, cost: cost.clone() };
            let plain = simulate_trace(&trace, &cfg);
            let spec = simulate_trace_speculative(&trace, &cfg);
            prop_assert!(
                spec.wall_seconds <= plain.wall_seconds * 1.001 + 1e-6,
                "P={}: speculative {} vs plain {}",
                p,
                spec.wall_seconds,
                plain.wall_seconds
            );
            prop_assert!((spec.serial_seconds - plain.serial_seconds).abs() < 1e-9);
        }
    }

    #[test]
    fn speedup_bounded_by_worker_count(trace in arb_trace()) {
        let cost = CostModel::power3_sp();
        for p in [4usize, 16, 64] {
            let cfg = SimConfig { processors: p, cost: cost.clone() };
            let r = simulate_trace(&trace, &cfg);
            prop_assert!(
                r.speedup() <= cfg.workers() as f64 * (1.0 + 1e-9),
                "P={}: speedup {} > workers {}",
                p,
                r.speedup(),
                cfg.workers()
            );
        }
    }
}
