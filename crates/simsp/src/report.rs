//! Aggregation and formatting of scaling results (Figures 3 and 4).

use crate::cost::CostModel;
use crate::schedule::{simulate_trace, SimConfig};
use fdml_core::trace::SearchTrace;
use serde::{Deserialize, Serialize};

/// One row of the scaling study: a dataset at a processor count, averaged
/// over jumbles (the paper averages ten orderings per point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Dataset label.
    pub dataset: String,
    /// Processor count (1 = serial program).
    pub processors: usize,
    /// Mean wall seconds across jumbles.
    pub mean_wall_seconds: f64,
    /// Mean speedup versus the serial program.
    pub mean_speedup: f64,
    /// Mean worker utilization.
    pub mean_utilization: f64,
    /// Number of jumbles averaged.
    pub jumbles: usize,
}

/// Simulate every trace at every processor count and average per dataset,
/// as the paper does ("each data point is an average of ten orderings").
pub fn scaling_table(
    traces: &[SearchTrace],
    processors: &[usize],
    cost: &CostModel,
) -> Vec<ScalingRow> {
    assert!(!traces.is_empty());
    let dataset = traces[0].dataset.clone();
    assert!(
        traces.iter().all(|t| t.dataset == dataset),
        "scaling_table averages one dataset at a time"
    );
    processors
        .iter()
        .map(|&p| {
            let mut wall = 0.0;
            let mut speedup = 0.0;
            let mut util = 0.0;
            for t in traces {
                let r = simulate_trace(
                    t,
                    &SimConfig {
                        processors: p,
                        cost: cost.clone(),
                    },
                );
                wall += r.wall_seconds;
                speedup += r.speedup();
                util += r.utilization;
            }
            let n = traces.len() as f64;
            ScalingRow {
                dataset: dataset.clone(),
                processors: p,
                mean_wall_seconds: wall / n,
                mean_speedup: speedup / n,
                mean_utilization: util / n,
                jumbles: traces.len(),
            }
        })
        .collect()
}

/// Render rows as the fixed-width table printed by the figure binaries.
pub fn format_rows(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    out.push_str("dataset          procs      seconds      speedup  utilization\n");
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>5} {:>12.1} {:>12.2} {:>12.3}\n",
            r.dataset, r.processors, r.mean_wall_seconds, r.mean_speedup, r.mean_utilization
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_core::trace::{RoundKind, RoundRecord};

    fn trace(seed: u64) -> SearchTrace {
        SearchTrace {
            dataset: "d".into(),
            num_taxa: 20,
            num_sites: 100,
            num_patterns: 60,
            jumble_seed: seed,
            full_evaluation: true,
            rounds: (0..10)
                .map(|r| RoundRecord {
                    kind: RoundKind::TaxonAddition,
                    taxa_in_tree: 20,
                    candidate_work: (0..35)
                        .map(|j| 500_000 + (seed * 37 + r * 13 + j * 7) % 300_000)
                        .collect(),
                    master_work: 100_000,
                    improved: true,
                })
                .collect(),
            final_ln_likelihood: -1.0,
            final_newick: String::new(),
        }
    }

    #[test]
    fn averages_across_jumbles() {
        let traces = vec![trace(1), trace(2), trace(3)];
        let rows = scaling_table(&traces, &[1, 4, 16], &CostModel::power3_sp());
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.jumbles == 3));
        // Serial row has speedup exactly 1.
        assert!((rows[0].mean_speedup - 1.0).abs() < 1e-12);
        // 16 processors faster than 4.
        assert!(rows[2].mean_wall_seconds < rows[1].mean_wall_seconds);
    }

    #[test]
    #[should_panic(expected = "one dataset")]
    fn mixed_datasets_rejected() {
        let mut b = trace(2);
        b.dataset = "other".into();
        scaling_table(&[trace(1), b], &[1], &CostModel::power3_sp());
    }

    #[test]
    fn table_formatting_contains_rows() {
        let rows = scaling_table(&[trace(1)], &[1, 4], &CostModel::power3_sp());
        let text = format_rows(&rows);
        assert!(text.contains("procs"));
        assert_eq!(text.lines().count(), 3);
    }
}
