//! Discrete-event simulation of the paper's evaluation platform.
//!
//! The paper measured fastDNAml on an IBM RS/6000 SP: Power3+ "high nodes"
//! (375 MHz) connected by an SP Switch2, from 4 to 64 processors, with the
//! serial program on one processor as the baseline (§3.1). That machine is
//! not available here, so the scaling study is reproduced by simulation:
//!
//! 1. The real search runs once per dataset per jumble, recording a
//!    [`fdml_core::trace::SearchTrace`] — the exact sequence of dispatch
//!    rounds and the exact work units of every candidate tree.
//! 2. [`schedule::simulate_trace`] replays the trace for any processor
//!    count: three processors are dedicated to master / foreman / monitor
//!    (the paper's instrumented configuration), the rest are workers fed
//!    from the foreman's queue; a round ends when its last tree returns
//!    (the paper's "loosely synchronized" barrier).
//! 3. [`cost::CostModel`] converts work units to Power3+ seconds and
//!    charges SP Switch2 latency/bandwidth per message.
//!
//! Everything that shapes the paper's Figures 3 and 4 — round sizes versus
//! worker count, per-tree cost variance, dedicated control processors,
//! dispatch serialization — is taken from the measured trace or the
//! machine model, not from curve fitting.
//!
//! Past the paper's 64-processor ceiling,
//! [`schedule::simulate_trace_hierarchical`] replays the same traces
//! through the two-level foreman tree (regional foremen, lease batches,
//! and the *measured* `fdml-wire` binary frame sizes), extending the
//! scaling curves to 4096 simulated ranks — the `scaling_report` bench
//! writes them to `BENCH_scaling.json`.

#![warn(missing_docs)]

pub mod cost;
pub mod report;
pub mod schedule;

pub use cost::CostModel;
pub use report::{scaling_table, ScalingRow};
pub use schedule::{
    binary_edit_task_bytes, simulate_trace, simulate_trace_hierarchical,
    simulate_trace_hierarchical_observed, simulate_trace_observed, simulate_trace_speculative,
    HierConfig, SimConfig, SimReport,
};
