//! The machine cost model: Power3+ compute rate and SP Switch2 messaging.

use fdml_core::trace::SearchTrace;
use serde::{Deserialize, Serialize};

/// Cost model of one simulated cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds one work unit takes on one processor. A work unit is ≈ 40
    /// floating-point operations (one CLV pattern update, see
    /// `fdml-likelihood::work`); a 375 MHz Power3+ sustains roughly 200
    /// Mflop/s on pointer-chasing likelihood code, giving ≈ 2×10⁻⁷ s.
    pub seconds_per_work_unit: f64,
    /// One-way message latency (SP Switch2 MPI latency ≈ 20 µs).
    pub message_latency: f64,
    /// Link bandwidth in bytes/second (≈ 350 MB/s sustained).
    pub bandwidth: f64,
    /// Time the foreman is occupied per dispatched message (serialization
    /// of the dispatch loop).
    pub foreman_overhead: f64,
    /// Time the master spends generating/serializing one candidate tree
    /// per taxon (Newick generation is linear in tree size).
    pub master_gen_per_taxon: f64,
    /// Smoothing passes assumed for the full-evaluation floor when the
    /// trace was recorded with incremental scoring.
    pub assumed_passes: usize,
    /// Pattern-block threads each worker rank drives (`--intra-threads`);
    /// 1 is the single-threaded worker the paper measured. Worker compute
    /// is divided by the critical-path speedup of the block schedule
    /// (`fdml_likelihood::par::modeled_speedup`), never by the raw thread
    /// count — an alignment with few pattern blocks cannot use many
    /// threads, and the model says so.
    #[serde(default = "default_intra_threads")]
    pub intra_threads: usize,
}

fn default_intra_threads() -> usize {
    1
}

impl CostModel {
    /// The RS/6000 SP model used for the paper reproduction.
    pub fn power3_sp() -> CostModel {
        CostModel {
            seconds_per_work_unit: 2.0e-7,
            message_latency: 20e-6,
            bandwidth: 350e6,
            foreman_overhead: 10e-6,
            master_gen_per_taxon: 1e-6,
            assumed_passes: 8,
            intra_threads: 1,
        }
    }

    /// A model calibrated from a measured host rate: `ns_per_unit_host` is
    /// the benchmarked nanoseconds per work unit on the machine running the
    /// benches (see the `calibrate` bench), and `host_speedup_vs_power3` is
    /// how many times faster that host is than a 375 MHz Power3+.
    pub fn from_host_calibration(ns_per_unit_host: f64, host_speedup_vs_power3: f64) -> CostModel {
        CostModel {
            seconds_per_work_unit: ns_per_unit_host * 1e-9 * host_speedup_vs_power3,
            ..CostModel::power3_sp()
        }
    }

    /// Transfer time of one message of `bytes`.
    pub fn message_seconds(&self, bytes: usize) -> f64 {
        self.message_latency + bytes as f64 / self.bandwidth
    }

    /// Approximate size of a tree message for a tree on `taxa` taxa
    /// (Newick text ≈ 30 bytes per taxon plus framing).
    pub fn tree_message_bytes(&self, taxa: usize) -> usize {
        30 * taxa + 64
    }

    /// Work units of the *fixed* part of a full tree evaluation (CLV
    /// construction plus smoothing sweeps) for a tree on `taxa` taxa over
    /// `patterns` patterns. When a trace was recorded with incremental
    /// scoring, each candidate's worker cost is this floor plus the
    /// recorded variable units; traces recorded under full evaluation
    /// already include it.
    ///
    /// Derivation: 2E CLV updates to build both sweeps, and per pass and
    /// edge roughly one up-CLV update, one W-term pass, ~5 Newton
    /// pattern-iterations (≈2.5 units), and one down-CLV update — about 5.5
    /// units per pattern-edge-pass. `assumed_passes` defaults to the
    /// engine's default of 8, though convergence usually stops earlier;
    /// the calibration bench validates this against measurement.
    pub fn full_eval_floor_units(&self, taxa: usize, patterns: usize) -> u64 {
        let edges = (2 * taxa).saturating_sub(3) as u64;
        let np = patterns as u64;
        2 * edges * np + (self.assumed_passes as u64) * edges * np * 11 / 2
    }

    /// The intra-rank speedup a worker achieves on `patterns` patterns:
    /// the critical-path speedup of the round-robin block schedule at
    /// `intra_threads` threads (1.0 for the single-threaded worker).
    pub fn intra_speedup(&self, patterns: usize) -> f64 {
        fdml_likelihood::par::modeled_speedup(patterns, self.intra_threads)
    }

    /// Worker compute seconds for one candidate in a given trace mode.
    pub fn candidate_seconds(
        &self,
        recorded_units: u64,
        taxa: usize,
        patterns: usize,
        full_evaluation: bool,
    ) -> f64 {
        let units = if full_evaluation {
            recorded_units
        } else {
            recorded_units + self.full_eval_floor_units(taxa, patterns)
        };
        units as f64 * self.seconds_per_work_unit / self.intra_speedup(patterns)
    }

    /// Total serial-program seconds for a trace: every candidate evaluated
    /// one after another on a single processor, plus the master-side work,
    /// with no messaging (the paper's conservative baseline). The serial
    /// program is single-threaded by definition, so the baseline ignores
    /// `intra_threads` — speedup figures stay relative to one processor
    /// running one thread.
    pub fn serial_seconds(&self, trace: &SearchTrace) -> f64 {
        let one_thread = CostModel {
            intra_threads: 1,
            ..self.clone()
        };
        let mut total = 0.0;
        for round in &trace.rounds {
            for &w in &round.candidate_work {
                total += one_thread.candidate_seconds(
                    w,
                    round.taxa_in_tree,
                    trace.num_patterns,
                    trace.full_evaluation,
                );
            }
            total += round.master_work as f64 * self.seconds_per_work_unit;
            total += round.candidate_work.len() as f64
                * round.taxa_in_tree as f64
                * self.master_gen_per_taxon;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_core::trace::{RoundKind, RoundRecord};

    fn toy_trace(full: bool) -> SearchTrace {
        SearchTrace {
            dataset: "toy".into(),
            num_taxa: 10,
            num_sites: 100,
            num_patterns: 50,
            jumble_seed: 1,
            full_evaluation: full,
            rounds: vec![RoundRecord {
                kind: RoundKind::TaxonAddition,
                taxa_in_tree: 10,
                candidate_work: vec![1000, 2000, 3000],
                master_work: 500,
                improved: true,
            }],
            final_ln_likelihood: -1.0,
            final_newick: "(a,b);".into(),
        }
    }

    #[test]
    fn message_time_has_latency_floor() {
        let m = CostModel::power3_sp();
        assert!(m.message_seconds(0) >= 20e-6);
        assert!(m.message_seconds(350_000_000) > 1.0);
    }

    #[test]
    fn floor_grows_with_tree_and_patterns() {
        let m = CostModel::power3_sp();
        assert!(m.full_eval_floor_units(100, 500) > m.full_eval_floor_units(50, 500));
        assert!(m.full_eval_floor_units(50, 500) > m.full_eval_floor_units(50, 100));
    }

    #[test]
    fn scorer_mode_adds_floor() {
        let m = CostModel::power3_sp();
        let with_floor = m.candidate_seconds(1000, 10, 50, false);
        let without = m.candidate_seconds(1000, 10, 50, true);
        assert!(with_floor > without);
        let floor = m.full_eval_floor_units(10, 50) as f64 * m.seconds_per_work_unit;
        assert!((with_floor - without - floor).abs() < 1e-12);
    }

    #[test]
    fn serial_seconds_sum_all_rounds() {
        let m = CostModel::power3_sp();
        let t = toy_trace(true);
        let expected = (1000.0 + 2000.0 + 3000.0 + 500.0) * m.seconds_per_work_unit
            + 3.0 * 10.0 * m.master_gen_per_taxon;
        assert!((m.serial_seconds(&t) - expected).abs() < 1e-12);
    }

    #[test]
    fn calibration_constructor_scales() {
        let m = CostModel::from_host_calibration(10.0, 50.0);
        assert!((m.seconds_per_work_unit - 5e-7).abs() < 1e-15);
    }

    #[test]
    fn intra_threads_speed_workers_but_not_the_serial_baseline() {
        let one = CostModel::power3_sp();
        let four = CostModel {
            intra_threads: 4,
            ..CostModel::power3_sp()
        };
        // 1500 patterns: 6 blocks round-robined over 4 threads, heaviest
        // thread carries 512 → 1500/512 ≈ 2.93x.
        let speedup = four.intra_speedup(1500);
        assert!(speedup > 2.5 && speedup < 4.0, "modeled {speedup}");
        let serial_units = one.candidate_seconds(100_000, 50, 1500, true);
        let threaded = four.candidate_seconds(100_000, 50, 1500, true);
        assert!((serial_units / threaded - speedup).abs() < 1e-12);
        // The serial program is single-threaded regardless of the model.
        let t = toy_trace(true);
        assert!((one.serial_seconds(&t) - four.serial_seconds(&t)).abs() < 1e-15);
        // Old serialized models (no intra_threads key) default to 1.
        let legacy: CostModel = serde_json::from_str(
            &serde_json::to_string(&one)
                .unwrap()
                .replace("\"intra_threads\":1,", "")
                .replace(",\"intra_threads\":1", ""),
        )
        .unwrap();
        assert_eq!(legacy.intra_threads, 1);
    }
}
