//! Replaying a search trace on a simulated cluster.

use crate::cost::CostModel;
use fdml_core::trace::SearchTrace;
use fdml_core::worker::ranks;
use fdml_obs::{Event, Obs};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Total processors. `1` means the serial program (no parallel
    /// overheads, the paper's baseline); `≥ 4` is the instrumented parallel
    /// program with master, foreman, and monitor on dedicated processors.
    pub processors: usize,
    /// The machine model.
    pub cost: CostModel,
}

/// Like [`simulate_trace`] but with *speculative dispatch*, the feature of
/// Ceron et al.'s parallel DNAml the paper discusses in §3.2: because "the
/// relatively low probability of a local rearrangement improving the
/// likelihood" makes fruitless rearrangement rounds the common case, the
/// master speculatively generates the next round's candidates (assuming no
/// improvement) while the current round is still being evaluated, and the
/// foreman feeds them to workers as they free up — the fruitless round's
/// barrier disappears. When a round *does* improve the tree, speculation
/// was wrong and the next round waits for the commit, exactly as in the
/// plain schedule. (The paper: "We have not studied … whether such a
/// feature would enhance the scalability of the parallel version of
/// fastDNAml. We plan to do so." — this is that study, in simulation.)
pub fn simulate_trace_speculative(trace: &SearchTrace, config: &SimConfig) -> SimReport {
    use fdml_core::trace::RoundKind;
    let cost = &config.cost;
    let serial_seconds = cost.serial_seconds(trace);
    if config.processors == 1 {
        return simulate_trace(trace, config);
    }
    let workers = config.workers();
    // Persistent worker availability across speculated (barrier-free)
    // round boundaries.
    let mut avail: Vec<f64> = vec![0.0; workers];
    let mut busy = 0.0f64;
    let mut clock = 0.0f64; // completion time of the last finished round
                            // Master-side time at which the current round's candidates are ready.
    let mut gen_ready = 0.0f64;
    let mut barrier_before_next = true;
    for round in &trace.rounds {
        let gen = round.candidate_work.len() as f64
            * round.taxa_in_tree as f64
            * cost.master_gen_per_taxon;
        let round_start = if barrier_before_next {
            // Wait for the previous round to fully finish, then generate.
            let t0 = clock + gen;
            for a in &mut avail {
                *a = (*a).max(t0);
            }
            t0
        } else {
            // Candidates were generated speculatively while the previous
            // round ran; workers flow straight into them.
            gen_ready + gen
        };
        gen_ready = round_start;
        let msg = cost.message_seconds(cost.tree_message_bytes(round.taxa_in_tree));
        let mut round_end = round_start;
        let mut free: BinaryHeap<Reverse<(OrderedF64, usize)>> = avail
            .iter()
            .enumerate()
            .map(|(w, &a)| Reverse((OrderedF64(a), w)))
            .collect();
        for (j, &units) in round.candidate_work.iter().enumerate() {
            let compute = cost.candidate_seconds(
                units,
                round.taxa_in_tree,
                trace.num_patterns,
                trace.full_evaluation,
            );
            let Reverse((OrderedF64(a), w)) = free.pop().expect("worker pool non-empty");
            let dispatch_ready = round_start + j as f64 * cost.foreman_overhead;
            let start = a.max(dispatch_ready) + msg;
            let end = start + compute + msg;
            busy += compute;
            round_end = round_end.max(end);
            avail[w] = end;
            free.push(Reverse((OrderedF64(end), w)));
        }
        clock = round_end + round.master_work as f64 * cost.seconds_per_work_unit;
        // Speculation applies only after fruitless rearrangement rounds.
        barrier_before_next = round.improved
            || !matches!(
                round.kind,
                RoundKind::Rearrangement | RoundKind::FinalRearrangement
            );
    }
    let utilization = if clock > 0.0 {
        busy / (workers as f64 * clock)
    } else {
        0.0
    };
    SimReport {
        processors: config.processors,
        wall_seconds: clock,
        serial_seconds,
        worker_busy_seconds: busy,
        utilization,
        rounds: trace.rounds.len(),
    }
}

impl SimConfig {
    /// Number of worker processors (the paper dedicates three processors
    /// to control and monitoring).
    pub fn workers(&self) -> usize {
        if self.processors == 1 {
            1
        } else {
            assert!(
                self.processors >= 4,
                "parallel fastDNAml needs master+foreman+monitor+worker"
            );
            self.processors - 3
        }
    }
}

/// Result of simulating one trace at one processor count.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Processors simulated.
    pub processors: usize,
    /// Simulated wall-clock seconds.
    pub wall_seconds: f64,
    /// The serial baseline for the same trace (for speedup).
    pub serial_seconds: f64,
    /// Sum of worker busy time (compute only).
    pub worker_busy_seconds: f64,
    /// Worker utilization: busy / (workers × wall).
    pub utilization: f64,
    /// Dispatch rounds replayed.
    pub rounds: usize,
}

impl SimReport {
    /// Speedup versus the serial program.
    pub fn speedup(&self) -> f64 {
        self.serial_seconds / self.wall_seconds
    }
}

/// Replay a trace at a processor count.
///
/// Round semantics (paper Figure 2): the master generates the round's
/// candidate trees and hands them to the foreman; the foreman dispatches to
/// idle workers, each worker returning its result as soon as it finishes
/// and immediately receiving the next tree; the round closes when the last
/// tree returns (the implicit, loosely synchronized barrier of §3.2); the
/// master then commits the best tree before the next round begins.
pub fn simulate_trace(trace: &SearchTrace, config: &SimConfig) -> SimReport {
    simulate_trace_observed(trace, config, &Obs::disabled())
}

/// [`simulate_trace`] emitting the *same structured event schema* as the
/// real threaded runtime ([`Event`]), with timestamps in simulated
/// microseconds — so `fdml_obs::RunReport`s from a measured run and a
/// simulated run are directly comparable.
///
/// The trace does not record per-round likelihoods, so `RoundCompleted`
/// events carry `best_ln_likelihood = 0.0`; the final likelihood comes from
/// the trace itself.
pub fn simulate_trace_observed(trace: &SearchTrace, config: &SimConfig, obs: &Obs) -> SimReport {
    let cost = &config.cost;
    let serial_seconds = cost.serial_seconds(trace);
    let sim_us = |t: f64| (t * 1e6).round() as u64;
    if config.processors == 1 {
        obs.emit_at(0, || Event::RunStarted {
            ranks: 1,
            workers: 1,
        });
        obs.emit_at(sim_us(serial_seconds), || Event::RunFinished {
            ln_likelihood: trace.final_ln_likelihood,
        });
        return SimReport {
            processors: 1,
            wall_seconds: serial_seconds,
            serial_seconds,
            worker_busy_seconds: serial_seconds,
            utilization: 1.0,
            rounds: trace.rounds.len(),
        };
    }
    let workers = config.workers();
    obs.emit_at(0, || Event::RunStarted {
        ranks: config.processors,
        workers,
    });
    // The simulated cluster "connects" instantly: one NetPeerConnected per
    // worker rank keeps the report schema identical to a real `fdml-net`
    // run (whose coordinator emits the same events from live handshakes).
    for w in 0..workers {
        obs.emit_at(0, || Event::NetPeerConnected {
            rank: ranks::FIRST_WORKER + w,
        });
    }
    let mut clock = 0.0f64;
    let mut busy = 0.0f64;
    let mut next_task = 0u64;
    for (round_no, round) in trace.rounds.iter().enumerate() {
        // Master generates all candidates of the round up front (the paper
        // notes both fastDNAml and Ceron's code "calculate in advance the
        // list of trees to be dispatched").
        let gen = round.candidate_work.len() as f64
            * round.taxa_in_tree as f64
            * cost.master_gen_per_taxon;
        let round_start = clock + gen;
        let msg = cost.message_seconds(cost.tree_message_bytes(round.taxa_in_tree));
        // Greedy list scheduling over worker availability.
        let mut free: BinaryHeap<Reverse<(OrderedF64, usize)>> = (0..workers)
            .map(|w| Reverse((OrderedF64(round_start), w)))
            .collect();
        let mut round_end = round_start;
        for (j, &units) in round.candidate_work.iter().enumerate() {
            let compute = cost.candidate_seconds(
                units,
                round.taxa_in_tree,
                trace.num_patterns,
                trace.full_evaluation,
            );
            let Reverse((OrderedF64(avail), w)) = free.pop().expect("worker pool non-empty");
            // The foreman's dispatch loop is serial: message j cannot leave
            // before round_start + j·overhead.
            let dispatch_ready = round_start + j as f64 * cost.foreman_overhead;
            let start = avail.max(dispatch_ready) + msg;
            let end = start + compute + msg;
            busy += compute;
            round_end = round_end.max(end);
            free.push(Reverse((OrderedF64(end), w)));
            let task = next_task;
            next_task += 1;
            let rank = ranks::FIRST_WORKER + w;
            obs.emit_at(sim_us(dispatch_ready), || Event::TaskDispatched {
                task,
                worker: rank,
            });
            // The trace records weighted work units; the simulator has no
            // finer-grained counter, so report them as pattern-update
            // equivalents to keep the throughput gauge populated.
            obs.emit_at(sim_us(start + compute), || Event::WorkerTaskDone {
                worker: rank,
                task,
                busy_us: sim_us(compute),
                work_units: units,
                pattern_updates: units,
            });
            // A trace taken with quick (non-full) evaluation models the
            // incremental candidate path: each edit reuses the round's base
            // CLVs (3 cached vectors at the junction) and a rearrangement
            // additionally recomputes its dirty path. Mirroring the real
            // worker's counters keeps RunReports comparable across a
            // measured incremental run and its simulation.
            if !trace.full_evaluation {
                use fdml_core::trace::RoundKind;
                let recomputed = matches!(
                    round.kind,
                    RoundKind::Rearrangement | RoundKind::FinalRearrangement
                ) as u64;
                obs.emit_at(sim_us(start + compute), || Event::IncrementalEdit {
                    worker: rank,
                    cache_hits: 3,
                    edges_recomputed: recomputed,
                    fallbacks: 0,
                });
            }
            obs.emit_at(sim_us(end), || Event::TaskCompleted {
                task,
                worker: rank,
                service_us: sim_us(end - dispatch_ready),
                work_units: units,
                ln_likelihood: 0.0,
            });
        }
        // Master commits the winner before the next round.
        clock = round_end + round.master_work as f64 * cost.seconds_per_work_unit;
        obs.emit_at(sim_us(round_end), || Event::RoundCompleted {
            round: round_no as u64 + 1,
            candidates: round.candidate_work.len(),
            best_ln_likelihood: 0.0,
        });
    }
    obs.emit_at(sim_us(clock), || Event::RunFinished {
        ln_likelihood: trace.final_ln_likelihood,
    });
    let utilization = if clock > 0.0 {
        busy / (workers as f64 * clock)
    } else {
        0.0
    };
    SimReport {
        processors: config.processors,
        wall_seconds: clock,
        serial_seconds,
        worker_busy_seconds: busy,
        utilization,
        rounds: trace.rounds.len(),
    }
}

/// Total order wrapper for the availability heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_core::trace::{RoundKind, RoundRecord};

    /// A synthetic trace shaped like a real search: rounds of growing size
    /// with per-candidate variance.
    fn synthetic_trace(rounds: usize, round_size: usize) -> SearchTrace {
        let mut rs = Vec::new();
        for r in 0..rounds {
            rs.push(RoundRecord {
                kind: RoundKind::Rearrangement,
                taxa_in_tree: 50,
                candidate_work: (0..round_size)
                    .map(|j| 1_000_000 + ((r * 31 + j * 97) % 700_000) as u64)
                    .collect(),
                master_work: 200_000,
                improved: true,
            });
        }
        SearchTrace {
            dataset: "synthetic".into(),
            num_taxa: 50,
            num_sites: 1000,
            num_patterns: 400,
            jumble_seed: 1,
            full_evaluation: true,
            rounds: rs,
            final_ln_likelihood: -1.0,
            final_newick: String::new(),
        }
    }

    fn sim(trace: &SearchTrace, p: usize) -> SimReport {
        simulate_trace(
            trace,
            &SimConfig {
                processors: p,
                cost: CostModel::power3_sp(),
            },
        )
    }

    #[test]
    fn four_processors_slower_than_serial() {
        // §3.2: "the overhead of communications and processing tasks causes
        // the parallel code running on four processors to be slower than
        // the serial code running on one processor."
        let t = synthetic_trace(40, 60);
        let serial = sim(&t, 1);
        let p4 = sim(&t, 4);
        assert!(
            p4.wall_seconds > serial.wall_seconds,
            "P=4 {} must exceed serial {}",
            p4.wall_seconds,
            serial.wall_seconds
        );
        assert!(p4.speedup() < 1.0);
    }

    #[test]
    fn more_processors_never_slower() {
        let t = synthetic_trace(30, 80);
        let mut last = f64::INFINITY;
        for p in [4usize, 8, 16, 32, 64] {
            let r = sim(&t, p);
            assert!(
                r.wall_seconds <= last * 1.0000001,
                "P={p}: {} > previous {last}",
                r.wall_seconds
            );
            last = r.wall_seconds;
        }
    }

    #[test]
    fn near_linear_scaling_with_big_rounds() {
        // With rounds much larger than the worker count, time scales with
        // the *worker* count: 16 → 32 processors is 13 → 29 workers, a
        // 2.23× capacity jump — the effect behind the paper's better-than-
        // expected relative speedups from 16 to 64 processors.
        let t = synthetic_trace(30, 512);
        let p16 = sim(&t, 16);
        let p32 = sim(&t, 32);
        let ratio = p16.wall_seconds / p32.wall_seconds;
        let worker_ratio = 29.0 / 13.0;
        assert!(
            ratio > worker_ratio * 0.9 && ratio < worker_ratio * 1.02,
            "16→32 processors should scale like workers ({worker_ratio:.2}), ratio {ratio}"
        );
    }

    #[test]
    fn scaling_falls_off_when_workers_exceed_round_size() {
        // §3.2's prediction: "the scalability will likely fall off at
        // between 100 and 200 processors, since the number of processors
        // will equal or exceed the number of trees analyzed".
        let t = synthetic_trace(30, 100);
        let p103 = sim(&t, 103); // 100 workers = round size
        let p203 = sim(&t, 203); // double the workers
        let gain = p103.wall_seconds / p203.wall_seconds;
        assert!(gain < 1.05, "beyond round size, extra workers gain {gain}");
    }

    #[test]
    fn utilization_bounded_and_consistent() {
        let t = synthetic_trace(10, 32);
        for p in [4usize, 8, 64] {
            let r = sim(&t, p);
            assert!(
                r.utilization > 0.0 && r.utilization <= 1.0,
                "P={p}: {}",
                r.utilization
            );
            assert!(r.worker_busy_seconds <= (r.processors.max(4) - 3) as f64 * r.wall_seconds);
        }
    }

    #[test]
    fn variance_loosens_the_barrier() {
        // A round with one slow tree bounds the round time from below by
        // that tree, regardless of worker count.
        let mut t = synthetic_trace(1, 16);
        t.rounds[0].candidate_work[7] = 100_000_000;
        let r = sim(&t, 64);
        let cost = CostModel::power3_sp();
        let slowest = cost.candidate_seconds(100_000_000, 50, 400, true);
        assert!(r.wall_seconds >= slowest);
    }

    #[test]
    fn serial_report_is_self_consistent() {
        let t = synthetic_trace(5, 10);
        let r = sim(&t, 1);
        assert_eq!(r.processors, 1);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
        assert_eq!(r.rounds, 5);
    }

    #[test]
    #[should_panic(expected = "master+foreman+monitor")]
    fn two_processors_is_invalid() {
        let t = synthetic_trace(1, 4);
        sim(&t, 2);
    }

    #[test]
    fn observed_simulation_matches_plain_and_its_own_report() {
        use fdml_obs::{MemorySink, RunReport};
        let t = synthetic_trace(12, 40);
        let cfg = SimConfig {
            processors: 8,
            cost: CostModel::power3_sp(),
        };
        let plain = simulate_trace(&t, &cfg);
        let mem = MemorySink::new();
        let obs = Obs::new(Box::new(mem.clone()));
        let observed = simulate_trace_observed(&t, &cfg, &obs);
        // Emitting events must not change the schedule.
        assert_eq!(observed, plain);
        let report = RunReport::from_events(&mem.take());
        assert_eq!(report.ranks, Some(8));
        assert_eq!(report.workers.len(), 5);
        assert_eq!(report.completed, 12 * 40);
        assert_eq!(report.dispatched, 12 * 40);
        assert_eq!(report.rounds.len(), 12);
        // The report's mean utilization (busy µs over span µs, averaged
        // over workers) reproduces the simulator's own figure.
        assert!(
            (report.mean_utilization() - observed.utilization).abs() < 0.01,
            "report {} vs simulator {}",
            report.mean_utilization(),
            observed.utilization
        );
        assert_eq!(report.final_ln_likelihood, Some(-1.0));
    }

    #[test]
    fn quick_evaluation_traces_report_incremental_counters() {
        use fdml_obs::{MemorySink, RunReport};
        let mut t = synthetic_trace(3, 8);
        t.full_evaluation = false;
        let cfg = SimConfig {
            processors: 5,
            cost: CostModel::power3_sp(),
        };
        let mem = MemorySink::new();
        let obs = Obs::new(Box::new(mem.clone()));
        simulate_trace_observed(&t, &cfg, &obs);
        let report = RunReport::from_events(&mem.take());
        let hits: u64 = report.workers.iter().map(|w| w.clv_cache_hits).sum();
        let recomputed: u64 = report.workers.iter().map(|w| w.clv_edges_recomputed).sum();
        let fallbacks: u64 = report.workers.iter().map(|w| w.incremental_fallbacks).sum();
        // 3 rounds × 8 candidates, 3 cache hits each; every synthetic round
        // is a rearrangement, so one recomputed edge per candidate.
        assert_eq!(hits, 3 * 8 * 3);
        assert_eq!(recomputed, 3 * 8);
        assert_eq!(fallbacks, 0);

        // Full-evaluation traces model whole-tree scoring: no counters.
        let full = synthetic_trace(3, 8);
        let mem2 = MemorySink::new();
        let obs2 = Obs::new(Box::new(mem2.clone()));
        simulate_trace_observed(&full, &cfg, &obs2);
        let report2 = RunReport::from_events(&mem2.take());
        assert!(report2.workers.iter().all(|w| w.clv_cache_hits == 0));
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use fdml_core::trace::{RoundKind, RoundRecord};

    fn trace_with_fruitless_rounds() -> SearchTrace {
        // addition(improved) → rearr(improved) → rearr(fruitless) →
        // addition → rearr(fruitless) → final(fruitless)
        let mk = |kind, improved, n: usize| RoundRecord {
            kind,
            taxa_in_tree: 30,
            candidate_work: vec![800_000; n],
            master_work: 50_000,
            improved,
        };
        SearchTrace {
            dataset: "spec".into(),
            num_taxa: 30,
            num_sites: 500,
            num_patterns: 200,
            jumble_seed: 1,
            full_evaluation: true,
            rounds: vec![
                mk(RoundKind::TaxonAddition, true, 20),
                mk(RoundKind::Rearrangement, true, 30),
                mk(RoundKind::Rearrangement, false, 30),
                mk(RoundKind::TaxonAddition, true, 22),
                mk(RoundKind::Rearrangement, false, 34),
                mk(RoundKind::FinalRearrangement, false, 34),
            ],
            final_ln_likelihood: -1.0,
            final_newick: String::new(),
        }
    }

    #[test]
    fn speculation_reduces_wall_time_with_many_workers() {
        let t = trace_with_fruitless_rounds();
        let cfg = SimConfig {
            processors: 64,
            cost: CostModel::power3_sp(),
        };
        let plain = simulate_trace(&t, &cfg);
        let spec = simulate_trace_speculative(&t, &cfg);
        assert!(
            spec.wall_seconds < plain.wall_seconds,
            "speculative {} must beat plain {}",
            spec.wall_seconds,
            plain.wall_seconds
        );
        // Same total work, same serial baseline.
        assert!((spec.serial_seconds - plain.serial_seconds).abs() < 1e-9);
        assert!((spec.worker_busy_seconds - plain.worker_busy_seconds).abs() < 1e-9);
    }

    #[test]
    fn speculation_keeps_round_count_and_work() {
        let t = trace_with_fruitless_rounds();
        let cfg = SimConfig {
            processors: 8,
            cost: CostModel::power3_sp(),
        };
        let plain = simulate_trace(&t, &cfg);
        let spec = simulate_trace_speculative(&t, &cfg);
        assert_eq!(spec.rounds, plain.rounds);
        assert!((spec.worker_busy_seconds - plain.worker_busy_seconds).abs() < 1e-9);
    }

    #[test]
    fn speculation_never_hurts() {
        let t = trace_with_fruitless_rounds();
        for p in [4usize, 8, 32, 64, 128] {
            let cfg = SimConfig {
                processors: p,
                cost: CostModel::power3_sp(),
            };
            let plain = simulate_trace(&t, &cfg);
            let spec = simulate_trace_speculative(&t, &cfg);
            assert!(spec.wall_seconds <= plain.wall_seconds * 1.0000001, "P={p}");
        }
    }
}
