//! Replaying a search trace on a simulated cluster.

use crate::cost::CostModel;
use fdml_core::trace::SearchTrace;
use fdml_core::worker::ranks;
use fdml_obs::{Event, Obs};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Total processors. `1` means the serial program (no parallel
    /// overheads, the paper's baseline); `≥ 4` is the instrumented parallel
    /// program with master, foreman, and monitor on dedicated processors.
    pub processors: usize,
    /// The machine model.
    pub cost: CostModel,
}

/// Like [`simulate_trace`] but with *speculative dispatch*, the feature of
/// Ceron et al.'s parallel DNAml the paper discusses in §3.2: because "the
/// relatively low probability of a local rearrangement improving the
/// likelihood" makes fruitless rearrangement rounds the common case, the
/// master speculatively generates the next round's candidates (assuming no
/// improvement) while the current round is still being evaluated, and the
/// foreman feeds them to workers as they free up — the fruitless round's
/// barrier disappears. When a round *does* improve the tree, speculation
/// was wrong and the next round waits for the commit, exactly as in the
/// plain schedule. (The paper: "We have not studied … whether such a
/// feature would enhance the scalability of the parallel version of
/// fastDNAml. We plan to do so." — this is that study, in simulation.)
pub fn simulate_trace_speculative(trace: &SearchTrace, config: &SimConfig) -> SimReport {
    use fdml_core::trace::RoundKind;
    let cost = &config.cost;
    let serial_seconds = cost.serial_seconds(trace);
    if config.processors == 1 {
        return simulate_trace(trace, config);
    }
    let workers = config.workers();
    // Persistent worker availability across speculated (barrier-free)
    // round boundaries.
    let mut avail: Vec<f64> = vec![0.0; workers];
    let mut busy = 0.0f64;
    let mut clock = 0.0f64; // completion time of the last finished round
                            // Master-side time at which the current round's candidates are ready.
    let mut gen_ready = 0.0f64;
    let mut barrier_before_next = true;
    for round in &trace.rounds {
        let gen = round.candidate_work.len() as f64
            * round.taxa_in_tree as f64
            * cost.master_gen_per_taxon;
        let round_start = if barrier_before_next {
            // Wait for the previous round to fully finish, then generate.
            let t0 = clock + gen;
            for a in &mut avail {
                *a = (*a).max(t0);
            }
            t0
        } else {
            // Candidates were generated speculatively while the previous
            // round ran; workers flow straight into them.
            gen_ready + gen
        };
        gen_ready = round_start;
        let msg = cost.message_seconds(cost.tree_message_bytes(round.taxa_in_tree));
        let mut round_end = round_start;
        let mut free: BinaryHeap<Reverse<(OrderedF64, usize)>> = avail
            .iter()
            .enumerate()
            .map(|(w, &a)| Reverse((OrderedF64(a), w)))
            .collect();
        for (j, &units) in round.candidate_work.iter().enumerate() {
            let compute = cost.candidate_seconds(
                units,
                round.taxa_in_tree,
                trace.num_patterns,
                trace.full_evaluation,
            );
            let Reverse((OrderedF64(a), w)) = free.pop().expect("worker pool non-empty");
            let dispatch_ready = round_start + j as f64 * cost.foreman_overhead;
            let start = a.max(dispatch_ready) + msg;
            let end = start + compute + msg;
            busy += compute;
            round_end = round_end.max(end);
            avail[w] = end;
            free.push(Reverse((OrderedF64(end), w)));
        }
        clock = round_end + round.master_work as f64 * cost.seconds_per_work_unit;
        // Speculation applies only after fruitless rearrangement rounds.
        barrier_before_next = round.improved
            || !matches!(
                round.kind,
                RoundKind::Rearrangement | RoundKind::FinalRearrangement
            );
    }
    let utilization = if clock > 0.0 {
        busy / (workers as f64 * clock)
    } else {
        0.0
    };
    SimReport {
        processors: config.processors,
        wall_seconds: clock,
        serial_seconds,
        worker_busy_seconds: busy,
        utilization,
        rounds: trace.rounds.len(),
    }
}

impl SimConfig {
    /// Number of worker processors (the paper dedicates three processors
    /// to control and monitoring).
    pub fn workers(&self) -> usize {
        if self.processors == 1 {
            1
        } else {
            assert!(
                self.processors >= 4,
                "parallel fastDNAml needs master+foreman+monitor+worker"
            );
            self.processors - 3
        }
    }
}

/// Result of simulating one trace at one processor count.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Processors simulated.
    pub processors: usize,
    /// Simulated wall-clock seconds.
    pub wall_seconds: f64,
    /// The serial baseline for the same trace (for speedup).
    pub serial_seconds: f64,
    /// Sum of worker busy time (compute only).
    pub worker_busy_seconds: f64,
    /// Worker utilization: busy / (workers × wall).
    pub utilization: f64,
    /// Dispatch rounds replayed.
    pub rounds: usize,
}

impl SimReport {
    /// Speedup versus the serial program.
    pub fn speedup(&self) -> f64 {
        self.serial_seconds / self.wall_seconds
    }
}

/// Replay a trace at a processor count.
///
/// Round semantics (paper Figure 2): the master generates the round's
/// candidate trees and hands them to the foreman; the foreman dispatches to
/// idle workers, each worker returning its result as soon as it finishes
/// and immediately receiving the next tree; the round closes when the last
/// tree returns (the implicit, loosely synchronized barrier of §3.2); the
/// master then commits the best tree before the next round begins.
pub fn simulate_trace(trace: &SearchTrace, config: &SimConfig) -> SimReport {
    simulate_trace_observed(trace, config, &Obs::disabled())
}

/// [`simulate_trace`] emitting the *same structured event schema* as the
/// real threaded runtime ([`Event`]), with timestamps in simulated
/// microseconds — so `fdml_obs::RunReport`s from a measured run and a
/// simulated run are directly comparable.
///
/// The trace does not record per-round likelihoods, so `RoundCompleted`
/// events carry `best_ln_likelihood = 0.0`; the final likelihood comes from
/// the trace itself.
pub fn simulate_trace_observed(trace: &SearchTrace, config: &SimConfig, obs: &Obs) -> SimReport {
    let cost = &config.cost;
    let serial_seconds = cost.serial_seconds(trace);
    let sim_us = |t: f64| (t * 1e6).round() as u64;
    if config.processors == 1 {
        obs.emit_at(0, || Event::RunStarted {
            ranks: 1,
            workers: 1,
        });
        obs.emit_at(sim_us(serial_seconds), || Event::RunFinished {
            ln_likelihood: trace.final_ln_likelihood,
        });
        return SimReport {
            processors: 1,
            wall_seconds: serial_seconds,
            serial_seconds,
            worker_busy_seconds: serial_seconds,
            utilization: 1.0,
            rounds: trace.rounds.len(),
        };
    }
    let workers = config.workers();
    obs.emit_at(0, || Event::RunStarted {
        ranks: config.processors,
        workers,
    });
    // The simulated cluster "connects" instantly: one NetPeerConnected per
    // worker rank keeps the report schema identical to a real `fdml-net`
    // run (whose coordinator emits the same events from live handshakes).
    for w in 0..workers {
        obs.emit_at(0, || Event::NetPeerConnected {
            rank: ranks::FIRST_WORKER + w,
        });
    }
    let mut clock = 0.0f64;
    let mut busy = 0.0f64;
    let mut next_task = 0u64;
    for (round_no, round) in trace.rounds.iter().enumerate() {
        // Master generates all candidates of the round up front (the paper
        // notes both fastDNAml and Ceron's code "calculate in advance the
        // list of trees to be dispatched").
        let gen = round.candidate_work.len() as f64
            * round.taxa_in_tree as f64
            * cost.master_gen_per_taxon;
        let round_start = clock + gen;
        let msg = cost.message_seconds(cost.tree_message_bytes(round.taxa_in_tree));
        // Greedy list scheduling over worker availability.
        let mut free: BinaryHeap<Reverse<(OrderedF64, usize)>> = (0..workers)
            .map(|w| Reverse((OrderedF64(round_start), w)))
            .collect();
        let mut round_end = round_start;
        for (j, &units) in round.candidate_work.iter().enumerate() {
            let compute = cost.candidate_seconds(
                units,
                round.taxa_in_tree,
                trace.num_patterns,
                trace.full_evaluation,
            );
            let Reverse((OrderedF64(avail), w)) = free.pop().expect("worker pool non-empty");
            // The foreman's dispatch loop is serial: message j cannot leave
            // before round_start + j·overhead.
            let dispatch_ready = round_start + j as f64 * cost.foreman_overhead;
            let start = avail.max(dispatch_ready) + msg;
            let end = start + compute + msg;
            busy += compute;
            round_end = round_end.max(end);
            free.push(Reverse((OrderedF64(end), w)));
            let task = next_task;
            next_task += 1;
            let rank = ranks::FIRST_WORKER + w;
            obs.emit_at(sim_us(dispatch_ready), || Event::TaskDispatched {
                task,
                worker: rank,
            });
            // The trace records weighted work units; the simulator has no
            // finer-grained counter, so report them as pattern-update
            // equivalents to keep the throughput gauge populated.
            obs.emit_at(sim_us(start + compute), || Event::WorkerTaskDone {
                worker: rank,
                task,
                busy_us: sim_us(compute),
                work_units: units,
                pattern_updates: units,
            });
            // A trace taken with quick (non-full) evaluation models the
            // incremental candidate path: each edit reuses the round's base
            // CLVs (3 cached vectors at the junction) and a rearrangement
            // additionally recomputes its dirty path. Mirroring the real
            // worker's counters keeps RunReports comparable across a
            // measured incremental run and its simulation.
            if !trace.full_evaluation {
                use fdml_core::trace::RoundKind;
                let recomputed = matches!(
                    round.kind,
                    RoundKind::Rearrangement | RoundKind::FinalRearrangement
                ) as u64;
                obs.emit_at(sim_us(start + compute), || Event::IncrementalEdit {
                    worker: rank,
                    cache_hits: 3,
                    edges_recomputed: recomputed,
                    fallbacks: 0,
                });
            }
            obs.emit_at(sim_us(end), || Event::TaskCompleted {
                task,
                worker: rank,
                service_us: sim_us(end - dispatch_ready),
                work_units: units,
                ln_likelihood: 0.0,
            });
        }
        // Master commits the winner before the next round.
        clock = round_end + round.master_work as f64 * cost.seconds_per_work_unit;
        obs.emit_at(sim_us(round_end), || Event::RoundCompleted {
            round: round_no as u64 + 1,
            candidates: round.candidate_work.len(),
            best_ln_likelihood: 0.0,
        });
    }
    obs.emit_at(sim_us(clock), || Event::RunFinished {
        ln_likelihood: trace.final_ln_likelihood,
    });
    let utilization = if clock > 0.0 {
        busy / (workers as f64 * clock)
    } else {
        0.0
    };
    SimReport {
        processors: config.processors,
        wall_seconds: clock,
        serial_seconds,
        worker_busy_seconds: busy,
        utilization,
        rounds: trace.rounds.len(),
    }
}

/// Shape of the two-level foreman tree for [`simulate_trace_hierarchical`]:
/// how many regional foremen sit between the root foreman and the workers,
/// how many tasks ride in one lease grant, and how large one task frame is
/// on the wire. The frame size should come from [`binary_edit_task_bytes`]
/// (the real `fdml-wire` encoding of a representative candidate), not from
/// an assumed constant — the whole point of the scale-out study is that
/// the measured frame shrink moves the dispatch wall.
#[derive(Debug, Clone)]
pub struct HierConfig {
    /// Regional foremen (each owns the round-robin worker shard
    /// `w % regions`, mirroring `fdml_core::hierarchy::home_region`).
    pub regions: usize,
    /// Tasks per lease batch (the runtime's `GRANT_CAP`).
    pub grant: usize,
    /// Wire bytes of one downward task frame.
    pub task_bytes: usize,
    /// Master seconds to generate one candidate. In the edit-task era a
    /// candidate leaves the master as a handful of node ids, so this is a
    /// small constant — unlike the flat model's per-taxon Newick
    /// serialization (`CostModel::master_gen_per_taxon`), it does not grow
    /// with the tree.
    pub gen_per_task: f64,
}

impl HierConfig {
    /// The deployed configuration: `regions` regional foremen, the
    /// runtime's grant cap, the measured binary `TreeEditTask` frame, and
    /// edit-era candidate generation (~1 µs per candidate).
    pub fn binary(regions: usize) -> HierConfig {
        HierConfig {
            regions,
            grant: fdml_core::hierarchy::GRANT_CAP,
            task_bytes: binary_edit_task_bytes(),
            gen_per_task: 1e-6,
        }
    }
}

/// Measured wire size of a representative candidate task in the binary
/// codec: a `TreeEditTask` carrying a regraft (the most common and largest
/// steady-state edit), no embedded base. This is what a worker receives
/// for every candidate of an incremental round.
pub fn binary_edit_task_bytes() -> usize {
    use fdml_comm::message::{Message, TreeEdit};
    let msg = Message::TreeEditTask {
        task: u32::MAX as u64,
        base_id: 1000,
        edit: TreeEdit::Regraft {
            root: 4000,
            attachment: 4001,
            a: 4002,
            b: 4003,
        },
        base_newick: None,
    };
    fdml_wire::encode_message(&msg).len()
}

/// Replay a trace on a two-level foreman tree — the scale-out topology
/// that pushes past the paper's 64-processor ceiling.
///
/// The model mirrors the real scheduler's cost structure:
///
/// * The **root foreman** serializes per *batch*, not per task: batch `k`
///   (up to `grant` tasks) occupies it for one `foreman_overhead` plus the
///   batch's wire time, and batches go to regions round-robin.
/// * Each **regional foreman** serializes its own shard's per-task
///   dispatch — so that cost divides by the region count instead of
///   bounding the whole fleet.
/// * Results return to the regional foreman with the usual tree-message
///   cost and reach the master one aggregated relay hop (one latency)
///   later, modelling the batched upward stream.
/// * The **master** generates compact edits ([`HierConfig::gen_per_task`]
///   per candidate) instead of serializing whole Newick trees.
///
/// Worker compute and per-candidate work are identical to
/// [`simulate_trace`], so `worker_busy_seconds` matches the flat replay
/// exactly and the completed task set is the same — the topology is
/// invisible in the result, just as the real runtime's hierarchical runs
/// are byte-identical to flat ones.
pub fn simulate_trace_hierarchical(
    trace: &SearchTrace,
    config: &SimConfig,
    hier: &HierConfig,
) -> SimReport {
    simulate_trace_hierarchical_observed(trace, config, hier, &Obs::disabled())
}

/// [`simulate_trace_hierarchical`] emitting the runtime's event schema,
/// including the hierarchy events (`LeaseGranted`, `BatchSent`,
/// `RegionQueueDepth`) that populate `RunReport::hierarchy`.
pub fn simulate_trace_hierarchical_observed(
    trace: &SearchTrace,
    config: &SimConfig,
    hier: &HierConfig,
    obs: &Obs,
) -> SimReport {
    let cost = &config.cost;
    let regions = hier.regions;
    assert!(regions >= 1, "hierarchical simulation needs >= 1 region");
    assert!(hier.grant >= 1);
    assert!(
        config.processors >= 4 + regions,
        "need master+root+monitor+{regions} regionals and >= 1 worker"
    );
    let workers = config.processors - 3 - regions;
    let serial_seconds = cost.serial_seconds(trace);
    let sim_us = |t: f64| (t * 1e6).round() as u64;
    obs.emit_at(0, || Event::RunStarted {
        ranks: config.processors,
        workers,
    });
    let first_worker = fdml_core::hierarchy::first_worker_rank(regions);
    // Worker w (0-based) lives in region w % regions and is global rank
    // first_worker + w, exactly as the runtime shards the fleet.
    let mut clock = 0.0f64;
    let mut busy = 0.0f64;
    let mut next_task = 0u64;
    for (round_no, round) in trace.rounds.iter().enumerate() {
        let gen = round.candidate_work.len() as f64 * hier.gen_per_task;
        let round_start = clock + gen;
        let result_msg = cost.message_seconds(cost.tree_message_bytes(round.taxa_in_tree));
        let mut shard: Vec<BinaryHeap<Reverse<(OrderedF64, usize)>>> =
            vec![BinaryHeap::new(); regions];
        for w in 0..workers {
            shard[w % regions].push(Reverse((OrderedF64(round_start), w)));
        }
        // When the regional foreman's dispatch loop frees up, per region.
        let mut regional_free = vec![round_start; regions];
        let mut root_free = round_start;
        let mut round_end = round_start;
        for (k, chunk) in round.candidate_work.chunks(hier.grant).enumerate() {
            let region = k % regions;
            // Root occupancy: one queue operation plus the batch's bytes
            // through its link — per batch, the 64× relief over per-task.
            let batch_bytes = 16 + chunk.len() * hier.task_bytes;
            root_free += cost.foreman_overhead + batch_bytes as f64 / cost.bandwidth;
            let leave_root = root_free;
            let arrival = leave_root + cost.message_latency;
            obs.emit_at(sim_us(leave_root), || Event::LeaseGranted {
                region,
                tasks: chunk.len(),
            });
            obs.emit_at(sim_us(leave_root), || Event::BatchSent {
                from: fdml_core::worker::ranks::FOREMAN,
                msgs: chunk.len(),
                bytes: batch_bytes as u64,
            });
            obs.emit_at(sim_us(arrival), || Event::RegionQueueDepth {
                region,
                work: chunk.len(),
                ready: 0,
                in_flight: 0,
            });
            for &units in chunk {
                let compute = cost.candidate_seconds(
                    units,
                    round.taxa_in_tree,
                    trace.num_patterns,
                    trace.full_evaluation,
                );
                // Regional dispatch serializes within the shard only.
                let dispatch_ready = arrival.max(regional_free[region])
                    + cost.foreman_overhead
                    + hier.task_bytes as f64 / cost.bandwidth;
                regional_free[region] = dispatch_ready;
                let Reverse((OrderedF64(avail), w)) = shard[region].pop().expect("shard non-empty");
                let start = avail.max(dispatch_ready) + cost.message_latency;
                let end = start + compute + result_msg;
                // The aggregated upward stream: one extra relay latency,
                // bandwidth already charged on the worker→regional leg.
                let at_master = end + cost.message_latency;
                busy += compute;
                round_end = round_end.max(at_master);
                shard[region].push(Reverse((OrderedF64(end), w)));
                let task = next_task;
                next_task += 1;
                let rank = first_worker + w;
                obs.emit_at(sim_us(dispatch_ready), || Event::TaskDispatched {
                    task,
                    worker: rank,
                });
                obs.emit_at(sim_us(start + compute), || Event::WorkerTaskDone {
                    worker: rank,
                    task,
                    busy_us: sim_us(compute),
                    work_units: units,
                    pattern_updates: units,
                });
                obs.emit_at(sim_us(at_master), || Event::TaskCompleted {
                    task,
                    worker: rank,
                    service_us: sim_us(at_master - dispatch_ready),
                    work_units: units,
                    ln_likelihood: 0.0,
                });
            }
        }
        clock = round_end + round.master_work as f64 * cost.seconds_per_work_unit;
        obs.emit_at(sim_us(round_end), || Event::RoundCompleted {
            round: round_no as u64 + 1,
            candidates: round.candidate_work.len(),
            best_ln_likelihood: 0.0,
        });
    }
    obs.emit_at(sim_us(clock), || Event::RunFinished {
        ln_likelihood: trace.final_ln_likelihood,
    });
    let utilization = if clock > 0.0 {
        busy / (workers as f64 * clock)
    } else {
        0.0
    };
    SimReport {
        processors: config.processors,
        wall_seconds: clock,
        serial_seconds,
        worker_busy_seconds: busy,
        utilization,
        rounds: trace.rounds.len(),
    }
}

/// Total order wrapper for the availability heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_core::trace::{RoundKind, RoundRecord};

    /// A synthetic trace shaped like a real search: rounds of growing size
    /// with per-candidate variance.
    fn synthetic_trace(rounds: usize, round_size: usize) -> SearchTrace {
        let mut rs = Vec::new();
        for r in 0..rounds {
            rs.push(RoundRecord {
                kind: RoundKind::Rearrangement,
                taxa_in_tree: 50,
                candidate_work: (0..round_size)
                    .map(|j| 1_000_000 + ((r * 31 + j * 97) % 700_000) as u64)
                    .collect(),
                master_work: 200_000,
                improved: true,
            });
        }
        SearchTrace {
            dataset: "synthetic".into(),
            num_taxa: 50,
            num_sites: 1000,
            num_patterns: 400,
            jumble_seed: 1,
            full_evaluation: true,
            rounds: rs,
            final_ln_likelihood: -1.0,
            final_newick: String::new(),
        }
    }

    fn sim(trace: &SearchTrace, p: usize) -> SimReport {
        simulate_trace(
            trace,
            &SimConfig {
                processors: p,
                cost: CostModel::power3_sp(),
            },
        )
    }

    #[test]
    fn four_processors_slower_than_serial() {
        // §3.2: "the overhead of communications and processing tasks causes
        // the parallel code running on four processors to be slower than
        // the serial code running on one processor."
        let t = synthetic_trace(40, 60);
        let serial = sim(&t, 1);
        let p4 = sim(&t, 4);
        assert!(
            p4.wall_seconds > serial.wall_seconds,
            "P=4 {} must exceed serial {}",
            p4.wall_seconds,
            serial.wall_seconds
        );
        assert!(p4.speedup() < 1.0);
    }

    #[test]
    fn more_processors_never_slower() {
        let t = synthetic_trace(30, 80);
        let mut last = f64::INFINITY;
        for p in [4usize, 8, 16, 32, 64] {
            let r = sim(&t, p);
            assert!(
                r.wall_seconds <= last * 1.0000001,
                "P={p}: {} > previous {last}",
                r.wall_seconds
            );
            last = r.wall_seconds;
        }
    }

    #[test]
    fn near_linear_scaling_with_big_rounds() {
        // With rounds much larger than the worker count, time scales with
        // the *worker* count: 16 → 32 processors is 13 → 29 workers, a
        // 2.23× capacity jump — the effect behind the paper's better-than-
        // expected relative speedups from 16 to 64 processors.
        let t = synthetic_trace(30, 512);
        let p16 = sim(&t, 16);
        let p32 = sim(&t, 32);
        let ratio = p16.wall_seconds / p32.wall_seconds;
        let worker_ratio = 29.0 / 13.0;
        assert!(
            ratio > worker_ratio * 0.9 && ratio < worker_ratio * 1.02,
            "16→32 processors should scale like workers ({worker_ratio:.2}), ratio {ratio}"
        );
    }

    #[test]
    fn scaling_falls_off_when_workers_exceed_round_size() {
        // §3.2's prediction: "the scalability will likely fall off at
        // between 100 and 200 processors, since the number of processors
        // will equal or exceed the number of trees analyzed".
        let t = synthetic_trace(30, 100);
        let p103 = sim(&t, 103); // 100 workers = round size
        let p203 = sim(&t, 203); // double the workers
        let gain = p103.wall_seconds / p203.wall_seconds;
        assert!(gain < 1.05, "beyond round size, extra workers gain {gain}");
    }

    #[test]
    fn utilization_bounded_and_consistent() {
        let t = synthetic_trace(10, 32);
        for p in [4usize, 8, 64] {
            let r = sim(&t, p);
            assert!(
                r.utilization > 0.0 && r.utilization <= 1.0,
                "P={p}: {}",
                r.utilization
            );
            assert!(r.worker_busy_seconds <= (r.processors.max(4) - 3) as f64 * r.wall_seconds);
        }
    }

    #[test]
    fn variance_loosens_the_barrier() {
        // A round with one slow tree bounds the round time from below by
        // that tree, regardless of worker count.
        let mut t = synthetic_trace(1, 16);
        t.rounds[0].candidate_work[7] = 100_000_000;
        let r = sim(&t, 64);
        let cost = CostModel::power3_sp();
        let slowest = cost.candidate_seconds(100_000_000, 50, 400, true);
        assert!(r.wall_seconds >= slowest);
    }

    #[test]
    fn serial_report_is_self_consistent() {
        let t = synthetic_trace(5, 10);
        let r = sim(&t, 1);
        assert_eq!(r.processors, 1);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
        assert_eq!(r.rounds, 5);
    }

    #[test]
    #[should_panic(expected = "master+foreman+monitor")]
    fn two_processors_is_invalid() {
        let t = synthetic_trace(1, 4);
        sim(&t, 2);
    }

    #[test]
    fn observed_simulation_matches_plain_and_its_own_report() {
        use fdml_obs::{MemorySink, RunReport};
        let t = synthetic_trace(12, 40);
        let cfg = SimConfig {
            processors: 8,
            cost: CostModel::power3_sp(),
        };
        let plain = simulate_trace(&t, &cfg);
        let mem = MemorySink::new();
        let obs = Obs::new(Box::new(mem.clone()));
        let observed = simulate_trace_observed(&t, &cfg, &obs);
        // Emitting events must not change the schedule.
        assert_eq!(observed, plain);
        let report = RunReport::from_events(&mem.take());
        assert_eq!(report.ranks, Some(8));
        assert_eq!(report.workers.len(), 5);
        assert_eq!(report.completed, 12 * 40);
        assert_eq!(report.dispatched, 12 * 40);
        assert_eq!(report.rounds.len(), 12);
        // The report's mean utilization (busy µs over span µs, averaged
        // over workers) reproduces the simulator's own figure.
        assert!(
            (report.mean_utilization() - observed.utilization).abs() < 0.01,
            "report {} vs simulator {}",
            report.mean_utilization(),
            observed.utilization
        );
        assert_eq!(report.final_ln_likelihood, Some(-1.0));
    }

    #[test]
    fn quick_evaluation_traces_report_incremental_counters() {
        use fdml_obs::{MemorySink, RunReport};
        let mut t = synthetic_trace(3, 8);
        t.full_evaluation = false;
        let cfg = SimConfig {
            processors: 5,
            cost: CostModel::power3_sp(),
        };
        let mem = MemorySink::new();
        let obs = Obs::new(Box::new(mem.clone()));
        simulate_trace_observed(&t, &cfg, &obs);
        let report = RunReport::from_events(&mem.take());
        let hits: u64 = report.workers.iter().map(|w| w.clv_cache_hits).sum();
        let recomputed: u64 = report.workers.iter().map(|w| w.clv_edges_recomputed).sum();
        let fallbacks: u64 = report.workers.iter().map(|w| w.incremental_fallbacks).sum();
        // 3 rounds × 8 candidates, 3 cache hits each; every synthetic round
        // is a rearrangement, so one recomputed edge per candidate.
        assert_eq!(hits, 3 * 8 * 3);
        assert_eq!(recomputed, 3 * 8);
        assert_eq!(fallbacks, 0);

        // Full-evaluation traces model whole-tree scoring: no counters.
        let full = synthetic_trace(3, 8);
        let mem2 = MemorySink::new();
        let obs2 = Obs::new(Box::new(mem2.clone()));
        simulate_trace_observed(&full, &cfg, &obs2);
        let report2 = RunReport::from_events(&mem2.take());
        assert!(report2.workers.iter().all(|w| w.clv_cache_hits == 0));
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use fdml_core::trace::{RoundKind, RoundRecord};

    fn trace_with_fruitless_rounds() -> SearchTrace {
        // addition(improved) → rearr(improved) → rearr(fruitless) →
        // addition → rearr(fruitless) → final(fruitless)
        let mk = |kind, improved, n: usize| RoundRecord {
            kind,
            taxa_in_tree: 30,
            candidate_work: vec![800_000; n],
            master_work: 50_000,
            improved,
        };
        SearchTrace {
            dataset: "spec".into(),
            num_taxa: 30,
            num_sites: 500,
            num_patterns: 200,
            jumble_seed: 1,
            full_evaluation: true,
            rounds: vec![
                mk(RoundKind::TaxonAddition, true, 20),
                mk(RoundKind::Rearrangement, true, 30),
                mk(RoundKind::Rearrangement, false, 30),
                mk(RoundKind::TaxonAddition, true, 22),
                mk(RoundKind::Rearrangement, false, 34),
                mk(RoundKind::FinalRearrangement, false, 34),
            ],
            final_ln_likelihood: -1.0,
            final_newick: String::new(),
        }
    }

    #[test]
    fn speculation_reduces_wall_time_with_many_workers() {
        let t = trace_with_fruitless_rounds();
        let cfg = SimConfig {
            processors: 64,
            cost: CostModel::power3_sp(),
        };
        let plain = simulate_trace(&t, &cfg);
        let spec = simulate_trace_speculative(&t, &cfg);
        assert!(
            spec.wall_seconds < plain.wall_seconds,
            "speculative {} must beat plain {}",
            spec.wall_seconds,
            plain.wall_seconds
        );
        // Same total work, same serial baseline.
        assert!((spec.serial_seconds - plain.serial_seconds).abs() < 1e-9);
        assert!((spec.worker_busy_seconds - plain.worker_busy_seconds).abs() < 1e-9);
    }

    #[test]
    fn speculation_keeps_round_count_and_work() {
        let t = trace_with_fruitless_rounds();
        let cfg = SimConfig {
            processors: 8,
            cost: CostModel::power3_sp(),
        };
        let plain = simulate_trace(&t, &cfg);
        let spec = simulate_trace_speculative(&t, &cfg);
        assert_eq!(spec.rounds, plain.rounds);
        assert!((spec.worker_busy_seconds - plain.worker_busy_seconds).abs() < 1e-9);
    }

    #[test]
    fn speculation_never_hurts() {
        let t = trace_with_fruitless_rounds();
        for p in [4usize, 8, 32, 64, 128] {
            let cfg = SimConfig {
                processors: p,
                cost: CostModel::power3_sp(),
            };
            let plain = simulate_trace(&t, &cfg);
            let spec = simulate_trace_speculative(&t, &cfg);
            assert!(spec.wall_seconds <= plain.wall_seconds * 1.0000001, "P={p}");
        }
    }
}

#[cfg(test)]
mod hierarchy_tests {
    use super::*;
    use fdml_obs::{Event, MemorySink, RunReport};
    use std::collections::BTreeSet;

    /// A trace big enough that a 1024-rank fleet has work for everyone.
    fn wide_trace(rounds: usize, round_size: usize) -> SearchTrace {
        use fdml_core::trace::{RoundKind, RoundRecord};
        let rs = (0..rounds)
            .map(|r| RoundRecord {
                kind: RoundKind::Rearrangement,
                taxa_in_tree: 200,
                candidate_work: (0..round_size)
                    .map(|j| 2_000_000 + ((r * 131 + j * 977) % 1_500_000) as u64)
                    .collect(),
                master_work: 300_000,
                improved: true,
            })
            .collect();
        SearchTrace {
            dataset: "wide".into(),
            num_taxa: 200,
            num_sites: 2000,
            num_patterns: 900,
            jumble_seed: 1,
            full_evaluation: true,
            rounds: rs,
            final_ln_likelihood: -42.5,
            final_newick: "(a,(b,c));".into(),
        }
    }

    /// The completed task ids and the final likelihood from an event log —
    /// the simulator's analogue of "the bytes of the final tree".
    fn outcome(events: &[fdml_obs::Record]) -> (BTreeSet<u64>, f64) {
        let mut tasks = BTreeSet::new();
        let mut lnl = f64::NAN;
        for r in events {
            match r.event {
                Event::TaskCompleted { task, .. } => {
                    assert!(tasks.insert(task), "task {task} completed twice");
                }
                Event::RunFinished { ln_likelihood } => lnl = ln_likelihood,
                _ => {}
            }
        }
        (tasks, lnl)
    }

    #[test]
    fn hierarchical_replay_is_work_identical_to_flat_at_1024_ranks() {
        // The scale smoke: 1024 simulated ranks through the two-level
        // scheduler must complete exactly the task set the flat foreman
        // completes, with identical per-candidate compute — the topology
        // only changes *when* work happens, never *what* the search does.
        let t = wide_trace(4, 4096);
        let cfg = SimConfig {
            processors: 1024,
            cost: CostModel::power3_sp(),
        };
        let flat_mem = MemorySink::new();
        let flat = simulate_trace_observed(&t, &cfg, &Obs::new(Box::new(flat_mem.clone())));
        let hier_mem = MemorySink::new();
        let hier = simulate_trace_hierarchical_observed(
            &t,
            &cfg,
            &HierConfig::binary(16),
            &Obs::new(Box::new(hier_mem.clone())),
        );
        let (flat_tasks, flat_lnl) = outcome(&flat_mem.take());
        let (hier_tasks, hier_lnl) = outcome(&hier_mem.take());
        assert_eq!(hier_tasks, flat_tasks);
        assert_eq!(hier_tasks.len(), 4 * 4096);
        assert_eq!(hier_lnl, flat_lnl);
        assert!((hier.worker_busy_seconds - flat.worker_busy_seconds).abs() < 1e-6);
        assert_eq!(hier.rounds, flat.rounds);
    }

    #[test]
    fn hierarchy_events_populate_the_run_report() {
        let t = wide_trace(2, 512);
        let cfg = SimConfig {
            processors: 128,
            cost: CostModel::power3_sp(),
        };
        let mem = MemorySink::new();
        simulate_trace_hierarchical_observed(
            &t,
            &cfg,
            &HierConfig::binary(4),
            &Obs::new(Box::new(mem.clone())),
        );
        let report = RunReport::from_events(&mem.take());
        assert_eq!(report.hierarchy.regions_seen, 4);
        // 512 candidates / 64-task grants = 8 leases per round, 2 rounds.
        assert_eq!(report.hierarchy.leases_granted, 16);
        assert_eq!(report.hierarchy.tasks_leased, 2 * 512);
        assert_eq!(report.hierarchy.batches_sent, 16);
        assert!(report.hierarchy.batched_bytes > 0);
        assert_eq!(report.completed, 2 * 512);
    }

    #[test]
    fn binary_task_frame_is_small_and_stable() {
        let bytes = binary_edit_task_bytes();
        // The ~50 B TreeEdit story of PR 7, now measured off the real
        // codec: a steady-state candidate frame stays under 64 bytes.
        assert!(bytes > 8 && bytes < 64, "got {bytes}");
    }

    #[test]
    fn regional_serialization_beats_the_flat_wall_at_scale() {
        // Make dispatch the bottleneck: tiny compute, many candidates.
        use fdml_core::trace::{RoundKind, RoundRecord};
        let t = SearchTrace {
            dataset: "dispatch-bound".into(),
            num_taxa: 200,
            num_sites: 2000,
            num_patterns: 900,
            jumble_seed: 1,
            full_evaluation: true,
            rounds: vec![RoundRecord {
                kind: RoundKind::Rearrangement,
                taxa_in_tree: 200,
                candidate_work: vec![50_000; 16_384],
                master_work: 0,
                improved: true,
            }],
            final_ln_likelihood: -1.0,
            final_newick: String::new(),
        };
        // Flat with the JSON-era frames: each dispatch occupies the single
        // foreman for overhead + frame wire time.
        let json_frame = CostModel::power3_sp().tree_message_bytes(200);
        let flat_cost = CostModel {
            foreman_overhead: 10e-6 + json_frame as f64 / CostModel::power3_sp().bandwidth,
            ..CostModel::power3_sp()
        };
        let cfg = |cost| SimConfig {
            processors: 2048,
            cost,
        };
        let flat = simulate_trace(&t, &cfg(flat_cost));
        let hier =
            simulate_trace_hierarchical(&t, &cfg(CostModel::power3_sp()), &HierConfig::binary(31));
        assert!(
            hier.wall_seconds < flat.wall_seconds,
            "hierarchical {} must beat the dispatch-bound flat {}",
            hier.wall_seconds,
            flat.wall_seconds
        );
    }
}
