//! The end-of-run summary assembled from an event stream.

use crate::event::{Event, Record};
use crate::registry::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One worker's share of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerUsage {
    /// The worker's rank.
    pub worker: usize,
    /// Tasks the foreman accepted from it.
    pub tasks: u64,
    /// Microseconds it spent inside likelihood evaluation.
    pub busy_us: u64,
    /// Work units it reported.
    pub work_units: u64,
    /// Raw per-pattern kernel operations it reported (unweighted, unlike
    /// `work_units`). Comparable across kernel modes and between the real
    /// runtime and the simulator.
    pub pattern_updates: u64,
    /// `pattern_updates` per second of busy time — the kernel throughput
    /// gauge the benchmark suite tracks.
    pub patterns_per_sec: f64,
    /// `busy_us` over the observed span — the paper's per-worker
    /// utilization.
    pub utilization: f64,
    /// Directional CLVs served from this worker's cache by incremental
    /// edit tasks (zero when incremental evaluation was off).
    #[serde(default)]
    pub clv_cache_hits: u64,
    /// Dirty-path CLVs this worker recomputed for incremental edits.
    #[serde(default)]
    pub clv_edges_recomputed: u64,
    /// Edit tasks this worker could only score via an embedded base from a
    /// self-contained dispatch (the fallback ladder fired).
    #[serde(default)]
    pub incremental_fallbacks: u64,
}

/// Message traffic for one message kind.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KindTraffic {
    /// Messages sent.
    pub sent_msgs: u64,
    /// Bytes sent (approximate wire size).
    pub sent_bytes: u64,
    /// Messages received.
    pub recv_msgs: u64,
    /// Bytes received (approximate wire size).
    pub recv_bytes: u64,
}

/// One network peer's connection history over a run (populated only when
/// the run used the `fdml-net` TCP transport or a simulated equivalent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetPeerStats {
    /// The peer's rank.
    pub rank: usize,
    /// Successful handshakes (first connect plus any rejoins counted as
    /// connects by the emitting side).
    pub connects: u64,
    /// Connections lost or closed.
    pub disconnects: u64,
    /// Heartbeat intervals that elapsed without traffic from the peer.
    pub heartbeat_misses: u64,
    /// Times the peer reconnected after a lost link (the per-rank
    /// reconnect count the failure model is judged by).
    pub reconnects: u64,
}

/// Aggregate counters of the two-level foreman tree (all zero for flat
/// runs): leasing, stealing, and wire-batching activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Lease batches the root granted to regional foremen.
    pub leases_granted: u64,
    /// Tasks inside those grants.
    pub tasks_leased: u64,
    /// Steal transfers arbitrated by the root.
    pub steals: u64,
    /// Tasks moved between regions by stealing.
    pub tasks_stolen: u64,
    /// Multi-message frames sent between scheduling tiers.
    pub batches_sent: u64,
    /// Messages carried inside those frames.
    pub batched_msgs: u64,
    /// Approximate wire bytes of those frames.
    pub batched_bytes: u64,
    /// Deepest regional work queue observed.
    pub max_region_depth: usize,
    /// Distinct regions that reported queue depth.
    pub regions_seen: usize,
}

/// One finished jumble of a farm run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JumbleOutcome {
    /// The adjusted jumble seed.
    pub seed: u64,
    /// The jumble's final log-likelihood.
    pub ln_likelihood: f64,
    /// True when the result was replayed from a resumed manifest.
    pub reused: bool,
}

/// One dispatch round's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSummary {
    /// Round ordinal.
    pub round: u64,
    /// Candidates evaluated.
    pub candidates: usize,
    /// Best log-likelihood of the round.
    pub best_ln_likelihood: f64,
    /// When the round closed (µs since observation start).
    pub t_us: u64,
}

/// The end-of-run report: the numbers the paper's evaluation is written in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total ranks, if a `RunStarted` event was seen.
    pub ranks: Option<usize>,
    /// Observed span in microseconds (first to last record).
    pub span_us: u64,
    /// Per-worker usage, sorted by rank.
    pub workers: Vec<WorkerUsage>,
    /// Tasks dispatched by the foreman.
    pub dispatched: u64,
    /// Tasks completed (accepted results).
    pub completed: u64,
    /// Timeouts declared.
    pub timeouts: u64,
    /// Delinquent workers re-admitted.
    pub recoveries: u64,
    /// `(t_us, work, ready)` queue-depth samples in event order.
    pub queue_depth: Vec<(u64, usize, usize)>,
    /// Deepest work queue observed.
    pub max_work_depth: usize,
    /// Per-message-kind traffic, keyed by kind name.
    pub traffic: BTreeMap<String, KindTraffic>,
    /// Distribution of foreman-observed task service times (µs).
    pub service_us: Histogram,
    /// Per-round candidate counts and lnL trajectory.
    pub rounds: Vec<RoundSummary>,
    /// Per-rank network connection history, sorted by rank. Empty for
    /// in-process (threads transport) runs.
    pub net_peers: Vec<NetPeerStats>,
    /// Finished jumbles of a farm run, in completion order. Empty for
    /// single-search runs.
    #[serde(default)]
    pub jumbles: Vec<JumbleOutcome>,
    /// Jumbles the farm dispatched (counting `JumbleStarted` events; a
    /// reused manifest entry completes without starting).
    #[serde(default)]
    pub jumbles_started: u64,
    /// Dead workers the supervisor respawned (`WorkerRespawned` events).
    #[serde(default)]
    pub respawns: u64,
    /// Frames discarded for CRC mismatch or chaos-injected corruption
    /// (`FrameCorrupt` events).
    #[serde(default)]
    pub corrupt_frames: u64,
    /// Tasks pulled from the queue after exhausting their failure budget
    /// and evaluated locally on the master (`TaskQuarantined` events).
    #[serde(default)]
    pub quarantined: u64,
    /// Foreman-tree activity: leasing, stealing, batching (all zero for
    /// flat runs).
    #[serde(default)]
    pub hierarchy: HierarchyStats,
    /// Active SIMD instruction set (`KernelDispatch` event), empty when
    /// the run predates kernel-dispatch observability.
    #[serde(default)]
    pub kernel_isa: String,
    /// Intra-rank pattern-block threads per engine (`KernelDispatch`
    /// event); 0 when no such event was seen.
    #[serde(default)]
    pub intra_threads: usize,
    /// Committed rounds appended to write-ahead logs (`WalAppend`).
    #[serde(default)]
    pub wal_appends: u64,
    /// Total framed WAL bytes written (`WalAppend`).
    #[serde(default)]
    pub wal_bytes: u64,
    /// Rounds replayed from write-ahead logs on resume (`WalReplay`).
    #[serde(default)]
    pub wal_replayed_rounds: u64,
    /// Damaged durable files recovered by truncate-to-valid
    /// (`DurableRecovered`).
    #[serde(default)]
    pub durable_recoveries: u64,
    /// Final log-likelihood, if a `RunFinished` event was seen.
    pub final_ln_likelihood: Option<f64>,
}

impl RunReport {
    /// Builds the report from an event stream (any order-preserving sink's
    /// contents; records need not be sorted by time).
    pub fn from_events(records: &[Record]) -> RunReport {
        let mut ranks = None;
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        let mut dispatched = 0u64;
        let mut completed = 0u64;
        let mut timeouts = 0u64;
        let mut recoveries = 0u64;
        let mut queue_depth = Vec::new();
        let mut max_work_depth = 0usize;
        let mut traffic: BTreeMap<String, KindTraffic> = BTreeMap::new();
        let mut service_us = Histogram::new();
        let mut rounds = Vec::new();
        let mut jumbles = Vec::new();
        let mut jumbles_started = 0u64;
        let mut respawns = 0u64;
        let mut corrupt_frames = 0u64;
        let mut quarantined = 0u64;
        let mut hierarchy = HierarchyStats::default();
        let mut regions_seen: std::collections::BTreeSet<usize> = Default::default();
        let mut kernel_isa = String::new();
        let mut intra_threads = 0usize;
        let mut wal_appends = 0u64;
        let mut wal_bytes = 0u64;
        let mut wal_replayed_rounds = 0u64;
        let mut durable_recoveries = 0u64;
        let mut final_ln_likelihood = None;
        // worker → (tasks, busy_us, work_units, pattern_updates,
        //           clv_cache_hits, clv_edges_recomputed, fallbacks)
        type WorkerTotals = (u64, u64, u64, u64, u64, u64, u64);
        let mut per_worker: BTreeMap<usize, WorkerTotals> = BTreeMap::new();
        let mut net: BTreeMap<usize, NetPeerStats> = BTreeMap::new();

        for record in records {
            t_min = t_min.min(record.t_us);
            t_max = t_max.max(record.t_us);
            match &record.event {
                Event::RunStarted { ranks: n, .. } => ranks = Some(*n),
                Event::MessageSent { kind, bytes, .. } => {
                    let entry = traffic.entry(kind.clone()).or_default();
                    entry.sent_msgs += 1;
                    entry.sent_bytes += bytes;
                }
                Event::MessageReceived { kind, bytes, .. } => {
                    let entry = traffic.entry(kind.clone()).or_default();
                    entry.recv_msgs += 1;
                    entry.recv_bytes += bytes;
                }
                Event::QueueDepth { work, ready, .. } => {
                    queue_depth.push((record.t_us, *work, *ready));
                    max_work_depth = max_work_depth.max(*work);
                }
                Event::TaskDispatched { .. } => dispatched += 1,
                Event::TaskCompleted {
                    worker,
                    service_us: s,
                    ..
                } => {
                    completed += 1;
                    service_us.observe(*s);
                    per_worker.entry(*worker).or_default().0 += 1;
                }
                Event::TaskTimedOut { .. } => timeouts += 1,
                Event::WorkerRecovered { .. } => recoveries += 1,
                Event::WorkerTaskDone {
                    worker,
                    busy_us,
                    work_units,
                    pattern_updates,
                    ..
                } => {
                    let entry = per_worker.entry(*worker).or_default();
                    entry.1 += busy_us;
                    entry.2 += work_units;
                    entry.3 += pattern_updates;
                }
                Event::IncrementalEdit {
                    worker,
                    cache_hits,
                    edges_recomputed,
                    fallbacks,
                } => {
                    let entry = per_worker.entry(*worker).or_default();
                    entry.4 += cache_hits;
                    entry.5 += edges_recomputed;
                    entry.6 += fallbacks;
                }
                Event::RoundCompleted {
                    round,
                    candidates,
                    best_ln_likelihood,
                } => rounds.push(RoundSummary {
                    round: *round,
                    candidates: *candidates,
                    best_ln_likelihood: *best_ln_likelihood,
                    t_us: record.t_us,
                }),
                Event::RunFinished { ln_likelihood } => final_ln_likelihood = Some(*ln_likelihood),
                Event::NetPeerConnected { rank } => {
                    let e = net.entry(*rank).or_default();
                    e.rank = *rank;
                    e.connects += 1;
                }
                Event::NetPeerDisconnected { rank, .. } => {
                    let e = net.entry(*rank).or_default();
                    e.rank = *rank;
                    e.disconnects += 1;
                }
                Event::NetHeartbeatMiss { rank, .. } => {
                    let e = net.entry(*rank).or_default();
                    e.rank = *rank;
                    e.heartbeat_misses += 1;
                }
                Event::NetPeerReconnected { rank, reconnects } => {
                    let e = net.entry(*rank).or_default();
                    e.rank = *rank;
                    e.reconnects = (*reconnects).max(e.reconnects + 1);
                }
                Event::JumbleStarted { .. } => jumbles_started += 1,
                Event::JumbleCompleted {
                    seed,
                    ln_likelihood,
                    reused,
                } => jumbles.push(JumbleOutcome {
                    seed: *seed,
                    ln_likelihood: *ln_likelihood,
                    reused: *reused,
                }),
                // Farm progress is a gauge stream; the report keeps the
                // completion list instead of every sample.
                Event::FarmProgress { .. } => {}
                Event::WorkerRespawned { .. } => respawns += 1,
                Event::FrameCorrupt { .. } => corrupt_frames += 1,
                Event::TaskQuarantined { .. } => quarantined += 1,
                Event::RegionQueueDepth { region, work, .. } => {
                    regions_seen.insert(*region);
                    hierarchy.max_region_depth = hierarchy.max_region_depth.max(*work);
                }
                Event::LeaseGranted { tasks, .. } => {
                    hierarchy.leases_granted += 1;
                    hierarchy.tasks_leased += *tasks as u64;
                }
                Event::TaskStolen { tasks, .. } => {
                    hierarchy.steals += 1;
                    hierarchy.tasks_stolen += *tasks as u64;
                }
                Event::BatchSent { msgs, bytes, .. } => {
                    hierarchy.batches_sent += 1;
                    hierarchy.batched_msgs += *msgs as u64;
                    hierarchy.batched_bytes += bytes;
                }
                // Job lifecycle events belong to the daemon's per-job
                // ledger, not the per-run report.
                Event::JobSubmitted { .. }
                | Event::JobStarted { .. }
                | Event::JobCompleted { .. }
                | Event::JobFailed { .. } => {}
                Event::KernelDispatch {
                    isa,
                    intra_threads: t,
                } => {
                    kernel_isa = isa.clone();
                    intra_threads = *t;
                }
                Event::WalAppend { bytes, .. } => {
                    wal_appends += 1;
                    wal_bytes += bytes;
                }
                Event::WalReplay { rounds: r, .. } => wal_replayed_rounds += r,
                Event::DurableRecovered { .. } => durable_recoveries += 1,
            }
        }

        let span_us = if t_min == u64::MAX {
            0
        } else {
            (t_max - t_min).max(1)
        };
        let workers = per_worker
            .into_iter()
            .map(
                |(
                    worker,
                    (tasks, busy_us, work_units, pattern_updates, hits, recomputed, fallbacks),
                )| {
                    WorkerUsage {
                        worker,
                        tasks,
                        busy_us,
                        work_units,
                        pattern_updates,
                        patterns_per_sec: if busy_us > 0 {
                            pattern_updates as f64 * 1e6 / busy_us as f64
                        } else {
                            0.0
                        },
                        utilization: busy_us as f64 / span_us as f64,
                        clv_cache_hits: hits,
                        clv_edges_recomputed: recomputed,
                        incremental_fallbacks: fallbacks,
                    }
                },
            )
            .collect();

        RunReport {
            ranks,
            span_us,
            workers,
            dispatched,
            completed,
            timeouts,
            recoveries,
            queue_depth,
            max_work_depth,
            traffic,
            service_us,
            rounds,
            net_peers: net.into_values().collect(),
            jumbles,
            jumbles_started,
            respawns,
            corrupt_frames,
            quarantined,
            hierarchy: HierarchyStats {
                regions_seen: regions_seen.len(),
                ..hierarchy
            },
            kernel_isa,
            intra_threads,
            wal_appends,
            wal_bytes,
            wal_replayed_rounds,
            durable_recoveries,
            final_ln_likelihood,
        }
    }

    /// Mean worker utilization (0 when no workers were observed).
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.utilization).sum::<f64>() / self.workers.len() as f64
    }

    /// The per-round best-lnL trajectory, in round order.
    pub fn lnl_trajectory(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.best_ln_likelihood).collect()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run report")?;
        writeln!(f, "  span: {:.3} s", self.span_us as f64 / 1e6)?;
        if let Some(n) = self.ranks {
            writeln!(f, "  ranks: {n}")?;
        }
        if !self.kernel_isa.is_empty() {
            writeln!(
                f,
                "  kernels: {} isa, {} intra-rank thread{}",
                self.kernel_isa,
                self.intra_threads.max(1),
                if self.intra_threads > 1 { "s" } else { "" }
            )?;
        }
        writeln!(
            f,
            "  tasks: {} dispatched, {} completed, {} timeouts, {} recoveries",
            self.dispatched, self.completed, self.timeouts, self.recoveries
        )?;
        writeln!(f, "  max work-queue depth: {}", self.max_work_depth)?;
        if self.respawns + self.corrupt_frames + self.quarantined > 0 {
            writeln!(
                f,
                "  faults: {} respawns, {} corrupt frames, {} quarantined tasks",
                self.respawns, self.corrupt_frames, self.quarantined
            )?;
        }
        if self.hierarchy.leases_granted > 0 {
            let h = &self.hierarchy;
            writeln!(
                f,
                "  hierarchy: {} regions, {} leases / {} tasks granted, {} steals / {} tasks moved, {} batches ({} msgs, {} B)",
                h.regions_seen,
                h.leases_granted,
                h.tasks_leased,
                h.steals,
                h.tasks_stolen,
                h.batches_sent,
                h.batched_msgs,
                h.batched_bytes
            )?;
        }
        if self.service_us.count > 0 {
            writeln!(
                f,
                "  service time: mean {:.1} µs, p50 ≤ {} µs, p95 ≤ {} µs, max {} µs",
                self.service_us.mean(),
                self.service_us.quantile(0.5),
                self.service_us.quantile(0.95),
                self.service_us.max
            )?;
        }
        if !self.workers.is_empty() {
            writeln!(
                f,
                "  workers ({}), mean utilization {:.1}%:",
                self.workers.len(),
                100.0 * self.mean_utilization()
            )?;
            for w in &self.workers {
                writeln!(
                    f,
                    "    rank {:>3}: {:>5} tasks, {:>8} work units, busy {:.3} s ({:.1}%), {:.0} patterns/s",
                    w.worker,
                    w.tasks,
                    w.work_units,
                    w.busy_us as f64 / 1e6,
                    100.0 * w.utilization,
                    w.patterns_per_sec
                )?;
                if w.clv_cache_hits + w.clv_edges_recomputed + w.incremental_fallbacks > 0 {
                    writeln!(
                        f,
                        "             incremental: {} CLV cache hits, {} edges recomputed, {} fallbacks",
                        w.clv_cache_hits, w.clv_edges_recomputed, w.incremental_fallbacks
                    )?;
                }
            }
        }
        if !self.traffic.is_empty() {
            writeln!(f, "  traffic by kind:")?;
            for (kind, t) in &self.traffic {
                writeln!(
                    f,
                    "    {kind:<12} sent {:>6} msgs / {:>9} B, received {:>6} msgs / {:>9} B",
                    t.sent_msgs, t.sent_bytes, t.recv_msgs, t.recv_bytes
                )?;
            }
        }
        if !self.net_peers.is_empty() {
            writeln!(f, "  network peers:")?;
            for p in &self.net_peers {
                writeln!(
                    f,
                    "    rank {:>3}: {} connects, {} disconnects, {} heartbeat misses, {} reconnects",
                    p.rank, p.connects, p.disconnects, p.heartbeat_misses, p.reconnects
                )?;
            }
        }
        if !self.rounds.is_empty() {
            writeln!(f, "  rounds ({}):", self.rounds.len())?;
            for r in &self.rounds {
                writeln!(
                    f,
                    "    round {:>3}: {:>4} candidates, best lnL {:.4}",
                    r.round, r.candidates, r.best_ln_likelihood
                )?;
            }
        }
        if !self.jumbles.is_empty() {
            writeln!(
                f,
                "  jumbles ({} completed, {} dispatched):",
                self.jumbles.len(),
                self.jumbles_started
            )?;
            for j in &self.jumbles {
                writeln!(
                    f,
                    "    seed {:>6}: lnL {:.4}{}",
                    j.seed,
                    j.ln_likelihood,
                    if j.reused { " (resumed)" } else { "" }
                )?;
            }
        }
        if let Some(lnl) = self.final_ln_likelihood {
            writeln!(f, "  final lnL: {lnl:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, event: Event) -> Record {
        Record { t_us, event }
    }

    #[test]
    fn aggregates_a_small_run() {
        let records = vec![
            rec(
                0,
                Event::RunStarted {
                    ranks: 5,
                    workers: 2,
                },
            ),
            rec(
                1,
                Event::QueueDepth {
                    work: 3,
                    ready: 2,
                    in_flight: 0,
                },
            ),
            rec(2, Event::TaskDispatched { task: 0, worker: 3 }),
            rec(2, Event::TaskDispatched { task: 1, worker: 4 }),
            rec(
                3,
                Event::QueueDepth {
                    work: 1,
                    ready: 0,
                    in_flight: 2,
                },
            ),
            rec(
                500_000,
                Event::WorkerTaskDone {
                    worker: 3,
                    task: 0,
                    busy_us: 400_000,
                    work_units: 100,
                    pattern_updates: 200_000,
                },
            ),
            rec(
                500_010,
                Event::TaskCompleted {
                    task: 0,
                    worker: 3,
                    service_us: 499_000,
                    work_units: 100,
                    ln_likelihood: -50.0,
                },
            ),
            rec(600_000, Event::TaskTimedOut { task: 1, worker: 4 }),
            rec(700_000, Event::WorkerRecovered { worker: 4 }),
            rec(
                800_000,
                Event::WorkerTaskDone {
                    worker: 4,
                    task: 1,
                    busy_us: 200_000,
                    work_units: 60,
                    pattern_updates: 80_000,
                },
            ),
            rec(
                800_010,
                Event::TaskCompleted {
                    task: 1,
                    worker: 4,
                    service_us: 798_000,
                    work_units: 60,
                    ln_likelihood: -48.5,
                },
            ),
            rec(
                900_000,
                Event::RoundCompleted {
                    round: 1,
                    candidates: 2,
                    best_ln_likelihood: -48.5,
                },
            ),
            rec(
                1_000_000,
                Event::RunFinished {
                    ln_likelihood: -48.5,
                },
            ),
        ];
        let report = RunReport::from_events(&records);
        assert_eq!(report.ranks, Some(5));
        assert_eq!(report.span_us, 1_000_000);
        assert_eq!(report.dispatched, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.timeouts, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.max_work_depth, 3);
        assert_eq!(report.queue_depth.len(), 2);
        assert_eq!(report.workers.len(), 2);
        let w3 = &report.workers[0];
        assert_eq!(w3.worker, 3);
        assert_eq!(w3.tasks, 1);
        assert!((w3.utilization - 0.4).abs() < 1e-9);
        assert_eq!(w3.pattern_updates, 200_000);
        // 200k pattern updates in 0.4 s of busy time → 500k patterns/s.
        assert!((w3.patterns_per_sec - 500_000.0).abs() < 1e-6);
        assert_eq!(report.service_us.count, 2);
        assert_eq!(report.lnl_trajectory(), vec![-48.5]);
        assert_eq!(report.final_ln_likelihood, Some(-48.5));
        // The Display form mentions the headline numbers.
        let text = report.to_string();
        assert!(text.contains("2 dispatched"));
        assert!(text.contains("1 timeouts"));
    }

    #[test]
    fn traffic_accumulates_per_kind() {
        let records = vec![
            rec(
                0,
                Event::MessageSent {
                    from: 1,
                    to: 3,
                    kind: "TreeTask".into(),
                    bytes: 100,
                },
            ),
            rec(
                1,
                Event::MessageSent {
                    from: 1,
                    to: 4,
                    kind: "TreeTask".into(),
                    bytes: 150,
                },
            ),
            rec(
                2,
                Event::MessageReceived {
                    at: 3,
                    from: 1,
                    kind: "TreeTask".into(),
                    bytes: 100,
                },
            ),
            rec(
                3,
                Event::MessageSent {
                    from: 3,
                    to: 1,
                    kind: "TreeResult".into(),
                    bytes: 220,
                },
            ),
        ];
        let report = RunReport::from_events(&records);
        let task = &report.traffic["TreeTask"];
        assert_eq!(task.sent_msgs, 2);
        assert_eq!(task.sent_bytes, 250);
        assert_eq!(task.recv_msgs, 1);
        let result = &report.traffic["TreeResult"];
        assert_eq!(result.sent_msgs, 1);
        assert_eq!(result.sent_bytes, 220);
    }

    #[test]
    fn net_events_aggregate_per_rank() {
        let records = vec![
            rec(0, Event::NetPeerConnected { rank: 3 }),
            rec(1, Event::NetPeerConnected { rank: 4 }),
            rec(50, Event::NetHeartbeatMiss { rank: 3, misses: 1 }),
            rec(60, Event::NetHeartbeatMiss { rank: 3, misses: 2 }),
            rec(
                70,
                Event::NetPeerDisconnected {
                    rank: 3,
                    graceful: false,
                },
            ),
            rec(
                90,
                Event::NetPeerReconnected {
                    rank: 3,
                    reconnects: 1,
                },
            ),
            rec(
                100,
                Event::NetPeerDisconnected {
                    rank: 4,
                    graceful: true,
                },
            ),
        ];
        let report = RunReport::from_events(&records);
        assert_eq!(report.net_peers.len(), 2);
        let p3 = &report.net_peers[0];
        assert_eq!(
            (
                p3.rank,
                p3.connects,
                p3.disconnects,
                p3.heartbeat_misses,
                p3.reconnects
            ),
            (3, 1, 1, 2, 1)
        );
        let p4 = &report.net_peers[1];
        assert_eq!((p4.rank, p4.connects, p4.disconnects), (4, 1, 1));
        let text = report.to_string();
        assert!(text.contains("network peers"));
        assert!(text.contains("2 heartbeat misses"));
        // Net events round-trip through the serialized report.
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.net_peers, report.net_peers);
    }

    #[test]
    fn farm_events_aggregate_into_jumble_list() {
        let records = vec![
            rec(0, Event::JumbleStarted { seed: 3 }),
            rec(1, Event::JumbleStarted { seed: 5 }),
            rec(
                2,
                Event::FarmProgress {
                    completed: 0,
                    in_flight: 2,
                    pending: 1,
                    total: 3,
                },
            ),
            rec(
                10,
                Event::JumbleCompleted {
                    seed: 5,
                    ln_likelihood: -42.5,
                    reused: false,
                },
            ),
            rec(
                11,
                Event::JumbleCompleted {
                    seed: 1,
                    ln_likelihood: -43.0,
                    reused: true,
                },
            ),
        ];
        let report = RunReport::from_events(&records);
        assert_eq!(report.jumbles_started, 2);
        assert_eq!(report.jumbles.len(), 2);
        assert_eq!(report.jumbles[0].seed, 5);
        assert!(report.jumbles[1].reused);
        let text = report.to_string();
        assert!(text.contains("jumbles (2 completed, 2 dispatched)"));
        assert!(text.contains("(resumed)"));
        // Round-trips, and a report serialized before the farm fields
        // existed still parses.
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn robustness_events_aggregate_into_fault_counters() {
        let records = vec![
            rec(
                0,
                Event::WorkerRespawned {
                    worker: 3,
                    restarts: 1,
                },
            ),
            rec(
                1,
                Event::WorkerRespawned {
                    worker: 3,
                    restarts: 2,
                },
            ),
            rec(2, Event::FrameCorrupt { rank: 4 }),
            rec(
                3,
                Event::TaskQuarantined {
                    task: 17,
                    failures: 3,
                },
            ),
        ];
        let report = RunReport::from_events(&records);
        assert_eq!(report.respawns, 2);
        assert_eq!(report.corrupt_frames, 1);
        assert_eq!(report.quarantined, 1);
        let text = report.to_string();
        assert!(text.contains("2 respawns"));
        assert!(text.contains("1 corrupt frames"));
        assert!(text.contains("1 quarantined tasks"));
        // A report serialized before the fault counters existed parses.
        let json = serde_json::to_string(&RunReport::from_events(&[])).unwrap();
        let stripped = json
            .replace("\"respawns\":0,", "")
            .replace("\"corrupt_frames\":0,", "")
            .replace("\"quarantined\":0,", "");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.respawns, 0);
    }

    #[test]
    fn incremental_counters_aggregate_per_worker() {
        let records = vec![
            rec(
                0,
                Event::IncrementalEdit {
                    worker: 3,
                    cache_hits: 3,
                    edges_recomputed: 0,
                    fallbacks: 0,
                },
            ),
            rec(
                1,
                Event::IncrementalEdit {
                    worker: 3,
                    cache_hits: 2,
                    edges_recomputed: 4,
                    fallbacks: 1,
                },
            ),
            rec(
                2,
                Event::IncrementalEdit {
                    worker: 4,
                    cache_hits: 3,
                    edges_recomputed: 0,
                    fallbacks: 0,
                },
            ),
        ];
        let report = RunReport::from_events(&records);
        assert_eq!(report.workers.len(), 2);
        let w3 = &report.workers[0];
        assert_eq!(w3.clv_cache_hits, 5);
        assert_eq!(w3.clv_edges_recomputed, 4);
        assert_eq!(w3.incremental_fallbacks, 1);
        let text = report.to_string();
        assert!(text.contains("5 CLV cache hits"), "got: {text}");
        assert!(text.contains("1 fallbacks"), "got: {text}");
        // A report serialized before the incremental counters existed
        // still parses (serde defaults).
        let json = serde_json::to_string(&report).unwrap();
        let stripped = json
            .replace("\"clv_cache_hits\":5,", "")
            .replace("\"clv_edges_recomputed\":4,", "")
            .replace("\"incremental_fallbacks\":1,", "");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.workers[0].clv_cache_hits, 0);
        assert_eq!(back.workers[1].clv_cache_hits, 3);
    }

    #[test]
    fn hierarchy_events_aggregate_into_tree_counters() {
        let records = vec![
            rec(
                0,
                Event::LeaseGranted {
                    region: 0,
                    tasks: 8,
                },
            ),
            rec(
                1,
                Event::LeaseGranted {
                    region: 1,
                    tasks: 4,
                },
            ),
            rec(
                2,
                Event::RegionQueueDepth {
                    region: 0,
                    work: 6,
                    ready: 2,
                    in_flight: 2,
                },
            ),
            rec(
                3,
                Event::RegionQueueDepth {
                    region: 1,
                    work: 3,
                    ready: 1,
                    in_flight: 1,
                },
            ),
            rec(
                4,
                Event::TaskStolen {
                    from_region: 0,
                    to_region: 1,
                    tasks: 3,
                },
            ),
            rec(
                5,
                Event::BatchSent {
                    from: 3,
                    msgs: 5,
                    bytes: 420,
                },
            ),
        ];
        let report = RunReport::from_events(&records);
        let h = &report.hierarchy;
        assert_eq!(h.leases_granted, 2);
        assert_eq!(h.tasks_leased, 12);
        assert_eq!(h.steals, 1);
        assert_eq!(h.tasks_stolen, 3);
        assert_eq!(h.batches_sent, 1);
        assert_eq!(h.batched_msgs, 5);
        assert_eq!(h.batched_bytes, 420);
        assert_eq!(h.max_region_depth, 6);
        assert_eq!(h.regions_seen, 2);
        let text = report.to_string();
        assert!(text.contains("2 leases / 12 tasks granted"), "got: {text}");
        assert!(text.contains("1 steals / 3 tasks moved"), "got: {text}");
        // A report serialized before the hierarchy block existed parses.
        // The block is a flat object, so the first `}` after the key (plus
        // the trailing comma) bounds exactly what has to go.
        let json = serde_json::to_string(&report).unwrap();
        let start = json.find("\"hierarchy\":").unwrap();
        let end = json[start..].find('}').unwrap() + start;
        let stripped = format!("{}{}", &json[..start], &json[end + 2..]);
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.hierarchy, HierarchyStats::default());
    }

    #[test]
    fn empty_stream_is_a_zero_report() {
        let report = RunReport::from_events(&[]);
        assert_eq!(report.span_us, 0);
        assert!(report.workers.is_empty());
        assert_eq!(report.mean_utilization(), 0.0);
        assert_eq!(report.final_ln_likelihood, None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let records = vec![
            rec(
                0,
                Event::RunStarted {
                    ranks: 4,
                    workers: 1,
                },
            ),
            rec(
                10,
                Event::TaskCompleted {
                    task: 0,
                    worker: 3,
                    service_us: 9,
                    work_units: 5,
                    ln_likelihood: -1.0,
                },
            ),
        ];
        let report = RunReport::from_events(&records);
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
