//! Observability layer for the fastDNAml parallel runtime.
//!
//! The paper's evaluated artifact is the "fully instrumented parallel
//! version" of fastDNAml: its scaling story is told entirely in terms of
//! worker utilization, queue dynamics, and per-task service times. This
//! crate is that instrumentation made structural:
//!
//! * [`event::Event`] — the structured vocabulary of runtime observations
//!   (message traffic, queue depth, task lifecycle, round boundaries), each
//!   wrapped in a timestamped [`event::Record`].
//! * [`Obs`] — the cloneable handle the runtime emits through. A disabled
//!   handle (or one built on [`sink::NullSink`]) is a single `Option` check:
//!   no allocation, no event construction.
//! * [`sink::Sink`] — where records go: [`sink::NullSink`] (nowhere),
//!   [`sink::MemorySink`] (in-process, for tests and end-of-run reports),
//!   [`sink::JsonlSink`] (one JSON object per line, for offline analysis).
//! * [`registry::Registry`] — named counters, gauges, and log-bucketed
//!   [`registry::Histogram`]s for code that wants aggregates rather than an
//!   event stream.
//! * [`report::RunReport`] — the end-of-run summary: per-worker utilization,
//!   foreman queue-depth over time, per-message-kind traffic, the service
//!   time distribution, and the per-round lnL trajectory.
//!
//! The same event schema is emitted by the real threaded runtime and by the
//! `fdml-simsp` discrete-event simulator, so measured and simulated
//! utilization are directly comparable.

#![warn(missing_docs)]

pub mod event;
pub mod registry;
pub mod report;
pub mod sink;

pub use event::{Event, Record};
pub use registry::{Histogram, Registry};
pub use report::{NetPeerStats, RunReport};
pub use sink::{JsonlSink, MemorySink, NullSink, Sink};

use std::sync::Arc;
use std::time::Instant;

struct ObsShared {
    start: Instant,
    sinks: Vec<Box<dyn Sink>>,
}

/// The handle the runtime emits events through.
///
/// Cloning is cheap (an `Arc` bump). A disabled handle makes
/// [`Obs::emit`] a single branch: the event-constructing closure is never
/// called, so instrumentation costs nothing when observation is off.
#[derive(Clone)]
pub struct Obs {
    inner: Option<Arc<ObsShared>>,
}

impl Obs {
    /// A handle that records nothing and never runs emit closures.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// A handle recording to one sink. A [`NullSink`] collapses to
    /// [`Obs::disabled`], so the hot path stays allocation-free.
    pub fn new(sink: Box<dyn Sink>) -> Obs {
        Obs::multi(vec![sink])
    }

    /// A handle fanning every record out to several sinks (e.g. a JSONL log
    /// plus an in-memory buffer for the end-of-run report). Null sinks are
    /// dropped; if none remain the handle is disabled.
    pub fn multi(sinks: Vec<Box<dyn Sink>>) -> Obs {
        let sinks: Vec<Box<dyn Sink>> = sinks.into_iter().filter(|s| !s.is_null()).collect();
        if sinks.is_empty() {
            return Obs::disabled();
        }
        Obs {
            inner: Some(Arc::new(ObsShared {
                start: Instant::now(),
                sinks,
            })),
        }
    }

    /// Whether records are being kept. When false, [`Obs::emit`] closures
    /// never run.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an event stamped with elapsed wall-clock time. The closure is
    /// only invoked when the handle is enabled.
    pub fn emit(&self, event: impl FnOnce() -> Event) {
        if let Some(shared) = &self.inner {
            let t_us = shared.start.elapsed().as_micros() as u64;
            let record = Record {
                t_us,
                event: event(),
            };
            for sink in &shared.sinks {
                sink.record(&record);
            }
        }
    }

    /// Records an event at an explicit timestamp — used by the simulator,
    /// whose clock is simulated seconds rather than wall time.
    pub fn emit_at(&self, t_us: u64, event: impl FnOnce() -> Event) {
        if let Some(shared) = &self.inner {
            let record = Record {
                t_us,
                event: event(),
            };
            for sink in &shared.sinks {
                sink.record(&record);
            }
        }
    }

    /// Flushes every sink (e.g. the JSONL writer's buffer).
    pub fn flush(&self) {
        if let Some(shared) = &self.inner {
            for sink in &shared.sinks {
                sink.flush();
            }
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_runs_closures() {
        let obs = Obs::disabled();
        let mut ran = false;
        obs.emit(|| {
            ran = true;
            Event::RunFinished { ln_likelihood: 0.0 }
        });
        assert!(!ran);
        assert!(!obs.enabled());
    }

    #[test]
    fn null_sink_collapses_to_disabled() {
        let obs = Obs::new(Box::new(NullSink));
        assert!(!obs.enabled());
        let obs = Obs::multi(vec![Box::new(NullSink), Box::new(NullSink)]);
        assert!(!obs.enabled());
    }

    #[test]
    fn memory_sink_receives_timestamped_records() {
        let mem = MemorySink::new();
        let obs = Obs::new(Box::new(mem.clone()));
        assert!(obs.enabled());
        obs.emit(|| Event::RunStarted {
            ranks: 4,
            workers: 1,
        });
        obs.emit_at(1234, || Event::WorkerRecovered { worker: 3 });
        let records = mem.snapshot();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].event,
            Event::RunStarted {
                ranks: 4,
                workers: 1
            }
        );
        assert_eq!(records[1].t_us, 1234);
    }

    #[test]
    fn multi_fans_out_to_all_sinks() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let obs = Obs::multi(vec![
            Box::new(a.clone()),
            Box::new(NullSink),
            Box::new(b.clone()),
        ]);
        obs.emit(|| Event::WorkerRecovered { worker: 5 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
