//! The structured event vocabulary of the instrumented runtime.
//!
//! One schema serves both the real threaded runtime and the RS/6000 SP
//! simulator; `t_us` is wall-clock microseconds since observation started in
//! the former and simulated microseconds in the latter.

use serde::{Deserialize, Serialize};

/// A single runtime observation.
///
/// Ranks are plain `usize` (the `fdml-comm` rank convention: 0 = master,
/// 1 = foreman, 2 = monitor, 3.. = workers) and message kinds are their
/// stable string names, so this crate stays dependency-free below `serde`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Observation began; the universe has `ranks` ranks, of which
    /// `workers` evaluate trees.
    RunStarted {
        /// Total rank count (master + foreman + monitor + workers).
        ranks: usize,
        /// Worker count (`ranks - 3`).
        workers: usize,
    },
    /// A transport endpoint sent a message.
    MessageSent {
        /// Sending rank.
        from: usize,
        /// Destination rank.
        to: usize,
        /// Stable message-kind name (`MessageKind::name`).
        kind: String,
        /// Approximate wire size (`Message::wire_bytes`).
        bytes: u64,
    },
    /// A transport endpoint received a message.
    MessageReceived {
        /// Receiving rank.
        at: usize,
        /// Originating rank.
        from: usize,
        /// Stable message-kind name (`MessageKind::name`).
        kind: String,
        /// Approximate wire size (`Message::wire_bytes`).
        bytes: u64,
    },
    /// The foreman's queue state after a scheduling action.
    QueueDepth {
        /// Candidate trees waiting for a worker.
        work: usize,
        /// Workers waiting for a candidate tree.
        ready: usize,
        /// Tasks dispatched and not yet answered.
        in_flight: usize,
    },
    /// The foreman handed a candidate tree to a worker.
    TaskDispatched {
        /// Task id.
        task: u64,
        /// Worker rank.
        worker: usize,
    },
    /// A worker's evaluated tree was accepted by the foreman.
    TaskCompleted {
        /// Task id.
        task: u64,
        /// Worker rank.
        worker: usize,
        /// Dispatch-to-result latency seen by the foreman, µs.
        service_us: u64,
        /// Work units the evaluation reported.
        work_units: u64,
        /// The candidate's log-likelihood.
        ln_likelihood: f64,
    },
    /// A worker blew the foreman's timeout; its task was re-queued.
    TaskTimedOut {
        /// The re-queued task id.
        task: u64,
        /// The delinquent worker's rank.
        worker: usize,
    },
    /// A delinquent worker answered late and was re-admitted.
    WorkerRecovered {
        /// The recovered worker's rank.
        worker: usize,
    },
    /// A worker finished the compute part of one task (measured on the
    /// worker itself, excluding queueing and transport).
    WorkerTaskDone {
        /// The worker's rank.
        worker: usize,
        /// Task id.
        task: u64,
        /// Time spent inside likelihood evaluation, µs.
        busy_us: u64,
        /// Work units expended.
        work_units: u64,
        /// Raw per-pattern kernel operations performed
        /// (`WorkCounter::total_pattern_updates`), the unweighted count
        /// behind the patterns/sec throughput gauge.
        pattern_updates: u64,
    },
    /// A worker scored one incremental edit task through its CLV cache
    /// (emitted alongside [`Event::WorkerTaskDone`] for that task).
    IncrementalEdit {
        /// The worker's rank.
        worker: usize,
        /// Directional CLVs served from the cache for this edit.
        cache_hits: u64,
        /// Dirty-path CLVs recomputed for this edit.
        edges_recomputed: u64,
        /// 1 when the worker had to install an embedded base from a
        /// self-contained dispatch (the fallback ladder fired), else 0.
        fallbacks: u64,
    },
    /// A dispatch round closed.
    RoundCompleted {
        /// Round ordinal.
        round: u64,
        /// Candidate trees evaluated in the round.
        candidates: usize,
        /// Best log-likelihood found in the round.
        best_ln_likelihood: f64,
    },
    /// Observation ended.
    RunFinished {
        /// Final log-likelihood of the search.
        ln_likelihood: f64,
    },
    /// A network peer completed the transport handshake and joined the
    /// universe (emitted by `fdml-net`; the threaded transport never
    /// produces it, the simulator emits one per simulated worker so real
    /// and simulated reports share a schema).
    NetPeerConnected {
        /// The rank the peer was assigned.
        rank: usize,
    },
    /// A network peer's connection was lost (or closed in an orderly way).
    NetPeerDisconnected {
        /// The disconnected peer's rank.
        rank: usize,
        /// True when the peer said goodbye; false for a dropped link.
        graceful: bool,
    },
    /// A heartbeat interval elapsed with no traffic from a peer.
    NetHeartbeatMiss {
        /// The silent peer's rank.
        rank: usize,
        /// Consecutive misses so far (the peer is declared dead at the
        /// transport's miss limit).
        misses: u64,
    },
    /// A previously lost peer reconnected and was re-bound to its rank.
    NetPeerReconnected {
        /// The returning peer's rank.
        rank: usize,
        /// Cumulative reconnects for this rank, this one included.
        reconnects: u64,
    },
    /// The farm scheduler handed a jumble (one whole random-addition
    /// search) to the worker pool.
    JumbleStarted {
        /// The adjusted jumble seed.
        seed: u64,
    },
    /// A jumble finished and its tree entered the incremental consensus.
    JumbleCompleted {
        /// The adjusted jumble seed.
        seed: u64,
        /// The jumble's final log-likelihood.
        ln_likelihood: f64,
        /// True when the result came from a resumed manifest rather than a
        /// fresh computation.
        reused: bool,
    },
    /// A farm scheduling state change: how many jumbles are done, running,
    /// and still queued (the farm's throughput gauge).
    FarmProgress {
        /// Jumbles completed so far.
        completed: usize,
        /// Jumbles currently dispatched to the pool.
        in_flight: usize,
        /// Jumbles not yet dispatched.
        pending: usize,
        /// Total jumbles in the farm.
        total: usize,
    },
    /// The supervisor restarted a dead worker process (or thread).
    WorkerRespawned {
        /// The respawned worker's rank.
        worker: usize,
        /// Cumulative restarts for this rank, this one included.
        restarts: u64,
    },
    /// A frame failed its CRC32 check (or a chaos plan corrupted a
    /// message); the payload was discarded and the peer treated as lost.
    FrameCorrupt {
        /// The rank whose traffic was corrupted.
        rank: usize,
    },
    /// A task exhausted its failure budget across distinct workers and was
    /// pulled from the queue for local evaluation on the master.
    TaskQuarantined {
        /// The quarantined task id.
        task: u64,
        /// Distinct workers that failed the task before quarantine.
        failures: u64,
    },
    /// A regional foreman's queue state after a scheduling action
    /// (hierarchical fleets; the root foreman keeps emitting the global
    /// [`Event::QueueDepth`]).
    RegionQueueDepth {
        /// Region index (0-based; region r is rank 3 + r).
        region: usize,
        /// Leased tasks waiting for a worker in this region.
        work: usize,
        /// Idle workers in this region.
        ready: usize,
        /// Tasks dispatched to this region's workers and not yet answered.
        in_flight: usize,
    },
    /// The root foreman granted a lease batch to a regional foreman.
    LeaseGranted {
        /// The receiving region's index.
        region: usize,
        /// Tasks in the grant.
        tasks: usize,
    },
    /// The root foreman moved tasks from one region's lease to another's
    /// (work stealing: the thief drained its shard while the victim still
    /// had queued work).
    TaskStolen {
        /// The region that gave tasks up.
        from_region: usize,
        /// The region that received them.
        to_region: usize,
        /// Tasks moved.
        tasks: usize,
    },
    /// A multi-message frame left a scheduling tier (lease grants, result
    /// aggregation) — the wire-amortization gauge of the foreman tree.
    BatchSent {
        /// Sending rank.
        from: usize,
        /// Messages inside the batch.
        msgs: usize,
        /// Approximate wire size of the batch (`Message::wire_bytes`).
        bytes: u64,
    },
    /// The daemon admitted a job into its registry (service mode).
    JobSubmitted {
        /// The registry id assigned at admission.
        job: u64,
        /// How many jumbles the job plans.
        jumbles: usize,
        /// The submitter's display label.
        label: String,
    },
    /// The fair-share scheduler dispatched a job's first piece of work.
    JobStarted {
        /// The job that left the queue.
        job: u64,
    },
    /// Every jumble of a job completed; its result is available.
    JobCompleted {
        /// The finished job.
        job: u64,
        /// The best log-likelihood over its jumbles.
        best_ln_likelihood: f64,
    },
    /// A job ended without a result (search error, wall-time quota).
    JobFailed {
        /// The failed job.
        job: u64,
        /// Why it failed.
        reason: String,
    },
    /// The likelihood kernel configuration a run resolved at startup:
    /// which SIMD instruction set the dispatcher selected and how many
    /// intra-rank pattern-block threads each engine runs with.
    KernelDispatch {
        /// Active instruction set name (`KernelIsa::name`): "scalar",
        /// "avx2", "avx512", or "neon".
        isa: String,
        /// Pattern-block threads per worker engine (1 = serial).
        intra_threads: usize,
    },
    /// One committed round was appended to a write-ahead log.
    WalAppend {
        /// Serve-job id the WAL belongs to (0 outside the daemon).
        job: u64,
        /// Jumble seed of the search being logged.
        seed: u64,
        /// 0-based round index of the appended record.
        index: u64,
        /// Framed bytes written (header + payload).
        bytes: u64,
    },
    /// A resumed search replayed committed rounds from a write-ahead log
    /// instead of re-scoring them.
    WalReplay {
        /// Serve-job id the WAL belongs to (0 outside the daemon).
        job: u64,
        /// Jumble seed of the resumed search.
        seed: u64,
        /// Rounds replayed from the log.
        rounds: u64,
    },
    /// The crash-consistent storage layer recovered a damaged file:
    /// salvaged the longest valid prefix and dropped the torn tail. A
    /// warning, not an error — surviving exactly this is what the framed
    /// format is for — but worth an operator's eyes.
    DurableRecovered {
        /// The file that was recovered.
        path: String,
        /// Byte offset where the salvaged prefix ends (the last valid
        /// record boundary).
        valid_bytes: u64,
        /// Bytes dropped after that offset.
        dropped_bytes: u64,
    },
}

impl Event {
    /// A short stable tag for the event type (for filtering logs).
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "RunStarted",
            Event::MessageSent { .. } => "MessageSent",
            Event::MessageReceived { .. } => "MessageReceived",
            Event::QueueDepth { .. } => "QueueDepth",
            Event::TaskDispatched { .. } => "TaskDispatched",
            Event::TaskCompleted { .. } => "TaskCompleted",
            Event::TaskTimedOut { .. } => "TaskTimedOut",
            Event::WorkerRecovered { .. } => "WorkerRecovered",
            Event::WorkerTaskDone { .. } => "WorkerTaskDone",
            Event::IncrementalEdit { .. } => "IncrementalEdit",
            Event::RoundCompleted { .. } => "RoundCompleted",
            Event::RunFinished { .. } => "RunFinished",
            Event::NetPeerConnected { .. } => "NetPeerConnected",
            Event::NetPeerDisconnected { .. } => "NetPeerDisconnected",
            Event::NetHeartbeatMiss { .. } => "NetHeartbeatMiss",
            Event::NetPeerReconnected { .. } => "NetPeerReconnected",
            Event::JumbleStarted { .. } => "JumbleStarted",
            Event::JumbleCompleted { .. } => "JumbleCompleted",
            Event::FarmProgress { .. } => "FarmProgress",
            Event::WorkerRespawned { .. } => "WorkerRespawned",
            Event::FrameCorrupt { .. } => "FrameCorrupt",
            Event::TaskQuarantined { .. } => "TaskQuarantined",
            Event::RegionQueueDepth { .. } => "RegionQueueDepth",
            Event::LeaseGranted { .. } => "LeaseGranted",
            Event::TaskStolen { .. } => "TaskStolen",
            Event::BatchSent { .. } => "BatchSent",
            Event::JobSubmitted { .. } => "JobSubmitted",
            Event::JobStarted { .. } => "JobStarted",
            Event::JobCompleted { .. } => "JobCompleted",
            Event::JobFailed { .. } => "JobFailed",
            Event::KernelDispatch { .. } => "KernelDispatch",
            Event::WalAppend { .. } => "WalAppend",
            Event::WalReplay { .. } => "WalReplay",
            Event::DurableRecovered { .. } => "DurableRecovered",
        }
    }
}

/// An [`Event`] stamped with its observation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Microseconds since observation started (wall clock in the real
    /// runtime, simulated time in `fdml-simsp`).
    pub t_us: u64,
    /// The observation itself.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            Record {
                t_us: 0,
                event: Event::RunStarted {
                    ranks: 5,
                    workers: 2,
                },
            },
            Record {
                t_us: 17,
                event: Event::MessageSent {
                    from: 1,
                    to: 3,
                    kind: "TreeTask".into(),
                    bytes: 120,
                },
            },
            Record {
                t_us: 40,
                event: Event::TaskCompleted {
                    task: 9,
                    worker: 3,
                    service_us: 23,
                    work_units: 800,
                    ln_likelihood: -1234.5,
                },
            },
            Record {
                t_us: 99,
                event: Event::RunFinished {
                    ln_likelihood: -1200.25,
                },
            },
        ];
        for r in records {
            let json = serde_json::to_string(&r).unwrap();
            let back: Record = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            Event::QueueDepth {
                work: 0,
                ready: 0,
                in_flight: 0
            }
            .name(),
            "QueueDepth"
        );
        assert_eq!(
            Event::WorkerRecovered { worker: 3 }.name(),
            "WorkerRecovered"
        );
        assert_eq!(
            Event::WorkerRespawned {
                worker: 3,
                restarts: 1
            }
            .name(),
            "WorkerRespawned"
        );
        assert_eq!(Event::FrameCorrupt { rank: 4 }.name(), "FrameCorrupt");
        assert_eq!(
            Event::TaskQuarantined {
                task: 9,
                failures: 2
            }
            .name(),
            "TaskQuarantined"
        );
    }

    #[test]
    fn robustness_events_round_trip_through_json() {
        let records = vec![
            Record {
                t_us: 5,
                event: Event::WorkerRespawned {
                    worker: 4,
                    restarts: 2,
                },
            },
            Record {
                t_us: 6,
                event: Event::FrameCorrupt { rank: 3 },
            },
            Record {
                t_us: 7,
                event: Event::TaskQuarantined {
                    task: 12,
                    failures: 3,
                },
            },
        ];
        for r in records {
            let json = serde_json::to_string(&r).unwrap();
            let back: Record = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
    }
}
