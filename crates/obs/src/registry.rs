//! Named counters, gauges, and histograms for aggregate-oriented callers.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Values land in bucket `⌈log₂(v+1)⌉` (bucket 0 holds zeros, bucket i holds
/// values in `[2^(i-1), 2^i)`), so `observe` is allocation-free and the
/// distribution of, say, service times in microseconds fits in 65 fixed
/// buckets regardless of range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Sample counts per power-of-two bucket.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; 65],
        }
    }

    fn bucket_index(value: u64) -> usize {
        64 - value.leading_zeros() as usize
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// The arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper-bound estimate of the `q`-quantile (q in [0, 1]): the top of
    /// the bucket where the cumulative count crosses `q * count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 {
                    0
                } else {
                    (1u64 << (i - 1)).saturating_mul(2) - 1
                };
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[derive(Default)]
struct RegistryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe collection of named metrics.
#[derive(Default)]
pub struct Registry {
    state: Mutex<RegistryState>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to the counter `name` (creating it at zero).
    pub fn inc(&self, name: &str, by: u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *st.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// The counter's current value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge's current value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.gauges.get(name).copied()
    }

    /// A copy of the histogram `name`, if any samples were observed.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.histograms.get(name).cloned()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = Registry::new();
        reg.inc("sent", 1);
        reg.inc("sent", 2);
        reg.set_gauge("depth", 4.5);
        assert_eq!(reg.counter("sent"), 3);
        assert_eq!(reg.counter("absent"), 0);
        assert_eq!(reg.gauge("depth"), Some(4.5));
        assert_eq!(reg.counters(), vec![("sent".to_string(), 3)]);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1107);
        assert!((h.mean() - 1107.0 / 7.0).abs() < 1e-9);
        // Zeros land in bucket 0, ones in bucket 1, 2..3 in buckets 2..3.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        // Median ≤ 3 for this sample set; p100 covers the max.
        assert!(h.quantile(0.5) <= 3);
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.observe(5);
        b.observe(50);
        b.observe(2);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 2);
        assert_eq!(a.max, 50);
    }

    #[test]
    fn registry_histograms() {
        let reg = Registry::new();
        reg.observe("service_us", 10);
        reg.observe("service_us", 20);
        let h = reg.histogram("service_us").unwrap();
        assert_eq!(h.count, 2);
        assert!(reg.histogram("absent").is_none());
    }
}
