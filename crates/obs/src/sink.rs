//! Destinations for event records.

use crate::event::Record;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A destination for [`Record`]s. Implementations must be callable from any
/// rank's thread.
pub trait Sink: Send + Sync {
    /// Accepts one record.
    fn record(&self, record: &Record);

    /// Flushes buffered output, if any.
    fn flush(&self) {}

    /// Whether this sink discards everything. [`crate::Obs`] drops such
    /// sinks at construction so the emit path stays a single branch.
    fn is_null(&self) -> bool {
        false
    }
}

/// Discards every record. An `Obs` built over only null sinks is disabled
/// outright, so instrumented code pays one pointer check and no allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _record: &Record) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// Buffers records in memory — the sink behind end-of-run reports and
/// integration tests.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<Record>>>,
}

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<Record> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Record> {
        std::mem::take(&mut *self.records.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, record: &Record) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record.clone());
    }
}

/// Writes one JSON object per line — the `--obs-out` format.
pub struct JsonlSink {
    writer: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncating) the log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Parses a JSONL event log back into records (the inverse of this
    /// sink), skipping blank lines.
    pub fn parse(text: &str) -> Result<Vec<Record>, serde_json::Error> {
        text.lines()
            .filter(|line| !line.trim().is_empty())
            .map(serde_json::from_str)
            .collect()
    }
}

impl Sink for JsonlSink {
    fn record(&self, record: &Record) {
        let json = serde_json::to_string(record).expect("event serializes");
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // I/O errors deliberately do not panic the runtime; a torn log is
        // better than a torn run.
        let _ = writeln!(writer, "{json}");
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn sample_records() -> Vec<Record> {
        vec![
            Record {
                t_us: 1,
                event: Event::RunStarted {
                    ranks: 4,
                    workers: 1,
                },
            },
            Record {
                t_us: 2,
                event: Event::TaskDispatched { task: 0, worker: 3 },
            },
            Record {
                t_us: 9,
                event: Event::RunFinished {
                    ln_likelihood: -5.5,
                },
            },
        ]
    }

    #[test]
    fn memory_sink_snapshot_and_take() {
        let sink = MemorySink::new();
        for r in sample_records() {
            sink.record(&r);
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.snapshot().len(), 3);
        assert_eq!(sink.take(), sample_records());
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_round_trips_through_a_file() {
        let path = std::env::temp_dir().join(format!("fdml-obs-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        for r in sample_records() {
            sink.record(&r);
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(text.lines().count(), 3);
        let back = JsonlSink::parse(&text).unwrap();
        assert_eq!(back, sample_records());
    }
}
