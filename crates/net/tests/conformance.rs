//! Transport conformance: one behavioural contract, two implementations.
//!
//! Every check here runs against both the threaded transport (ranks as OS
//! threads over channels) and the TCP transport (ranks as processes behind
//! a hub, here exercised in-process over loopback). The run loops in
//! `fdml-core` are written against the `Transport` trait alone, so any
//! semantic daylight between the two implementations — ordering, timeout
//! behaviour, failure surfaced — would show up as a parallel run behaving
//! differently across processes than across threads.

use fdml_comm::message::Message;
use fdml_comm::threads::ThreadUniverse;
use fdml_comm::transport::{CommError, Transport};
use fdml_net::wire::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use fdml_net::{ClientConfig, NetConfig, TcpHub, TcpTransport, WireFormat};
use fdml_obs::{Event, MemorySink, Obs};
use std::net::TcpStream;
use std::time::{Duration, Instant};

type Universe = Vec<Box<dyn Transport>>;

fn thread_universe(n: usize) -> Universe {
    ThreadUniverse::create(n)
        .into_iter()
        .map(|t| Box::new(t) as Box<dyn Transport>)
        .collect()
}

/// Liveness tuned fast enough for tests without being racy.
fn fast_net_config() -> NetConfig {
    NetConfig {
        heartbeat_interval: Duration::from_millis(40),
        miss_limit: 4,
        ..NetConfig::default()
    }
}

fn tcp_universe(n: usize) -> Universe {
    let hub = TcpHub::bind("127.0.0.1:0", n, fast_net_config(), Obs::disabled()).unwrap();
    let addr = hub.local_addr();
    let mut ends: Universe = vec![Box::new(hub)];
    // Sequential connects: each handshake completes before the next dial,
    // so rank assignment is deterministic (arrival order).
    for expect in 1..n {
        let t = TcpTransport::connect(addr).unwrap();
        assert_eq!(t.rank(), expect);
        ends.push(Box::new(t));
    }
    ends
}

/// Run one check against both transports.
fn for_both(n: usize, check: fn(Universe)) {
    check(thread_universe(n));
    check(tcp_universe(n));
}

fn task(t: u64) -> Message {
    Message::TreeTask {
        task: t,
        newick: "(a,b);".into(),
    }
}

/// Wait for a condition that becomes true asynchronously (TCP delivery is
/// not instantaneous the way a channel push is).
fn eventually(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn ranks_and_size_are_consistent() {
    for_both(4, |ends| {
        for (i, e) in ends.iter().enumerate() {
            assert_eq!(e.rank(), i);
            assert_eq!(e.size(), 4);
        }
    });
}

#[test]
fn fifo_order_is_preserved_per_sender() {
    for_both(4, |ends| {
        for t in 0..20u64 {
            ends[1].send(0, &task(t)).unwrap();
        }
        for t in 0..20u64 {
            let (from, msg) = ends[0].recv().unwrap();
            assert_eq!(from, 1);
            match msg {
                Message::TreeTask { task, .. } => assert_eq!(task, t),
                other => panic!("unexpected {other:?}"),
            }
        }
    });
}

#[test]
fn peer_to_peer_routing_works_both_directions() {
    for_both(5, |ends| {
        // Worker (rank 3) to foreman (rank 1) and back: over TCP neither
        // is the hub, so this exercises the relay path.
        ends[3].send(1, &Message::WorkerReady).unwrap();
        let (from, msg) = ends[1].recv().unwrap();
        assert_eq!(from, 3);
        assert_eq!(msg, Message::WorkerReady);
        ends[1].send(3, &task(7)).unwrap();
        let (from, msg) = ends[3].recv().unwrap();
        assert_eq!(from, 1);
        assert!(matches!(msg, Message::TreeTask { task: 7, .. }));
    });
}

#[test]
fn recv_timeout_returns_none_cleanly() {
    for_both(4, |ends| {
        for e in &ends {
            let got = e.recv_timeout(Duration::from_millis(30)).unwrap();
            assert!(got.is_none());
            let got = e.try_recv().unwrap();
            assert!(got.is_none());
        }
        // The endpoint is still fully usable after timeouts.
        ends[2].send(0, &Message::WorkerReady).unwrap();
        let (from, _) = ends[0].recv().unwrap();
        assert_eq!(from, 2);
    });
}

#[test]
fn self_send_is_delivered() {
    for_both(4, |ends| {
        for e in &ends {
            e.send(e.rank(), &Message::Shutdown).unwrap();
            let (from, msg) = e.recv().unwrap();
            assert_eq!(from, e.rank());
            assert_eq!(msg, Message::Shutdown);
        }
    });
}

#[test]
fn unknown_rank_is_rejected() {
    for_both(4, |ends| {
        assert_eq!(
            ends[0].send(99, &Message::Shutdown),
            Err(CommError::UnknownRank(99))
        );
        assert_eq!(
            ends[3].send(99, &Message::Shutdown),
            Err(CommError::UnknownRank(99))
        );
    });
}

#[test]
fn broadcast_reaches_everyone_but_self() {
    for_both(5, |ends| {
        ends[0].broadcast(&Message::Shutdown).unwrap();
        for e in &ends[1..] {
            let (from, msg) = e.recv().unwrap();
            assert_eq!(from, 0);
            assert_eq!(msg, Message::Shutdown);
        }
        assert!(ends[0].try_recv().unwrap().is_none());
        // And from a non-hub rank.
        ends[2].broadcast(&Message::WorkerReady).unwrap();
        for e in &ends {
            if e.rank() == 2 {
                continue;
            }
            let (from, msg) = e.recv().unwrap();
            assert_eq!(from, 2);
            assert_eq!(msg, Message::WorkerReady);
        }
    });
}

#[test]
fn dropping_an_endpoint_fails_sends_to_it() {
    for_both(4, |mut ends| {
        let dropped = ends.remove(3);
        drop(dropped);
        // Threads: immediate. TCP: the Goodbye must reach the hub first.
        eventually(
            || ends[0].send(3, &Message::Shutdown) == Err(CommError::Disconnected(3)),
            "send to the departed rank to fail Disconnected",
        );
    });
}

// ---- TCP-specific protocol behaviour -----------------------------------

#[test]
fn version_skew_is_rejected() {
    let hub = TcpHub::bind("127.0.0.1:0", 2, fast_net_config(), Obs::disabled()).unwrap();
    let mut stream = TcpStream::connect(hub.local_addr()).unwrap();
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION + 999,
            rejoin: None,
            job: None,
            wire: None,
        },
    )
    .unwrap();
    match read_frame(&mut stream, Duration::from_secs(5)).unwrap() {
        Some(Frame::Reject { reason }) => assert!(reason.contains("version")),
        other => panic!("expected Reject, got {other:?}"),
    }
    // And the high-level client maps it to an error.
    assert_eq!(hub.connected_peers(), 0);
}

#[test]
fn full_universe_is_rejected() {
    let hub = TcpHub::bind("127.0.0.1:0", 2, fast_net_config(), Obs::disabled()).unwrap();
    let addr = hub.local_addr();
    let _first = TcpTransport::connect(addr).unwrap();
    let err = TcpTransport::connect(addr).map(|_| ()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
}

#[test]
fn cross_job_rejoin_is_rejected_with_typed_reason() {
    use fdml_comm::job::RejectReason;
    let hub = TcpHub::bind("127.0.0.1:0", 2, fast_net_config(), Obs::disabled()).unwrap();
    let addr = hub.local_addr();

    // A worker dedicated to job 1 claims rank 1, then dies.
    let mut a = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut a,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            rejoin: None,
            job: Some(1),
            wire: None,
        },
    )
    .unwrap();
    let welcome = read_frame(&mut a, Duration::from_secs(5)).unwrap();
    assert!(matches!(welcome, Some(Frame::Welcome { rank: 1, .. })));
    hub.sever_peer(1);

    // The generation check alone would admit this: the slot is dead and
    // the rank matches. The cross-job guard must still refuse it, because
    // the slot belongs to job 1 and this client claims job 2.
    let mut b = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut b,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            rejoin: Some(1),
            job: Some(2),
            wire: None,
        },
    )
    .unwrap();
    match read_frame(&mut b, Duration::from_secs(5)).unwrap() {
        Some(Frame::Rejected { reason }) => assert_eq!(
            reason,
            RejectReason::WrongJob {
                rank: 1,
                bound: Some(1),
                presented: Some(2),
            }
        ),
        other => panic!("expected a typed WrongJob rejection, got {other:?}"),
    }
    assert_eq!(hub.connected_peers(), 0);

    // The rightful owner (same job binding) still gets its slot back.
    let mut c = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut c,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            rejoin: Some(1),
            job: Some(1),
            wire: None,
        },
    )
    .unwrap();
    let welcome = read_frame(&mut c, Duration::from_secs(5)).unwrap();
    assert!(matches!(welcome, Some(Frame::Welcome { rank: 1, .. })));
}

#[test]
fn reserved_slots_are_skipped_by_fresh_joins_and_taken_by_claims() {
    // The daemon's startup contract: ranks 1 and 2 are reserved before
    // the accept loop runs, so an eager external worker cannot steal the
    // scheduler's slot, while explicit claims still land exactly there.
    let hub = TcpHub::bind_reserved(
        "127.0.0.1:0",
        4,
        &[1, 2],
        fast_net_config(),
        Obs::disabled(),
    )
    .unwrap();
    let addr = hub.local_addr();

    // An anonymous fresh join is pushed past both reservations.
    let eager = TcpTransport::connect(addr).unwrap();
    assert_eq!(eager.rank(), 3);

    // Explicit claims take the reserved slots.
    let claim = |rank| {
        TcpTransport::connect_observed(
            addr,
            ClientConfig {
                claim: Some(rank),
                ..ClientConfig::default()
            },
            Obs::disabled(),
        )
        .unwrap()
    };
    let foreman = claim(1);
    assert_eq!(foreman.rank(), 1);
    let monitor = claim(2);
    assert_eq!(monitor.rank(), 2);

    // With the universe now full, another anonymous dial is refused —
    // reserved slots never fall back to the fresh-join pool.
    let err = TcpTransport::connect(addr).map(|_| ()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
}

#[test]
fn service_opener_is_handed_off_with_its_frame() {
    use fdml_comm::job::RejectReason;
    let hub = TcpHub::bind("127.0.0.1:0", 2, fast_net_config(), Obs::disabled()).unwrap();
    let mut client = TcpStream::connect(hub.local_addr()).unwrap();
    write_frame(&mut client, &Frame::Query { job: 9 }).unwrap();

    // The hub does not treat the opener as a rank: it hands socket and
    // frame to the service queue, and the compute universe is untouched.
    let mut req = hub
        .accept_service(Duration::from_secs(5))
        .expect("service opener handed off");
    assert!(matches!(req.first, Frame::Query { job: 9 }));
    assert_eq!(hub.connected_peers(), 0);

    // The handed-off socket is live: a reply written on it reaches the
    // original client.
    write_frame(
        &mut req.stream,
        &Frame::Rejected {
            reason: RejectReason::UnknownJob { job: 9 },
        },
    )
    .unwrap();
    match read_frame(&mut client, Duration::from_secs(5)).unwrap() {
        Some(Frame::Rejected { reason }) => {
            assert_eq!(reason, RejectReason::UnknownJob { job: 9 })
        }
        other => panic!("expected the relayed rejection, got {other:?}"),
    }
}

#[test]
fn silent_peer_is_declared_dead_by_heartbeat_misses() {
    let mem = MemorySink::new();
    let cfg = NetConfig {
        heartbeat_interval: Duration::from_millis(25),
        miss_limit: 3,
        ..NetConfig::default()
    };
    let hub = TcpHub::bind("127.0.0.1:0", 2, cfg, Obs::new(Box::new(mem.clone()))).unwrap();
    // A raw socket that handshakes and then goes silent forever — the
    // stand-in for a wedged worker process. (A real client would be
    // heartbeating.)
    let mut stream = TcpStream::connect(hub.local_addr()).unwrap();
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            rejoin: None,
            job: None,
            wire: None,
        },
    )
    .unwrap();
    let welcome = read_frame(&mut stream, Duration::from_secs(5)).unwrap();
    assert!(matches!(welcome, Some(Frame::Welcome { rank: 1, .. })));
    eventually(
        || hub.connected_peers() == 0,
        "hub to declare the peer dead",
    );
    let events: Vec<Event> = mem.snapshot().into_iter().map(|r| r.event).collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::NetHeartbeatMiss { rank: 1, .. })),
        "expected heartbeat misses, got {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::NetPeerDisconnected {
                rank: 1,
                graceful: false
            }
        )),
        "expected an ungraceful disconnect, got {events:?}"
    );
    // Sends to the dead rank now fail, which is what lets the foreman's
    // requeue machinery take over.
    assert_eq!(
        hub.send(1, &Message::Shutdown),
        Err(CommError::Disconnected(1))
    );
}

#[test]
fn severed_client_reconnects_and_traffic_resumes() {
    let mem = MemorySink::new();
    let cfg = NetConfig {
        heartbeat_interval: Duration::from_millis(25),
        miss_limit: 3,
        ..NetConfig::default()
    };
    let hub = TcpHub::bind("127.0.0.1:0", 2, cfg, Obs::new(Box::new(mem.clone()))).unwrap();
    let addr = hub.local_addr();
    let client = TcpTransport::connect_observed(
        addr,
        ClientConfig {
            reconnect_attempts: 10,
            reconnect_backoff: Duration::from_millis(20),
            ..ClientConfig::default()
        },
        Obs::disabled(),
    )
    .unwrap();
    assert_eq!(client.rank(), 1);

    // Chaos: the hub declares the link dead. The client notices the silent
    // hub via its own heartbeat misses and redials with rejoin.
    hub.sever_peer(1);
    eventually(|| hub.connected_peers() == 1, "client to rejoin its slot");
    assert!(!client.is_dead());

    // Traffic flows again in both directions over the new connection.
    hub.send(1, &Message::WorkerReady).unwrap();
    let (from, msg) = client.recv().unwrap();
    assert_eq!((from, msg), (0, Message::WorkerReady));
    client.send(0, &Message::Shutdown).unwrap();
    let (from, msg) = hub.recv().unwrap();
    assert_eq!((from, msg), (1, Message::Shutdown));

    let events: Vec<Event> = mem.snapshot().into_iter().map(|r| r.event).collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::NetPeerReconnected { rank: 1, .. })),
        "expected a reconnect event, got {events:?}"
    );
}

#[test]
fn dead_hub_exhausts_reconnects_and_surfaces_disconnected() {
    let cfg = NetConfig {
        heartbeat_interval: Duration::from_millis(25),
        miss_limit: 2,
        ..NetConfig::default()
    };
    let hub = TcpHub::bind("127.0.0.1:0", 2, cfg, Obs::disabled()).unwrap();
    let addr = hub.local_addr();
    let client = TcpTransport::connect_observed(
        addr,
        ClientConfig {
            reconnect_attempts: 2,
            reconnect_backoff: Duration::from_millis(10),
            ..ClientConfig::default()
        },
        Obs::disabled(),
    )
    .unwrap();
    // The whole coordinator goes away: listener and per-peer threads wind
    // down, so every redial is refused.
    drop(hub);
    eventually(
        || client.is_dead(),
        "client to exhaust its backoff schedule",
    );
    assert_eq!(
        client.recv_timeout(Duration::from_millis(10)),
        Err(CommError::Disconnected(1))
    );
    assert_eq!(
        client.send(0, &Message::WorkerReady),
        Err(CommError::Disconnected(1))
    );
}

#[test]
fn mixed_codec_peers_interoperate_frame_by_frame() {
    // Codec choice is negotiated per connection, not per universe: here the
    // hub writes JSON while one worker writes binary and another writes
    // JSON, and every route — hub→binary, binary→json (relayed), json→hub —
    // still delivers the same messages. This is the "old master, new
    // worker" mixed-fleet deployment the versioned handshake exists for.
    let cfg = NetConfig {
        wire: WireFormat::Json,
        ..fast_net_config()
    };
    let hub = TcpHub::bind("127.0.0.1:0", 3, cfg, Obs::disabled()).unwrap();
    let addr = hub.local_addr();
    let binary_cfg = ClientConfig {
        wire: WireFormat::Binary,
        ..ClientConfig::default()
    };
    let json_cfg = ClientConfig {
        wire: WireFormat::Json,
        ..ClientConfig::default()
    };
    let binary = TcpTransport::connect_observed(addr, binary_cfg, Obs::disabled()).unwrap();
    let json = TcpTransport::connect_observed(addr, json_cfg, Obs::disabled()).unwrap();
    assert_eq!((binary.rank(), json.rank()), (1, 2));

    hub.send(1, &task(7)).unwrap();
    assert_eq!(binary.recv().unwrap(), (0, task(7)));
    // Peer-to-peer crosses codecs: a binary frame in, a JSON frame out.
    binary.send(2, &task(8)).unwrap();
    assert_eq!(json.recv().unwrap(), (1, task(8)));
    json.send(0, &Message::Shutdown).unwrap();
    assert_eq!(hub.recv().unwrap(), (2, Message::Shutdown));
}

#[test]
fn welcome_announces_the_hierarchy_shape() {
    // A peer needs nothing but its rank and the `Welcome` to know whether
    // it is a flat worker, a regional foreman, or a re-homed worker: the
    // hub announces the region count to every joiner.
    let cfg = NetConfig {
        regions: 2,
        ..fast_net_config()
    };
    let hub = TcpHub::bind("127.0.0.1:0", 2, cfg, Obs::disabled()).unwrap();
    let client = TcpTransport::connect(hub.local_addr()).unwrap();
    assert_eq!(client.regions(), 2);
}
