//! TCP transport for the fastDNAml parallel runtime.
//!
//! The paper ran fastDNAml's master/foreman/worker/monitor topology over
//! PVM and MPI across clusters and supercomputers; this crate is the
//! workspace's equivalent of that `comm_*.c` layer for plain sockets, so
//! the same `fdml-core` run loops span OS processes and machines:
//!
//! * [`wire`] — the framed wire format: 4-byte length prefix + JSON, a
//!   versioned `Hello`/`Welcome` handshake, heartbeats, `Goodbye`.
//! * [`hub::TcpHub`] — the coordinator's endpoint (rank 0). Owns the
//!   listening socket, assigns ranks in arrival order, relays every
//!   message between peers, and watches their liveness. It also fronts
//!   the v3 *service plane*: connections opening with `Submit` / `Query`
//!   / `Attach` are handed to the job API via
//!   [`hub::TcpHub::accept_service`].
//! * [`client::TcpTransport`] — a peer's endpoint. Learns its rank from
//!   the handshake and reconnects with exponential backoff when the link
//!   drops; only an exhausted backoff schedule surfaces as
//!   [`CommError::Disconnected`](fdml_comm::transport::CommError).
//!
//! Both endpoints implement [`fdml_comm::transport::Transport`] with the
//! exact semantics of the threaded transport (`send` is non-blocking and
//! buffered, `recv_timeout` returns `Ok(None)` on timeout), so everything
//! written against the trait — the foreman's scheduling, fault injection
//! via `FaultyTransport`, wire-byte accounting via `Recording` — composes
//! unchanged over TCP.

#![warn(missing_docs)]

pub mod client;
pub mod hub;
pub mod wire;

pub use client::{ClientConfig, TcpTransport};
pub use fdml_wire::WireFormat;
pub use hub::{NetConfig, ServiceRequest, TcpHub};
