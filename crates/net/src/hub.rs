//! The coordinator-side hub: listener, handshake, and message routing.
//!
//! The hub is the process topology's star point. It owns the listening
//! socket, assigns ranks to connecting peers in arrival order (1, 2, 3, …),
//! and relays every [`Frame::Data`] between them, so peer processes need a
//! route to the coordinator only — exactly the property that let the
//! paper's PVM version span clusters where workers could not reach each
//! other directly. The hub's own process hosts rank 0 (the master): the
//! [`TcpHub`] value *is* that rank's [`Transport`] endpoint.
//!
//! Liveness: every peer connection has a reader thread (frames in, misses
//! counted) and a writer thread (bounded queue out, heartbeats when idle).
//! A peer silent for `miss_limit` heartbeat intervals — or whose socket
//! errors — is declared dead: its slot is cleared, an obs event is emitted,
//! and local sends to it fail with [`CommError::Disconnected`] so the
//! foreman's requeue machinery takes over. A dead peer that dials back in
//! with `Hello { rejoin: Some(rank) }` is re-bound to its old slot — but
//! only if its `job` binding still matches the slot's: once a dead slot
//! has been handed to a different job's replacement, the stale client's
//! rejoin is refused with a typed `Reject` (the cross-job guard, sitting
//! alongside the per-connection generation check). The binding is
//! *client-asserted*: each `Hello` carries the job its fleet launcher
//! configured (`ClientConfig::job`), and the hub remembers what the last
//! occupant presented. Shared-fleet daemon workers present no binding, so
//! the guard protects exactly the fleets that opt in per job.
//!
//! Slots can also be *reserved* at bind time ([`TcpHub::bind_reserved`]):
//! a reserved rank is never handed to an anonymous fresh join and must be
//! claimed explicitly with `Hello { rejoin: Some(rank) }` — how the serve
//! daemon pins its own scheduler and monitor loopback connections to
//! ranks 1 and 2 before any external peer can race for them.
//!
//! The hub also fronts the *service plane*: a connection whose first frame
//! is `Submit` / `Query` / `Attach` (rather than `Hello`) is not a rank at
//! all — it is handed off wholesale through [`TcpHub::accept_service`] to
//! whoever is running the job API, socket and opening frame together.

use crate::wire::{read_frame, write_frame, write_frame_as, Frame, PROTOCOL_VERSION};
use fdml_comm::job::{JobId, RejectReason};
use fdml_comm::message::Message;
use fdml_comm::transport::{ranks, CommError, Rank, Transport};
use fdml_obs::{Event, Obs};
use fdml_wire::WireFormat;
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Tunables for a TCP universe. The hub owns the canonical copy; clients
/// learn the liveness parameters from their `Welcome`.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Heartbeat cadence: a writer idle this long emits a keep-alive.
    pub heartbeat_interval: Duration,
    /// Consecutive silent intervals before a peer is declared dead.
    pub miss_limit: u32,
    /// Depth of each peer's bounded outgoing queue (frames).
    pub queue_depth: usize,
    /// The foreman's fault-tolerance timeout, forwarded in `Welcome` so a
    /// remote foreman process configures itself from the wire.
    pub worker_timeout: Duration,
    /// The wire format the hub writes its data-plane frames in — to peers
    /// that advertised codec-sniffing support in their `Hello`. Peers that
    /// did not (pre-negotiation builds) are written JSON regardless.
    pub wire: WireFormat,
    /// Regional foremen in the hierarchical topology (0 = flat). Announced
    /// in every `Welcome` so each peer derives its role from its rank.
    pub regions: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            heartbeat_interval: Duration::from_millis(500),
            miss_limit: 4,
            queue_depth: 256,
            worker_timeout: Duration::from_secs(5),
            wire: WireFormat::Binary,
            regions: 0,
        }
    }
}

/// One remote rank's connection state.
#[derive(Default)]
struct Slot {
    /// Sender into the peer's writer thread; `None` while disconnected.
    out: Option<SyncSender<Frame>>,
    /// Bumped on every (re)bind so stale reader/writer threads from a
    /// previous connection cannot clobber a newer one's state.
    generation: u64,
    /// Whether this slot ever completed a handshake.
    ever_connected: bool,
    /// Completed rebinds after a drop.
    reconnects: u64,
    /// The job this rank slot is currently dedicated to (`None` for a
    /// shared or single-job fleet). Client-asserted: set at every bind
    /// from the occupant's own `Hello { job }`; a rejoin must present the
    /// same binding or be refused.
    job: Option<JobId>,
    /// A reserved slot is never assigned to a fresh anonymous join; it
    /// must be claimed with `Hello { rejoin: Some(rank) }`.
    reserved: bool,
}

/// A service-plane connection handed out of the handshake: its first
/// frame was `Submit` / `Query` / `Attach` rather than `Hello`, so it
/// belongs to the job API, not the compute universe.
pub struct ServiceRequest {
    /// The socket, positioned just past the opening frame.
    pub stream: TcpStream,
    /// The frame that opened the connection.
    pub first: Frame,
}

struct HubShared {
    size: usize,
    cfg: NetConfig,
    obs: Obs,
    shutdown: AtomicBool,
    slots: Mutex<Vec<Slot>>,
    /// Every reader thread (and rank-0 self-sends) feeds this.
    in_tx: Sender<(Rank, Message)>,
    /// Service-plane connections flow here for [`TcpHub::accept_service`].
    service_tx: Sender<ServiceRequest>,
}

impl HubShared {
    /// Declare `rank`'s connection (of `generation`) dead. Idempotent and
    /// generation-checked: a reader noticing EOF and a writer noticing a
    /// send error race here harmlessly, and a thread from a replaced
    /// connection cannot kill its successor.
    fn mark_dead(&self, rank: Rank, generation: u64, graceful: bool) {
        let mut slots = self.slots.lock();
        let slot = &mut slots[rank];
        if slot.generation == generation && slot.out.is_some() {
            slot.out = None;
            self.obs
                .emit(|| Event::NetPeerDisconnected { rank, graceful });
            if rank >= ranks::FIRST_WORKER {
                let foreman_out = slots[ranks::FOREMAN].out.clone();
                drop(slots);
                self.notify_liveness(foreman_out, Message::PeerDown { rank });
            }
        }
    }

    /// Tell the schedulers a worker's liveness changed. The hub otherwise
    /// *silently drops* relays to dead peers, so without this the foreman
    /// would only notice a lost worker when its task timed out; the
    /// synthesized message triggers the eager-requeue path instead. The
    /// local master always hears it; a remote foreman process hears it too
    /// when connected.
    fn notify_liveness(&self, foreman_out: Option<SyncSender<Frame>>, msg: Message) {
        let _ = self.in_tx.send((ranks::MASTER, msg.clone()));
        if let Some(out) = foreman_out {
            let _ = out.try_send(Frame::Data {
                from: ranks::MASTER,
                to: ranks::FOREMAN,
                msg,
            });
        }
    }
}

/// The coordinator's endpoint: rank 0 of a TCP universe.
pub struct TcpHub {
    shared: Arc<HubShared>,
    in_rx: Mutex<Receiver<(Rank, Message)>>,
    service_rx: Mutex<Receiver<ServiceRequest>>,
    local_addr: SocketAddr,
}

impl TcpHub {
    /// Bind `addr` and start accepting peers for a universe of `size`
    /// ranks (rank 0 is this process; ranks 1..size are remote). Returns
    /// as soon as the listener is up; use [`TcpHub::wait_ready`] to block
    /// until the universe is complete.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        size: usize,
        cfg: NetConfig,
        obs: Obs,
    ) -> io::Result<TcpHub> {
        TcpHub::bind_reserved(addr, size, &[], cfg, obs)
    }

    /// [`TcpHub::bind`] with `reserved` ranks that fresh anonymous joins
    /// can never take: they stay free until a dialer claims them with
    /// `Hello { rejoin: Some(rank) }` (see `ClientConfig::claim`). The
    /// reservations are in place before the accept loop starts, so not
    /// even a peer dialing during startup can race for them.
    pub fn bind_reserved<A: ToSocketAddrs>(
        addr: A,
        size: usize,
        reserved: &[Rank],
        cfg: NetConfig,
        obs: Obs,
    ) -> io::Result<TcpHub> {
        assert!(size >= 2, "a TCP universe needs at least one remote rank");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (in_tx, in_rx) = mpsc::channel();
        let (service_tx, service_rx) = mpsc::channel();
        let mut slots = Vec::with_capacity(size);
        for rank in 0..size {
            slots.push(Slot {
                reserved: reserved.contains(&rank),
                ..Slot::default()
            });
        }
        let shared = Arc::new(HubShared {
            size,
            cfg,
            obs,
            shutdown: AtomicBool::new(false),
            slots: Mutex::new(slots),
            in_tx,
            service_tx,
        });
        let accept_shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("fdml-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(TcpHub {
            shared,
            in_rx: Mutex::new(in_rx),
            service_rx: Mutex::new(service_rx),
            local_addr,
        })
    }

    /// Take the next service-plane connection (a `Submit` / `Query` /
    /// `Attach` opener), waiting at most `timeout`. The daemon's API loop
    /// polls this; plain coordinator runs simply never call it, and any
    /// service frame that arrives anyway is answered with a typed
    /// rejection by the handshake when this queue's receiver is gone.
    pub fn accept_service(&self, timeout: Duration) -> Option<ServiceRequest> {
        self.service_rx.lock().recv_timeout(timeout).ok()
    }

    /// The address the hub actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Block until every remote rank has completed its handshake, or fail
    /// after `timeout`.
    pub fn wait_ready(&self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let connected = {
                let slots = self.shared.slots.lock();
                slots[1..].iter().all(|s| s.out.is_some())
            };
            if connected {
                return Ok(());
            }
            if Instant::now() >= deadline {
                let missing: Vec<Rank> = {
                    let slots = self.shared.slots.lock();
                    (1..self.shared.size)
                        .filter(|&r| slots[r].out.is_none())
                        .collect()
                };
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("ranks {missing:?} never connected"),
                ));
            }
            thread::sleep(Duration::from_millis(10));
        }
    }

    /// The remote ranks currently connected, in rank order. The daemon's
    /// scheduler polls this to discover workers as they join the shared
    /// fleet (fresh joins are not announced over the foreman's transport
    /// the way reconnects are).
    pub fn peer_ranks(&self) -> Vec<Rank> {
        self.shared.slots.lock()[1..]
            .iter()
            .enumerate()
            .filter(|(_, s)| s.out.is_some())
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// How many remote ranks are currently connected.
    pub fn connected_peers(&self) -> usize {
        self.shared.slots.lock()[1..]
            .iter()
            .filter(|s| s.out.is_some())
            .count()
    }

    /// Chaos hook: declare `rank`'s connection dead right now, as if its
    /// heartbeats had lapsed. The peer's writer thread drains away, the
    /// peer notices the silent hub and redials, and the rejoin path
    /// re-binds it — used by tests to exercise reconnection without
    /// waiting for real network failures.
    pub fn sever_peer(&self, rank: Rank) {
        if rank >= 1 && rank < self.shared.size {
            let generation = self.shared.slots.lock()[rank].generation;
            self.shared.mark_dead(rank, generation, false);
        }
    }
}

impl Drop for TcpHub {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Transport for TcpHub {
    fn rank(&self) -> Rank {
        0
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn send(&self, to: Rank, msg: &Message) -> Result<(), CommError> {
        if to >= self.shared.size {
            return Err(CommError::UnknownRank(to));
        }
        if to == 0 {
            return self
                .shared
                .in_tx
                .send((0, msg.clone()))
                .map_err(|_| CommError::Disconnected(0));
        }
        let out = {
            let slots = self.shared.slots.lock();
            slots[to].out.clone()
        };
        let Some(out) = out else {
            return Err(CommError::Disconnected(to));
        };
        out.send(Frame::Data {
            from: 0,
            to,
            msg: msg.clone(),
        })
        .map_err(|_| CommError::Disconnected(to))
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(Rank, Message)>, CommError> {
        match self.in_rx.lock().recv_timeout(timeout) {
            Ok(pair) => Ok(Some(pair)),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(CommError::Disconnected(0)),
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<HubShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let hs = Arc::clone(&shared);
                // Handshake on its own thread: one slow dialer must not
                // stall other peers' accepts.
                let _ = thread::Builder::new()
                    .name("fdml-net-handshake".into())
                    .spawn(move || handshake(stream, hs));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handshake(mut stream: TcpStream, shared: Arc<HubShared>) {
    if shared.shutdown.load(Ordering::SeqCst) {
        return;
    }
    let _ = stream.set_nodelay(true);
    let hello = match read_frame(&mut stream, Duration::from_secs(5)) {
        Ok(Some(f)) => f,
        _ => return,
    };
    let (rejoin, job, peer_wire) = match hello {
        Frame::Hello {
            version,
            rejoin,
            job,
            wire,
        } if version == PROTOCOL_VERSION => {
            // Negotiation: a `wire` field — any value — marks a build with
            // the codec-sniffing reader, so the hub may write its
            // configured format. Its absence marks a pre-negotiation peer
            // that can only parse JSON.
            let peer_wire = if wire.is_some() {
                shared.cfg.wire
            } else {
                WireFormat::Json
            };
            (rejoin, job, peer_wire)
        }
        Frame::Hello { version, .. } => {
            let _ = write_frame(
                &mut stream,
                &Frame::Reject {
                    reason: format!("protocol version {version} != {PROTOCOL_VERSION}"),
                },
            );
            return;
        }
        // Service plane: the connection belongs to the job API. Hand the
        // socket and its opening frame to whoever drains the service
        // queue; if nobody ever will (a plain coordinator run), answer
        // with a typed refusal instead of going silent.
        first @ (Frame::Submit { .. } | Frame::Query { .. } | Frame::Attach { .. }) => {
            if let Err(send_err) = shared.service_tx.send(ServiceRequest { stream, first }) {
                let mut stream = send_err.0.stream;
                let _ = write_frame(
                    &mut stream,
                    &Frame::Rejected {
                        reason: RejectReason::Malformed {
                            reason: "this coordinator does not serve the job API".into(),
                        },
                    },
                );
            }
            return;
        }
        _ => return,
    };

    // Pick (or re-bind) a slot under the lock; do the socket I/O after.
    let (rank, generation, out_rx, reconnected) = {
        let mut slots = shared.slots.lock();
        let (rank, reconnected) = match assign_slot(&slots, shared.size, rejoin, job) {
            Ok(pair) => pair,
            Err(reject) => {
                drop(slots);
                let _ = write_frame(&mut stream, &reject);
                return;
            }
        };
        let slot = &mut slots[rank];
        slot.generation += 1;
        slot.ever_connected = true;
        slot.job = job;
        if reconnected {
            slot.reconnects += 1;
        }
        let (out_tx, out_rx) = mpsc::sync_channel(shared.cfg.queue_depth);
        slot.out = Some(out_tx);
        (rank, slot.generation, out_rx, reconnected)
    };

    let welcome = Frame::Welcome {
        rank,
        size: shared.size,
        worker_timeout_ms: shared.cfg.worker_timeout.as_millis() as u64,
        heartbeat_ms: shared.cfg.heartbeat_interval.as_millis() as u64,
        miss_limit: shared.cfg.miss_limit,
        wire: Some(peer_wire.name().to_string()),
        regions: shared.cfg.regions,
    };
    if write_frame(&mut stream, &welcome).is_err() {
        shared.mark_dead(rank, generation, false);
        return;
    }

    if reconnected {
        let reconnects = shared.slots.lock()[rank].reconnects;
        shared
            .obs
            .emit(|| Event::NetPeerReconnected { rank, reconnects });
        if rank >= ranks::FIRST_WORKER {
            let foreman_out = shared.slots.lock()[ranks::FOREMAN].out.clone();
            shared.notify_liveness(foreman_out, Message::PeerUp { rank });
        }
    } else {
        shared.obs.emit(|| Event::NetPeerConnected { rank });
    }

    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.mark_dead(rank, generation, false);
            return;
        }
    };
    let ws = Arc::clone(&shared);
    let _ = thread::Builder::new()
        .name(format!("fdml-net-w{rank}"))
        .spawn(move || peer_writer(writer_stream, out_rx, rank, generation, peer_wire, ws));
    let rs = Arc::clone(&shared);
    let _ = thread::Builder::new()
        .name(format!("fdml-net-r{rank}"))
        .spawn(move || peer_reader(stream, rank, generation, rs));
}

/// Choose a slot for a connecting peer: `Ok((rank, is_reconnect))`, or
/// the `Reject`/`Rejected` frame to answer with. Called with the slot
/// table locked.
fn assign_slot(
    slots: &[Slot],
    size: usize,
    rejoin: Option<Rank>,
    job: Option<JobId>,
) -> Result<(Rank, bool), Frame> {
    // A rejoin gets its old rank back iff that slot is currently dead
    // *and* still bound to the same job. The generation check protects a
    // slot from its own past connections; this guard protects it from a
    // different job's — a stale client whose rank the scheduler has since
    // re-dedicated must not compute against the wrong problem.
    if let Some(r) = rejoin {
        if r >= 1 && r < size && slots[r].out.is_none() {
            if slots[r].ever_connected && slots[r].job != job {
                return Err(Frame::Rejected {
                    reason: RejectReason::WrongJob {
                        rank: r,
                        bound: slots[r].job,
                        presented: job,
                    },
                });
            }
            return Ok((r, slots[r].ever_connected));
        }
    }
    // Fresh joins take the lowest slot never yet used, then the lowest
    // dead slot (a replacement process for a dead peer counts as that
    // rank reconnecting). Reserved slots are excluded from both: they can
    // only ever be taken via the explicit-claim rejoin path above.
    let peers = slots[..size]
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, s)| !s.reserved);
    if let Some((r, _)) = peers
        .clone()
        .find(|(_, s)| s.out.is_none() && !s.ever_connected)
    {
        return Ok((r, false));
    }
    peers
        .clone()
        .find(|(_, s)| s.out.is_none())
        .map(|(r, _)| (r, true))
        .ok_or(Frame::Reject {
            reason: "universe is full".into(),
        })
}

/// Drain a peer's outgoing queue onto its socket; heartbeat when idle.
/// `wire` is the format negotiated for this connection — heartbeats ride
/// it too, so liveness traffic stops paying JSON overhead the moment the
/// peer can sniff.
fn peer_writer(
    mut stream: TcpStream,
    out_rx: Receiver<Frame>,
    rank: Rank,
    generation: u64,
    wire: WireFormat,
    shared: Arc<HubShared>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match out_rx.recv_timeout(shared.cfg.heartbeat_interval) {
            Ok(frame) => {
                if write_frame_as(&mut stream, &frame, wire).is_err() {
                    shared.mark_dead(rank, generation, false);
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if write_frame_as(&mut stream, &Frame::Heartbeat { from: 0 }, wire).is_err() {
                    shared.mark_dead(rank, generation, false);
                    return;
                }
            }
            // The slot was cleared (peer declared dead or replaced).
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Read a peer's frames, route them, and watch its liveness.
fn peer_reader(mut stream: TcpStream, rank: Rank, generation: u64, shared: Arc<HubShared>) {
    let mut misses: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut stream, shared.cfg.heartbeat_interval) {
            Ok(Some(frame)) => {
                misses = 0;
                match frame {
                    Frame::Data { from, to, msg } => route(&shared, rank, from, to, msg),
                    Frame::Heartbeat { .. } => {}
                    Frame::Goodbye { .. } => {
                        shared.mark_dead(rank, generation, true);
                        return;
                    }
                    // Handshake or service frames mid-session: protocol
                    // violation.
                    _ => {
                        shared.mark_dead(rank, generation, false);
                        return;
                    }
                }
            }
            Ok(None) => {
                misses += 1;
                let m = misses;
                shared
                    .obs
                    .emit(|| Event::NetHeartbeatMiss { rank, misses: m });
                if misses >= shared.cfg.miss_limit as u64 {
                    shared.mark_dead(rank, generation, false);
                    return;
                }
            }
            Err(e) => {
                // A CRC failure (or other malformed frame) is *detected*
                // corruption: report it, then treat the peer as lost so
                // the requeue machinery takes over. Never parse garbage.
                if e.kind() == io::ErrorKind::InvalidData {
                    shared.obs.emit(|| Event::FrameCorrupt { rank });
                }
                shared.mark_dead(rank, generation, false);
                return;
            }
        }
    }
}

/// Deliver a routed frame: to the local rank 0, or relayed to a peer.
fn route(shared: &Arc<HubShared>, via: Rank, from: Rank, to: Rank, msg: Message) {
    // Peers can only speak for themselves; a mismatched `from` is a bug or
    // a confused peer, and trusting it would mis-attribute results.
    let from = if from == via { from } else { via };
    if to == 0 {
        let _ = shared.in_tx.send((from, msg));
        return;
    }
    let out = {
        let slots = shared.slots.lock();
        if to >= shared.size {
            return;
        }
        slots[to].out.clone()
    };
    if let Some(out) = out {
        // Bounded relay: apply backpressure to this peer's reader rather
        // than buffering without limit. A full queue to a *dead-ish* peer
        // resolves when its liveness check clears the slot.
        let frame = Frame::Data { from, to, msg };
        let mut frame = Some(frame);
        loop {
            match out.try_send(frame.take().expect("frame present")) {
                Ok(()) => return,
                Err(TrySendError::Full(f)) => {
                    frame = Some(f);
                    thread::sleep(Duration::from_millis(1));
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                // Destination died; the foreman's timeout machinery will
                // requeue whatever this message carried.
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
    }
}
