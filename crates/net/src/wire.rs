//! The framed wire format.
//!
//! Every frame is a 4-byte big-endian length prefix, a 4-byte big-endian
//! CRC32 of the body, then that many bytes of body. The framing (v2,
//! unchanged) makes alignment trivial, lets a reader reject garbage before
//! allocating, and turns in-flight corruption into a detected, typed
//! failure instead of a parse panic or — worse — a silently wrong
//! likelihood.
//!
//! The body comes in two codecs, sniffed by its first byte:
//!
//! * JSON (first byte `{`) — the seed encoding: self-describing,
//!   debuggable, and the permanent format of the bootstrap and service
//!   planes (`Hello`/`Welcome`/`Reject`, `Submit` … `Done`), which are
//!   rare, human-inspected, and must parse before any negotiation exists.
//! * Binary (first byte [`fdml_wire::MAGIC`]) — the compact encoding for
//!   the chatty data plane (`Data`, `Heartbeat`, `Goodbye`): a tag byte
//!   and varint fields ([`fdml_wire`]), negotiated in the Hello/Welcome
//!   handshake. Readers always sniff per frame, so a JSON master and a
//!   binary worker interoperate mid-rollout — negotiation only tells each
//!   writer what to emit.

use fdml_comm::job::{JobId, JobResult, JobSpec, JobStatus, RejectReason};
use fdml_comm::message::Message;
use fdml_comm::transport::Rank;
use fdml_wire::{varint, WireFormat};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Protocol version spoken by this build. A hub rejects any `Hello` whose
/// version differs — mixing builds across a cluster corrupts likelihoods
/// far more subtly than a refused connection does.
/// Version 2 added the per-frame CRC32. Version 3 added job multiplexing:
/// the `job` binding on `Hello` and the service-plane frames
/// (`Submit` … `Done`) the `fdml-serve` daemon speaks.
pub const PROTOCOL_VERSION: u32 = 3;

/// The IEEE 802.3 CRC32 lookup table (reflected polynomial 0xEDB88320),
/// built at compile time so the checksum needs no runtime setup and no
/// external crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The standard IEEE CRC32 (the one `zlib`, Ethernet, and PNG use), so the
/// framing stays verifiable with any off-the-shelf tool.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Upper bound on a frame body. Real frames are a few KiB (`ProblemData`
/// is the largest); anything bigger is a corrupt stream or a hostile peer.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// How long a frame, once its first byte has arrived, may take to finish.
/// Distinct from the idle timeout: mid-frame silence is a broken peer, not
/// an idle one, but transient TCP stalls should not kill the link.
pub const FRAME_COMPLETION_TIMEOUT: Duration = Duration::from_secs(10);

/// One unit on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Client → hub, first frame of a compute-plane connection.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// `None` for a fresh join; `Some(rank)` when reconnecting after a
        /// dropped link, asking for the old rank back.
        rejoin: Option<Rank>,
        /// The job this connection's rank slot is dedicated to; `None`
        /// for a shared-fleet (or single-job) universe. A rejoin whose
        /// `job` differs from the slot's current binding is rejected —
        /// the cross-job guard that keeps a stale client of one job from
        /// reattaching to a slot the daemon has since given to another.
        #[serde(default)]
        job: Option<JobId>,
        /// The wire format this client will write its data-plane frames
        /// in (`"json"` or `"binary"`). Absent from peers that predate
        /// negotiation, which therefore write JSON — exactly what the
        /// sniffing reader assumes for them.
        #[serde(default)]
        wire: Option<String>,
    },
    /// Hub → client, accepting a `Hello`.
    Welcome {
        /// The rank this connection now speaks for.
        rank: Rank,
        /// Total ranks in the universe.
        size: usize,
        /// The foreman's fault-tolerance timeout, so a remote foreman
        /// process learns its configuration over the wire.
        worker_timeout_ms: u64,
        /// Liveness: heartbeat cadence every peer must keep.
        heartbeat_ms: u64,
        /// Liveness: consecutive silent intervals before a peer is dead.
        miss_limit: u32,
        /// The wire format the hub will write to this peer — the
        /// negotiation confirmation. Absent from hubs that predate
        /// negotiation (they write JSON).
        #[serde(default)]
        wire: Option<String>,
        /// Number of regional foremen in the hierarchical topology, or 0
        /// for the flat single-foreman universe. A peer derives its role
        /// from its rank and this count.
        #[serde(default)]
        regions: usize,
    },
    /// Hub → client, refusing a `Hello` (version skew, full universe).
    Reject {
        /// Human-readable refusal.
        reason: String,
    },
    /// A routed runtime message. Clients address any rank; the hub relays.
    Data {
        /// Originating rank.
        from: Rank,
        /// Destination rank.
        to: Rank,
        /// The payload.
        msg: Message,
    },
    /// Keep-alive, sent when a writer has been idle for one heartbeat
    /// interval. Receiving *anything* resets the peer's miss counter.
    Heartbeat {
        /// The sender's rank.
        from: Rank,
    },
    /// Orderly departure; suppresses reconnect bookkeeping for this peer.
    Goodbye {
        /// The departing rank.
        from: Rank,
    },

    // ---- Service plane (v3): frames a daemon client opens with instead
    // of `Hello`. They never carry a rank — the connection belongs to the
    // job API, not to the compute universe.
    /// Client → daemon: admit this job.
    Submit {
        /// The complete job description.
        spec: JobSpec,
    },
    /// Daemon → client: the job was admitted and queued.
    Accepted {
        /// The registry id assigned to it.
        job: JobId,
    },
    /// Daemon → client: the submission (or query) was refused.
    Rejected {
        /// The typed admission-control verdict.
        reason: RejectReason,
    },
    /// Client → daemon: report this job's state.
    Query {
        /// The job to report on.
        job: JobId,
    },
    /// Daemon → client: answer to a `Query`.
    Status {
        /// The job's current state and progress.
        status: JobStatus,
    },
    /// Client → daemon: stream this job's progress events and, when it
    /// completes, its result. The connection stays open until `Done`.
    Attach {
        /// The job to follow.
        job: JobId,
    },
    /// Daemon → attached client: one observable progress line.
    JobEvent {
        /// The job it belongs to.
        job: JobId,
        /// Rendered event text (JSONL record of the obs event).
        text: String,
    },
    /// Daemon → attached client: the job finished; final frame.
    Done {
        /// The job that finished.
        job: JobId,
        /// Its trees, consensus, and report (`failure` rides in the
        /// status surface — a failed job answers `Query`, not `Attach`).
        result: JobResult,
    },
}

/// Version byte of the binary *frame* envelope (distinct from the message
/// codec's own version, which rides inside the `Data` payload encoding).
const FRAME_BINARY_VERSION: u8 = 1;

// Binary frame tags. Only the data plane has them; control-plane frames
// are JSON by design.
const FTAG_DATA: u8 = 0;
const FTAG_HEARTBEAT: u8 = 1;
const FTAG_GOODBYE: u8 = 2;

/// Encode a frame body in the compact codec, or `None` when the frame is
/// control-plane (those stay JSON regardless of negotiation).
fn encode_frame_body_binary(frame: &Frame) -> Option<Vec<u8>> {
    let mut buf = Vec::with_capacity(32);
    buf.push(fdml_wire::MAGIC);
    buf.push(FRAME_BINARY_VERSION);
    match frame {
        Frame::Data { from, to, msg } => {
            buf.push(FTAG_DATA);
            varint::put_usize(&mut buf, *from);
            varint::put_usize(&mut buf, *to);
            fdml_wire::encode_body(msg, &mut buf);
        }
        Frame::Heartbeat { from } => {
            buf.push(FTAG_HEARTBEAT);
            varint::put_usize(&mut buf, *from);
        }
        Frame::Goodbye { from } => {
            buf.push(FTAG_GOODBYE);
            varint::put_usize(&mut buf, *from);
        }
        _ => return None,
    }
    Some(buf)
}

fn decode_frame_body_binary(body: &[u8]) -> io::Result<Frame> {
    let bad = |why: String| io::Error::new(io::ErrorKind::InvalidData, why);
    let mut r = varint::Reader::new(body);
    let magic = r.u8().map_err(|e| bad(e.to_string()))?;
    debug_assert_eq!(magic, fdml_wire::MAGIC, "caller sniffed the magic");
    let version = r.u8().map_err(|e| bad(e.to_string()))?;
    if version != FRAME_BINARY_VERSION {
        return Err(bad(format!("unsupported binary frame version {version}")));
    }
    let tag = r.u8().map_err(|e| bad(e.to_string()))?;
    let frame = match tag {
        FTAG_DATA => Frame::Data {
            from: r.usize().map_err(|e| bad(e.to_string()))?,
            to: r.usize().map_err(|e| bad(e.to_string()))?,
            msg: fdml_wire::decode_body(&mut r).map_err(|e| bad(e.to_string()))?,
        },
        FTAG_HEARTBEAT => Frame::Heartbeat {
            from: r.usize().map_err(|e| bad(e.to_string()))?,
        },
        FTAG_GOODBYE => Frame::Goodbye {
            from: r.usize().map_err(|e| bad(e.to_string()))?,
        },
        t => return Err(bad(format!("unknown binary frame tag {t}"))),
    };
    if r.remaining() != 0 {
        return Err(bad(format!(
            "{} trailing bytes after binary frame",
            r.remaining()
        )));
    }
    Ok(frame)
}

fn frame_with_body(body: Vec<u8>) -> io::Result<Vec<u8>> {
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(&body).to_be_bytes());
    buf.extend_from_slice(&body);
    Ok(buf)
}

fn encode_frame_as(frame: &Frame, format: WireFormat) -> io::Result<Vec<u8>> {
    let body = match format {
        WireFormat::Binary => match encode_frame_body_binary(frame) {
            Some(body) => body,
            None => json_body(frame)?,
        },
        WireFormat::Json => json_body(frame)?,
    };
    frame_with_body(body)
}

fn json_body(frame: &Frame) -> io::Result<Vec<u8>> {
    serde_json::to_string(frame)
        .map(String::into_bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn encode_frame(frame: &Frame) -> io::Result<Vec<u8>> {
    encode_frame_as(frame, WireFormat::Json)
}

/// Serialize and write one frame as JSON. Blocking; respects the stream's
/// write timeout if one is set. The handshake path — negotiation has not
/// happened yet, so the format must be the one every build can read.
pub fn write_frame(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    stream.write_all(&encode_frame(frame)?)
}

/// Serialize and write one frame in the negotiated format. Data-plane
/// frames (`Data`/`Heartbeat`/`Goodbye`) honor `format`; control-plane
/// frames are always JSON.
pub fn write_frame_as(stream: &mut TcpStream, frame: &Frame, format: WireFormat) -> io::Result<()> {
    stream.write_all(&encode_frame_as(frame, format)?)
}

/// Write a frame whose body has one byte XOR-flipped *after* the CRC was
/// computed: the byte-flipping injection mode. The frame is well-formed at
/// the framing layer (correct length) but its checksum cannot match, so a
/// conforming reader must reject it as corrupt rather than attempt to
/// parse it. `byte` indexes into the JSON body, modulo its length.
pub fn write_frame_corrupted(stream: &mut TcpStream, frame: &Frame, byte: usize) -> io::Result<()> {
    let mut buf = encode_frame(frame)?;
    let body_len = buf.len() - 8;
    buf[8 + byte % body_len] ^= 0xA5;
    stream.write_all(&buf)
}

/// Read one frame, waiting at most `idle` for its first byte.
///
/// Returns `Ok(None)` on a *clean* idle timeout — no byte of the next frame
/// had arrived, the stream is still aligned. Once a first byte is in, the
/// frame must complete within [`FRAME_COMPLETION_TIMEOUT`] or the call
/// fails: a partial frame cannot be resumed, so abandoning it mid-read
/// would desynchronize everything after it.
pub fn read_frame(stream: &mut TcpStream, idle: Duration) -> io::Result<Option<Frame>> {
    // Wake often enough to notice both deadlines without busy-waiting.
    let chunk = idle
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(50));
    stream.set_read_timeout(Some(chunk))?;

    let mut header = [0u8; 8];
    if !read_exact_deadline(stream, &mut header, Some(idle))? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4-byte slice")) as usize;
    let expected_crc = u32::from_be_bytes(header[4..].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut body = vec![0u8; len];
    read_exact_deadline(stream, &mut body, None)?;
    let actual_crc = crc32(&body);
    if actual_crc != expected_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch: header says {expected_crc:#010x}, body hashes to {actual_crc:#010x}"),
        ));
    }
    // Codec sniff: binary bodies lead with the wire magic (never valid
    // leading UTF-8 for JSON), everything else is parsed as JSON. This is
    // what lets peers with different negotiated formats share one hub.
    if body.first() == Some(&fdml_wire::MAGIC) {
        return Ok(Some(decode_frame_body_binary(&body)?));
    }
    let text = std::str::from_utf8(&body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    let frame: Frame = serde_json::from_str(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(frame))
}

/// Fill `buf`, tolerating read-timeout wakeups. With `idle = Some(d)`,
/// returns `Ok(false)` if nothing at all arrived within `d`. Once any byte
/// has arrived (or with `idle = None`), the fill must finish within
/// [`FRAME_COMPLETION_TIMEOUT`].
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    idle: Option<Duration>,
) -> io::Result<bool> {
    let start = Instant::now();
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed the connection",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if filled == 0 {
                    if let Some(idle) = idle {
                        if start.elapsed() >= idle {
                            return Ok(false);
                        }
                        continue;
                    }
                }
                if start.elapsed() >= FRAME_COMPLETION_TIMEOUT {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "frame stalled mid-read",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frames_round_trip() {
        let (mut a, mut b) = pair();
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                rejoin: None,
                job: None,
                wire: None,
            },
            Frame::Hello {
                version: PROTOCOL_VERSION,
                rejoin: Some(3),
                job: Some(7),
                wire: Some("binary".into()),
            },
            Frame::Welcome {
                rank: 4,
                size: 6,
                worker_timeout_ms: 5000,
                heartbeat_ms: 500,
                miss_limit: 4,
                wire: Some("binary".into()),
                regions: 2,
            },
            Frame::Reject {
                reason: "full".into(),
            },
            Frame::Data {
                from: 3,
                to: 1,
                msg: Message::TreeResult {
                    task: 9,
                    newick: "(a:1,b:2);".into(),
                    ln_likelihood: -123.5,
                    work_units: 7,
                },
            },
            Frame::Heartbeat { from: 2 },
            Frame::Goodbye { from: 5 },
            Frame::Submit {
                spec: JobSpec {
                    phylip: " 2 4\na ACGT\nb ACGA\n".into(),
                    config_json: "{}".into(),
                    jumbles: 3,
                    base_seed: 11,
                    max_ranks: 4,
                    max_wall_ms: 0,
                    intra_threads: 2,
                    label: "demo".into(),
                },
            },
            Frame::Accepted { job: 1 },
            Frame::Rejected {
                reason: RejectReason::QuotaExceeded {
                    quota: "max_ranks".into(),
                    requested: 64,
                    limit: 8,
                },
            },
            Frame::Query { job: 1 },
            Frame::Status {
                status: JobStatus {
                    job: 1,
                    state: fdml_comm::job::JobState::Running,
                    done: 1,
                    total: 3,
                    label: "demo".into(),
                    failure: None,
                },
            },
            Frame::Attach { job: 1 },
            Frame::JobEvent {
                job: 1,
                text: "{\"event\":\"JumbleCompleted\"}".into(),
            },
            Frame::Done {
                job: 1,
                result: JobResult {
                    job: 1,
                    trees: vec![],
                    consensus_newick: None,
                    best_newick: "(a,b);".into(),
                    best_ln_likelihood: -10.5,
                    report: None,
                },
            },
        ];
        for f in &frames {
            write_frame(&mut a, f).unwrap();
        }
        for f in &frames {
            let got = read_frame(&mut b, Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(&got, f);
        }
    }

    #[test]
    fn hello_without_job_binding_still_parses() {
        // The `job` field is `#[serde(default)]`: a Hello emitted without
        // it (single-job launchers never set one) must parse as unbound.
        let json = r#"{"Hello":{"version":3,"rejoin":null}}"#;
        let f: Frame = serde_json::from_str(json).unwrap();
        assert_eq!(
            f,
            Frame::Hello {
                version: 3,
                rejoin: None,
                job: None,
                wire: None,
            }
        );
    }

    #[test]
    fn pre_negotiation_welcome_still_parses() {
        // A seed-era hub omits `wire` and `regions`: flat topology, JSON.
        let json = r#"{"Welcome":{"rank":3,"size":5,"worker_timeout_ms":5000,"heartbeat_ms":500,"miss_limit":4}}"#;
        let f: Frame = serde_json::from_str(json).unwrap();
        assert_eq!(
            f,
            Frame::Welcome {
                rank: 3,
                size: 5,
                worker_timeout_ms: 5000,
                heartbeat_ms: 500,
                miss_limit: 4,
                wire: None,
                regions: 0,
            }
        );
    }

    #[test]
    fn binary_data_plane_round_trips() {
        let (mut a, mut b) = pair();
        let frames = vec![
            Frame::Data {
                from: 3,
                to: 1,
                msg: Message::TreeResult {
                    task: 9,
                    newick: "(a:1,b:2);".into(),
                    ln_likelihood: -123.5,
                    work_units: 7,
                },
            },
            Frame::Data {
                from: 1,
                to: 4,
                msg: Message::Batch {
                    msgs: vec![Message::Ping, Message::LeaseRequest { want: 8 }],
                },
            },
            Frame::Heartbeat { from: 2 },
            Frame::Goodbye { from: 5 },
        ];
        for f in &frames {
            write_frame_as(&mut a, f, WireFormat::Binary).unwrap();
        }
        for f in &frames {
            let got = read_frame(&mut b, Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(&got, f);
        }
    }

    #[test]
    fn binary_heartbeat_is_a_few_bytes() {
        // The liveness-probe satellite: a binary heartbeat body is magic,
        // version, tag, rank — four bytes, versus ~25 of JSON.
        let body = encode_frame_body_binary(&Frame::Heartbeat { from: 63 }).unwrap();
        assert_eq!(body.len(), 4);
        let json = json_body(&Frame::Heartbeat { from: 63 }).unwrap();
        assert!(json.len() > 4 * body.len());
    }

    #[test]
    fn control_plane_frames_stay_json_even_when_binary_negotiated() {
        let (mut a, mut b) = pair();
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            rejoin: None,
            job: None,
            wire: Some("binary".into()),
        };
        write_frame_as(&mut a, &hello, WireFormat::Binary).unwrap();
        // Peek at the raw bytes: the body must start with '{'.
        let mut raw = [0u8; 9];
        b.read_exact(&mut raw).unwrap();
        assert_eq!(raw[8], b'{');
    }

    #[test]
    fn mixed_codec_frames_interleave_on_one_stream() {
        let (mut a, mut b) = pair();
        let hb = Frame::Heartbeat { from: 3 };
        let data = Frame::Data {
            from: 3,
            to: 1,
            msg: Message::WorkerReady,
        };
        write_frame_as(&mut a, &hb, WireFormat::Binary).unwrap();
        write_frame_as(&mut a, &data, WireFormat::Json).unwrap();
        write_frame_as(&mut a, &data, WireFormat::Binary).unwrap();
        for expected in [&hb, &data, &data] {
            let got = read_frame(&mut b, Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(&got, expected);
        }
    }

    #[test]
    fn idle_timeout_is_clean() {
        let (_a, mut b) = pair();
        let got = read_frame(&mut b, Duration::from_millis(40)).unwrap();
        assert!(got.is_none());
        // The stream is still usable afterwards.
        let got = read_frame(&mut b, Duration::from_millis(40)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn partial_frame_survives_idle_timeouts() {
        let (mut a, mut b) = pair();
        let frame = Frame::Heartbeat { from: 1 };
        let body = serde_json::to_string(&frame).unwrap();
        let body = body.as_bytes();
        // Dribble the frame in two halves with a pause in between, longer
        // than the reader's idle timeout.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
        wire.extend_from_slice(&crc32(body).to_be_bytes());
        wire.extend_from_slice(body);
        let (head, tail) = wire.split_at(3);
        let head = head.to_vec();
        let tail = tail.to_vec();
        let writer = thread::spawn(move || {
            a.write_all(&head).unwrap();
            thread::sleep(Duration::from_millis(80));
            a.write_all(&tail).unwrap();
            a
        });
        let got = read_frame(&mut b, Duration::from_millis(20))
            .unwrap()
            .unwrap();
        assert_eq!(got, frame);
        drop(writer.join().unwrap());
    }

    #[test]
    fn oversized_length_rejected() {
        let (mut a, mut b) = pair();
        a.write_all(&u32::MAX.to_be_bytes()).unwrap();
        a.write_all(&0u32.to_be_bytes()).unwrap(); // CRC field
        let err = read_frame(&mut b, Duration::from_secs(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard check vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corrupted_frame_is_rejected_not_parsed() {
        let (mut a, mut b) = pair();
        let frame = Frame::Data {
            from: 3,
            to: 1,
            msg: Message::TreeResult {
                task: 9,
                newick: "(a:1,b:2);".into(),
                ln_likelihood: -123.5,
                work_units: 7,
            },
        };
        // Flip a byte at several offsets; every position must be caught.
        for byte in [0usize, 7, 23] {
            write_frame_corrupted(&mut a, &frame, byte).unwrap();
            let err = read_frame(&mut b, Duration::from_secs(2)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(
                err.to_string().contains("CRC"),
                "error should name the CRC, got: {err}"
            );
        }
        // An intact frame on a fresh pair still parses (the reader stays
        // aligned because the corrupt body had the correct length).
        let (mut a, mut b) = pair();
        write_frame(&mut a, &frame).unwrap();
        assert_eq!(
            read_frame(&mut b, Duration::from_secs(2)).unwrap().unwrap(),
            frame
        );
    }

    #[test]
    fn closed_peer_is_an_error() {
        let (a, mut b) = pair();
        drop(a);
        let err = read_frame(&mut b, Duration::from_secs(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
