//! The peer-side transport: a reconnecting TCP client.
//!
//! [`TcpTransport::connect`] dials the hub, handshakes, learns its rank,
//! and then keeps a reader thread (frames in), a writer thread (bounded
//! queue out, heartbeats when idle), and a manager thread that owns the
//! socket lifecycle. When the link drops — socket error or `miss_limit`
//! silent heartbeat intervals — the manager reconnects with exponential
//! backoff, presenting `Hello { rejoin: Some(rank) }` to reclaim its slot.
//! Only after the backoff schedule is exhausted does the endpoint turn
//! dead, surfacing [`CommError::Disconnected`] to the rank's run loop so
//! it exits and the coordinator's fault tolerance takes over.

use crate::wire::{read_frame, write_frame, write_frame_as, Frame, PROTOCOL_VERSION};
use fdml_comm::job::JobId;
use fdml_comm::message::Message;
use fdml_comm::transport::{CommError, Rank, Transport};
use fdml_obs::{Event, Obs};
use fdml_wire::WireFormat;
use parking_lot::Mutex;
use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// Client-side tunables. Liveness parameters (heartbeat cadence, miss
/// limit) are *not* here: the hub dictates those in its `Welcome`.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Reconnect attempts after a dropped link before giving up.
    pub reconnect_attempts: u32,
    /// Backoff before the first reconnect attempt; doubles per attempt.
    pub reconnect_backoff: Duration,
    /// Depth of the bounded outgoing queue (frames).
    pub queue_depth: usize,
    /// The job this connection's rank is dedicated to, presented in
    /// every `Hello` (initial and rejoin). `None` — the default — joins
    /// as a shared-fleet rank. See the hub's cross-job rejoin guard.
    pub job: Option<JobId>,
    /// Claim this specific rank on the initial dial by presenting
    /// `Hello { rejoin: Some(rank) }` — the only way to take a slot the
    /// hub reserved at bind time (see `TcpHub::bind_reserved`). `None` —
    /// the default — accepts whatever rank the hub assigns.
    pub claim: Option<Rank>,
    /// The wire format this endpoint writes its data-plane frames in —
    /// provided the hub's `Welcome` shows it can sniff codecs. A hub that
    /// predates negotiation is written JSON regardless of this setting.
    pub wire: WireFormat,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            reconnect_attempts: 5,
            reconnect_backoff: Duration::from_millis(100),
            queue_depth: 256,
            job: None,
            claim: None,
            wire: WireFormat::Binary,
        }
    }
}

/// Liveness parameters learned from the hub's `Welcome`.
#[derive(Debug, Clone, Copy)]
struct Liveness {
    heartbeat: Duration,
    miss_limit: u32,
}

struct ClientShared {
    rank: Rank,
    addr: String,
    cfg: ClientConfig,
    obs: Obs,
    liveness: Liveness,
    /// The format this endpoint actually writes: the configured preference,
    /// downgraded to JSON when the hub cannot sniff.
    wire: WireFormat,
    /// Set when reconnection is exhausted: the endpoint is permanently
    /// broken and every operation fails `Disconnected`.
    dead: AtomicBool,
    /// Set by `Drop` for an orderly exit (Goodbye, no reconnection).
    shutdown: AtomicBool,
}

/// A remote rank's endpoint in a TCP universe.
pub struct TcpTransport {
    shared: Arc<ClientShared>,
    size: usize,
    worker_timeout: Duration,
    regions: usize,
    in_rx: Mutex<Receiver<(Rank, Message)>>,
    /// Loopback for self-sends (never crosses the wire).
    self_tx: Sender<(Rank, Message)>,
    /// `Some` until `Drop` takes it to close the queue and flush.
    out_tx: Option<SyncSender<Frame>>,
    manager: Option<thread::JoinHandle<()>>,
}

impl TcpTransport {
    /// Dial the hub at `addr` and join the universe. Blocks for the
    /// handshake; returns the endpoint once a rank is assigned.
    pub fn connect<A: ToSocketAddrs + ToString>(addr: A) -> io::Result<TcpTransport> {
        TcpTransport::connect_observed(addr, ClientConfig::default(), Obs::disabled())
    }

    /// [`TcpTransport::connect`] with explicit configuration and an obs
    /// handle for this process's connection events.
    pub fn connect_observed<A: ToSocketAddrs + ToString>(
        addr: A,
        cfg: ClientConfig,
        obs: Obs,
    ) -> io::Result<TcpTransport> {
        let addr_s = addr.to_string();
        let mut stream = TcpStream::connect(&addr)?;
        stream.set_nodelay(true).ok();
        let welcome = handshake(&mut stream, cfg.claim, cfg.job, cfg.wire)?;
        let Frame::Welcome {
            rank,
            size,
            worker_timeout_ms,
            heartbeat_ms,
            miss_limit,
            wire,
            regions,
        } = welcome
        else {
            unreachable!("handshake returns Welcome only");
        };
        obs.emit(|| Event::NetPeerConnected { rank });

        // A `wire` field in the Welcome — whatever its value — marks a hub
        // with the sniffing reader; only then is writing the configured
        // (possibly binary) format safe.
        let write_wire = if wire.is_some() {
            cfg.wire
        } else {
            WireFormat::Json
        };
        let (in_tx, in_rx) = mpsc::channel();
        let (out_tx, out_rx) = mpsc::sync_channel(cfg.queue_depth);
        let shared = Arc::new(ClientShared {
            rank,
            addr: addr_s,
            cfg,
            obs,
            liveness: Liveness {
                heartbeat: Duration::from_millis(heartbeat_ms.max(1)),
                miss_limit: miss_limit.max(1),
            },
            wire: write_wire,
            dead: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let self_tx = in_tx.clone();
        let mgr_shared = Arc::clone(&shared);
        let out_rx = Arc::new(Mutex::new(out_rx));
        let manager = thread::Builder::new()
            .name(format!("fdml-net-c{rank}"))
            .spawn(move || manager(stream, mgr_shared, out_rx, in_tx))
            .expect("spawn client manager");

        Ok(TcpTransport {
            shared,
            size,
            worker_timeout: Duration::from_millis(worker_timeout_ms),
            regions,
            in_rx: Mutex::new(in_rx),
            self_tx,
            out_tx: Some(out_tx),
            manager: Some(manager),
        })
    }

    /// The foreman timeout the hub announced (ms precision).
    pub fn worker_timeout(&self) -> Duration {
        self.worker_timeout
    }

    /// Regional foremen the hub announced (0 = flat topology). A peer
    /// derives its role — root foreman, regional foreman, or worker —
    /// from its rank and this count.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Whether reconnection has been exhausted and the endpoint is dead.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::SeqCst)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Orderly exit: flag the shutdown, close the outgoing queue so the
        // writer drains whatever is still buffered and says Goodbye, then
        // wait for the manager. Joining matters in a peer *process*: main
        // returning would otherwise kill the writer thread with frames
        // (e.g. the foreman's cascaded Shutdowns) still unsent.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        drop(self.out_tx.take());
        if let Some(handle) = self.manager.take() {
            let _ = handle.join();
        }
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> Rank {
        self.shared.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: Rank, msg: &Message) -> Result<(), CommError> {
        if to >= self.size {
            return Err(CommError::UnknownRank(to));
        }
        if self.shared.dead.load(Ordering::SeqCst) {
            return Err(CommError::Disconnected(self.shared.rank));
        }
        if to == self.shared.rank {
            // Loopback; never crosses the wire (matches the threads
            // transport, where self-send is an ordinary channel push).
            return self
                .self_tx
                .send((to, msg.clone()))
                .map_err(|_| CommError::Disconnected(to));
        }
        let mut frame = Some(Frame::Data {
            from: self.shared.rank,
            to,
            msg: msg.clone(),
        });
        let out_tx = self.out_tx.as_ref().expect("open until drop");
        // Bounded, but never wedged: while the link is down the writer is
        // not draining, so a plain blocking send could hang forever on a
        // full queue. Spin on try_send and fail once the endpoint dies.
        loop {
            match out_tx.try_send(frame.take().expect("frame present")) {
                Ok(()) => return Ok(()),
                Err(mpsc::TrySendError::Full(f)) => {
                    if self.shared.dead.load(Ordering::SeqCst) {
                        return Err(CommError::Disconnected(self.shared.rank));
                    }
                    frame = Some(f);
                    thread::sleep(Duration::from_millis(1));
                }
                Err(mpsc::TrySendError::Disconnected(_)) => {
                    return Err(CommError::Disconnected(self.shared.rank))
                }
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(Rank, Message)>, CommError> {
        if self.shared.dead.load(Ordering::SeqCst) {
            // Drain what already arrived before failing: results computed
            // just before the link died are still worth delivering.
            if let Ok(pair) = self.in_rx.lock().try_recv() {
                return Ok(Some(pair));
            }
            return Err(CommError::Disconnected(self.shared.rank));
        }
        match self.in_rx.lock().recv_timeout(timeout) {
            Ok(pair) => Ok(Some(pair)),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(CommError::Disconnected(self.shared.rank))
            }
        }
    }
}

/// Present a `Hello`, expect a `Welcome`. The `Hello` itself is always
/// JSON (negotiation has not happened yet); the `wire` field it carries
/// advertises both this build's sniffing reader and its writing
/// preference.
fn handshake(
    stream: &mut TcpStream,
    rejoin: Option<Rank>,
    job: Option<JobId>,
    wire: WireFormat,
) -> io::Result<Frame> {
    write_frame(
        stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            rejoin,
            job,
            wire: Some(wire.name().to_string()),
        },
    )?;
    match read_frame(stream, Duration::from_secs(5))? {
        Some(f @ Frame::Welcome { .. }) => Ok(f),
        Some(Frame::Reject { reason }) => Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("hub rejected us: {reason}"),
        )),
        Some(Frame::Rejected { reason }) => Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("hub rejected us: {reason}"),
        )),
        Some(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected frame during handshake",
        )),
        None => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "handshake timed out",
        )),
    }
}

/// Owns the socket lifecycle: runs read/write generations, reconnects with
/// backoff between them, and declares the endpoint dead when the schedule
/// is exhausted.
fn manager(
    mut stream: TcpStream,
    shared: Arc<ClientShared>,
    out_rx: Arc<Mutex<Receiver<Frame>>>,
    in_tx: Sender<(Rank, Message)>,
) {
    let mut reconnects: u64 = 0;
    loop {
        run_generation(&mut stream, &shared, &out_rx, &in_tx);
        let _ = stream.shutdown(Shutdown::Both);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reconnect(&shared) {
            Some(next) => {
                reconnects += 1;
                let n = reconnects;
                let rank = shared.rank;
                shared.obs.emit(|| Event::NetPeerReconnected {
                    rank,
                    reconnects: n,
                });
                stream = next;
            }
            None => {
                shared.dead.store(true, Ordering::SeqCst);
                if !shared.shutdown.load(Ordering::SeqCst) {
                    let rank = shared.rank;
                    shared.obs.emit(|| Event::NetPeerDisconnected {
                        rank,
                        graceful: false,
                    });
                }
                return;
            }
        }
    }
}

/// One connection's lifetime: a writer thread plus an inline read loop.
/// Returns when the connection is unusable (or shutdown was requested).
fn run_generation(
    stream: &mut TcpStream,
    shared: &Arc<ClientShared>,
    out_rx: &Arc<Mutex<Receiver<Frame>>>,
    in_tx: &Sender<(Rank, Message)>,
) {
    let gen_stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let shared = Arc::clone(shared);
        let out_rx = Arc::clone(out_rx);
        let gen_stop = Arc::clone(&gen_stop);
        thread::Builder::new()
            .name(format!("fdml-net-c{}-w", shared.rank))
            .spawn(move || client_writer(stream, shared, out_rx, gen_stop))
            .ok()
    };

    let mut misses: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match read_frame(stream, shared.liveness.heartbeat) {
            Ok(Some(frame)) => {
                misses = 0;
                match frame {
                    Frame::Data { from, msg, .. } => {
                        let _ = in_tx.send((from, msg));
                    }
                    Frame::Heartbeat { .. } => {}
                    // Anything else mid-session means a confused hub.
                    _ => break,
                }
            }
            Ok(None) => {
                misses += 1;
                let m = misses;
                // From this endpoint's viewpoint the silent peer is the
                // hub, rank 0.
                shared
                    .obs
                    .emit(|| Event::NetHeartbeatMiss { rank: 0, misses: m });
                if misses >= shared.liveness.miss_limit as u64 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Tear the generation down. On a failed link, stop the writer hard and
    // force it off any blocking socket write. On an orderly shutdown the
    // queue's sender is being dropped — let the writer finish draining the
    // buffered frames and send its Goodbye before joining it.
    if !shared.shutdown.load(Ordering::SeqCst) {
        gen_stop.store(true, Ordering::SeqCst);
        let _ = stream.shutdown(Shutdown::Both);
    }
    if let Some(handle) = writer {
        let _ = handle.join();
    }
}

/// Drain the outgoing queue onto the socket; heartbeat when idle; say
/// `Goodbye` when the endpoint is dropped.
fn client_writer(
    mut stream: TcpStream,
    shared: Arc<ClientShared>,
    out_rx: Arc<Mutex<Receiver<Frame>>>,
    gen_stop: Arc<AtomicBool>,
) {
    loop {
        if gen_stop.load(Ordering::SeqCst) {
            return;
        }
        let next = out_rx.lock().recv_timeout(shared.liveness.heartbeat);
        match next {
            Ok(frame) => {
                if write_frame_as(&mut stream, &frame, shared.wire).is_err() {
                    // Wake the reader immediately rather than letting it
                    // ride out its heartbeat misses.
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let from = shared.rank;
                if write_frame_as(&mut stream, &Frame::Heartbeat { from }, shared.wire).is_err() {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The endpoint was dropped: orderly exit.
                shared.shutdown.store(true, Ordering::SeqCst);
                let from = shared.rank;
                let _ = write_frame_as(&mut stream, &Frame::Goodbye { from }, shared.wire);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// The sleep before reconnect attempt `attempt`: exponential growth from
/// the configured base, scaled by a jitter factor in roughly 0.5..1.5
/// derived from `(rank, attempt)`. Without jitter, a hub restart makes
/// every client of a mass-disconnect redial on the *same* schedule — a
/// synchronized stampede against a listener that is just coming back.
/// Deriving the factor from stable inputs (splitmix64, no global RNG)
/// keeps runs reproducible while desynchronizing the fleet.
fn backoff_with_jitter(base: Duration, rank: Rank, attempt: u32) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let mut z = (rank as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(attempt as u64)
        .wrapping_add(0x5EED_1E55_B10F_F5ED);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 512..1536 out of 1024 ≈ a 0.5x..1.5x scale.
    let scale_millis = 512 + (z % 1024) as u32;
    exp.saturating_mul(scale_millis) / 1024
}

/// Exponential-backoff redial (with per-rank jitter), asking for our old
/// rank back. `None` when the schedule is exhausted (or shutdown was
/// requested).
fn reconnect(shared: &Arc<ClientShared>) -> Option<TcpStream> {
    for attempt in 0..shared.cfg.reconnect_attempts {
        thread::sleep(backoff_with_jitter(
            shared.cfg.reconnect_backoff,
            shared.rank,
            attempt,
        ));
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let Ok(mut stream) = TcpStream::connect(&shared.addr) else {
            continue;
        };
        stream.set_nodelay(true).ok();
        match handshake(
            &mut stream,
            Some(shared.rank),
            shared.cfg.job,
            shared.cfg.wire,
        ) {
            Ok(Frame::Welcome { rank, .. }) if rank == shared.rank => return Some(stream),
            // The hub gave our slot away (or refused us): no way back.
            Ok(_) | Err(_) => continue,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_desynchronizes_ranks_but_stays_bounded() {
        let base = Duration::from_millis(100);
        // Same inputs, same sleep: the schedule is reproducible.
        assert_eq!(
            backoff_with_jitter(base, 3, 2),
            backoff_with_jitter(base, 3, 2)
        );
        // Different ranks at the same attempt must not all sleep the same
        // amount — that is the stampede jitter exists to break.
        let sleeps: Vec<Duration> = (3..8).map(|r| backoff_with_jitter(base, r, 0)).collect();
        let distinct: std::collections::HashSet<_> = sleeps.iter().collect();
        assert!(distinct.len() > 1, "all ranks slept {sleeps:?}");
        // Every sleep stays within the 0.5x..1.5x band of its exponential
        // step, so backoff still grows and never collapses to zero.
        for (attempt, factor) in [(0u32, 1u32), (1, 2), (2, 4), (3, 8)] {
            let step = base * factor;
            for rank in 3..8 {
                let s = backoff_with_jitter(base, rank, attempt);
                assert!(s >= step / 2 && s <= step * 3 / 2, "{s:?} out of band");
            }
        }
    }
}
