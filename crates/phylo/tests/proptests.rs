//! Property-based tests of the phylo substrate.

use fdml_phylo::alignment::TaxonId;
use fdml_phylo::bipartition::{topology_fingerprint, Bipartition, SplitSet};
use fdml_phylo::consensus::{consensus, ConsensusAccumulator};
use fdml_phylo::newick;
use fdml_phylo::ops::{enumerate_spr_moves, nni_count};
use fdml_phylo::tree::Tree;
use proptest::prelude::*;

/// Build a random binary tree by inserting taxa in a seeded random order at
/// seeded random edges — exercises the arena (allocation, free lists) far
/// more than Yule generation does.
fn random_tree_by_insertion(taxa: usize, seed: u64) -> Tree {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut tree = Tree::triplet(0, 1, 2);
    for t in 3..taxa as TaxonId {
        let edges: Vec<_> = tree.edge_ids().collect();
        let e = edges[(next() % edges.len() as u64) as usize];
        tree.insert_taxon(t, e).expect("insertable");
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn insert_remove_stress_keeps_arena_valid(
        taxa in 4usize..20,
        seed in 0u64..10_000,
        churn in 1usize..30,
    ) {
        let mut tree = random_tree_by_insertion(taxa, seed);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Repeatedly insert a scratch taxon somewhere and remove another.
        let scratch_base = taxa as TaxonId;
        for i in 0..churn {
            let edges: Vec<_> = tree.edge_ids().collect();
            let e = edges[(next() % edges.len() as u64) as usize];
            tree.insert_taxon(scratch_base + i as TaxonId, e).unwrap();
            tree.check_valid().unwrap();
            // Remove a random existing non-scratch taxon and re-add it.
            let victims = tree.taxa();
            let v = victims[(next() % victims.len() as u64) as usize];
            tree.remove_taxon(v).unwrap();
            tree.check_valid().unwrap();
            let edges: Vec<_> = tree.edge_ids().collect();
            let e = edges[(next() % edges.len() as u64) as usize];
            tree.insert_taxon(v, e).unwrap();
            tree.check_valid().unwrap();
        }
        prop_assert_eq!(tree.num_tips(), taxa + churn);
    }

    #[test]
    fn nni_neighbourhood_size_always_2n_minus_6(
        taxa in 4usize..24,
        seed in 0u64..5_000,
    ) {
        let tree = random_tree_by_insertion(taxa, seed);
        let moves = enumerate_spr_moves(&tree, 1);
        prop_assert_eq!(moves.len(), nni_count(taxa));
    }

    #[test]
    fn bipartition_complement_is_identity(
        taxa in 4usize..80,
        seed in 0u64..5_000,
    ) {
        // A random subset and its complement are the same split.
        let mut side = Vec::new();
        let mut other = Vec::new();
        let mut state = seed | 1;
        for t in 0..taxa as TaxonId {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state >> 33 & 1 == 1 {
                side.push(t);
            } else {
                other.push(t);
            }
        }
        prop_assume!(!side.is_empty() && !other.is_empty());
        let a = Bipartition::from_side(&side, taxa);
        let b = Bipartition::from_side(&other, taxa);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.side_size() + b.num_taxa() - b.side_size(), taxa);
    }

    #[test]
    fn newick_parser_never_panics_on_mutations(
        taxa in 4usize..12,
        seed in 0u64..2_000,
        cut in 0usize..60,
        insert_char in proptest::char::range(' ', '~'),
        pos_frac in 0.0f64..1.0,
    ) {
        let tree = random_tree_by_insertion(taxa, seed);
        let names: Vec<String> = (0..taxa).map(|i| format!("t{i}")).collect();
        let mut text = newick::write_tree(&tree, &names);
        // Mutate: truncate and/or splice a character.
        let pos = ((text.len() as f64 * pos_frac) as usize).min(text.len());
        if cut % 2 == 0 {
            text.truncate(pos);
        } else if text.is_char_boundary(pos) {
            text.insert(pos, insert_char);
        }
        // Must return Ok or Err — never panic.
        let _ = newick::parse(&text);
        let _ = newick::parse_tree_with_names(&text, &names);
    }

    #[test]
    fn fingerprint_agrees_with_splitset_on_random_pairs(
        taxa in 4usize..20,
        s1 in 0u64..2_000,
        s2 in 0u64..2_000,
    ) {
        let a = random_tree_by_insertion(taxa, s1);
        let b = random_tree_by_insertion(taxa, s2);
        let same_splits = SplitSet::of_tree(&a, taxa) == SplitSet::of_tree(&b, taxa);
        let same_fp = topology_fingerprint(&a) == topology_fingerprint(&b);
        prop_assert_eq!(same_splits, same_fp);
    }

    #[test]
    fn consensus_of_identical_trees_is_that_tree(
        taxa in 4usize..16,
        seed in 0u64..5_000,
        copies in 1usize..8,
    ) {
        // k copies of one tree: every internal split of the tree appears in
        // the consensus at 100% support, and nothing else does.
        let tree = random_tree_by_insertion(taxa, seed);
        let names: Vec<String> = (0..taxa).map(|i| format!("t{i}")).collect();
        let trees = vec![tree.clone(); copies];
        let cons = consensus(&trees, taxa, 0.5, &names).unwrap();
        prop_assert_eq!(cons.num_trees, copies);
        let expected: std::collections::HashSet<_> =
            SplitSet::of_tree(&tree, taxa).splits().iter().cloned().collect();
        let got: std::collections::HashSet<_> =
            cons.splits.iter().map(|s| s.split.clone()).collect();
        prop_assert_eq!(got, expected);
        for s in &cons.splits {
            prop_assert_eq!(s.count, copies);
            prop_assert!((s.support - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn consensus_is_invariant_under_tree_order(
        taxa in 4usize..14,
        seed in 0u64..5_000,
        num_trees in 2usize..7,
        rot in 1usize..6,
    ) {
        let names: Vec<String> = (0..taxa).map(|i| format!("t{i}")).collect();
        let trees: Vec<Tree> = (0..num_trees)
            .map(|i| random_tree_by_insertion(taxa, seed.wrapping_add(i as u64)))
            .collect();
        // Any rotation of the input list: same splits, same rendered tree.
        let mut permuted = trees.clone();
        permuted.rotate_left(rot % num_trees);
        let a = consensus(&trees, taxa, 0.5, &names).unwrap();
        let b = consensus(&permuted, taxa, 0.5, &names).unwrap();
        prop_assert_eq!(&a.splits, &b.splits);
        prop_assert_eq!(newick::write(&a.tree), newick::write(&b.tree));
    }

    #[test]
    fn incremental_accumulator_agrees_with_batch(
        taxa in 4usize..14,
        seed in 0u64..5_000,
        num_trees in 1usize..7,
    ) {
        let names: Vec<String> = (0..taxa).map(|i| format!("t{i}")).collect();
        let trees: Vec<Tree> = (0..num_trees)
            .map(|i| random_tree_by_insertion(taxa, seed.wrapping_add(i as u64)))
            .collect();
        // Streaming the trees one at a time matches the batch computation
        // at *every* prefix, not just the end.
        let mut acc = ConsensusAccumulator::new(taxa, 0.5, names.clone()).unwrap();
        for (i, t) in trees.iter().enumerate() {
            acc.add_tree(t).unwrap();
            prop_assert_eq!(acc.num_trees(), i + 1);
            let streamed = acc.consensus().unwrap();
            let batch = consensus(&trees[..=i], taxa, 0.5, &names).unwrap();
            prop_assert_eq!(&streamed.splits, &batch.splits);
            prop_assert_eq!(newick::write(&streamed.tree), newick::write(&batch.tree));
        }
    }

    #[test]
    fn subtree_taxa_partition_for_every_edge(
        taxa in 4usize..24,
        seed in 0u64..2_000,
    ) {
        let tree = random_tree_by_insertion(taxa, seed);
        let all = tree.taxa();
        for e in tree.edge_ids() {
            let (x, y) = tree.endpoints(e);
            let mut left = tree.subtree_taxa(e, x);
            let right = tree.subtree_taxa(e, y);
            prop_assert_eq!(left.len() + right.len(), taxa);
            left.extend(right);
            left.sort_unstable();
            prop_assert_eq!(&left, &all);
        }
    }
}
