//! Bipartitions (splits), topology identity, and Robinson–Foulds distance.
//!
//! Every edge of an unrooted tree splits the taxon set in two; the set of
//! *non-trivial* splits (those induced by internal edges) identifies the
//! topology uniquely. The foreman uses split sets to deduplicate candidate
//! trees before dispatch, and the consensus builder counts split frequencies
//! across jumbles.

use crate::alignment::TaxonId;
use crate::tree::Tree;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One split of the taxon set, stored as a canonical bitset.
///
/// Canonical form: the bit for taxon 0 is always *clear* (the side not
/// containing taxon 0 is stored), so a split and its complement compare
/// equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Bipartition {
    num_taxa: usize,
    bits: Vec<u64>,
}

impl Bipartition {
    /// Build from the list of taxa on one side of the split.
    pub fn from_side(side: &[TaxonId], num_taxa: usize) -> Bipartition {
        let words = num_taxa.div_ceil(64);
        let mut bits = vec![0u64; words];
        for &t in side {
            let t = t as usize;
            assert!(t < num_taxa, "taxon {t} out of range {num_taxa}");
            bits[t / 64] |= 1 << (t % 64);
        }
        let mut bp = Bipartition { num_taxa, bits };
        bp.canonicalize();
        bp
    }

    fn canonicalize(&mut self) {
        if self.bits[0] & 1 != 0 {
            // Complement so taxon 0's bit is clear.
            for w in &mut self.bits {
                *w = !*w;
            }
            // Clear padding bits beyond num_taxa.
            let rem = self.num_taxa % 64;
            if rem != 0 {
                let last = self.bits.len() - 1;
                self.bits[last] &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of taxa on the stored (taxon-0-free) side.
    pub fn side_size(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is this split trivial (a single taxon vs the rest)?
    pub fn is_trivial(&self) -> bool {
        let k = self.side_size();
        k <= 1 || k >= self.num_taxa - 1
    }

    /// Taxa on the stored side.
    pub fn side_taxa(&self) -> Vec<TaxonId> {
        let mut out = Vec::with_capacity(self.side_size());
        for (wi, &w) in self.bits.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push((wi * 64 + b) as TaxonId);
                w &= w - 1;
            }
        }
        out
    }

    /// Does the stored side contain this taxon?
    pub fn contains(&self, taxon: TaxonId) -> bool {
        let t = taxon as usize;
        t < self.num_taxa && self.bits[t / 64] & (1 << (t % 64)) != 0
    }

    /// Total number of taxa this split is defined over.
    pub fn num_taxa(&self) -> usize {
        self.num_taxa
    }

    /// Are two splits compatible (could coexist in one tree)? Splits `X|X'`
    /// and `Y|Y'` are compatible iff at least one of `X∩Y`, `X∩Y'`, `X'∩Y`,
    /// `X'∩Y'` is empty.
    pub fn compatible_with(&self, other: &Bipartition) -> bool {
        assert_eq!(self.num_taxa, other.num_taxa);
        let rem = self.num_taxa % 64;
        let last = self.bits.len() - 1;
        let pad_mask = if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        };
        let mut xy = true; // X∩Y empty
        let mut xy2 = true; // X∩Y' empty
        let mut x2y = true; // X'∩Y empty
        let mut x2y2 = true; // X'∩Y' empty
        for i in 0..self.bits.len() {
            let mask = if i == last { pad_mask } else { u64::MAX };
            let x = self.bits[i];
            let y = other.bits[i];
            if x & y != 0 {
                xy = false;
            }
            if x & !y & mask != 0 {
                xy2 = false;
            }
            if !x & y & mask != 0 {
                x2y = false;
            }
            if !x & !y & mask != 0 {
                x2y2 = false;
            }
        }
        xy || xy2 || x2y || x2y2
    }
}

/// The set of non-trivial splits of a tree: its topology fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SplitSet {
    splits: Vec<Bipartition>,
    num_taxa: usize,
}

impl SplitSet {
    /// Extract all non-trivial splits of a tree. Taxon ids must be dense in
    /// `0..num_taxa`; during stepwise addition, pass the number of taxa in
    /// the *full* problem so fingerprints from different rounds stay
    /// comparable.
    pub fn of_tree(tree: &Tree, num_taxa: usize) -> SplitSet {
        let mut splits: Vec<Bipartition> = tree
            .internal_edges()
            .map(|e| {
                let (a, _) = tree.endpoints(e);
                Bipartition::from_side(&tree.subtree_taxa(e, a), num_taxa)
            })
            .filter(|bp| !bp.is_trivial())
            .collect();
        splits.sort();
        splits.dedup();
        SplitSet { splits, num_taxa }
    }

    /// The splits, sorted canonically.
    pub fn splits(&self) -> &[Bipartition] {
        &self.splits
    }

    /// Number of non-trivial splits (`n - 3` for a binary tree on `n` taxa).
    pub fn len(&self) -> usize {
        self.splits.len()
    }

    /// True when there are no non-trivial splits (star / ≤3-taxon tree).
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
    }

    /// Robinson–Foulds distance: size of the symmetric difference between
    /// the two split sets.
    pub fn robinson_foulds(&self, other: &SplitSet) -> usize {
        let a: std::collections::HashSet<&Bipartition> = self.splits.iter().collect();
        let b: std::collections::HashSet<&Bipartition> = other.splits.iter().collect();
        a.symmetric_difference(&b).count()
    }

    /// Normalized RF distance in `[0, 1]` (divides by the maximum possible
    /// `2(n-3)` for binary trees).
    pub fn robinson_foulds_normalized(&self, other: &SplitSet) -> f64 {
        let max = 2 * (self.num_taxa.max(4) - 3);
        self.robinson_foulds(other) as f64 / max as f64
    }
}

/// Convenience: RF distance between two trees over the same taxon set.
pub fn robinson_foulds(a: &Tree, b: &Tree, num_taxa: usize) -> usize {
    SplitSet::of_tree(a, num_taxa).robinson_foulds(&SplitSet::of_tree(b, num_taxa))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A 128-bit order-independent topology fingerprint, computed in one O(n)
/// postorder pass.
///
/// Each taxon gets two fixed pseudo-random keys; each internal edge
/// contributes a mix of the XOR of the keys of the taxa on its
/// taxon-0-free side, and contributions are combined with a commutative
/// wrapping sum. Two trees with the same topology (same non-trivial split
/// set) always produce the same fingerprint; distinct topologies collide
/// with probability ≈ 2⁻¹²⁸. The stepwise-addition search uses this to
/// deduplicate candidate rearrangements without materializing split sets.
pub fn topology_fingerprint(tree: &Tree) -> u128 {
    let lowest_tip = match tree.tips().min_by_key(|&(_, t)| t) {
        Some((n, _)) => n,
        None => return 0,
    };
    let order = tree.postorder_toward(lowest_tip);
    // XOR of taxon keys in the subtree below each directed edge (child side).
    let mut below_a = vec![0u64; tree.edge_capacity()];
    let mut below_b = vec![0u64; tree.edge_capacity()];
    let mut fp: u128 = 0;
    for &(child, edge, _parent) in &order {
        let (mut xa, mut xb) = match tree.taxon(child) {
            Some(t) => (
                splitmix64(t as u64 + 1),
                splitmix64((t as u64) | 0xabcd_0000_0000),
            ),
            None => (0, 0),
        };
        for (e, _) in tree.neighbors(child) {
            if e != edge {
                xa ^= below_a[e.0 as usize];
                xb ^= below_b[e.0 as usize];
            }
        }
        below_a[edge.0 as usize] = xa;
        below_b[edge.0 as usize] = xb;
        let (u, v) = tree.endpoints(edge);
        if tree.is_internal(u) && tree.is_internal(v) {
            let h = ((splitmix64(xa) as u128) << 64) | splitmix64(xb ^ 0x5bd1_e995) as u128;
            fp = fp.wrapping_add(h);
        }
    }
    fp
}

/// Counts split occurrences across many trees (for majority-rule consensus).
#[derive(Debug, Default, Clone)]
pub struct SplitCounter {
    counts: HashMap<Bipartition, usize>,
    num_trees: usize,
}

impl SplitCounter {
    /// Empty counter.
    pub fn new() -> SplitCounter {
        SplitCounter::default()
    }

    /// Record every non-trivial split of one tree.
    pub fn add_tree(&mut self, tree: &Tree, num_taxa: usize) {
        let set = SplitSet::of_tree(tree, num_taxa);
        for s in set.splits {
            *self.counts.entry(s).or_insert(0) += 1;
        }
        self.num_trees += 1;
    }

    /// Number of trees recorded.
    pub fn num_trees(&self) -> usize {
        self.num_trees
    }

    /// Splits occurring in strictly more than `fraction` of trees
    /// (`fraction = 0.5` gives the majority rule), sorted by decreasing
    /// support then canonically. Returns `(split, support count)`.
    pub fn splits_above(&self, fraction: f64) -> Vec<(Bipartition, usize)> {
        let threshold = fraction * self.num_trees as f64;
        let mut v: Vec<(Bipartition, usize)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| (c as f64) > threshold)
            .map(|(s, &c)| (s.clone(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Caterpillar tree on n taxa: ((((0,1),2),3),...) built by insertion.
    fn caterpillar(n: usize) -> Tree {
        let mut t = Tree::triplet(0, 1, 2);
        for taxon in 3..n as TaxonId {
            let e = t.incident_edges(t.tip_of(taxon - 1).unwrap())[0];
            t.insert_taxon(taxon, e).unwrap();
        }
        t
    }

    /// Balanced 4-taxon tree with the split {0,1}|{2,3}.
    fn quartet_01_23() -> Tree {
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.incident_edges(t.tip_of(2).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        t
    }

    #[test]
    fn canonical_form_ignores_orientation() {
        let a = Bipartition::from_side(&[0, 1], 5);
        let b = Bipartition::from_side(&[2, 3, 4], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_detection() {
        assert!(Bipartition::from_side(&[3], 5).is_trivial());
        assert!(Bipartition::from_side(&[0], 5).is_trivial());
        assert!(Bipartition::from_side(&[1, 2, 3, 4], 5).is_trivial());
        assert!(!Bipartition::from_side(&[1, 2], 5).is_trivial());
    }

    #[test]
    fn side_taxa_of_canonical_side() {
        let bp = Bipartition::from_side(&[0, 4], 5);
        // Canonical side excludes taxon 0 → {1,2,3}.
        assert_eq!(bp.side_taxa(), vec![1, 2, 3]);
        assert!(!bp.contains(0));
        assert!(bp.contains(2));
    }

    #[test]
    fn works_past_64_taxa() {
        let side: Vec<TaxonId> = (64..100).collect();
        let bp = Bipartition::from_side(&side, 150);
        assert_eq!(bp.side_size(), 36);
        assert!(bp.contains(80));
        assert!(!bp.contains(63));
        let complement: Vec<TaxonId> = (0..64).chain(100..150).collect();
        assert_eq!(bp, Bipartition::from_side(&complement, 150));
    }

    #[test]
    fn quartet_split_extraction() {
        let t = quartet_01_23();
        let s = SplitSet::of_tree(&t, 4);
        assert_eq!(s.len(), 1);
        assert_eq!(s.splits()[0], Bipartition::from_side(&[2, 3], 4));
    }

    #[test]
    fn binary_tree_has_n_minus_3_splits() {
        for n in [4usize, 5, 8, 12] {
            let t = caterpillar(n);
            let s = SplitSet::of_tree(&t, n);
            assert_eq!(s.len(), n - 3, "n = {n}");
        }
    }

    #[test]
    fn rf_zero_iff_same_topology() {
        let a = quartet_01_23();
        let b = quartet_01_23();
        assert_eq!(robinson_foulds(&a, &b, 4), 0);
        // Alternative quartet: {0,2}|{1,3}
        let mut c = Tree::triplet(0, 2, 1);
        let e = c.incident_edges(c.tip_of(1).unwrap())[0];
        c.insert_taxon(3, e).unwrap();
        assert_eq!(robinson_foulds(&a, &c, 4), 2);
    }

    #[test]
    fn rf_is_symmetric() {
        let a = caterpillar(8);
        let mut b = caterpillar(7);
        let e = b.incident_edges(b.tip_of(0).unwrap())[0];
        b.insert_taxon(7, e).unwrap();
        assert_eq!(
            SplitSet::of_tree(&a, 8).robinson_foulds(&SplitSet::of_tree(&b, 8)),
            SplitSet::of_tree(&b, 8).robinson_foulds(&SplitSet::of_tree(&a, 8))
        );
    }

    #[test]
    fn split_compatibility() {
        let ab = Bipartition::from_side(&[0, 1], 6);
        let abc = Bipartition::from_side(&[0, 1, 2], 6);
        let cd = Bipartition::from_side(&[2, 3], 6);
        assert!(ab.compatible_with(&abc)); // nested
        assert!(ab.compatible_with(&cd)); // disjoint
        assert!(!abc.compatible_with(&cd)); // properly overlapping
        assert!(ab.compatible_with(&ab));
    }

    #[test]
    fn splits_of_a_tree_are_pairwise_compatible() {
        let t = caterpillar(10);
        let s = SplitSet::of_tree(&t, 10);
        for (i, a) in s.splits().iter().enumerate() {
            for b in &s.splits()[i + 1..] {
                assert!(a.compatible_with(b));
            }
        }
    }

    #[test]
    fn counter_majority() {
        let mut counter = SplitCounter::new();
        counter.add_tree(&quartet_01_23(), 4); // split {2,3}
        counter.add_tree(&quartet_01_23(), 4);
        let mut alt = Tree::triplet(0, 2, 1);
        let e = alt.incident_edges(alt.tip_of(1).unwrap())[0];
        alt.insert_taxon(3, e).unwrap(); // split {1,3}
        counter.add_tree(&alt, 4);
        assert_eq!(counter.num_trees(), 3);
        let majority = counter.splits_above(0.5);
        assert_eq!(majority.len(), 1);
        assert_eq!(majority[0].1, 2);
        assert_eq!(majority[0].0, Bipartition::from_side(&[2, 3], 4));
    }

    #[test]
    fn fingerprint_equal_for_equal_topology() {
        // Build the same quartet topology two different ways.
        let a = quartet_01_23();
        let mut b = Tree::triplet(3, 2, 0);
        let e = b.incident_edges(b.tip_of(0).unwrap())[0];
        b.insert_taxon(1, e).unwrap();
        // b has split {0,1}|{2,3} too.
        assert_eq!(
            SplitSet::of_tree(&a, 4),
            SplitSet::of_tree(&b, 4),
            "test setup: topologies must match"
        );
        assert_eq!(topology_fingerprint(&a), topology_fingerprint(&b));
    }

    #[test]
    fn fingerprint_differs_for_different_topology() {
        let a = quartet_01_23();
        let mut c = Tree::triplet(0, 2, 1);
        let e = c.incident_edges(c.tip_of(1).unwrap())[0];
        c.insert_taxon(3, e).unwrap();
        assert_ne!(topology_fingerprint(&a), topology_fingerprint(&c));
    }

    #[test]
    fn fingerprint_ignores_branch_lengths() {
        let mut a = caterpillar(6);
        let fp1 = topology_fingerprint(&a);
        for e in a.edge_ids().collect::<Vec<_>>() {
            a.set_length(e, 1.2345);
        }
        assert_eq!(topology_fingerprint(&a), fp1);
    }

    #[test]
    fn fingerprint_distinguishes_caterpillar_orders() {
        // All distinct 5-taxon topologies should have distinct fingerprints.
        use std::collections::HashSet;
        let mut fps = HashSet::new();
        let mut splitsets = HashSet::new();
        // Enumerate all 15 five-taxon topologies: insert taxon 3 into each of
        // 3 edges of the triplet, then taxon 4 into each of 5 edges.
        let base = Tree::triplet(0, 1, 2);
        for e3 in base.edge_ids().collect::<Vec<_>>() {
            let mut t3 = base.clone();
            t3.insert_taxon(3, e3).unwrap();
            for e4 in t3.edge_ids().collect::<Vec<_>>() {
                let mut t4 = t3.clone();
                t4.insert_taxon(4, e4).unwrap();
                fps.insert(topology_fingerprint(&t4));
                splitsets.insert(SplitSet::of_tree(&t4, 5));
            }
        }
        assert_eq!(splitsets.len(), 15);
        assert_eq!(fps.len(), 15);
    }

    #[test]
    fn splitset_identity_for_dedup() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SplitSet::of_tree(&quartet_01_23(), 4));
        set.insert(SplitSet::of_tree(&quartet_01_23(), 4));
        assert_eq!(set.len(), 1);
    }
}
