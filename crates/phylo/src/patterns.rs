//! Site-pattern compression.
//!
//! Identical alignment columns contribute identical per-site likelihoods, so
//! fastDNAml collapses them into unique *patterns* with integer weights. The
//! likelihood of the alignment is then `Σ_p weight_p · lnL_p`. For the rRNA
//! data in the paper this shrinks 1858 columns to a few hundred patterns.

use crate::alignment::Alignment;
use crate::dna::Nucleotide;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A pattern-compressed alignment: the working representation of the
/// likelihood kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternAlignment {
    num_taxa: usize,
    num_sites: usize,
    /// `columns[pattern][taxon]`
    columns: Vec<Vec<Nucleotide>>,
    /// Multiplicity of each pattern in the original alignment.
    weights: Vec<u32>,
    /// For each original site, which pattern it maps to.
    site_to_pattern: Vec<u32>,
}

impl PatternAlignment {
    /// Compress an alignment into unique weighted columns.
    pub fn compress(alignment: &Alignment) -> PatternAlignment {
        let num_taxa = alignment.num_taxa();
        let num_sites = alignment.num_sites();
        let mut index: HashMap<Vec<Nucleotide>, u32> = HashMap::new();
        let mut columns: Vec<Vec<Nucleotide>> = Vec::new();
        let mut weights: Vec<u32> = Vec::new();
        let mut site_to_pattern = Vec::with_capacity(num_sites);
        for site in 0..num_sites {
            let col: Vec<Nucleotide> = alignment.column(site).collect();
            let id = *index.entry(col.clone()).or_insert_with(|| {
                columns.push(col);
                weights.push(0);
                (columns.len() - 1) as u32
            });
            weights[id as usize] += 1;
            site_to_pattern.push(id);
        }
        PatternAlignment {
            num_taxa,
            num_sites,
            columns,
            weights,
            site_to_pattern,
        }
    }

    /// Build a trivial (uncompressed) pattern set: one pattern per site,
    /// weight one each. Used to verify that compression preserves the
    /// likelihood.
    pub fn uncompressed(alignment: &Alignment) -> PatternAlignment {
        let num_taxa = alignment.num_taxa();
        let num_sites = alignment.num_sites();
        let columns: Vec<Vec<Nucleotide>> = (0..num_sites)
            .map(|s| alignment.column(s).collect())
            .collect();
        PatternAlignment {
            num_taxa,
            num_sites,
            columns,
            weights: vec![1; num_sites],
            site_to_pattern: (0..num_sites as u32).collect(),
        }
    }

    /// Number of taxa.
    pub fn num_taxa(&self) -> usize {
        self.num_taxa
    }

    /// Number of original alignment columns.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Number of unique patterns.
    pub fn num_patterns(&self) -> usize {
        self.columns.len()
    }

    /// The character of `taxon` in `pattern`.
    #[inline]
    pub fn state(&self, pattern: usize, taxon: usize) -> Nucleotide {
        self.columns[pattern][taxon]
    }

    /// The column of one pattern (indexed by taxon).
    pub fn pattern(&self, pattern: usize) -> &[Nucleotide] {
        &self.columns[pattern]
    }

    /// Pattern weights (multiplicities). Sums to [`num_sites`](Self::num_sites).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// The pattern id that original site `site` collapsed into.
    pub fn pattern_of_site(&self, site: usize) -> u32 {
        self.site_to_pattern[site]
    }

    /// Expand per-pattern values back to per-site values (used by the
    /// DNArates analog to report per-site rates).
    pub fn expand_to_sites<T: Copy>(&self, per_pattern: &[T]) -> Vec<T> {
        assert_eq!(per_pattern.len(), self.num_patterns());
        self.site_to_pattern
            .iter()
            .map(|&p| per_pattern[p as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compresses_duplicate_columns() {
        let a = Alignment::from_strings(&[("x", "AACA"), ("y", "CCGC"), ("z", "GGTG")]).unwrap();
        let p = PatternAlignment::compress(&a);
        // columns: ACG (x3 at sites 0,1,3), CGT (x1 at site 2)
        assert_eq!(p.num_patterns(), 2);
        assert_eq!(p.num_sites(), 4);
        assert_eq!(p.weights().iter().sum::<u32>(), 4);
        assert_eq!(p.pattern_of_site(0), p.pattern_of_site(1));
        assert_eq!(p.pattern_of_site(0), p.pattern_of_site(3));
        assert_ne!(p.pattern_of_site(0), p.pattern_of_site(2));
    }

    #[test]
    fn weights_match_multiplicities() {
        let a = Alignment::from_strings(&[("x", "AAAB"), ("y", "CCCC")]).unwrap();
        let p = PatternAlignment::compress(&a);
        assert_eq!(p.num_patterns(), 2);
        let w_first = p.weights()[p.pattern_of_site(0) as usize];
        assert_eq!(w_first, 3);
    }

    #[test]
    fn ambiguity_distinguishes_patterns() {
        // N and A differ even though N is compatible with A.
        let a = Alignment::from_strings(&[("x", "AN"), ("y", "CC")]).unwrap();
        let p = PatternAlignment::compress(&a);
        assert_eq!(p.num_patterns(), 2);
    }

    #[test]
    fn uncompressed_has_one_pattern_per_site() {
        let a = Alignment::from_strings(&[("x", "AAA"), ("y", "CCC")]).unwrap();
        let p = PatternAlignment::uncompressed(&a);
        assert_eq!(p.num_patterns(), 3);
        assert!(p.weights().iter().all(|&w| w == 1));
    }

    #[test]
    fn expand_to_sites_inverts_compression() {
        let a = Alignment::from_strings(&[("x", "ABAB"), ("y", "CCCC")]).unwrap();
        let p = PatternAlignment::compress(&a);
        let per_pattern: Vec<usize> = (0..p.num_patterns()).collect();
        let per_site = p.expand_to_sites(&per_pattern);
        assert_eq!(per_site.len(), 4);
        assert_eq!(per_site[0], per_site[2]);
        assert_eq!(per_site[1], per_site[3]);
        assert_ne!(per_site[0], per_site[1]);
    }

    #[test]
    fn state_accessor_matches_alignment() {
        let a = Alignment::from_strings(&[("x", "ACGT"), ("y", "TGCA")]).unwrap();
        let p = PatternAlignment::compress(&a);
        for site in 0..4 {
            let pat = p.pattern_of_site(site) as usize;
            assert_eq!(p.state(pat, 0), a.sequence(0)[site]);
            assert_eq!(p.state(pat, 1), a.sequence(1)[site]);
        }
    }
}
