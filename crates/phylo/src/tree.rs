//! Unrooted bifurcating trees with branch lengths.
//!
//! The phylogenies fastDNAml searches over are unrooted binary trees: every
//! node is either a *tip* (degree 1, carrying a taxon) or *internal* (degree
//! 3, anonymous). Nodes and edges live in arenas with free lists so the
//! stepwise-addition search can insert and remove taxa cheaply.
//!
//! A tree may transiently hold a *detached subtree* during a prune/regraft
//! move (see [`Tree::detach`] / [`Tree::attach`]); all read-only queries that
//! assume a single connected binary component document whether they tolerate
//! that intermediate state.

use crate::alignment::TaxonId;
use crate::error::PhyloError;
use serde::{Deserialize, Serialize};

/// Handle to a node in a [`Tree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Handle to an edge in a [`Tree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// Default branch length assigned to newly created edges before any
/// optimization, matching fastDNAml's rough initial guess.
pub const DEFAULT_BRANCH_LENGTH: f64 = 0.1;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Node {
    taxon: Option<TaxonId>,
    adj: Vec<EdgeId>,
    alive: bool,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Edge {
    a: NodeId,
    b: NodeId,
    length: f64,
    alive: bool,
}

/// Token returned by [`Tree::detach`]: a pruned subtree awaiting regrafting.
#[derive(Debug, Clone, Copy)]
pub struct DetachedSubtree {
    /// Root node of the pruned component.
    pub root: NodeId,
    /// Branch length the subtree's old pendant edge had; reused on attach.
    pub pendant_length: f64,
    /// The edge created in the remaining tree by merging around the removed
    /// internal node. Useful as the BFS origin for radius-limited regrafts.
    pub merged_edge: EdgeId,
}

/// An unrooted bifurcating phylogenetic tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    free_nodes: Vec<NodeId>,
    free_edges: Vec<EdgeId>,
    num_tips: usize,
}

impl Tree {
    /// The smallest tree: two tips joined by one edge.
    pub fn pair(t0: TaxonId, t1: TaxonId) -> Tree {
        let mut tree = Tree {
            nodes: Vec::with_capacity(4),
            edges: Vec::with_capacity(3),
            free_nodes: Vec::new(),
            free_edges: Vec::new(),
            num_tips: 0,
        };
        let a = tree.new_node(Some(t0));
        let b = tree.new_node(Some(t1));
        tree.new_edge(a, b, DEFAULT_BRANCH_LENGTH);
        tree
    }

    /// The unique topology on three taxa: one internal node joined to three
    /// tips. This is fastDNAml's starting tree (paper step 2).
    pub fn triplet(t0: TaxonId, t1: TaxonId, t2: TaxonId) -> Tree {
        let mut tree = Tree {
            nodes: Vec::with_capacity(8),
            edges: Vec::with_capacity(7),
            free_nodes: Vec::new(),
            free_edges: Vec::new(),
            num_tips: 0,
        };
        let center = tree.new_node(None);
        for t in [t0, t1, t2] {
            let tip = tree.new_node(Some(t));
            tree.new_edge(center, tip, DEFAULT_BRANCH_LENGTH);
        }
        tree
    }

    /// An empty arena for crate-internal construction (Newick parsing).
    pub(crate) fn empty() -> Tree {
        Tree {
            nodes: Vec::new(),
            edges: Vec::new(),
            free_nodes: Vec::new(),
            free_edges: Vec::new(),
            num_tips: 0,
        }
    }

    /// Raw node construction for crate-internal builders.
    pub(crate) fn add_node_raw(&mut self, taxon: Option<TaxonId>) -> NodeId {
        self.new_node(taxon)
    }

    /// Raw edge construction for crate-internal builders.
    pub(crate) fn add_edge_raw(&mut self, a: NodeId, b: NodeId, length: f64) -> EdgeId {
        self.new_edge(a, b, length)
    }

    fn new_node(&mut self, taxon: Option<TaxonId>) -> NodeId {
        if taxon.is_some() {
            self.num_tips += 1;
        }
        if let Some(id) = self.free_nodes.pop() {
            self.nodes[id.0 as usize] = Node {
                taxon,
                adj: Vec::with_capacity(3),
                alive: true,
            };
            id
        } else {
            self.nodes.push(Node {
                taxon,
                adj: Vec::with_capacity(3),
                alive: true,
            });
            NodeId(self.nodes.len() as u32 - 1)
        }
    }

    fn new_edge(&mut self, a: NodeId, b: NodeId, length: f64) -> EdgeId {
        let id = if let Some(id) = self.free_edges.pop() {
            self.edges[id.0 as usize] = Edge {
                a,
                b,
                length,
                alive: true,
            };
            id
        } else {
            self.edges.push(Edge {
                a,
                b,
                length,
                alive: true,
            });
            EdgeId(self.edges.len() as u32 - 1)
        };
        self.nodes[a.0 as usize].adj.push(id);
        self.nodes[b.0 as usize].adj.push(id);
        id
    }

    fn delete_edge(&mut self, e: EdgeId) {
        let Edge { a, b, .. } = self.edges[e.0 as usize];
        self.nodes[a.0 as usize].adj.retain(|&x| x != e);
        self.nodes[b.0 as usize].adj.retain(|&x| x != e);
        self.edges[e.0 as usize].alive = false;
        self.free_edges.push(e);
    }

    fn delete_node(&mut self, n: NodeId) {
        debug_assert!(self.nodes[n.0 as usize].adj.is_empty());
        if self.nodes[n.0 as usize].taxon.is_some() {
            self.num_tips -= 1;
        }
        self.nodes[n.0 as usize].alive = false;
        self.nodes[n.0 as usize].taxon = None;
        self.free_nodes.push(n);
    }

    /// Number of tips (taxa currently in the tree).
    pub fn num_tips(&self) -> usize {
        self.num_tips
    }

    /// Live node ids, tips and internal.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Live edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Tip node ids with their taxa.
    pub fn tips(&self) -> impl Iterator<Item = (NodeId, TaxonId)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .filter_map(|(i, n)| n.taxon.map(|t| (NodeId(i as u32), t)))
    }

    /// All taxa present, in ascending order.
    pub fn taxa(&self) -> Vec<TaxonId> {
        let mut v: Vec<TaxonId> = self.tips().map(|(_, t)| t).collect();
        v.sort_unstable();
        v
    }

    /// The taxon at a node, if it is a tip.
    pub fn taxon(&self, n: NodeId) -> Option<TaxonId> {
        self.nodes[n.0 as usize].taxon
    }

    /// Degree of a node.
    pub fn degree(&self, n: NodeId) -> usize {
        self.nodes[n.0 as usize].adj.len()
    }

    /// Is this node an internal (non-tip) node?
    pub fn is_internal(&self, n: NodeId) -> bool {
        self.nodes[n.0 as usize].taxon.is_none()
    }

    /// The tip node carrying `taxon`, if present.
    pub fn tip_of(&self, taxon: TaxonId) -> Option<NodeId> {
        self.tips().find(|&(_, t)| t == taxon).map(|(n, _)| n)
    }

    /// Edges incident to a node.
    pub fn incident_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.nodes[n.0 as usize].adj
    }

    /// `(edge, neighbor)` pairs around a node.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.nodes[n.0 as usize]
            .adj
            .iter()
            .map(move |&e| (e, self.other_end(e, n)))
    }

    /// The two endpoints of an edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e.0 as usize];
        (edge.a, edge.b)
    }

    /// The endpoint of `e` that is not `n`.
    pub fn other_end(&self, e: EdgeId, n: NodeId) -> NodeId {
        let edge = &self.edges[e.0 as usize];
        if edge.a == n {
            edge.b
        } else {
            debug_assert_eq!(edge.b, n);
            edge.a
        }
    }

    /// Branch length of an edge.
    pub fn length(&self, e: EdgeId) -> f64 {
        self.edges[e.0 as usize].length
    }

    /// Set a branch length (must be finite and non-negative).
    pub fn set_length(&mut self, e: EdgeId, length: f64) {
        debug_assert!(
            length.is_finite() && length >= 0.0,
            "bad branch length {length}"
        );
        self.edges[e.0 as usize].length = length;
    }

    /// The edge joining two adjacent nodes, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.nodes[a.0 as usize]
            .adj
            .iter()
            .copied()
            .find(|&e| self.other_end(e, a) == b)
    }

    /// Insert a new taxon into edge `target`, fastDNAml's elementary
    /// tree-building move (paper step 3).
    ///
    /// The target edge `x——y` becomes `x——p——y` with a fresh internal node
    /// `p`, and the new tip hangs off `p`. The old branch length is split
    /// evenly; the pendant branch starts at [`DEFAULT_BRANCH_LENGTH`].
    /// Returns the new pendant edge.
    pub fn insert_taxon(&mut self, taxon: TaxonId, target: EdgeId) -> Result<EdgeId, PhyloError> {
        if !self.edges[target.0 as usize].alive {
            return Err(PhyloError::InvalidTreeOp(format!(
                "insert into dead edge {target:?}"
            )));
        }
        if self.tip_of(taxon).is_some() {
            return Err(PhyloError::InvalidTreeOp(format!(
                "taxon {taxon} already in tree"
            )));
        }
        let Edge { a, b, length, .. } = self.edges[target.0 as usize];
        self.delete_edge(target);
        let p = self.new_node(None);
        let tip = self.new_node(Some(taxon));
        self.new_edge(a, p, length / 2.0);
        self.new_edge(p, b, length / 2.0);
        let pendant = self.new_edge(p, tip, DEFAULT_BRANCH_LENGTH);
        Ok(pendant)
    }

    /// Remove a tip and smooth out its attachment node: the inverse of
    /// [`Tree::insert_taxon`]. The two surviving branches merge with summed
    /// length. Requires at least four tips (a triplet cannot lose a tip and
    /// stay a valid unrooted binary tree with an internal node — removing
    /// from a triplet yields a [`Tree::pair`], which is also supported).
    pub fn remove_taxon(&mut self, taxon: TaxonId) -> Result<EdgeId, PhyloError> {
        let tip = self
            .tip_of(taxon)
            .ok_or_else(|| PhyloError::InvalidTreeOp(format!("taxon {taxon} not in tree")))?;
        if self.num_tips <= 2 {
            return Err(PhyloError::InvalidTreeOp(
                "cannot shrink below two tips".into(),
            ));
        }
        let pendant = self.nodes[tip.0 as usize].adj[0];
        let p = self.other_end(pendant, tip);
        self.delete_edge(pendant);
        self.delete_node(tip);
        // p now has exactly two neighbors; merge them into one edge.
        let adj: Vec<EdgeId> = self.nodes[p.0 as usize].adj.clone();
        debug_assert_eq!(adj.len(), 2);
        let n0 = self.other_end(adj[0], p);
        let n1 = self.other_end(adj[1], p);
        let merged_len = self.length(adj[0]) + self.length(adj[1]);
        self.delete_edge(adj[0]);
        self.delete_edge(adj[1]);
        self.delete_node(p);
        Ok(self.new_edge(n0, n1, merged_len))
    }

    /// Prune the subtree on the `root_side` end of `pendant`: the first half
    /// of a subtree-pruning-and-regrafting (SPR) move, fastDNAml's
    /// rearrangement primitive (paper step 4).
    ///
    /// `pendant` must join `root_side` to an *internal* node `p` of the rest
    /// of the tree; `p` is dissolved and its two other branches merge. The
    /// pruned component dangles from `root_side` until [`Tree::attach`].
    pub fn detach(
        &mut self,
        pendant: EdgeId,
        root_side: NodeId,
    ) -> Result<DetachedSubtree, PhyloError> {
        if !self.edges[pendant.0 as usize].alive {
            return Err(PhyloError::InvalidTreeOp(format!(
                "detach dead edge {pendant:?}"
            )));
        }
        let p = self.other_end(pendant, root_side);
        if !self.is_internal(p) {
            return Err(PhyloError::InvalidTreeOp(
                "detach would strand a tip: far end of pendant edge must be internal".into(),
            ));
        }
        let pendant_length = self.length(pendant);
        self.delete_edge(pendant);
        let adj: Vec<EdgeId> = self.nodes[p.0 as usize].adj.clone();
        debug_assert_eq!(adj.len(), 2);
        let n0 = self.other_end(adj[0], p);
        let n1 = self.other_end(adj[1], p);
        let merged_len = self.length(adj[0]) + self.length(adj[1]);
        self.delete_edge(adj[0]);
        self.delete_edge(adj[1]);
        self.delete_node(p);
        let merged_edge = self.new_edge(n0, n1, merged_len);
        Ok(DetachedSubtree {
            root: root_side,
            pendant_length,
            merged_edge,
        })
    }

    /// Regraft a detached subtree into edge `target` of the remaining tree:
    /// the second half of an SPR move. Splits `target` with a fresh internal
    /// node and restores the pendant edge with its recorded length.
    pub fn attach(&mut self, sub: DetachedSubtree, target: EdgeId) -> Result<EdgeId, PhyloError> {
        if !self.edges[target.0 as usize].alive {
            return Err(PhyloError::InvalidTreeOp(format!(
                "attach into dead edge {target:?}"
            )));
        }
        let Edge { a, b, length, .. } = self.edges[target.0 as usize];
        if a == sub.root || b == sub.root {
            return Err(PhyloError::InvalidTreeOp(
                "attach target inside detached subtree".into(),
            ));
        }
        self.delete_edge(target);
        let p = self.new_node(None);
        self.new_edge(a, p, length / 2.0);
        self.new_edge(p, b, length / 2.0);
        Ok(self.new_edge(p, sub.root, sub.pendant_length))
    }

    /// Nodes of the subtree hanging off the `side` endpoint of `e`,
    /// i.e. the component containing `side` when `e` is cut.
    pub fn subtree_nodes(&self, e: EdgeId, side: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![(side, e)];
        while let Some((node, via)) = stack.pop() {
            out.push(node);
            for (edge, next) in self.neighbors(node) {
                if edge != via {
                    stack.push((next, edge));
                }
            }
        }
        out
    }

    /// Taxa in the subtree hanging off the `side` endpoint of `e`.
    pub fn subtree_taxa(&self, e: EdgeId, side: NodeId) -> Vec<TaxonId> {
        let mut v: Vec<TaxonId> = self
            .subtree_nodes(e, side)
            .into_iter()
            .filter_map(|n| self.taxon(n))
            .collect();
        v.sort_unstable();
        v
    }

    /// Postorder sweep of directed steps `(child_node, edge, parent_node)`
    /// toward `root`: every node appears (as `child_node`) after all nodes
    /// farther from the root. The root itself does not appear as a child.
    pub fn postorder_toward(&self, root: NodeId) -> Vec<(NodeId, EdgeId, NodeId)> {
        let mut order = Vec::with_capacity(self.edges.len());
        // Iterative DFS recording edges child→parent in postorder.
        let mut stack: Vec<(NodeId, Option<EdgeId>)> = vec![(root, None)];
        let mut out_stack: Vec<(NodeId, EdgeId, NodeId)> = Vec::new();
        while let Some((node, via)) = stack.pop() {
            if let Some(e) = via {
                out_stack.push((node, e, self.other_end(e, node)));
            }
            for (edge, next) in self.neighbors(node) {
                if Some(edge) != via {
                    stack.push((next, Some(edge)));
                }
            }
        }
        // out_stack is in preorder (parent before child); reverse for postorder.
        out_stack.reverse();
        order.extend(out_stack);
        order
    }

    /// Total branch length of the tree.
    pub fn total_length(&self) -> f64 {
        self.edge_ids().map(|e| self.length(e)).sum()
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.alive).count()
    }

    /// Internal (non-pendant) edges: both endpoints internal.
    pub fn internal_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edge_ids().filter(|&e| {
            let (a, b) = self.endpoints(e);
            self.is_internal(a) && self.is_internal(b)
        })
    }

    /// Check the unrooted-binary invariant: `n` tips of degree 1, `n-2`
    /// internal nodes of degree 3 (for `n ≥ 3`; a pair is two tips), and
    /// `2n-3` edges, all connected.
    pub fn check_valid(&self) -> Result<(), PhyloError> {
        let n = self.num_tips;
        if n < 2 {
            return Err(PhyloError::InvalidTreeOp("fewer than two tips".into()));
        }
        let mut tips = 0usize;
        let mut internals = 0usize;
        for node in self.node_ids() {
            match (self.taxon(node), self.degree(node)) {
                (Some(_), 1) => tips += 1,
                (None, 3) => internals += 1,
                (t, d) => {
                    return Err(PhyloError::InvalidTreeOp(format!(
                        "node {node:?} has taxon {t:?} and degree {d}"
                    )))
                }
            }
        }
        let expected_internal = if n == 2 { 0 } else { n - 2 };
        if tips != n || internals != expected_internal {
            return Err(PhyloError::InvalidTreeOp(format!(
                "counted {tips} tips / {internals} internal nodes for n={n}"
            )));
        }
        let expected_edges = if n == 2 { 1 } else { 2 * n - 3 };
        if self.num_edges() != expected_edges {
            return Err(PhyloError::InvalidTreeOp(format!(
                "counted {} edges, expected {expected_edges}",
                self.num_edges()
            )));
        }
        // Connectivity: BFS from any tip must reach every live node.
        let start = self.node_ids().next().unwrap();
        let reached = self.subtree_count_from(start);
        let live = self.node_ids().count();
        if reached != live {
            return Err(PhyloError::InvalidTreeOp(format!(
                "tree is disconnected: reached {reached} of {live} nodes"
            )));
        }
        Ok(())
    }

    fn subtree_count_from(&self, start: NodeId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start.0 as usize] = true;
        let mut count = 0;
        while let Some(node) = stack.pop() {
            count += 1;
            for (_, next) in self.neighbors(node) {
                if !seen[next.0 as usize] {
                    seen[next.0 as usize] = true;
                    stack.push(next);
                }
            }
        }
        count
    }

    /// Upper bound over node indices ever allocated (for building per-node
    /// side tables; dead slots included).
    pub fn node_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound over edge indices ever allocated.
    pub fn edge_capacity(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_five() -> Tree {
        // Insert taxa 3 and 4 into a triplet of 0,1,2.
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.incident_edges(t.tip_of(0).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        let e = t.incident_edges(t.tip_of(1).unwrap())[0];
        t.insert_taxon(4, e).unwrap();
        t
    }

    #[test]
    fn pair_is_valid() {
        let t = Tree::pair(0, 1);
        t.check_valid().unwrap();
        assert_eq!(t.num_tips(), 2);
        assert_eq!(t.num_edges(), 1);
    }

    #[test]
    fn triplet_is_valid() {
        let t = Tree::triplet(5, 7, 9);
        t.check_valid().unwrap();
        assert_eq!(t.num_tips(), 3);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.taxa(), vec![5, 7, 9]);
    }

    #[test]
    fn insertion_grows_correctly() {
        let t = build_five();
        t.check_valid().unwrap();
        assert_eq!(t.num_tips(), 5);
        assert_eq!(t.num_edges(), 7); // 2n-3
        assert_eq!(t.taxa(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn insertion_into_pair() {
        let mut t = Tree::pair(0, 1);
        let e = t.edge_ids().next().unwrap();
        t.insert_taxon(2, e).unwrap();
        t.check_valid().unwrap();
        assert_eq!(t.num_tips(), 3);
    }

    #[test]
    fn duplicate_insertion_rejected() {
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.edge_ids().next().unwrap();
        assert!(t.insert_taxon(1, e).is_err());
    }

    #[test]
    fn removal_inverts_insertion() {
        let mut t = build_five();
        let before_len = t.total_length();
        let e = t.incident_edges(t.tip_of(2).unwrap())[0];
        let pendant_len = t.length(e);
        // Split lengths around tip 2's attachment node.
        t.insert_taxon(9, e).unwrap();
        t.check_valid().unwrap();
        t.remove_taxon(9).unwrap();
        t.check_valid().unwrap();
        assert_eq!(t.num_tips(), 5);
        assert!((t.total_length() - before_len).abs() < 1e-12);
        let e2 = t.incident_edges(t.tip_of(2).unwrap())[0];
        assert!((t.length(e2) - pendant_len).abs() < 1e-12);
    }

    #[test]
    fn removal_from_triplet_gives_pair() {
        let mut t = Tree::triplet(0, 1, 2);
        t.remove_taxon(2).unwrap();
        t.check_valid().unwrap();
        assert_eq!(t.num_tips(), 2);
    }

    #[test]
    fn removal_below_two_tips_rejected() {
        let mut t = Tree::pair(0, 1);
        assert!(t.remove_taxon(0).is_err());
    }

    #[test]
    fn removal_of_absent_taxon_rejected() {
        let mut t = Tree::triplet(0, 1, 2);
        assert!(t.remove_taxon(7).is_err());
    }

    #[test]
    fn detach_attach_roundtrip_preserves_validity_and_taxa() {
        let mut t = build_five();
        let tip3 = t.tip_of(3).unwrap();
        let pendant = t.incident_edges(tip3)[0];
        let sub = t.detach(pendant, tip3).unwrap();
        // Remaining tree is a valid 4-taxon tree.
        assert_eq!(
            t.subtree_taxa(sub.merged_edge, t.endpoints(sub.merged_edge).0)
                .len()
                + t.subtree_taxa(sub.merged_edge, t.endpoints(sub.merged_edge).1)
                    .len(),
            4
        );
        let target = sub.merged_edge;
        t.attach(sub, target).unwrap();
        t.check_valid().unwrap();
        assert_eq!(t.taxa(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn detach_internal_subtree() {
        let mut t = build_five();
        // Find an internal edge and detach the side with ≥2 taxa.
        let e = t
            .internal_edges()
            .next()
            .expect("five-taxon tree has internal edges");
        let (a, _) = t.endpoints(e);
        let sub = t.detach(e, a).unwrap();
        let target = sub.merged_edge;
        t.attach(sub, target).unwrap();
        t.check_valid().unwrap();
    }

    #[test]
    fn detach_refuses_to_strand_tip() {
        let mut t = Tree::triplet(0, 1, 2);
        // Pendant edge of tip 0 viewed from the center: far end is a tip.
        let center = t.node_ids().find(|&n| t.is_internal(n)).unwrap();
        let (edge, _tip) = t.neighbors(center).next().unwrap();
        assert!(t.detach(edge, center).is_err());
    }

    #[test]
    fn subtree_taxa_partitions() {
        let t = build_five();
        for e in t.edge_ids().collect::<Vec<_>>() {
            let (a, b) = t.endpoints(e);
            let mut left = t.subtree_taxa(e, a);
            let right = t.subtree_taxa(e, b);
            left.extend(right);
            left.sort_unstable();
            assert_eq!(left, vec![0, 1, 2, 3, 4], "edge {e:?}");
        }
    }

    #[test]
    fn postorder_children_before_parents() {
        let t = build_five();
        let root = t.tip_of(0).unwrap();
        let order = t.postorder_toward(root);
        assert_eq!(order.len(), t.num_edges());
        // Every (child, edge, parent): the child must not appear as a parent
        // of any earlier entry's... rather: when we see (c,e,p), all entries
        // whose parent is c must already have been emitted.
        for (i, &(child, _, _)) in order.iter().enumerate() {
            for &(_, _, later_parent) in &order[i + 1..] {
                assert_ne!(later_parent, child, "child emitted before its own children");
            }
        }
    }

    #[test]
    fn postorder_from_internal_root() {
        let t = build_five();
        let root = t.node_ids().find(|&n| t.is_internal(n)).unwrap();
        let order = t.postorder_toward(root);
        assert_eq!(order.len(), t.num_edges());
    }

    #[test]
    fn arena_reuses_slots() {
        let mut t = build_five();
        let nodes_before = t.node_capacity();
        let edges_before = t.edge_capacity();
        let e = t.incident_edges(t.tip_of(0).unwrap())[0];
        t.insert_taxon(10, e).unwrap();
        t.remove_taxon(10).unwrap();
        let e = t.incident_edges(t.tip_of(1).unwrap())[0];
        t.insert_taxon(11, e).unwrap();
        t.remove_taxon(11).unwrap();
        assert!(t.node_capacity() <= nodes_before + 2);
        assert!(t.edge_capacity() <= edges_before + 3);
        t.check_valid().unwrap();
    }

    #[test]
    fn set_length_roundtrips() {
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.edge_ids().next().unwrap();
        t.set_length(e, 0.42);
        assert_eq!(t.length(e), 0.42);
    }

    #[test]
    fn edge_between_finds_edges() {
        let t = Tree::triplet(0, 1, 2);
        let center = t.node_ids().find(|&n| t.is_internal(n)).unwrap();
        let tip = t.tip_of(0).unwrap();
        assert!(t.edge_between(center, tip).is_some());
        let tip1 = t.tip_of(1).unwrap();
        assert!(t.edge_between(tip, tip1).is_none());
    }
}
