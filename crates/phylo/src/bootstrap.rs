//! Bootstrap resampling of alignment columns.
//!
//! fastDNAml supports bootstrapped analyses (the paper notes that
//! "incorporation of multiple addition orders and multiple bootstraps
//! within the code is planned, but … currently available using scripts" —
//! this module is that scripted layer, built in): sample `num_sites`
//! columns with replacement, infer a tree per replicate, and read clade
//! support off the consensus.

use crate::alignment::Alignment;
use crate::dna::Nucleotide;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One bootstrap replicate: columns of `alignment` sampled with
/// replacement (same length), deterministic in `seed`.
pub fn bootstrap_alignment(alignment: &Alignment, seed: u64) -> Alignment {
    let n_sites = alignment.num_sites();
    let mut rng = StdRng::seed_from_u64(seed);
    let picks: Vec<usize> = (0..n_sites).map(|_| rng.random_range(0..n_sites)).collect();
    let rows: Vec<(String, Vec<Nucleotide>)> = (0..alignment.num_taxa() as u32)
        .map(|t| {
            let seq = alignment.sequence(t);
            (
                alignment.name(t).to_string(),
                picks.iter().map(|&s| seq[s]).collect(),
            )
        })
        .collect();
    Alignment::new(rows).expect("resampled alignment is well-formed")
}

/// A whole series of replicates with distinct derived seeds.
pub fn bootstrap_replicates(alignment: &Alignment, count: usize, seed: u64) -> Vec<Alignment> {
    (0..count as u64)
        .map(|i| bootstrap_alignment(alignment, seed.wrapping_mul(0x9e3779b9).wrapping_add(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Alignment {
        Alignment::from_strings(&[("x", "ACGTAC"), ("y", "TGCATG"), ("z", "AAAAAA")]).unwrap()
    }

    #[test]
    fn replicate_has_same_shape_and_names() {
        let a = toy();
        let b = bootstrap_alignment(&a, 7);
        assert_eq!(b.num_taxa(), 3);
        assert_eq!(b.num_sites(), 6);
        assert_eq!(b.names(), a.names());
    }

    #[test]
    fn columns_are_drawn_jointly() {
        // Every replicate column must equal SOME original column for all
        // taxa simultaneously (columns resampled, not cells).
        let a = toy();
        let b = bootstrap_alignment(&a, 3);
        for s in 0..b.num_sites() {
            let col: Vec<Nucleotide> = b.column(s).collect();
            let found = (0..a.num_sites()).any(|orig| a.column(orig).collect::<Vec<_>>() == col);
            assert!(found, "column {s} is not an original column");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = toy();
        assert_eq!(bootstrap_alignment(&a, 5), bootstrap_alignment(&a, 5));
        assert_ne!(bootstrap_alignment(&a, 5), bootstrap_alignment(&a, 6));
    }

    #[test]
    fn replicates_differ_from_each_other() {
        let a = toy();
        let reps = bootstrap_replicates(&a, 4, 1);
        assert_eq!(reps.len(), 4);
        assert_ne!(reps[0], reps[1]);
    }

    #[test]
    fn constant_rows_stay_constant() {
        let a = toy();
        let b = bootstrap_alignment(&a, 11);
        assert!(b.sequence(2).iter().all(|n| *n == Nucleotide::ADENINE));
    }
}
