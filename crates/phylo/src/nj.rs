//! Neighbor joining (Saitou & Nei 1987): the classic distance-method
//! baseline.
//!
//! The paper's motivation for keeping ML tractable is that "a biologist's
//! choice of methods is not constrained because one method cannot be
//! completed in a reasonable amount of time" — i.e. ML results can be
//! compared against cheaper method classes like distance methods. This
//! module supplies that comparator: given a pairwise distance matrix
//! (e.g. the ML distances of `fdml-likelihood::distances`), build the NJ
//! tree in O(n³). On additive distances NJ recovers the generating tree
//! exactly, which the tests exploit.

use crate::alignment::TaxonId;
use crate::error::PhyloError;
use crate::tree::Tree;

/// A symmetric pairwise distance matrix over `n` taxa.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n`, symmetric, zero diagonal.
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Build from a full row-major matrix (validated: symmetric within
    /// 1e-9, zero diagonal, non-negative).
    pub fn new(n: usize, d: Vec<f64>) -> Result<DistanceMatrix, PhyloError> {
        if n < 2 || d.len() != n * n {
            return Err(PhyloError::Format(format!(
                "distance matrix must be n×n with n ≥ 2 (n = {n}, len = {})",
                d.len()
            )));
        }
        for i in 0..n {
            if d[i * n + i].abs() > 1e-9 {
                return Err(PhyloError::Format(format!("nonzero diagonal at {i}")));
            }
            for j in 0..n {
                let x = d[i * n + j];
                if !x.is_finite() || x < 0.0 {
                    return Err(PhyloError::Format(format!(
                        "invalid distance at ({i},{j}): {x}"
                    )));
                }
                if (x - d[j * n + i]).abs() > 1e-9 {
                    return Err(PhyloError::Format(format!("asymmetry at ({i},{j})")));
                }
            }
        }
        Ok(DistanceMatrix { n, d })
    }

    /// From the upper triangle (row by row, `n(n-1)/2` entries).
    pub fn from_upper_triangle(n: usize, upper: &[f64]) -> Result<DistanceMatrix, PhyloError> {
        if upper.len() != n * (n - 1) / 2 {
            return Err(PhyloError::Format("wrong upper-triangle length".into()));
        }
        let mut d = vec![0.0; n * n];
        let mut k = 0;
        for i in 0..n {
            for j in i + 1..n {
                d[i * n + j] = upper[k];
                d[j * n + i] = upper[k];
                k += 1;
            }
        }
        DistanceMatrix::new(n, d)
    }

    /// Number of taxa.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix is trivial (should not happen: `n ≥ 2`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between taxa `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }

    /// Path-length (patristic) distances of a tree: the additive matrix NJ
    /// inverts. Taxon ids must be dense in `0..n`.
    pub fn from_tree(tree: &Tree) -> DistanceMatrix {
        let n = tree.num_tips();
        let mut d = vec![0.0; n * n];
        for (tip, taxon) in tree.tips() {
            // BFS accumulating path lengths from this tip.
            let mut dist = vec![f64::NAN; tree.node_capacity()];
            dist[tip.0 as usize] = 0.0;
            let mut stack = vec![tip];
            while let Some(u) = stack.pop() {
                for (e, v) in tree.neighbors(u) {
                    if dist[v.0 as usize].is_nan() {
                        dist[v.0 as usize] = dist[u.0 as usize] + tree.length(e);
                        stack.push(v);
                    }
                }
            }
            for (other, other_taxon) in tree.tips() {
                d[taxon as usize * n + other_taxon as usize] = dist[other.0 as usize];
            }
        }
        DistanceMatrix { n, d }
    }
}

/// Build the neighbor-joining tree for a distance matrix. Taxon `i` of the
/// matrix becomes [`TaxonId`] `i` in the tree. Negative branch-length
/// estimates (possible for non-additive input) are clamped to zero.
pub fn neighbor_joining(matrix: &DistanceMatrix) -> Tree {
    let n = matrix.n;
    if n == 2 {
        let mut t = Tree::pair(0, 1);
        let e = t.edge_ids().next().expect("pair edge");
        t.set_length(e, matrix.get(0, 1));
        return t;
    }
    // Active cluster list: (node in the growing tree, original row index in
    // the shrinking working matrix).
    let mut tree = Tree::empty();
    let mut nodes: Vec<crate::tree::NodeId> = (0..n)
        .map(|i| tree.add_node_raw(Some(i as TaxonId)))
        .collect();
    let mut d = matrix.d.clone();
    let mut size = n;
    let mut active: Vec<usize> = (0..n).collect(); // index into `d` rows
    let at = |d: &[f64], i: usize, j: usize| d[i * n + j];

    while size > 3 {
        // Row sums over active entries.
        let mut r = vec![0.0; active.len()];
        for (ai, &i) in active.iter().enumerate() {
            r[ai] = active.iter().map(|&j| at(&d, i, j)).sum();
        }
        // Minimize the Q criterion.
        let (mut best, mut best_q) = ((0usize, 1usize), f64::INFINITY);
        for ai in 0..active.len() {
            for aj in ai + 1..active.len() {
                let q = (size as f64 - 2.0) * at(&d, active[ai], active[aj]) - r[ai] - r[aj];
                if q < best_q {
                    best_q = q;
                    best = (ai, aj);
                }
            }
        }
        let (ai, aj) = best;
        let (i, j) = (active[ai], active[aj]);
        let dij = at(&d, i, j);
        let li = 0.5 * dij + (r[ai] - r[aj]) / (2.0 * (size as f64 - 2.0));
        let li = li.clamp(0.0, dij.max(0.0));
        let lj = (dij - li).max(0.0);
        // Join i and j under a fresh internal node u.
        let u = tree.add_node_raw(None);
        tree.add_edge_raw(u, nodes[i], li);
        tree.add_edge_raw(u, nodes[j], lj);
        // Update distances: reuse row i as the new cluster's row.
        for &k in &active {
            if k == i || k == j {
                continue;
            }
            let duk = 0.5 * (at(&d, i, k) + at(&d, j, k) - dij);
            let duk = duk.max(0.0);
            d[i * n + k] = duk;
            d[k * n + i] = duk;
        }
        nodes[i] = u;
        active.remove(aj);
        size -= 1;
    }
    // Final three clusters join at one internal node with the standard
    // three-point formulas.
    let (a, b, c) = (active[0], active[1], active[2]);
    let (dab, dac, dbc) = (at(&d, a, b), at(&d, a, c), at(&d, b, c));
    let la = (0.5 * (dab + dac - dbc)).max(0.0);
    let lb = (0.5 * (dab + dbc - dac)).max(0.0);
    let lc = (0.5 * (dac + dbc - dab)).max(0.0);
    let center = tree.add_node_raw(None);
    tree.add_edge_raw(center, nodes[a], la);
    tree.add_edge_raw(center, nodes[b], lb);
    tree.add_edge_raw(center, nodes[c], lc);
    tree.check_valid()
        .expect("NJ constructs a valid binary tree");
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartition::SplitSet;

    #[test]
    fn matrix_validation() {
        assert!(DistanceMatrix::new(2, vec![0.0, 1.0, 1.0, 0.0]).is_ok());
        assert!(DistanceMatrix::new(2, vec![0.0, 1.0, 2.0, 0.0]).is_err()); // asymmetric
        assert!(DistanceMatrix::new(2, vec![0.5, 1.0, 1.0, 0.0]).is_err()); // diagonal
        assert!(DistanceMatrix::new(2, vec![0.0, -1.0, -1.0, 0.0]).is_err()); // negative
        assert!(DistanceMatrix::new(1, vec![0.0]).is_err());
    }

    #[test]
    fn upper_triangle_roundtrip() {
        let m = DistanceMatrix::from_upper_triangle(3, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(1, 2), 3.0);
    }

    #[test]
    fn two_and_three_taxa() {
        let m = DistanceMatrix::from_upper_triangle(2, &[0.7]).unwrap();
        let t = neighbor_joining(&m);
        assert_eq!(t.num_tips(), 2);
        assert!((t.total_length() - 0.7).abs() < 1e-12);
        let m = DistanceMatrix::from_upper_triangle(3, &[0.3, 0.5, 0.6]).unwrap();
        let t = neighbor_joining(&m);
        t.check_valid().unwrap();
        // Three-point formulas: la = (0.3+0.5-0.6)/2 = 0.1, etc.
        let recovered = DistanceMatrix::from_tree(&t);
        for i in 0..3 {
            for j in 0..3 {
                assert!((recovered.get(i, j) - m.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn additive_distances_recover_the_tree_exactly() {
        // Build random-ish trees, take their path metric, and NJ must give
        // back the same topology AND branch lengths.
        for seed in [1u64, 7, 23, 99] {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut truth = Tree::triplet(0, 1, 2);
            for t in 3..12u32 {
                let edges: Vec<_> = truth.edge_ids().collect();
                let e = edges[(next() % edges.len() as u64) as usize];
                truth.insert_taxon(t, e).unwrap();
            }
            for e in truth.edge_ids().collect::<Vec<_>>() {
                truth.set_length(e, 0.05 + (next() % 100) as f64 / 200.0);
            }
            let m = DistanceMatrix::from_tree(&truth);
            let nj = neighbor_joining(&m);
            assert_eq!(
                SplitSet::of_tree(&truth, 12),
                SplitSet::of_tree(&nj, 12),
                "seed {seed}"
            );
            let back = DistanceMatrix::from_tree(&nj);
            for i in 0..12 {
                for j in 0..12 {
                    assert!(
                        (back.get(i, j) - m.get(i, j)).abs() < 1e-6,
                        "seed {seed}: d({i},{j}) {} vs {}",
                        back.get(i, j),
                        m.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn noisy_distances_still_build_a_valid_tree() {
        let mut truth = Tree::triplet(0, 1, 2);
        for t in 3..8u32 {
            let e = truth.incident_edges(truth.tip_of(t - 1).unwrap())[0];
            truth.insert_taxon(t, e).unwrap();
        }
        let m = DistanceMatrix::from_tree(&truth);
        // Perturb off-diagonal entries slightly (still symmetric).
        let n = m.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let (lo, hi) = (i.min(j), i.max(j));
                let noise = if i != j {
                    0.01 * (((lo * 7 + hi * 13) % 5) as f64 - 2.0).abs()
                } else {
                    0.0
                };
                d[i * n + j] = m.get(i.min(j), i.max(j)) + noise;
            }
        }
        let noisy = DistanceMatrix::new(n, d).unwrap();
        let t = neighbor_joining(&noisy);
        t.check_valid().unwrap();
        assert_eq!(t.num_tips(), 8);
        for e in t.edge_ids() {
            assert!(t.length(e) >= 0.0);
        }
    }

    #[test]
    fn from_tree_metric_properties() {
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.incident_edges(t.tip_of(0).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        let m = DistanceMatrix::from_tree(&t);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
                for k in 0..4 {
                    assert!(m.get(i, j) <= m.get(i, k) + m.get(k, j) + 1e-12);
                }
            }
        }
    }
}
