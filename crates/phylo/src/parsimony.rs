//! Fitch parsimony scoring — the baseline method class the paper compares
//! against.
//!
//! §3.2 discusses Snell et al.'s parallel *parsimony* implementation
//! ("parsimony methods are less computationally complex than maximum
//! likelihood methods. The implementation of Snell et al. did not seem to
//! scale beyond eight processors"). This module provides that comparator:
//! the Fitch (1971) small-parsimony score of a tree — the minimum number of
//! substitutions needed to explain the alignment — computed per unique
//! site pattern with multiplicities, exactly as the likelihood kernel
//! walks patterns. The `comparison_parsimony` experiment uses its (much
//! smaller) per-tree work to show *why* parsimony scales worse: less
//! computation between the same synchronization points.

use crate::patterns::PatternAlignment;
use crate::tree::{NodeId, Tree};

/// Work accounting for a parsimony evaluation: one unit = one Fitch state
/// set combination (per pattern per internal node).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParsimonyWork {
    /// Fitch set operations performed.
    pub fitch_ops: u64,
}

/// The Fitch parsimony score of `tree` on a pattern-compressed alignment:
/// the minimum substitution count summed over sites (weights applied).
///
/// Fully ambiguous characters (gaps, `N`) participate as their IUPAC state
/// sets, which makes them free to explain — the "missing data" treatment
/// fastDNAml applies to gaps as well.
pub fn fitch_score(tree: &Tree, patterns: &PatternAlignment) -> (u64, ParsimonyWork) {
    let root = tree
        .tips()
        .min_by_key(|&(_, t)| t)
        .expect("tree has tips")
        .0;
    let order = tree.postorder_toward(root);
    let np = patterns.num_patterns();
    let mut work = ParsimonyWork::default();

    // Fitch state sets per node per pattern (4-bit masks), plus per-pattern
    // mutation counts.
    let mut sets: Vec<u8> = vec![0; tree.node_capacity() * np];
    let mut changes: Vec<u64> = vec![0; np];

    // Postorder: children before parents; combine child sets at parents.
    // Tips contribute their observed masks; internal nodes intersect (or
    // union + 1 change) their children's sets.
    for &(child, edge, _) in &order {
        if let Some(taxon) = tree.taxon(child) {
            for p in 0..np {
                sets[child.0 as usize * np + p] = patterns.state(p, taxon as usize).mask();
            }
        } else {
            let kids: Vec<NodeId> = tree
                .neighbors(child)
                .filter(|&(e, _)| e != edge)
                .map(|(_, n)| n)
                .collect();
            debug_assert_eq!(kids.len(), 2);
            let (a, b) = (kids[0].0 as usize, kids[1].0 as usize);
            let c = child.0 as usize;
            for p in 0..np {
                let x = sets[a * np + p];
                let y = sets[b * np + p];
                let inter = x & y;
                sets[c * np + p] = if inter != 0 {
                    inter
                } else {
                    changes[p] += 1;
                    x | y
                };
            }
            work.fitch_ops += np as u64;
        }
    }
    // Fold the root tip in as one more Fitch combination.
    let c0 = tree.other_end(tree.incident_edges(root)[0], root);
    for p in 0..np {
        let tip = patterns
            .state(p, tree.taxon(root).expect("root is a tip") as usize)
            .mask();
        if tip & sets[c0.0 as usize * np + p] == 0 {
            changes[p] += 1;
        }
    }
    work.fitch_ops += np as u64;

    let score = changes
        .iter()
        .zip(patterns.weights())
        .map(|(&c, &w)| c * w as u64)
        .sum();
    (score, work)
}

/// Lower bound on any tree's parsimony score: for each pattern, (number of
/// distinct unambiguous states − 1), weighted. Useful for sanity checks and
/// as the classic bound in branch-and-bound parsimony.
pub fn parsimony_lower_bound(patterns: &PatternAlignment) -> u64 {
    let mut total = 0u64;
    for p in 0..patterns.num_patterns() {
        let mut union = 0u8;
        let mut count = 0u64;
        for taxon in 0..patterns.num_taxa() {
            let n = patterns.state(p, taxon);
            if let Some(s) = n.base_index() {
                let bit = 1u8 << s;
                if union & bit == 0 {
                    union |= bit;
                    count += 1;
                }
            }
        }
        total += count.saturating_sub(1) * patterns.weights()[p] as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::tree::Tree;

    fn quartet_01_23() -> Tree {
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.incident_edges(t.tip_of(2).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        t
    }

    fn quartet_02_13() -> Tree {
        let mut t = Tree::triplet(0, 2, 1);
        let e = t.incident_edges(t.tip_of(1).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        t
    }

    #[test]
    fn constant_alignment_scores_zero() {
        let a =
            Alignment::from_strings(&[("a", "AAAA"), ("b", "AAAA"), ("c", "AAAA"), ("d", "AAAA")])
                .unwrap();
        let p = PatternAlignment::compress(&a);
        let (score, work) = fitch_score(&quartet_01_23(), &p);
        assert_eq!(score, 0);
        assert!(work.fitch_ops > 0);
    }

    #[test]
    fn single_informative_site_prefers_matching_topology() {
        // Pattern AABB: 1 change on ((0,1),(2,3)); 2 on ((0,2),(1,3)).
        let a = Alignment::from_strings(&[("a", "A"), ("b", "A"), ("c", "B"), ("d", "B")]);
        // 'B' is an IUPAC ambiguity code (C/G/T); use distinct plain bases.
        drop(a);
        let a = Alignment::from_strings(&[("a", "A"), ("b", "A"), ("c", "C"), ("d", "C")]).unwrap();
        let p = PatternAlignment::compress(&a);
        let (good, _) = fitch_score(&quartet_01_23(), &p);
        let (bad, _) = fitch_score(&quartet_02_13(), &p);
        assert_eq!(good, 1);
        assert_eq!(bad, 2);
    }

    #[test]
    fn weights_multiply_pattern_scores() {
        // Three copies of the informative column → score 3 vs 6.
        let a = Alignment::from_strings(&[("a", "AAA"), ("b", "AAA"), ("c", "CCC"), ("d", "CCC")])
            .unwrap();
        let p = PatternAlignment::compress(&a);
        assert_eq!(p.num_patterns(), 1);
        let (good, _) = fitch_score(&quartet_01_23(), &p);
        assert_eq!(good, 3);
    }

    #[test]
    fn ambiguity_is_free_to_explain() {
        // N can take any state, so a column A A N N needs no change.
        let a = Alignment::from_strings(&[("a", "A"), ("b", "A"), ("c", "N"), ("d", "N")]).unwrap();
        let p = PatternAlignment::compress(&a);
        let (score, _) = fitch_score(&quartet_02_13(), &p);
        assert_eq!(score, 0);
    }

    #[test]
    fn score_invariant_under_topologically_equal_constructions() {
        // Same topology built two ways gives the same score.
        let a = Alignment::from_strings(&[
            ("a", "ACGTTA"),
            ("b", "ACGATC"),
            ("c", "CCTTAA"),
            ("d", "GCTAAC"),
        ])
        .unwrap();
        let p = PatternAlignment::compress(&a);
        let t1 = quartet_01_23();
        let mut t2 = Tree::triplet(3, 2, 0);
        let e = t2.incident_edges(t2.tip_of(0).unwrap())[0];
        t2.insert_taxon(1, e).unwrap();
        assert_eq!(
            crate::bipartition::SplitSet::of_tree(&t1, 4),
            crate::bipartition::SplitSet::of_tree(&t2, 4)
        );
        assert_eq!(fitch_score(&t1, &p).0, fitch_score(&t2, &p).0);
    }

    #[test]
    fn lower_bound_holds_on_random_like_data() {
        let a = Alignment::from_strings(&[
            ("a", "ACGTACGTAC"),
            ("b", "ACCTACGAAC"),
            ("c", "CCGTTCGTAG"),
            ("d", "GCGAACTTAC"),
            ("e", "GCGAACTTCC"),
        ])
        .unwrap();
        let p = PatternAlignment::compress(&a);
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.incident_edges(t.tip_of(2).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        let e = t.incident_edges(t.tip_of(3).unwrap())[0];
        t.insert_taxon(4, e).unwrap();
        let (score, _) = fitch_score(&t, &p);
        assert!(score >= parsimony_lower_bound(&p));
    }

    #[test]
    fn fitch_work_scales_with_patterns_and_taxa() {
        let small =
            Alignment::from_strings(&[("a", "AC"), ("b", "AG"), ("c", "CT"), ("d", "GG")]).unwrap();
        let ps = PatternAlignment::compress(&small);
        let (_, w4) = fitch_score(&quartet_01_23(), &ps);
        // Add a taxon: more internal nodes → more ops.
        let big = Alignment::from_strings(&[
            ("a", "AC"),
            ("b", "AG"),
            ("c", "CT"),
            ("d", "GG"),
            ("e", "TT"),
        ])
        .unwrap();
        let pb = PatternAlignment::compress(&big);
        let mut t5 = quartet_01_23();
        let e = t5.incident_edges(t5.tip_of(3).unwrap())[0];
        t5.insert_taxon(4, e).unwrap();
        let (_, w5) = fitch_score(&t5, &pb);
        assert!(w5.fitch_ops > w4.fitch_ops);
    }
}
