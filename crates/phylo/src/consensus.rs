//! Majority-rule consensus trees.
//!
//! After analyzing many random addition orders, a biologist compares the
//! best trees to determine a consensus (paper §2, citing Jermiin, Olsen &
//! Easteal 1997). The majority-rule consensus contains exactly the splits
//! present in more than half of the input trees; it is in general
//! multifurcating, so it is returned as a Newick AST rather than a binary
//! [`Tree`].

use crate::bipartition::{Bipartition, SplitCounter};
use crate::error::PhyloError;
use crate::newick::NewickNode;
use crate::tree::Tree;

/// A consensus split with its support.
#[derive(Debug, Clone, PartialEq)]
pub struct SupportedSplit {
    /// The split itself.
    pub split: Bipartition,
    /// Number of input trees containing it.
    pub count: usize,
    /// `count / num_trees`.
    pub support: f64,
}

/// Result of a consensus computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Consensus {
    /// Splits above the threshold, most supported first.
    pub splits: Vec<SupportedSplit>,
    /// Number of input trees.
    pub num_trees: usize,
    /// The consensus tree (multifurcating where support is lacking);
    /// internal labels carry the support percentage.
    pub tree: NewickNode,
}

/// Compute the majority-rule consensus (`fraction = 0.5`) or any stricter
/// threshold of a set of trees over the same `num_taxa` taxa.
///
/// All splits above a threshold ≥ 0.5 are pairwise compatible, so they
/// always assemble into a tree.
pub fn consensus(
    trees: &[Tree],
    num_taxa: usize,
    fraction: f64,
    names: &[String],
) -> Result<Consensus, PhyloError> {
    let mut acc = ConsensusAccumulator::new(num_taxa, fraction, names.to_vec())?;
    for t in trees {
        acc.add_tree(t)?;
    }
    acc.consensus()
}

/// An online majority-rule consensus: trees stream in one at a time (in any
/// order — the result is order-independent), and [`consensus`](ConsensusAccumulator::consensus)
/// snapshots the current consensus at any point. This is what lets a jumble
/// farm publish the consensus the moment the last jumble lands, instead of
/// re-walking every stored tree.
#[derive(Debug, Clone)]
pub struct ConsensusAccumulator {
    counter: SplitCounter,
    num_taxa: usize,
    fraction: f64,
    names: Vec<String>,
}

impl ConsensusAccumulator {
    /// An empty accumulator over `num_taxa` taxa with the given support
    /// threshold (≥ 0.5, or the selected splits may be incompatible).
    pub fn new(
        num_taxa: usize,
        fraction: f64,
        names: Vec<String>,
    ) -> Result<ConsensusAccumulator, PhyloError> {
        if fraction < 0.5 {
            return Err(PhyloError::InvalidTreeOp(
                "consensus threshold below 0.5 can produce incompatible splits".into(),
            ));
        }
        Ok(ConsensusAccumulator {
            counter: SplitCounter::new(),
            num_taxa,
            fraction,
            names,
        })
    }

    /// Fold one tree into the running bipartition counts.
    pub fn add_tree(&mut self, tree: &Tree) -> Result<(), PhyloError> {
        if tree.num_tips() != self.num_taxa {
            return Err(PhyloError::InvalidTreeOp(format!(
                "tree has {} taxa, expected {}",
                tree.num_tips(),
                self.num_taxa
            )));
        }
        self.counter.add_tree(tree, self.num_taxa);
        Ok(())
    }

    /// Trees accumulated so far.
    pub fn num_trees(&self) -> usize {
        self.counter.num_trees()
    }

    /// Snapshot the consensus of everything accumulated so far. Agrees
    /// exactly with the batch [`consensus`] of the same trees.
    pub fn consensus(&self) -> Result<Consensus, PhyloError> {
        let num_trees = self.counter.num_trees();
        if num_trees == 0 {
            return Err(PhyloError::InvalidTreeOp("consensus of zero trees".into()));
        }
        let splits: Vec<SupportedSplit> = self
            .counter
            .splits_above(self.fraction)
            .into_iter()
            .map(|(split, count)| SupportedSplit {
                split,
                count,
                support: count as f64 / num_trees as f64,
            })
            .collect();
        let tree = assemble(&splits, self.num_taxa, num_trees, &self.names);
        Ok(Consensus {
            splits,
            num_trees,
            tree,
        })
    }
}

/// Assemble compatible splits into a rooted multifurcating AST.
///
/// Standard construction: treat the taxon-0-free side of each split as a
/// cluster; nest clusters by containment (they are laminar because they are
/// pairwise compatible and all exclude taxon 0).
fn assemble(
    splits: &[SupportedSplit],
    num_taxa: usize,
    num_trees: usize,
    names: &[String],
) -> NewickNode {
    let name_of =
        |t: usize| -> String { names.get(t).cloned().unwrap_or_else(|| format!("taxon{t}")) };
    // Order clusters by increasing size: the splits are pairwise
    // compatible and all exclude taxon 0, so they form a laminar family —
    // processing children before parents lets each parent collect its
    // already-assembled child clusters.
    let mut clusters: Vec<(Vec<usize>, usize)> = splits
        .iter()
        .map(|s| {
            (
                s.split.side_taxa().iter().map(|&t| t as usize).collect(),
                s.count,
            )
        })
        .collect();
    clusters.sort_by_key(|(c, _)| c.len());

    // node_of[t] = current AST index owning taxon t's subtree.
    #[derive(Debug)]
    struct Build {
        node: NewickNode,
    }
    // Start with each taxon as its own top-level node.
    let mut pool: Vec<Option<Build>> = (0..num_taxa)
        .map(|t| {
            Some(Build {
                node: NewickNode::leaf(name_of(t), None),
            })
        })
        .collect();
    let mut owner: Vec<usize> = (0..num_taxa).collect();

    for (cluster, count) in clusters {
        // Gather the distinct current owners of the cluster's taxa.
        let mut members: Vec<usize> = cluster.iter().map(|&t| owner[t]).collect();
        members.sort_unstable();
        members.dedup();
        let children: Vec<NewickNode> = members
            .iter()
            .map(|&m| pool[m].take().expect("owner must be live").node)
            .collect();
        let mut node = NewickNode::internal(children, None);
        node.name = Some(format!("{:.0}", 100.0 * count as f64 / num_trees as f64));
        let slot = pool.len();
        pool.push(Some(Build { node }));
        for &t in &cluster {
            owner[t] = slot;
        }
    }
    // Root: whatever owners remain (taxon 0 always remains at top level).
    let mut top: Vec<usize> = owner.clone();
    top.sort_unstable();
    top.dedup();
    let children: Vec<NewickNode> = top
        .into_iter()
        .filter_map(|m| pool[m].take().map(|b| b.node))
        .collect();
    NewickNode::internal(children, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::TaxonId;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    fn quartet(pair_with_3: TaxonId) -> Tree {
        // Tree where taxon 3 is sister to `pair_with_3`.
        let others: Vec<TaxonId> = (0..3).collect();
        let mut t = Tree::triplet(others[0], others[1], others[2]);
        let e = t.incident_edges(t.tip_of(pair_with_3).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        t
    }

    #[test]
    fn unanimous_trees_give_their_own_topology() {
        let trees = vec![quartet(2), quartet(2), quartet(2)];
        let c = consensus(&trees, 4, 0.5, &names(4)).unwrap();
        assert_eq!(c.splits.len(), 1);
        assert_eq!(c.splits[0].count, 3);
        assert!((c.splits[0].support - 1.0).abs() < 1e-12);
        assert_eq!(c.splits[0].split, Bipartition::from_side(&[2, 3], 4));
    }

    #[test]
    fn majority_wins() {
        let trees = vec![quartet(2), quartet(2), quartet(1)];
        let c = consensus(&trees, 4, 0.5, &names(4)).unwrap();
        assert_eq!(c.splits.len(), 1);
        assert_eq!(c.splits[0].count, 2);
    }

    #[test]
    fn no_majority_gives_star() {
        let trees = vec![quartet(0), quartet(1), quartet(2)];
        let c = consensus(&trees, 4, 0.5, &names(4)).unwrap();
        assert!(c.splits.is_empty());
        // Star tree: root with 4 leaf children.
        assert_eq!(c.tree.children.len(), 4);
        assert!(c.tree.children.iter().all(|ch| ch.is_leaf()));
    }

    #[test]
    fn consensus_tree_contains_all_taxa_once() {
        let trees = vec![quartet(2), quartet(2), quartet(0)];
        let c = consensus(&trees, 4, 0.5, &names(4)).unwrap();
        let mut leaves = c.tree.leaf_names();
        leaves.sort_unstable();
        assert_eq!(leaves, vec!["t0", "t1", "t2", "t3"]);
    }

    #[test]
    fn errors_on_empty_or_mismatched_input() {
        assert!(consensus(&[], 4, 0.5, &names(4)).is_err());
        let trees = vec![Tree::triplet(0, 1, 2)];
        assert!(consensus(&trees, 4, 0.5, &names(4)).is_err());
        assert!(consensus(&[quartet(2)], 4, 0.3, &names(4)).is_err());
    }

    #[test]
    fn nested_clusters_assemble() {
        // Caterpillar trees on 6 taxa agree on everything.
        let mut t = Tree::triplet(0, 1, 2);
        for taxon in 3..6 {
            let e = t.incident_edges(t.tip_of(taxon - 1).unwrap())[0];
            t.insert_taxon(taxon, e).unwrap();
        }
        let c = consensus(&[t.clone(), t.clone()], 6, 0.5, &names(6)).unwrap();
        assert_eq!(c.splits.len(), 3); // n-3 internal splits
                                       // Fully resolved: serialize and reparse as a binary tree via AST.
        let text = crate::newick::write(&c.tree);
        let ast = crate::newick::parse(&text).unwrap();
        let mut leaves = ast.leaf_names();
        leaves.sort_unstable();
        assert_eq!(leaves.len(), 6);
    }

    #[test]
    fn balanced_tree_with_sibling_clusters_assembles() {
        // Tree ((1,2),(3,4),(5,6),0): three sibling clusters under the
        // root — a parent collecting multiple child clusters (regression:
        // processing parents before children double-took pool slots).
        let mut t = Tree::triplet(0, 1, 3);
        let e = t.incident_edges(t.tip_of(1).unwrap())[0];
        t.insert_taxon(2, e).unwrap();
        let e = t.incident_edges(t.tip_of(3).unwrap())[0];
        t.insert_taxon(4, e).unwrap();
        let e = t.incident_edges(t.tip_of(4).unwrap())[0];
        t.insert_taxon(5, e).unwrap();
        let e = t.incident_edges(t.tip_of(5).unwrap())[0];
        t.insert_taxon(6, e).unwrap();
        t.check_valid().unwrap();
        let c = consensus(&[t.clone(), t], 7, 0.5, &names(7)).unwrap();
        assert_eq!(c.splits.len(), 4); // n - 3
        let mut leaves = c.tree.leaf_names();
        leaves.sort_unstable();
        assert_eq!(leaves.len(), 7);
        // Serializes and reparses cleanly.
        let text = crate::newick::write(&c.tree);
        crate::newick::parse(&text).unwrap();
    }

    #[test]
    fn accumulator_matches_batch_at_every_prefix() {
        let trees = [quartet(2), quartet(1), quartet(2), quartet(0), quartet(2)];
        let mut acc = ConsensusAccumulator::new(4, 0.5, names(4)).unwrap();
        for (i, t) in trees.iter().enumerate() {
            acc.add_tree(t).unwrap();
            let batch = consensus(&trees[..=i], 4, 0.5, &names(4)).unwrap();
            assert_eq!(acc.consensus().unwrap(), batch, "prefix of {} trees", i + 1);
        }
        assert_eq!(acc.num_trees(), 5);
    }

    #[test]
    fn accumulator_rejects_bad_input() {
        assert!(ConsensusAccumulator::new(4, 0.3, names(4)).is_err());
        let mut acc = ConsensusAccumulator::new(4, 0.5, names(4)).unwrap();
        assert!(acc.consensus().is_err(), "zero trees must be an error");
        assert!(acc.add_tree(&Tree::triplet(0, 1, 2)).is_err());
    }

    #[test]
    fn support_labels_on_internal_nodes() {
        let trees = vec![quartet(2), quartet(2), quartet(2), quartet(1)];
        let c = consensus(&trees, 4, 0.5, &names(4)).unwrap();
        let text = crate::newick::write(&c.tree);
        assert!(text.contains("75"), "support label missing from {text}");
    }
}
