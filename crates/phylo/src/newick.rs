//! Newick tree serialization.
//!
//! fastDNAml ships trees between the master, foreman, and workers as ASCII
//! tree strings; this module provides the parser and writer, plus the
//! conversions between the generic Newick AST (which tolerates rooted and
//! multifurcating trees, as consensus trees are) and the strictly binary
//! unrooted [`Tree`].

use crate::alignment::{Alignment, TaxonId};
use crate::error::PhyloError;
use crate::tree::{NodeId, Tree};

/// A node of a parsed Newick tree. Leaves have a `name` and no children;
/// internal nodes may also carry a label (ignored by [`ast_to_tree`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NewickNode {
    /// Leaf or internal label.
    pub name: Option<String>,
    /// Branch length to the parent (absent on the root).
    pub length: Option<f64>,
    /// Child subtrees; empty for a leaf.
    pub children: Vec<NewickNode>,
}

impl NewickNode {
    /// Construct a leaf.
    pub fn leaf(name: impl Into<String>, length: Option<f64>) -> NewickNode {
        NewickNode {
            name: Some(name.into()),
            length,
            children: Vec::new(),
        }
    }

    /// Construct an internal node.
    pub fn internal(children: Vec<NewickNode>, length: Option<f64>) -> NewickNode {
        NewickNode {
            name: None,
            length,
            children,
        }
    }

    /// Is this a leaf?
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// All leaf names in depth-first order.
    pub fn leaf_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(n) = stack.pop() {
            if n.is_leaf() {
                if let Some(name) = &n.name {
                    out.push(name.as_str());
                }
            } else {
                for c in n.children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }
}

/// Parse one Newick string (must end with `;`).
pub fn parse(text: &str) -> Result<NewickNode, PhyloError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let node = p.parse_node()?;
    p.skip_ws();
    p.expect(b';')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(PhyloError::Format(format!(
            "trailing characters after ';' at byte {}",
            p.pos
        )));
    }
    Ok(node)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), PhyloError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(PhyloError::Format(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_node(&mut self) -> Result<NewickNode, PhyloError> {
        self.skip_ws();
        let mut node = if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut children = vec![self.parse_node()?];
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        children.push(self.parse_node()?);
                    }
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    other => {
                        return Err(PhyloError::Format(format!(
                            "expected ',' or ')' at byte {}, found {other:?}",
                            self.pos
                        )))
                    }
                }
            }
            NewickNode {
                name: None,
                length: None,
                children,
            }
        } else {
            NewickNode {
                name: None,
                length: None,
                children: Vec::new(),
            }
        };
        // Optional label.
        let label = self.parse_label()?;
        if !label.is_empty() {
            node.name = Some(label);
        } else if node.is_leaf() {
            return Err(PhyloError::Format(format!(
                "leaf without a name at byte {}",
                self.pos
            )));
        }
        // Optional branch length.
        self.skip_ws();
        if self.peek() == Some(b':') {
            self.pos += 1;
            node.length = Some(self.parse_number()?);
        }
        Ok(node)
    }

    fn parse_label(&mut self) -> Result<String, PhyloError> {
        self.skip_ws();
        if self.peek() == Some(b'\'') {
            // Quoted label; '' is an escaped quote.
            self.pos += 1;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'\'') if self.bytes.get(self.pos + 1) == Some(&b'\'') => {
                        out.push('\'');
                        self.pos += 2;
                    }
                    Some(b'\'') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b) => {
                        out.push(b as char);
                        self.pos += 1;
                    }
                    None => {
                        return Err(PhyloError::Format("unterminated quoted label".into()));
                    }
                }
            }
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'(' | b')' | b',' | b':' | b';') || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_number(&mut self) -> Result<f64, PhyloError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        s.parse::<f64>()
            .map_err(|_| PhyloError::Format(format!("invalid branch length {s:?} at byte {start}")))
    }
}

/// Render a Newick AST as a string (with branch lengths where present).
pub fn write(node: &NewickNode) -> String {
    let mut out = String::new();
    write_node(node, &mut out);
    out.push(';');
    out
}

fn write_node(node: &NewickNode, out: &mut String) {
    if !node.children.is_empty() {
        out.push('(');
        for (i, c) in node.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node(c, out);
        }
        out.push(')');
    }
    if let Some(name) = &node.name {
        if name.chars().any(|c| "(),:;' \t".contains(c)) {
            out.push('\'');
            out.push_str(&name.replace('\'', "''"));
            out.push('\'');
        } else {
            out.push_str(name);
        }
    }
    if let Some(len) = node.length {
        out.push(':');
        // Enough digits to round-trip branch lengths through text exactly
        // like fastDNAml's %.6f, but without losing worker results.
        out.push_str(&format!("{len:.9}"));
    }
}

/// Convert an unrooted binary [`Tree`] into a Newick AST, rooting the
/// serialization at the internal node adjacent to the lowest-numbered taxon
/// (deterministic, so equal trees serialize identically).
pub fn tree_to_ast(tree: &Tree, names: &[String]) -> NewickNode {
    let name_of = |t: TaxonId| -> String {
        names
            .get(t as usize)
            .cloned()
            .unwrap_or_else(|| format!("taxon{t}"))
    };
    if tree.num_tips() == 2 {
        let mut tips: Vec<(NodeId, TaxonId)> = tree.tips().collect();
        tips.sort_by_key(|&(_, t)| t);
        let e = tree.edge_ids().next().expect("pair has an edge");
        let half = tree.length(e) / 2.0;
        return NewickNode::internal(
            vec![
                NewickNode::leaf(name_of(tips[0].1), Some(half)),
                NewickNode::leaf(name_of(tips[1].1), Some(half)),
            ],
            None,
        );
    }
    let lowest = tree
        .tips()
        .min_by_key(|&(_, t)| t)
        .expect("tree has tips")
        .0;
    let root = tree.neighbors(lowest).next().expect("tip has a neighbor").1;
    let mut children = Vec::with_capacity(3);
    for (edge, next) in tree.neighbors(root) {
        children.push(subtree_to_ast(tree, next, edge, &name_of));
    }
    NewickNode::internal(children, None)
}

fn subtree_to_ast(
    tree: &Tree,
    node: NodeId,
    via: crate::tree::EdgeId,
    name_of: &dyn Fn(TaxonId) -> String,
) -> NewickNode {
    let length = Some(tree.length(via));
    if let Some(taxon) = tree.taxon(node) {
        return NewickNode::leaf(name_of(taxon), length);
    }
    let mut children = Vec::with_capacity(2);
    for (edge, next) in tree.neighbors(node) {
        if edge != via {
            children.push(subtree_to_ast(tree, next, edge, name_of));
        }
    }
    NewickNode {
        name: None,
        length,
        children,
    }
}

/// Serialize a tree directly to a Newick string.
pub fn write_tree(tree: &Tree, names: &[String]) -> String {
    write(&tree_to_ast(tree, names))
}

/// Convert a Newick AST into an unrooted binary [`Tree`], resolving leaf
/// names through `resolve`. Rooted binary inputs (root with two children)
/// are unrooted by fusing the root's two branches; a trifurcating root maps
/// directly onto an internal node. Multifurcations elsewhere are rejected.
pub fn ast_to_tree(
    ast: &NewickNode,
    mut resolve: impl FnMut(&str) -> Result<TaxonId, PhyloError>,
) -> Result<Tree, PhyloError> {
    let mut tree = Tree::empty();
    match ast.children.len() {
        0 => Err(PhyloError::Format(
            "single-leaf Newick cannot form a tree".into(),
        )),
        1 => Err(PhyloError::Format(
            "root with a single child is not supported".into(),
        )),
        2 => {
            // Rooted: fuse the two root branches into one edge.
            let a = build_subtree(&mut tree, &ast.children[0], &mut resolve)?;
            let b = build_subtree(&mut tree, &ast.children[1], &mut resolve)?;
            let len = ast.children[0]
                .length
                .unwrap_or(crate::tree::DEFAULT_BRANCH_LENGTH / 2.0)
                + ast.children[1]
                    .length
                    .unwrap_or(crate::tree::DEFAULT_BRANCH_LENGTH / 2.0);
            tree.add_edge_raw(a, b, len);
            tree.check_valid()?;
            Ok(tree)
        }
        3 => {
            let center = tree.add_node_raw(None);
            for child in &ast.children {
                let sub = build_subtree(&mut tree, child, &mut resolve)?;
                let len = child.length.unwrap_or(crate::tree::DEFAULT_BRANCH_LENGTH);
                tree.add_edge_raw(center, sub, len);
            }
            tree.check_valid()?;
            Ok(tree)
        }
        n => Err(PhyloError::Format(format!(
            "root multifurcation of degree {n} is not a binary tree"
        ))),
    }
}

fn build_subtree(
    tree: &mut Tree,
    ast: &NewickNode,
    resolve: &mut impl FnMut(&str) -> Result<TaxonId, PhyloError>,
) -> Result<NodeId, PhyloError> {
    if ast.is_leaf() {
        let name = ast
            .name
            .as_deref()
            .ok_or_else(|| PhyloError::Format("leaf without a name".into()))?;
        return Ok(tree.add_node_raw(Some(resolve(name)?)));
    }
    if ast.children.len() != 2 {
        return Err(PhyloError::Format(format!(
            "internal multifurcation of degree {} is not binary",
            ast.children.len()
        )));
    }
    let node = tree.add_node_raw(None);
    for child in &ast.children {
        let sub = build_subtree(tree, child, resolve)?;
        let len = child.length.unwrap_or(crate::tree::DEFAULT_BRANCH_LENGTH);
        tree.add_edge_raw(node, sub, len);
    }
    Ok(node)
}

/// Parse a Newick string into a [`Tree`], resolving names via an alignment.
pub fn parse_tree(text: &str, alignment: &Alignment) -> Result<Tree, PhyloError> {
    let ast = parse(text)?;
    ast_to_tree(&ast, |name| alignment.taxon_id(name))
}

/// Parse a Newick string into a [`Tree`] using a plain label table.
pub fn parse_tree_with_names(text: &str, names: &[String]) -> Result<Tree, PhyloError> {
    let ast = parse(text)?;
    ast_to_tree(&ast, |name| {
        names
            .iter()
            .position(|n| n == name)
            .map(|i| i as TaxonId)
            .ok_or_else(|| PhyloError::UnknownTaxon(name.to_string()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn parses_simple_rooted() {
        let ast = parse("(a:1.0,b:2.0);").unwrap();
        assert_eq!(ast.children.len(), 2);
        assert_eq!(ast.children[0].name.as_deref(), Some("a"));
        assert_eq!(ast.children[1].length, Some(2.0));
    }

    #[test]
    fn parses_nested_with_internal_labels() {
        let ast = parse("((a:1,b:1)ab:0.5,c:2,d:1);").unwrap();
        assert_eq!(ast.children.len(), 3);
        assert_eq!(ast.children[0].name.as_deref(), Some("ab"));
        assert_eq!(ast.children[0].children.len(), 2);
    }

    #[test]
    fn parses_quoted_labels() {
        let ast = parse("('taxon one':1,'it''s':2);").unwrap();
        assert_eq!(ast.children[0].name.as_deref(), Some("taxon one"));
        assert_eq!(ast.children[1].name.as_deref(), Some("it's"));
    }

    #[test]
    fn parses_scientific_notation_lengths() {
        let ast = parse("(a:1e-3,b:2.5E2);").unwrap();
        assert_eq!(ast.children[0].length, Some(1e-3));
        assert_eq!(ast.children[1].length, Some(250.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("(a,b)").is_err()); // missing ;
        assert!(parse("(a,b);x").is_err()); // trailing junk
        assert!(parse("(a,);").is_err()); // unnamed leaf
        assert!(parse("a,b);").is_err());
        assert!(parse("(a:xyz,b);").is_err());
    }

    #[test]
    fn ast_roundtrip_through_text() {
        let text = "((a:1.000000000,b:2.500000000):0.100000000,c:3.000000000,d:0.010000000);";
        let ast = parse(text).unwrap();
        assert_eq!(write(&ast), text);
    }

    #[test]
    fn tree_roundtrip_triplet() {
        let t = Tree::triplet(0, 1, 2);
        let s = write_tree(&t, &names(3));
        let t2 = parse_tree_with_names(&s, &names(3)).unwrap();
        assert_eq!(t2.num_tips(), 3);
        t2.check_valid().unwrap();
    }

    #[test]
    fn tree_roundtrip_pair() {
        let mut t = Tree::pair(0, 1);
        let e = t.edge_ids().next().unwrap();
        t.set_length(e, 0.8);
        let s = write_tree(&t, &names(2));
        let t2 = parse_tree_with_names(&s, &names(2)).unwrap();
        assert_eq!(t2.num_tips(), 2);
        let e2 = t2.edge_ids().next().unwrap();
        assert!((t2.length(e2) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn tree_roundtrip_preserves_lengths() {
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.incident_edges(t.tip_of(1).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        let e = t.incident_edges(t.tip_of(3).unwrap())[0];
        t.insert_taxon(4, e).unwrap();
        // Give every edge a distinct length.
        for (i, e) in t.edge_ids().collect::<Vec<_>>().into_iter().enumerate() {
            t.set_length(e, 0.01 * (i + 1) as f64);
        }
        let total = t.total_length();
        let s = write_tree(&t, &names(5));
        let t2 = parse_tree_with_names(&s, &names(5)).unwrap();
        assert!((t2.total_length() - total).abs() < 1e-9);
        assert_eq!(t2.taxa(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rooted_binary_input_is_unrooted() {
        let nm = names(4);
        let t = parse_tree_with_names("((t0:1,t1:1):0.5,(t2:1,t3:1):0.5);", &nm).unwrap();
        t.check_valid().unwrap();
        assert_eq!(t.num_tips(), 4);
        // Root fusion: 0.5 + 0.5 edge.
        let internal: Vec<_> = t.internal_edges().collect();
        assert_eq!(internal.len(), 1);
        assert!((t.length(internal[0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multifurcation_rejected_for_tree() {
        let nm = names(5);
        assert!(parse_tree_with_names("(t0,t1,t2,t3);", &nm).is_err());
        assert!(parse_tree_with_names("((t0,t1,t2),t3,t4);", &nm).is_err());
    }

    #[test]
    fn unknown_name_rejected() {
        let nm = names(3);
        assert!(parse_tree_with_names("(t0:1,t1:1,zzz:1);", &nm).is_err());
    }

    #[test]
    fn deterministic_serialization() {
        let t = Tree::triplet(2, 0, 1);
        let s1 = write_tree(&t, &names(3));
        let s2 = write_tree(&t.clone(), &names(3));
        assert_eq!(s1, s2);
    }

    #[test]
    fn leaf_names_in_order() {
        let ast = parse("((a,b),c,d);").unwrap();
        assert_eq!(ast.leaf_names(), vec!["a", "b", "c", "d"]);
    }
}
