//! Nucleotide encoding with IUPAC ambiguity codes.
//!
//! fastDNAml encodes each alignment character as a 4-bit mask over the bases
//! `{A, C, G, T}`; an ambiguity code sets several bits and a gap or unknown
//! character sets all four (gaps are treated as missing data, exactly as the
//! paper notes — handling gaps as a fifth state is listed as future work).

use crate::error::PhyloError;
use serde::{Deserialize, Serialize};

/// Index of each unambiguous base in frequency vectors and likelihood arrays.
pub const A: usize = 0;
/// Index of cytosine.
pub const C: usize = 1;
/// Index of guanine.
pub const G: usize = 2;
/// Index of thymine (uracil in RNA input maps here too).
pub const T: usize = 3;

/// Number of nucleotide states.
pub const NUM_STATES: usize = 4;

/// One aligned character: a 4-bit set over `{A, C, G, T}`.
///
/// Bit `1 << A` means "A is compatible with the observation", and so on.
/// An unambiguous `A` is `0b0001`; `N`, `?`, `-`, `.` are all `0b1111`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Nucleotide(u8);

impl Nucleotide {
    /// Unambiguous adenine.
    pub const ADENINE: Nucleotide = Nucleotide(1 << A);
    /// Unambiguous cytosine.
    pub const CYTOSINE: Nucleotide = Nucleotide(1 << C);
    /// Unambiguous guanine.
    pub const GUANINE: Nucleotide = Nucleotide(1 << G);
    /// Unambiguous thymine.
    pub const THYMINE: Nucleotide = Nucleotide(1 << T);
    /// Fully ambiguous (gap, `N`, `?`): compatible with every base.
    pub const ANY: Nucleotide = Nucleotide(0b1111);

    /// Build from a raw 4-bit mask. Masks of zero are rejected: a site that
    /// is compatible with no base would force the tree likelihood to zero.
    pub fn from_mask(mask: u8) -> Result<Nucleotide, PhyloError> {
        if mask == 0 || mask > 0b1111 {
            return Err(PhyloError::Format(format!(
                "invalid nucleotide mask {mask:#06b}"
            )));
        }
        Ok(Nucleotide(mask))
    }

    /// The raw 4-bit mask.
    #[inline]
    pub fn mask(self) -> u8 {
        self.0
    }

    /// Parse one IUPAC character (case-insensitive; `U` is treated as `T`;
    /// `-`, `.`, `?`, `N`, and `X` are fully ambiguous).
    pub fn from_char(ch: char) -> Result<Nucleotide, PhyloError> {
        let mask = match ch.to_ascii_uppercase() {
            'A' => 0b0001,
            'C' => 0b0010,
            'G' => 0b0100,
            'T' | 'U' => 0b1000,
            'M' => 0b0011, // A or C
            'R' => 0b0101, // A or G (purines)
            'W' => 0b1001, // A or T
            'S' => 0b0110, // C or G
            'Y' => 0b1010, // C or T (pyrimidines)
            'K' => 0b1100, // G or T
            'V' => 0b0111, // not T
            'H' => 0b1011, // not G
            'D' => 0b1101, // not C
            'B' => 0b1110, // not A
            'N' | 'X' | '?' | '-' | '.' | 'O' => 0b1111,
            other => {
                return Err(PhyloError::InvalidCharacter {
                    position: 0,
                    ch: other,
                });
            }
        };
        Ok(Nucleotide(mask))
    }

    /// Canonical IUPAC character for this mask.
    pub fn to_char(self) -> char {
        match self.0 {
            0b0001 => 'A',
            0b0010 => 'C',
            0b0100 => 'G',
            0b1000 => 'T',
            0b0011 => 'M',
            0b0101 => 'R',
            0b1001 => 'W',
            0b0110 => 'S',
            0b1010 => 'Y',
            0b1100 => 'K',
            0b0111 => 'V',
            0b1011 => 'H',
            0b1101 => 'D',
            0b1110 => 'B',
            _ => 'N',
        }
    }

    /// Is exactly one base compatible?
    #[inline]
    pub fn is_unambiguous(self) -> bool {
        self.0.count_ones() == 1
    }

    /// Is every base compatible (gap / unknown)?
    #[inline]
    pub fn is_any(self) -> bool {
        self.0 == 0b1111
    }

    /// Whether base `state` (one of [`A`], [`C`], [`G`], [`T`]) is compatible.
    #[inline]
    pub fn allows(self, state: usize) -> bool {
        debug_assert!(state < NUM_STATES);
        self.0 & (1 << state) != 0
    }

    /// The single base index if unambiguous.
    pub fn base_index(self) -> Option<usize> {
        if self.is_unambiguous() {
            Some(self.0.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Iterate over the compatible base indices.
    pub fn compatible_bases(self) -> impl Iterator<Item = usize> {
        let mask = self.0;
        (0..NUM_STATES).filter(move |&s| mask & (1 << s) != 0)
    }

    /// Watson–Crick complement (ambiguity masks complement bitwise:
    /// `R` (A/G) becomes `Y` (T/C), `N` stays `N`).
    pub fn complement(self) -> Nucleotide {
        let m = self.0;
        let mut out = 0u8;
        if m & (1 << A) != 0 {
            out |= 1 << T;
        }
        if m & (1 << C) != 0 {
            out |= 1 << G;
        }
        if m & (1 << G) != 0 {
            out |= 1 << C;
        }
        if m & (1 << T) != 0 {
            out |= 1 << A;
        }
        Nucleotide(out)
    }

    /// Is the mask a purine-only set (subset of `{A, G}`)?
    pub fn is_purine(self) -> bool {
        self.0 & !((1 << A) | (1 << G)) == 0
    }

    /// Is the mask a pyrimidine-only set (subset of `{C, T}`)?
    pub fn is_pyrimidine(self) -> bool {
        self.0 & !((1 << C) | (1 << T)) == 0
    }
}

/// Parse a whole sequence string, reporting the offending position on error.
pub fn parse_sequence(s: &str) -> Result<Vec<Nucleotide>, PhyloError> {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .enumerate()
        .map(|(i, ch)| {
            Nucleotide::from_char(ch).map_err(|_| PhyloError::InvalidCharacter { position: i, ch })
        })
        .collect()
}

/// Render a sequence back to its IUPAC string.
pub fn sequence_to_string(seq: &[Nucleotide]) -> String {
    seq.iter().map(|n| n.to_char()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_unambiguous_bases() {
        assert_eq!(Nucleotide::from_char('a').unwrap(), Nucleotide::ADENINE);
        assert_eq!(Nucleotide::from_char('C').unwrap(), Nucleotide::CYTOSINE);
        assert_eq!(Nucleotide::from_char('g').unwrap(), Nucleotide::GUANINE);
        assert_eq!(Nucleotide::from_char('T').unwrap(), Nucleotide::THYMINE);
    }

    #[test]
    fn rna_u_maps_to_t() {
        assert_eq!(Nucleotide::from_char('U').unwrap(), Nucleotide::THYMINE);
        assert_eq!(Nucleotide::from_char('u').unwrap(), Nucleotide::THYMINE);
    }

    #[test]
    fn gaps_and_unknowns_are_fully_ambiguous() {
        for ch in ['-', '.', '?', 'N', 'n', 'X'] {
            assert_eq!(
                Nucleotide::from_char(ch).unwrap(),
                Nucleotide::ANY,
                "char {ch:?}"
            );
        }
    }

    #[test]
    fn every_iupac_roundtrips_through_char() {
        for ch in "ACGTMRWSYKVHDBN".chars() {
            let n = Nucleotide::from_char(ch).unwrap();
            assert_eq!(n.to_char(), ch);
            assert_eq!(Nucleotide::from_char(n.to_char()).unwrap(), n);
        }
    }

    #[test]
    fn invalid_characters_rejected() {
        assert!(Nucleotide::from_char('Z').is_err());
        assert!(Nucleotide::from_char('1').is_err());
        assert!(Nucleotide::from_char('*').is_err());
    }

    #[test]
    fn zero_mask_rejected() {
        assert!(Nucleotide::from_mask(0).is_err());
        assert!(Nucleotide::from_mask(16).is_err());
        assert!(Nucleotide::from_mask(0b1111).is_ok());
    }

    #[test]
    fn ambiguity_semantics() {
        let r = Nucleotide::from_char('R').unwrap();
        assert!(r.allows(A) && r.allows(G));
        assert!(!r.allows(C) && !r.allows(T));
        assert!(!r.is_unambiguous());
        assert!(r.is_purine());
        assert!(!r.is_pyrimidine());
        let y = Nucleotide::from_char('Y').unwrap();
        assert!(y.is_pyrimidine());
        assert_eq!(r.complement(), y);
    }

    #[test]
    fn complement_is_involutive() {
        for mask in 1..=15u8 {
            let n = Nucleotide::from_mask(mask).unwrap();
            assert_eq!(n.complement().complement(), n);
        }
    }

    #[test]
    fn base_index_only_for_unambiguous() {
        assert_eq!(Nucleotide::ADENINE.base_index(), Some(A));
        assert_eq!(Nucleotide::THYMINE.base_index(), Some(T));
        assert_eq!(Nucleotide::ANY.base_index(), None);
    }

    #[test]
    fn compatible_bases_matches_mask() {
        let v = Nucleotide::from_char('V').unwrap(); // not T
        let bases: Vec<usize> = v.compatible_bases().collect();
        assert_eq!(bases, vec![A, C, G]);
    }

    #[test]
    fn parse_sequence_skips_whitespace_and_reports_position() {
        let seq = parse_sequence("AC GT\nRY").unwrap();
        assert_eq!(seq.len(), 6);
        assert_eq!(sequence_to_string(&seq), "ACGTRY");
        let err = parse_sequence("ACZT").unwrap_err();
        assert_eq!(
            err,
            PhyloError::InvalidCharacter {
                position: 2,
                ch: 'Z'
            }
        );
    }
}
