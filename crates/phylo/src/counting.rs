//! Counting unrooted bifurcating tree topologies.
//!
//! The paper's introduction motivates the HPC problem with the
//! super-exponential count of unrooted bifurcating trees on `n` taxa
//! (Felsenstein 1978):
//!
//! ```text
//!           (2n-5)!
//!   B(n) = ----------------
//!          (n-3)! · 2^(n-3)
//! ```
//!
//! equivalently the double factorial `(2n-5)!! = 3·5·7···(2n-5)`, giving
//! 2.8×10⁷⁴ for 50 taxa, 1.7×10¹⁸² for 100, and 4.2×10³⁰¹ for 150 — the
//! numbers quoted in §1.1. Values overflow `f64` past ~170 taxa, so the
//! main representation is the base-10 logarithm, with exact big-integer
//! digits available for modest `n`.

/// Base-10 logarithm of the number of unrooted bifurcating topologies on
/// `n ≥ 3` taxa. `B(3) = 1` (log = 0).
pub fn log10_num_unrooted_trees(n: usize) -> f64 {
    assert!(n >= 3, "unrooted bifurcating trees need at least 3 taxa");
    // log10 (2n-5)!! = Σ log10(2k-5) for k = 4..=n
    (4..=n).map(|k| ((2 * k - 5) as f64).log10()).sum()
}

/// The exact count as a decimal string, computed with schoolbook
/// big-integer multiplication (adequate to hundreds of taxa).
pub fn num_unrooted_trees_exact(n: usize) -> String {
    assert!(n >= 3);
    // Little-endian base-1e9 limbs.
    let mut limbs: Vec<u64> = vec![1];
    for k in 4..=n {
        let m = (2 * k - 5) as u64;
        let mut carry = 0u64;
        for limb in &mut limbs {
            let prod = *limb * m + carry;
            *limb = prod % 1_000_000_000;
            carry = prod / 1_000_000_000;
        }
        while carry > 0 {
            limbs.push(carry % 1_000_000_000);
            carry /= 1_000_000_000;
        }
    }
    let mut s = String::new();
    for (i, limb) in limbs.iter().enumerate().rev() {
        if i == limbs.len() - 1 {
            s.push_str(&limb.to_string());
        } else {
            s.push_str(&format!("{limb:09}"));
        }
    }
    s
}

/// Scientific-notation rendering `m.mm × 10^e` of the count, usable for any
/// `n` (goes through the log form, so no overflow).
pub fn num_unrooted_trees_scientific(n: usize) -> (f64, i64) {
    let log = log10_num_unrooted_trees(n);
    let exponent = log.floor();
    let mantissa = 10f64.powf(log - exponent);
    (mantissa, exponent as i64)
}

/// Number of topologically distinct places to insert taxon `i` (1-based
/// count of taxa after the insertion) into a growing tree: `2i-5` — the
/// count the paper's step 3 dispatches to workers.
pub fn insertion_places(i: usize) -> usize {
    assert!(i >= 4);
    2 * i - 5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_counts_exact() {
        // B(3)=1, B(4)=3, B(5)=15, B(6)=105, B(7)=945, B(8)=10395
        assert_eq!(num_unrooted_trees_exact(3), "1");
        assert_eq!(num_unrooted_trees_exact(4), "3");
        assert_eq!(num_unrooted_trees_exact(5), "15");
        assert_eq!(num_unrooted_trees_exact(6), "105");
        assert_eq!(num_unrooted_trees_exact(7), "945");
        assert_eq!(num_unrooted_trees_exact(8), "10395");
    }

    #[test]
    fn log_matches_exact_for_small_n() {
        for n in 3..=20 {
            let exact = num_unrooted_trees_exact(n);
            let log_len = log10_num_unrooted_trees(n);
            assert_eq!(exact.len() as f64, log_len.floor() + 1.0, "n = {n}");
        }
    }

    #[test]
    fn paper_numbers_50_100_150() {
        // §1.1: "For 50 taxa the number of possible trees is 2.8 x 10^74;
        // for 100 taxa, 1.7 x 10^182; and for 150 taxa, 4.2 x 10^301."
        let (m50, e50) = num_unrooted_trees_scientific(50);
        assert_eq!(e50, 74);
        assert!((m50 - 2.8).abs() < 0.05, "mantissa for 50 taxa: {m50}");
        let (m100, e100) = num_unrooted_trees_scientific(100);
        assert_eq!(e100, 182);
        assert!((m100 - 1.7).abs() < 0.05, "mantissa for 100 taxa: {m100}");
        let (m150, e150) = num_unrooted_trees_scientific(150);
        assert_eq!(e150, 301);
        assert!((m150 - 4.2).abs() < 0.05, "mantissa for 150 taxa: {m150}");
    }

    #[test]
    fn exact_matches_scientific_at_50() {
        let exact = num_unrooted_trees_exact(50);
        assert_eq!(exact.len(), 75); // 2.8e74 has 75 digits
        assert!(exact.starts_with("28"));
    }

    #[test]
    fn recurrence_b_n_equals_places_times_b_n_minus_1() {
        // B(n) = (2n-5) · B(n-1): each tree on n-1 taxa has 2n-5 edges.
        for n in 5..=12 {
            let b_prev: u128 = num_unrooted_trees_exact(n - 1).parse().unwrap();
            let b: u128 = num_unrooted_trees_exact(n).parse().unwrap();
            assert_eq!(b, b_prev * insertion_places(n) as u128);
        }
    }

    #[test]
    #[should_panic]
    fn too_few_taxa_panics() {
        log10_num_unrooted_trees(2);
    }
}
