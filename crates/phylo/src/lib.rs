//! Phylogenetic substrate for the fastDNAml reproduction.
//!
//! This crate provides everything below the likelihood kernel and the search:
//!
//! * nucleotide encoding with full IUPAC ambiguity support ([`dna`]),
//! * aligned sequence collections and their I/O in PHYLIP and FASTA formats
//!   ([`alignment`], [`phylip`], [`fasta`]),
//! * site-pattern compression with weights ([`patterns`]),
//! * unrooted binary (bifurcating) trees with branch lengths ([`tree`]),
//! * Newick serialization ([`newick`]),
//! * the topological moves used by fastDNAml's search — taxon insertion and
//!   radius-limited subtree pruning and regrafting ([`ops`]),
//! * bipartition (split) extraction, topology identity, and Robinson–Foulds
//!   distances ([`bipartition`]),
//! * majority-rule consensus trees ([`consensus`]),
//! * exact and floating-point counts of unrooted tree topologies
//!   ([`counting`]),
//! * bootstrap resampling of alignment columns ([`bootstrap`]),
//! * the baseline comparators the paper's §3.2 discusses: Fitch parsimony
//!   scoring ([`parsimony`]) and neighbor joining ([`nj`]),
//! * outgroup and midpoint rooting — the "separate process" of §1.1 that
//!   happens after the unrooted search ([`rooting`]).

#![warn(missing_docs)]

pub mod alignment;
pub mod bipartition;
pub mod bootstrap;
pub mod consensus;
pub mod counting;
pub mod dna;
pub mod error;
pub mod fasta;
pub mod newick;
pub mod nj;
pub mod ops;
pub mod parsimony;
pub mod patterns;
pub mod phylip;
pub mod rooting;
pub mod tree;

pub use alignment::{Alignment, TaxonId};
pub use bipartition::{Bipartition, SplitSet};
pub use dna::Nucleotide;
pub use error::PhyloError;
pub use patterns::PatternAlignment;
pub use tree::{EdgeId, NodeId, Tree};
