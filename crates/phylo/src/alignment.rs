//! Aligned DNA sequence collections.

use crate::dna::{self, Nucleotide, NUM_STATES};
use crate::error::PhyloError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a taxon within an [`Alignment`] (and within every tree built
/// from it). Tips of a tree over an alignment carry these ids.
pub type TaxonId = u32;

/// An aligned set of DNA sequences: the program input.
///
/// All sequences have the same length; taxon names are unique. The alignment
/// is the single source of truth for taxon numbering — trees refer to taxa by
/// [`TaxonId`], which indexes into [`Alignment::names`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alignment {
    names: Vec<String>,
    /// `seqs[taxon][site]`
    seqs: Vec<Vec<Nucleotide>>,
    by_name: HashMap<String, TaxonId>,
}

impl Alignment {
    /// Build an alignment from `(name, sequence)` pairs.
    pub fn new(rows: Vec<(String, Vec<Nucleotide>)>) -> Result<Alignment, PhyloError> {
        if rows.is_empty() {
            return Err(PhyloError::Format("alignment has no sequences".into()));
        }
        let len = rows[0].1.len();
        if len == 0 {
            return Err(PhyloError::Format("alignment has zero sites".into()));
        }
        let mut names = Vec::with_capacity(rows.len());
        let mut seqs = Vec::with_capacity(rows.len());
        let mut by_name = HashMap::with_capacity(rows.len());
        for (name, seq) in rows {
            if seq.len() != len {
                return Err(PhyloError::RaggedAlignment {
                    taxon: name,
                    expected: len,
                    got: seq.len(),
                });
            }
            if by_name
                .insert(name.clone(), names.len() as TaxonId)
                .is_some()
            {
                return Err(PhyloError::DuplicateTaxon(name));
            }
            names.push(name);
            seqs.push(seq);
        }
        Ok(Alignment {
            names,
            seqs,
            by_name,
        })
    }

    /// Convenience constructor from `(name, IUPAC string)` pairs.
    pub fn from_strings(rows: &[(&str, &str)]) -> Result<Alignment, PhyloError> {
        Alignment::new(
            rows.iter()
                .map(|(n, s)| Ok((n.to_string(), dna::parse_sequence(s)?)))
                .collect::<Result<_, PhyloError>>()?,
        )
    }

    /// Number of taxa (sequences).
    pub fn num_taxa(&self) -> usize {
        self.names.len()
    }

    /// Number of aligned sites (columns).
    pub fn num_sites(&self) -> usize {
        self.seqs[0].len()
    }

    /// Taxon names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Name of one taxon.
    pub fn name(&self, taxon: TaxonId) -> &str {
        &self.names[taxon as usize]
    }

    /// Resolve a name to its id.
    pub fn taxon_id(&self, name: &str) -> Result<TaxonId, PhyloError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| PhyloError::UnknownTaxon(name.to_string()))
    }

    /// The full sequence of one taxon.
    pub fn sequence(&self, taxon: TaxonId) -> &[Nucleotide] {
        &self.seqs[taxon as usize]
    }

    /// One alignment column.
    pub fn column(&self, site: usize) -> impl Iterator<Item = Nucleotide> + '_ {
        self.seqs.iter().map(move |s| s[site])
    }

    /// Empirical base frequencies over the whole alignment.
    ///
    /// fastDNAml's default ("the base composition of the data is used as the
    /// equilibrium base frequencies"). Ambiguous characters contribute
    /// fractionally: a mask compatible with `m` bases adds `1/m` to each.
    /// Frequencies are floored at a small epsilon and renormalized so that a
    /// column of all-gaps data can never produce a zero frequency.
    pub fn empirical_frequencies(&self) -> [f64; NUM_STATES] {
        let mut counts = [0.0f64; NUM_STATES];
        for seq in &self.seqs {
            for n in seq {
                let m = n.mask().count_ones() as f64;
                for s in n.compatible_bases() {
                    counts[s] += 1.0 / m;
                }
            }
        }
        normalize_frequencies(counts)
    }

    /// Restrict the alignment to a subset of taxa (used in tests and for the
    /// paper's dataset trimming). Ids are renumbered in the given order.
    pub fn subset(&self, taxa: &[TaxonId]) -> Result<Alignment, PhyloError> {
        Alignment::new(
            taxa.iter()
                .map(|&t| {
                    if (t as usize) < self.names.len() {
                        Ok((
                            self.names[t as usize].clone(),
                            self.seqs[t as usize].clone(),
                        ))
                    } else {
                        Err(PhyloError::UnknownTaxon(format!("taxon id {t}")))
                    }
                })
                .collect::<Result<_, PhyloError>>()?,
        )
    }
}

/// Floor at epsilon and renormalize a frequency vector to sum to one.
pub fn normalize_frequencies(mut freqs: [f64; NUM_STATES]) -> [f64; NUM_STATES] {
    const MIN_FREQ: f64 = 1e-6;
    for f in &mut freqs {
        if *f < MIN_FREQ {
            *f = MIN_FREQ;
        }
    }
    let total: f64 = freqs.iter().sum();
    for f in &mut freqs {
        *f /= total;
    }
    freqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::{A, C, G, T};

    fn toy() -> Alignment {
        Alignment::from_strings(&[("alpha", "ACGT"), ("beta", "AGGT"), ("gamma", "ACGA")]).unwrap()
    }

    #[test]
    fn basic_dimensions() {
        let a = toy();
        assert_eq!(a.num_taxa(), 3);
        assert_eq!(a.num_sites(), 4);
        assert_eq!(a.name(0), "alpha");
        assert_eq!(a.taxon_id("gamma").unwrap(), 2);
    }

    #[test]
    fn unknown_and_duplicate_taxa_rejected() {
        let a = toy();
        assert!(matches!(
            a.taxon_id("delta"),
            Err(PhyloError::UnknownTaxon(_))
        ));
        let dup = Alignment::from_strings(&[("x", "AC"), ("x", "GT")]);
        assert!(matches!(dup, Err(PhyloError::DuplicateTaxon(_))));
    }

    #[test]
    fn ragged_rejected() {
        let r = Alignment::from_strings(&[("x", "ACG"), ("y", "AC")]);
        assert!(matches!(r, Err(PhyloError::RaggedAlignment { .. })));
    }

    #[test]
    fn empty_rejected() {
        assert!(Alignment::new(vec![]).is_err());
        assert!(Alignment::from_strings(&[("x", "")]).is_err());
    }

    #[test]
    fn column_access() {
        let a = toy();
        let col: Vec<char> = a.column(1).map(|n| n.to_char()).collect();
        assert_eq!(col, vec!['C', 'G', 'C']);
    }

    #[test]
    fn empirical_frequencies_sum_to_one_and_match_counts() {
        let a = Alignment::from_strings(&[("x", "AAAA"), ("y", "CCGG"), ("z", "TTTT")]).unwrap();
        let f = a.empirical_frequencies();
        let total: f64 = f.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // 4 A, 2 C, 2 G, 4 T out of 12 (epsilon flooring is negligible here)
        assert!((f[A] - 4.0 / 12.0).abs() < 1e-6);
        assert!((f[C] - 2.0 / 12.0).abs() < 1e-6);
        assert!((f[G] - 2.0 / 12.0).abs() < 1e-6);
        assert!((f[T] - 4.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    fn ambiguous_bases_count_fractionally() {
        let a = Alignment::from_strings(&[("x", "R")]).unwrap(); // A or G
        let f = a.empirical_frequencies();
        assert!((f[A] - f[G]).abs() < 1e-9);
        assert!(f[A] > 0.49);
        assert!(f[C] < 0.01 && f[T] < 0.01);
    }

    #[test]
    fn no_zero_frequencies_even_for_missing_bases() {
        let a = Alignment::from_strings(&[("x", "AAAA")]).unwrap();
        let f = a.empirical_frequencies();
        assert!(f.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn subset_renumbers() {
        let a = toy();
        let s = a.subset(&[2, 0]).unwrap();
        assert_eq!(s.num_taxa(), 2);
        assert_eq!(s.name(0), "gamma");
        assert_eq!(s.name(1), "alpha");
        assert!(a.subset(&[9]).is_err());
    }

    #[test]
    fn subset_rejects_duplicates() {
        let a = toy();
        assert!(matches!(
            a.subset(&[0, 0]),
            Err(PhyloError::DuplicateTaxon(_))
        ));
    }
}
