//! FASTA alignment I/O (convenience format alongside PHYLIP).

use crate::alignment::Alignment;
use crate::dna::{self, Nucleotide};
use crate::error::PhyloError;

/// Parse an aligned FASTA file. All records must have equal length.
pub fn parse(text: &str) -> Result<Alignment, PhyloError> {
    let mut rows: Vec<(String, Vec<Nucleotide>)> = Vec::new();
    let mut current: Option<(String, Vec<Nucleotide>)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some(done) = current.take() {
                rows.push(done);
            }
            let name = rest.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return Err(PhyloError::Format(format!(
                    "FASTA header with empty name at line {}",
                    lineno + 1
                )));
            }
            current = Some((name, Vec::new()));
        } else {
            match current.as_mut() {
                Some((_, seq)) => seq.extend(dna::parse_sequence(line)?),
                None => {
                    return Err(PhyloError::Format(format!(
                        "sequence data before any FASTA header at line {}",
                        lineno + 1
                    )))
                }
            }
        }
    }
    if let Some(done) = current.take() {
        rows.push(done);
    }
    Alignment::new(rows)
}

/// Write an alignment as FASTA with 70-column wrapping.
pub fn write(alignment: &Alignment) -> String {
    const WRAP: usize = 70;
    let mut out = String::new();
    for t in 0..alignment.num_taxa() as u32 {
        out.push('>');
        out.push_str(alignment.name(t));
        out.push('\n');
        let seq = alignment.sequence(t);
        for chunk in seq.chunks(WRAP) {
            out.extend(chunk.iter().map(|n| n.to_char()));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_fasta() {
        let a = parse(">x desc ignored\nACGT\n>y\nAC\nGT\n").unwrap();
        assert_eq!(a.num_taxa(), 2);
        assert_eq!(a.name(0), "x");
        assert_eq!(dna::sequence_to_string(a.sequence(1)), "ACGT");
    }

    #[test]
    fn rejects_data_before_header() {
        assert!(parse("ACGT\n>x\nACGT\n").is_err());
    }

    #[test]
    fn rejects_empty_name() {
        assert!(parse(">\nACGT\n").is_err());
    }

    #[test]
    fn rejects_unequal_lengths() {
        assert!(parse(">x\nACGT\n>y\nAC\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let a = Alignment::from_strings(&[("s1", &"ACGT".repeat(50)), ("s2", &"TGCA".repeat(50))])
            .unwrap();
        let b = parse(&write(&a)).unwrap();
        assert_eq!(a, b);
    }
}
