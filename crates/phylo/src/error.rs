//! Error type shared across the substrate.

use std::fmt;

/// Errors produced while parsing data files or manipulating trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhyloError {
    /// A sequence character was not a valid IUPAC nucleotide code.
    InvalidCharacter {
        /// Zero-based position of the offending character.
        position: usize,
        /// The character itself.
        ch: char,
    },
    /// A data file violated its format (PHYLIP, FASTA, or Newick).
    Format(String),
    /// Sequences in an alignment have differing lengths.
    RaggedAlignment {
        /// The taxon whose sequence has the wrong length.
        taxon: String,
        /// Length of the first sequence (the alignment's length).
        expected: usize,
        /// Length actually found.
        got: usize,
    },
    /// A taxon name was not found in the label table.
    UnknownTaxon(String),
    /// Two sequences share the same name.
    DuplicateTaxon(String),
    /// A tree operation was applied to an invalid node or edge.
    InvalidTreeOp(String),
}

impl fmt::Display for PhyloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyloError::InvalidCharacter { position, ch } => {
                write!(
                    f,
                    "invalid nucleotide character {ch:?} at position {position}"
                )
            }
            PhyloError::Format(msg) => write!(f, "format error: {msg}"),
            PhyloError::RaggedAlignment {
                taxon,
                expected,
                got,
            } => write!(
                f,
                "sequence for {taxon:?} has length {got}, expected {expected}"
            ),
            PhyloError::UnknownTaxon(name) => write!(f, "unknown taxon {name:?}"),
            PhyloError::DuplicateTaxon(name) => write!(f, "duplicate taxon {name:?}"),
            PhyloError::InvalidTreeOp(msg) => write!(f, "invalid tree operation: {msg}"),
        }
    }
}

impl std::error::Error for PhyloError {}
