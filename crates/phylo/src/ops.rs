//! Candidate-tree enumeration: the topological moves of the fastDNAml search.
//!
//! * [`for_each_insertion`] — step 3 of the paper: add the next taxon at
//!   each of the `2i-5` topologically distinct places.
//! * [`for_each_rearrangement`] — steps 4/5: move every subtree across up to
//!   `radius` internal vertices. `radius = 1` is the classic local
//!   rearrangement producing the `2i-6`-tree NNI neighbourhood; the paper's
//!   performance runs use `radius = 5`.
//!
//! Candidates are produced by in-place mutate/visit/revert so that
//! enumerating the tens of thousands of candidates of a 150-taxon
//! rearrangement round never clones the tree. Duplicated topologies
//! (the same rearranged tree is often reachable from several prune points)
//! are suppressed with the O(n) topology fingerprint.

use crate::alignment::TaxonId;
use crate::bipartition::topology_fingerprint;
use crate::tree::{EdgeId, NodeId, Tree};
use std::collections::HashSet;

/// Visit every tree obtained by inserting `taxon` into each edge of `tree`.
///
/// The callback receives the candidate tree and the index of the edge the
/// taxon was inserted into; the tree is restored after each visit. For a
/// tree with `i-1` tips this visits exactly `2(i-1)-3 = 2i-5` candidates
/// (all topologically distinct), matching the paper's step 3.
pub fn for_each_insertion(tree: &mut Tree, taxon: TaxonId, mut visit: impl FnMut(&Tree, usize)) {
    let edges: Vec<EdgeId> = tree.edge_ids().collect();
    for (i, &edge) in edges.iter().enumerate() {
        tree.insert_taxon(taxon, edge)
            .expect("enumerated edge must be live");
        visit(tree, i);
        tree.remove_taxon(taxon)
            .expect("just-inserted taxon must be removable");
    }
}

/// Number of insertion candidates for the `i`-th taxon (`2i-5`, paper §2).
pub fn insertion_count(taxa_after_insertion: usize) -> usize {
    2 * taxa_after_insertion - 5
}

/// One prune point for a rearrangement: the subtree on the `root` side of
/// the `root`–`attachment` edge is pruned and regrafted elsewhere.
///
/// Identified by *node* ids, not edge ids: node ids are stable across the
/// detach/attach cycles of earlier prune points (the single dissolved node
/// is always reallocated with its own id, LIFO), whereas edge ids permute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrunePoint {
    root: NodeId,
    attachment: NodeId,
}

/// Enumerate prune points: every directed edge whose far end is internal.
fn prune_points(tree: &Tree) -> Vec<PrunePoint> {
    let mut out = Vec::new();
    for e in tree.edge_ids() {
        let (a, b) = tree.endpoints(e);
        if tree.is_internal(b) {
            out.push(PrunePoint {
                root: a,
                attachment: b,
            });
        }
        if tree.is_internal(a) {
            out.push(PrunePoint {
                root: b,
                attachment: a,
            });
        }
    }
    out
}

/// Edges of `tree` whose distance from `origin` is between 1 and `radius`,
/// where edges adjacent to `origin` are at distance 1 (one vertex crossed).
fn edges_within_radius(tree: &Tree, origin: EdgeId, radius: usize) -> Vec<EdgeId> {
    let mut dist = vec![usize::MAX; tree.edge_capacity()];
    dist[origin.0 as usize] = 0;
    let mut frontier = vec![origin];
    let mut out = Vec::new();
    for d in 1..=radius {
        let mut next = Vec::new();
        for &e in &frontier {
            let (a, b) = tree.endpoints(e);
            for node in [a, b] {
                for (e2, _) in tree.neighbors(node) {
                    if dist[e2.0 as usize] == usize::MAX {
                        dist[e2.0 as usize] = d;
                        next.push(e2);
                        out.push(e2);
                    }
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    out
}

/// Visit every distinct tree obtained by pruning a subtree and regrafting it
/// across at most `radius` internal vertices (paper steps 4 and 5).
///
/// Each distinct topology is visited exactly once (deduplicated by
/// fingerprint); the original topology is never visited. The tree is
/// restored — including branch lengths — after enumeration. Returns the
/// number of candidates visited.
pub fn for_each_rearrangement(
    tree: &mut Tree,
    radius: usize,
    mut visit: impl FnMut(&Tree, usize),
) -> usize {
    if radius == 0 || tree.num_tips() < 4 {
        return 0;
    }
    let mut seen: HashSet<u128> = HashSet::new();
    seen.insert(topology_fingerprint(tree));
    let mut emitted = 0usize;
    for pp in prune_points(tree) {
        let pendant = tree
            .edge_between(pp.root, pp.attachment)
            .expect("prune point nodes must still be adjacent");
        // Record the two branch lengths around the dissolved node so the
        // final re-attach can restore them exactly.
        let around: Vec<(NodeId, f64)> = tree
            .neighbors(pp.attachment)
            .filter(|&(e, _)| e != pendant)
            .map(|(e, n)| (n, tree.length(e)))
            .collect();
        debug_assert_eq!(around.len(), 2);
        let sub = tree
            .detach(pendant, pp.root)
            .expect("prune point must be detachable");
        let targets = edges_within_radius(tree, sub.merged_edge, radius);
        let mut current = sub;
        for target in targets {
            let new_pendant = tree
                .attach(current, target)
                .expect("target edge must be live");
            let fp = topology_fingerprint(tree);
            if seen.insert(fp) {
                visit(tree, emitted);
                emitted += 1;
            }
            current = tree
                .detach(new_pendant, pp.root)
                .expect("candidate must be detachable");
        }
        // Restore the original attachment and its exact branch lengths. The
        // original merged edge is never a regraft target (distance 0), so it
        // is still alive here.
        let restored_pendant = tree
            .attach(current, sub.merged_edge)
            .expect("original position must be restorable");
        let p2 = tree.other_end(restored_pendant, pp.root);
        for (node, len) in around {
            let e = tree
                .edge_between(p2, node)
                .expect("restored node must reconnect to original neighbors");
            tree.set_length(e, len);
        }
        tree.set_length(restored_pendant, current.pendant_length);
    }
    emitted
}

/// A topological move against a specific base tree, identified by *node*
/// ids so it can be shipped between the search driver and evaluators and
/// re-applied to any structurally identical clone of the base tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMove {
    /// Insert `taxon` into the edge whose endpoints are `at` (paper step 3).
    Insertion {
        /// The taxon being added.
        taxon: TaxonId,
        /// Endpoints of the target edge in the base tree.
        at: (NodeId, NodeId),
    },
    /// Prune the subtree on the `root` side of the `root`–`attachment` edge
    /// and regraft it into the edge with endpoints `target` (paper step 4/5).
    Spr {
        /// Root node of the pruned subtree.
        root: NodeId,
        /// The internal node dissolved by the prune.
        attachment: NodeId,
        /// Endpoints of the regraft target edge (valid both in the base
        /// tree and in the pruned intermediate).
        target: (NodeId, NodeId),
    },
}

/// Apply a move to (a clone of) its base tree. Returns the new pendant edge
/// (the edge joining the inserted tip or regrafted subtree to the tree).
pub fn apply_move(tree: &mut Tree, mv: &TreeMove) -> Result<EdgeId, crate::error::PhyloError> {
    match *mv {
        TreeMove::Insertion { taxon, at } => {
            let edge = tree.edge_between(at.0, at.1).ok_or_else(|| {
                crate::error::PhyloError::InvalidTreeOp(format!(
                    "insertion target {at:?} is not an edge"
                ))
            })?;
            tree.insert_taxon(taxon, edge)
        }
        TreeMove::Spr {
            root,
            attachment,
            target,
        } => {
            let pendant = tree.edge_between(root, attachment).ok_or_else(|| {
                crate::error::PhyloError::InvalidTreeOp(format!(
                    "prune point {root:?}-{attachment:?} is not an edge"
                ))
            })?;
            let sub = tree.detach(pendant, root)?;
            let target_edge = tree.edge_between(target.0, target.1).ok_or_else(|| {
                crate::error::PhyloError::InvalidTreeOp(format!(
                    "regraft target {target:?} is not an edge"
                ))
            })?;
            tree.attach(sub, target_edge)
        }
    }
}

/// All insertion moves for `taxon`: one per edge of the base tree, in a
/// deterministic order (`2i-5` moves when the result has `i` taxa).
pub fn enumerate_insertion_moves(tree: &Tree, taxon: TaxonId) -> Vec<TreeMove> {
    tree.edge_ids()
        .map(|e| {
            let at = tree.endpoints(e);
            TreeMove::Insertion { taxon, at }
        })
        .collect()
}

/// All distinct SPR moves within `radius` vertices, deduplicated by the
/// resulting topology (first occurrence kept) and never producing the base
/// topology. Enumeration order is deterministic.
pub fn enumerate_spr_moves(tree: &Tree, radius: usize) -> Vec<TreeMove> {
    let mut moves = Vec::new();
    if radius == 0 || tree.num_tips() < 4 {
        return moves;
    }
    let mut work = tree.clone();
    let mut seen: HashSet<u128> = HashSet::new();
    seen.insert(topology_fingerprint(&work));
    for pp in prune_points(&work) {
        let pendant = work
            .edge_between(pp.root, pp.attachment)
            .expect("prune point nodes must be adjacent");
        let around: Vec<(NodeId, f64)> = work
            .neighbors(pp.attachment)
            .filter(|&(e, _)| e != pendant)
            .map(|(e, n)| (n, work.length(e)))
            .collect();
        let sub = work.detach(pendant, pp.root).expect("detachable");
        let targets = edges_within_radius(&work, sub.merged_edge, radius);
        let mut current = sub;
        for target in targets {
            let endpoints = work.endpoints(target);
            let new_pendant = work.attach(current, target).expect("attachable");
            if seen.insert(topology_fingerprint(&work)) {
                moves.push(TreeMove::Spr {
                    root: pp.root,
                    attachment: pp.attachment,
                    target: endpoints,
                });
            }
            current = work.detach(new_pendant, pp.root).expect("detachable");
        }
        let restored = work.attach(current, sub.merged_edge).expect("restorable");
        let p2 = work.other_end(restored, pp.root);
        for (node, len) in around {
            let e = work.edge_between(p2, node).expect("restored adjacency");
            work.set_length(e, len);
        }
    }
    moves
}

/// Number of distinct radius-1 rearrangements of a binary tree on `n ≥ 4`
/// taxa: the NNI neighbourhood size `2(n-3)` (the paper's `2i-6`).
pub fn nni_count(num_taxa: usize) -> usize {
    if num_taxa < 4 {
        0
    } else {
        2 * (num_taxa - 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartition::SplitSet;

    fn caterpillar(n: usize) -> Tree {
        let mut t = Tree::triplet(0, 1, 2);
        for taxon in 3..n as TaxonId {
            let e = t.incident_edges(t.tip_of(taxon - 1).unwrap())[0];
            t.insert_taxon(taxon, e).unwrap();
        }
        t
    }

    fn balanced8() -> Tree {
        // ((0,1),(2,3)),((4,5),(6,7)) style tree built by insertions.
        let mut t = Tree::triplet(0, 2, 4);
        for (new, next_to) in [(1u32, 0u32), (3, 2), (5, 4), (6, 0), (7, 6)] {
            let e = t.incident_edges(t.tip_of(next_to).unwrap())[0];
            t.insert_taxon(new, e).unwrap();
        }
        t
    }

    #[test]
    fn insertion_candidate_count_matches_2i_minus_5() {
        for n in [3usize, 4, 5, 8, 12] {
            let mut t = caterpillar(n);
            let mut count = 0;
            for_each_insertion(&mut t, n as TaxonId, |cand, _| {
                assert_eq!(cand.num_tips(), n + 1);
                count += 1;
            });
            assert_eq!(count, insertion_count(n + 1), "n = {n}");
            t.check_valid().unwrap();
            assert_eq!(t.num_tips(), n);
        }
    }

    #[test]
    fn insertion_candidates_all_distinct() {
        let mut t = caterpillar(6);
        let mut fps = HashSet::new();
        for_each_insertion(&mut t, 6, |cand, _| {
            assert!(fps.insert(topology_fingerprint(cand)));
        });
        assert_eq!(fps.len(), insertion_count(7));
    }

    #[test]
    fn insertion_restores_tree_exactly() {
        let mut t = caterpillar(5);
        for (i, e) in t.edge_ids().collect::<Vec<_>>().into_iter().enumerate() {
            t.set_length(e, 0.01 * (i + 1) as f64);
        }
        let before = crate::newick::write_tree(&t, &names(5));
        for_each_insertion(&mut t, 9, |_, _| {});
        // Arena ids may be recycled, but topology and lengths round-trip
        // exactly — the deterministic serialization proves it.
        assert_eq!(crate::newick::write_tree(&t, &names(5)), before);
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn radius_one_is_nni_neighbourhood() {
        for n in [4usize, 5, 6, 8, 10] {
            let mut t = caterpillar(n);
            let count = for_each_rearrangement(&mut t, 1, |cand, _| {
                cand.check_valid().unwrap();
                assert_eq!(cand.num_tips(), n);
            });
            assert_eq!(count, nni_count(n), "caterpillar n = {n}");
        }
        let mut t = balanced8();
        let count = for_each_rearrangement(&mut t, 1, |_, _| {});
        assert_eq!(count, nni_count(8), "balanced 8-taxon tree");
    }

    #[test]
    fn rearrangement_never_emits_original() {
        let mut t = balanced8();
        let original = topology_fingerprint(&t);
        for_each_rearrangement(&mut t, 3, |cand, _| {
            assert_ne!(topology_fingerprint(cand), original);
        });
    }

    #[test]
    fn rearrangement_candidates_are_distinct() {
        let mut t = balanced8();
        let mut fps = HashSet::new();
        let count = for_each_rearrangement(&mut t, 3, |cand, _| {
            assert!(
                fps.insert(topology_fingerprint(cand)),
                "duplicate candidate emitted"
            );
        });
        assert_eq!(fps.len(), count);
    }

    #[test]
    fn rearrangement_restores_tree_exactly() {
        let mut t = balanced8();
        for (i, e) in t.edge_ids().collect::<Vec<_>>().into_iter().enumerate() {
            t.set_length(e, 0.02 * (i + 1) as f64);
        }
        let before_splits = SplitSet::of_tree(&t, 8);
        let before_total = t.total_length();
        for radius in [1, 2, 5] {
            for_each_rearrangement(&mut t, radius, |_, _| {});
            t.check_valid().unwrap();
            assert_eq!(SplitSet::of_tree(&t, 8), before_splits, "radius {radius}");
            assert!(
                (t.total_length() - before_total).abs() < 1e-9,
                "radius {radius}"
            );
        }
    }

    #[test]
    fn larger_radius_superset_of_smaller() {
        let mut t = balanced8();
        let mut r1 = HashSet::new();
        for_each_rearrangement(&mut t, 1, |c, _| {
            r1.insert(topology_fingerprint(c));
        });
        let mut r3 = HashSet::new();
        for_each_rearrangement(&mut t, 3, |c, _| {
            r3.insert(topology_fingerprint(c));
        });
        assert!(r1.is_subset(&r3));
        assert!(r3.len() > r1.len());
    }

    #[test]
    fn radius_zero_and_tiny_trees_yield_nothing() {
        let mut t = balanced8();
        assert_eq!(for_each_rearrangement(&mut t, 0, |_, _| panic!()), 0);
        let mut t3 = Tree::triplet(0, 1, 2);
        assert_eq!(for_each_rearrangement(&mut t3, 5, |_, _| panic!()), 0);
    }

    #[test]
    fn huge_radius_covers_whole_spr_neighbourhood() {
        // With unlimited radius the neighbourhood is the full SPR set,
        // which for n = 5 has exactly 2(n-3)(2n-7) = 12 distinct
        // topologies (Allen & Steel 2001) — 12 of the 14 other trees.
        let mut t = caterpillar(5);
        let count = for_each_rearrangement(&mut t, 100, |_, _| {});
        assert_eq!(count, 12);
    }

    #[test]
    fn move_lists_match_visit_enumeration() {
        let mut t = balanced8();
        // Insertions.
        let moves = enumerate_insertion_moves(&t, 8);
        let mut visited = 0;
        for_each_insertion(&mut t, 8, |_, _| visited += 1);
        assert_eq!(moves.len(), visited);
        // SPRs: applying each move must reproduce the visited fingerprints.
        for radius in [1usize, 3] {
            let moves = enumerate_spr_moves(&t, radius);
            let mut visit_fps = Vec::new();
            for_each_rearrangement(&mut t, radius, |cand, _| {
                visit_fps.push(topology_fingerprint(cand));
            });
            assert_eq!(moves.len(), visit_fps.len(), "radius {radius}");
            for (mv, expected_fp) in moves.iter().zip(&visit_fps) {
                let mut clone = t.clone();
                apply_move(&mut clone, mv).unwrap();
                clone.check_valid().unwrap();
                assert_eq!(topology_fingerprint(&clone), *expected_fp);
            }
        }
    }

    #[test]
    fn apply_insertion_move() {
        let t = balanced8();
        let moves = enumerate_insertion_moves(&t, 9);
        assert_eq!(moves.len(), 13); // 2·8-3 edges
        let mut clone = t.clone();
        apply_move(&mut clone, &moves[0]).unwrap();
        assert_eq!(clone.num_tips(), 9);
        clone.check_valid().unwrap();
    }

    #[test]
    fn apply_move_rejects_stale_targets() {
        let t = balanced8();
        let bogus = TreeMove::Insertion {
            taxon: 9,
            at: (NodeId(0), NodeId(0)),
        };
        let mut clone = t.clone();
        assert!(apply_move(&mut clone, &bogus).is_err());
    }

    #[test]
    fn enumerate_spr_moves_leaves_tree_unchanged() {
        let t = balanced8();
        let before = topology_fingerprint(&t);
        let before_len = t.total_length();
        let _ = enumerate_spr_moves(&t, 4);
        assert_eq!(topology_fingerprint(&t), before);
        assert!((t.total_length() - before_len).abs() < 1e-12);
    }

    #[test]
    fn candidates_preserve_taxon_set() {
        let mut t = balanced8();
        let taxa = t.taxa();
        for_each_rearrangement(&mut t, 2, |cand, _| {
            assert_eq!(cand.taxa(), taxa);
        });
    }
}
