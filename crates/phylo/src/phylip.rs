//! PHYLIP alignment format, the native input format of fastDNAml.
//!
//! Both the *interleaved* and *sequential* layouts are supported, plus the
//! relaxed variant where names longer than ten characters are separated from
//! the sequence by whitespace. The writer emits strict interleaved PHYLIP.

use crate::alignment::Alignment;
use crate::dna::{self, Nucleotide};
use crate::error::PhyloError;

/// Classic PHYLIP fixed name-field width.
const NAME_WIDTH: usize = 10;

/// Parse a PHYLIP file, auto-detecting interleaved vs sequential layout.
///
/// The header line carries the number of taxa and the number of sites;
/// fastDNAml additionally allowed option characters on the header line,
/// which are ignored here.
pub fn parse(text: &str) -> Result<Alignment, PhyloError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| PhyloError::Format("empty PHYLIP file".into()))?;
    let mut parts = header.split_whitespace();
    let ntax: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PhyloError::Format("PHYLIP header: missing taxon count".into()))?;
    let nsites: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PhyloError::Format("PHYLIP header: missing site count".into()))?;
    if ntax == 0 || nsites == 0 {
        return Err(PhyloError::Format(
            "PHYLIP header: zero taxa or sites".into(),
        ));
    }

    let body: Vec<&str> = lines.collect();
    // Try sequential first only when it parses exactly; interleaved is the
    // fastDNAml default so prefer it on ambiguity.
    match parse_interleaved(&body, ntax, nsites) {
        Ok(a) => Ok(a),
        Err(interleaved_err) => parse_sequential(&body, ntax, nsites).map_err(|_| interleaved_err),
    }
}

/// Split one taxon line into (name, sequence characters).
///
/// Strict PHYLIP puts the name in the first ten columns; relaxed PHYLIP ends
/// the name at the first whitespace. We accept both: if the first
/// whitespace-delimited token is at most ten characters and the remainder
/// contains sequence characters, treat it as relaxed; otherwise take the
/// fixed-width field.
fn split_name_line(line: &str) -> Result<(String, String), PhyloError> {
    let trimmed = line.trim_end();
    if trimmed.is_empty() {
        return Err(PhyloError::Format(
            "unexpected blank line in taxon block".into(),
        ));
    }
    if let Some(ws) = trimmed.find(char::is_whitespace) {
        let (name, rest) = trimmed.split_at(ws);
        return Ok((name.trim().to_string(), rest.to_string()));
    }
    // No whitespace at all: fixed-width split.
    if trimmed.len() <= NAME_WIDTH {
        return Err(PhyloError::Format(format!(
            "taxon line too short: {trimmed:?}"
        )));
    }
    let (name, rest) = trimmed.split_at(NAME_WIDTH);
    Ok((name.trim().to_string(), rest.to_string()))
}

fn parse_interleaved(body: &[&str], ntax: usize, nsites: usize) -> Result<Alignment, PhyloError> {
    let mut names: Vec<String> = Vec::with_capacity(ntax);
    let mut seqs: Vec<Vec<Nucleotide>> = vec![Vec::with_capacity(nsites); ntax];
    let mut row = 0usize; // taxon receiving the next line
    let mut first_block = true;
    for &line in body {
        if line.trim().is_empty() {
            // Block separators; only valid between blocks.
            if row != 0 {
                return Err(PhyloError::Format(format!(
                    "interleaved block ended after {row} of {ntax} taxa"
                )));
            }
            continue;
        }
        if seqs[0].len() >= nsites && row == 0 {
            return Err(PhyloError::Format(
                "trailing data after full alignment".into(),
            ));
        }
        if first_block {
            let (name, seq_text) = split_name_line(line)?;
            names.push(name);
            seqs[row].extend(dna::parse_sequence(&seq_text)?);
        } else {
            seqs[row].extend(dna::parse_sequence(line)?);
        }
        row += 1;
        if row == ntax {
            row = 0;
            first_block = false;
        }
    }
    if names.len() != ntax {
        return Err(PhyloError::Format(format!(
            "expected {ntax} taxa, found {}",
            names.len()
        )));
    }
    for (i, s) in seqs.iter().enumerate() {
        if s.len() != nsites {
            return Err(PhyloError::RaggedAlignment {
                taxon: names[i].clone(),
                expected: nsites,
                got: s.len(),
            });
        }
    }
    Alignment::new(names.into_iter().zip(seqs).collect())
}

fn parse_sequential(body: &[&str], ntax: usize, nsites: usize) -> Result<Alignment, PhyloError> {
    let mut rows: Vec<(String, Vec<Nucleotide>)> = Vec::with_capacity(ntax);
    let mut current: Option<(String, Vec<Nucleotide>)> = None;
    for &line in body {
        if line.trim().is_empty() {
            continue;
        }
        match current.as_mut() {
            Some((_, seq)) if seq.len() < nsites => {
                seq.extend(dna::parse_sequence(line)?);
            }
            _ => {
                if let Some(done) = current.take() {
                    rows.push(done);
                }
                let (name, seq_text) = split_name_line(line)?;
                current = Some((name, dna::parse_sequence(&seq_text)?));
            }
        }
    }
    if let Some(done) = current.take() {
        rows.push(done);
    }
    if rows.len() != ntax {
        return Err(PhyloError::Format(format!(
            "expected {ntax} taxa, found {}",
            rows.len()
        )));
    }
    for (name, seq) in &rows {
        if seq.len() != nsites {
            return Err(PhyloError::RaggedAlignment {
                taxon: name.clone(),
                expected: nsites,
                got: seq.len(),
            });
        }
    }
    Alignment::new(rows)
}

/// Write an alignment as interleaved PHYLIP with 60-column blocks.
pub fn write(alignment: &Alignment) -> String {
    const BLOCK: usize = 60;
    let ntax = alignment.num_taxa();
    let nsites = alignment.num_sites();
    let mut out = format!("{ntax} {nsites}\n");
    let mut start = 0;
    while start < nsites {
        let end = (start + BLOCK).min(nsites);
        for t in 0..ntax {
            if start == 0 {
                let name = alignment.name(t as u32);
                // Pad to the classic field width; longer names get a single
                // separating space (relaxed PHYLIP, accepted by our parser).
                if name.len() >= NAME_WIDTH {
                    out.push_str(name);
                    out.push(' ');
                } else {
                    out.push_str(&format!("{name:<NAME_WIDTH$}"));
                }
            }
            let chunk: String = alignment.sequence(t as u32)[start..end]
                .iter()
                .map(|n| n.to_char())
                .collect();
            out.push_str(&chunk);
            out.push('\n');
        }
        out.push('\n');
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_strict_interleaved() {
        let text = "3 8\nalpha     ACGT\nbeta      AGGT\ngamma     ACGA\n\nTTTT\nCCCC\nGGGG\n";
        let a = parse(text).unwrap();
        assert_eq!(a.num_taxa(), 3);
        assert_eq!(a.num_sites(), 8);
        assert_eq!(dna::sequence_to_string(a.sequence(0)), "ACGTTTTT");
        assert_eq!(dna::sequence_to_string(a.sequence(2)), "ACGAGGGG");
    }

    #[test]
    fn parses_sequential() {
        let text = "2 8\nalpha ACGT\nACGT\nbeta  TTTT\nCCCC\n";
        let a = parse(text).unwrap();
        assert_eq!(a.num_sites(), 8);
        assert_eq!(dna::sequence_to_string(a.sequence(0)), "ACGTACGT");
        assert_eq!(dna::sequence_to_string(a.sequence(1)), "TTTTCCCC");
    }

    #[test]
    fn parses_fixed_width_names_without_space() {
        // Ten-character name directly abutting the sequence.
        let text = "1 4\nabcdefghijACGT\n";
        let a = parse(text).unwrap();
        assert_eq!(a.name(0), "abcdefghij");
        assert_eq!(dna::sequence_to_string(a.sequence(0)), "ACGT");
    }

    #[test]
    fn header_errors() {
        assert!(parse("").is_err());
        assert!(parse("x y\n").is_err());
        assert!(parse("0 5\n").is_err());
        assert!(parse("2\n").is_err());
    }

    #[test]
    fn wrong_taxon_count_rejected() {
        let text = "3 4\nalpha     ACGT\nbeta      AGGT\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn wrong_site_count_rejected() {
        let text = "2 5\nalpha     ACGT\nbeta      AGGT\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let a = Alignment::from_strings(&[
            ("taxon_one", "ACGTRYKMBD"),
            ("t2", "NNNN-ACGTA"),
            ("a_very_long_taxon_name", "ACACACACAC"),
        ])
        .unwrap();
        let text = write(&a);
        let b = parse(&text).unwrap();
        assert_eq!(a.names(), b.names());
        for t in 0..a.num_taxa() as u32 {
            // Gaps render as N (both fully ambiguous) — compare masks.
            assert_eq!(a.sequence(t), b.sequence(t), "taxon {t}");
        }
    }

    #[test]
    fn roundtrip_multi_block() {
        let long: String = "ACGT".repeat(40); // 160 sites → 3 blocks of 60
        let a = Alignment::from_strings(&[("x", &long), ("y", &long)]).unwrap();
        let b = parse(&write(&a)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rna_input_accepted() {
        let text = "2 4\nrna1      ACGU\nrna2      UUUU\n";
        let a = parse(text).unwrap();
        assert_eq!(dna::sequence_to_string(a.sequence(0)), "ACGT");
    }
}
