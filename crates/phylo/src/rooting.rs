//! Rooting unrooted trees.
//!
//! §1.1 of the paper: "the trees produced by mathematical methods are
//! unrooted bifurcating trees … The process of identifying a root for such
//! a tree is a separate process that takes place after determination of
//! the best unrooted tree." This module is that separate process: rooting
//! on the branch to an *outgroup* (the biological method — an outgroup
//! taxon or clade known to be outside the group of interest), or at the
//! *midpoint* of the longest tip-to-tip path (the method of last resort
//! when no outgroup is available). Both return rooted Newick ASTs, which
//! is what viewers and downstream rooted analyses consume.

use crate::alignment::TaxonId;
use crate::error::PhyloError;
use crate::newick::NewickNode;
use crate::tree::{EdgeId, NodeId, Tree};

/// Convert the subtree on the `node` side of `via` into a rooted AST.
fn subtree_ast(tree: &Tree, node: NodeId, via: EdgeId, names: &[String]) -> NewickNode {
    let length = Some(tree.length(via));
    if let Some(taxon) = tree.taxon(node) {
        let name = names
            .get(taxon as usize)
            .cloned()
            .unwrap_or_else(|| format!("taxon{taxon}"));
        return NewickNode::leaf(name, length);
    }
    let children = tree
        .neighbors(node)
        .filter(|&(e, _)| e != via)
        .map(|(e, next)| subtree_ast(tree, next, e, names))
        .collect();
    NewickNode {
        name: None,
        length,
        children,
    }
}

/// Root the tree on edge `e`, placing the root `fraction` of the way from
/// endpoint `a` toward endpoint `b` (`0.5` = the middle of the branch).
fn root_on_edge(tree: &Tree, e: EdgeId, fraction: f64, names: &[String]) -> NewickNode {
    let (a, b) = tree.endpoints(e);
    let len = tree.length(e);
    let mut left = subtree_ast(tree, a, e, names);
    let mut right = subtree_ast(tree, b, e, names);
    left.length = Some(len * fraction);
    right.length = Some(len * (1.0 - fraction));
    NewickNode::internal(vec![left, right], None)
}

/// Root the tree on the branch separating `outgroup` from everything else.
///
/// The outgroup must form a clade (its taxa must sit on one side of some
/// branch); a single taxon always qualifies via its pendant edge. The root
/// is placed at the middle of that branch.
pub fn root_at_outgroup(
    tree: &Tree,
    outgroup: &[TaxonId],
    names: &[String],
) -> Result<NewickNode, PhyloError> {
    if outgroup.is_empty() {
        return Err(PhyloError::InvalidTreeOp("empty outgroup".into()));
    }
    let mut wanted: Vec<TaxonId> = outgroup.to_vec();
    wanted.sort_unstable();
    wanted.dedup();
    let all = tree.taxa();
    if wanted.iter().any(|t| !all.contains(t)) {
        return Err(PhyloError::InvalidTreeOp(
            "outgroup taxon not in tree".into(),
        ));
    }
    if wanted.len() >= all.len() {
        return Err(PhyloError::InvalidTreeOp(
            "outgroup cannot be the whole tree".into(),
        ));
    }
    for e in tree.edge_ids() {
        let (a, _) = tree.endpoints(e);
        let side = tree.subtree_taxa(e, a);
        if side == wanted || complement(&all, &side) == wanted {
            return Ok(root_on_edge(tree, e, 0.5, names));
        }
    }
    Err(PhyloError::InvalidTreeOp(format!(
        "outgroup {wanted:?} is not a clade of this tree"
    )))
}

fn complement(all: &[TaxonId], side: &[TaxonId]) -> Vec<TaxonId> {
    all.iter().copied().filter(|t| !side.contains(t)).collect()
}

/// Root the tree at the midpoint of the longest tip-to-tip path.
pub fn midpoint_root(tree: &Tree, names: &[String]) -> Result<NewickNode, PhyloError> {
    if tree.num_tips() < 2 {
        return Err(PhyloError::InvalidTreeOp(
            "midpoint rooting needs two tips".into(),
        ));
    }
    // Distances from every tip to every node, tracking the first edge of
    // the path so the midpoint edge can be located.
    let mut best: Option<(f64, NodeId, NodeId)> = None; // (dist, tip_a, tip_b)
    let tips: Vec<NodeId> = tree.tips().map(|(n, _)| n).collect();
    let dist_from = |start: NodeId| -> Vec<f64> {
        let mut dist = vec![f64::NAN; tree.node_capacity()];
        dist[start.0 as usize] = 0.0;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for (e, v) in tree.neighbors(u) {
                if dist[v.0 as usize].is_nan() {
                    dist[v.0 as usize] = dist[u.0 as usize] + tree.length(e);
                    stack.push(v);
                }
            }
        }
        dist
    };
    for &a in &tips {
        let d = dist_from(a);
        for &b in &tips {
            if b == a {
                continue;
            }
            let len = d[b.0 as usize];
            if best.map(|(bd, _, _)| len > bd).unwrap_or(true) {
                best = Some((len, a, b));
            }
        }
    }
    let (diameter, tip_a, tip_b) = best.expect("two tips exist");
    // Walk from tip_a toward tip_b accumulating length until the midpoint
    // falls inside an edge.
    let d_from_b = dist_from(tip_b);
    let mut node = tip_a;
    let mut walked = 0.0;
    loop {
        // The neighbor on the path to tip_b strictly decreases d_from_b.
        let (edge, next) = tree
            .neighbors(node)
            .find(|&(e, v)| {
                (d_from_b[v.0 as usize] + tree.length(e) - d_from_b[node.0 as usize]).abs() < 1e-9
            })
            .ok_or_else(|| PhyloError::InvalidTreeOp("midpoint walk lost the path".into()))?;
        let len = tree.length(edge);
        if walked + len >= diameter / 2.0 - 1e-12 {
            let into = (diameter / 2.0 - walked).clamp(0.0, len);
            let fraction = if len > 0.0 { into / len } else { 0.5 };
            // root_on_edge measures from endpoint `a` of the edge; orient.
            let (ea, _) = tree.endpoints(edge);
            let frac_from_a = if ea == node { fraction } else { 1.0 - fraction };
            return Ok(root_on_edge(tree, edge, frac_from_a, names));
        }
        walked += len;
        node = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    /// ((t0,t1),(t2,t3)) with distinct lengths.
    fn quartet() -> Tree {
        let nm = names(4);
        newick::parse_tree_with_names("((t0:0.1,t1:0.2):0.05,(t2:0.3,t3:0.4):0.05);", &nm).unwrap()
    }

    #[test]
    fn single_taxon_outgroup_roots_on_its_pendant() {
        let t = quartet();
        let rooted = root_at_outgroup(&t, &[3], &names(4)).unwrap();
        assert_eq!(rooted.children.len(), 2);
        // One side is exactly t3.
        let leaves: Vec<Vec<&str>> = rooted.children.iter().map(|c| c.leaf_names()).collect();
        assert!(leaves.contains(&vec!["t3"]));
        // Pendant length 0.4 split in half.
        let t3_side = rooted
            .children
            .iter()
            .find(|c| c.leaf_names() == vec!["t3"])
            .unwrap();
        assert!((t3_side.length.unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn clade_outgroup_roots_on_the_internal_branch() {
        let t = quartet();
        let rooted = root_at_outgroup(&t, &[2, 3], &names(4)).unwrap();
        let mut sides: Vec<Vec<&str>> = rooted.children.iter().map(|c| c.leaf_names()).collect();
        sides.iter_mut().for_each(|s| s.sort_unstable());
        assert!(sides.contains(&vec!["t2", "t3"]));
        assert!(sides.contains(&vec!["t0", "t1"]));
        // Internal branch 0.05+0.05 split across the root.
        let total: f64 = rooted.children.iter().map(|c| c.length.unwrap()).sum();
        assert!((total - 0.1).abs() < 1e-12);
    }

    #[test]
    fn non_clade_outgroup_rejected() {
        let t = quartet();
        assert!(root_at_outgroup(&t, &[0, 2], &names(4)).is_err());
        assert!(root_at_outgroup(&t, &[], &names(4)).is_err());
        assert!(root_at_outgroup(&t, &[0, 1, 2, 3], &names(4)).is_err());
        assert!(root_at_outgroup(&t, &[9], &names(4)).is_err());
    }

    #[test]
    fn rooted_ast_serializes_and_preserves_leaves() {
        let t = quartet();
        let rooted = root_at_outgroup(&t, &[0], &names(4)).unwrap();
        let text = newick::write(&rooted);
        let back = newick::parse(&text).unwrap();
        let mut leaves = back.leaf_names();
        leaves.sort_unstable();
        assert_eq!(leaves, vec!["t0", "t1", "t2", "t3"]);
    }

    #[test]
    fn midpoint_root_bisects_the_diameter() {
        // t3's pendant dominates: diameter t0→t3 = 0.5 + 1.0 + 3.0 = 4.5
        // (the rooted input's two 0.5 root branches fuse to one internal
        // edge of 1.0), so the midpoint at 2.25 falls 0.75 into t3's
        // pendant and t3 hangs directly off the root at depth 2.25.
        let nm = names(4);
        let t = newick::parse_tree_with_names("((t0:0.5,t1:0.1):0.5,(t2:0.1,t3:3.0):0.5);", &nm)
            .unwrap();
        let rooted = midpoint_root(&t, &nm).unwrap();
        assert_eq!(rooted.children.len(), 2);
        let t3_side = rooted
            .children
            .iter()
            .find(|c| c.leaf_names() == vec!["t3"])
            .expect("t3 must hang directly off the root");
        assert!(
            (t3_side.length.unwrap() - 2.25).abs() < 1e-9,
            "{:?}",
            t3_side.length
        );
        // The two root-to-farthest-leaf depths are equal (both = 2.0).
        fn depth(node: &NewickNode) -> f64 {
            node.length.unwrap_or(0.0) + node.children.iter().map(depth).fold(0.0, f64::max)
        }
        let d: Vec<f64> = rooted.children.iter().map(depth).collect();
        assert!((d[0] - d[1]).abs() < 1e-9, "unbalanced depths {d:?}");
    }

    #[test]
    fn midpoint_root_on_a_pair() {
        let nm = names(2);
        let t = newick::parse_tree_with_names("(t0:0.3,t1:0.5);", &nm).unwrap();
        let rooted = midpoint_root(&t, &nm).unwrap();
        let total: f64 = rooted.children.iter().map(|c| c.length.unwrap()).sum();
        assert!((total - 0.8).abs() < 1e-9);
        let lens: Vec<f64> = rooted.children.iter().map(|c| c.length.unwrap()).collect();
        assert!(
            (lens[0] - lens[1]).abs() < 1e-9,
            "midpoint splits evenly: {lens:?}"
        );
    }
}
