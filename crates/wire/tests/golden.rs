//! Golden-bytes fixtures pinning binary layout version 1.
//!
//! These hex strings are the contract: a peer built from any commit after
//! this one must produce exactly these bytes for these messages, or fleets
//! mixing builds would silently mis-decode each other mid-rollout. If a
//! change here is intentional, bump `fdml_wire::BINARY_VERSION` so old
//! decoders reject the new layout instead of misreading it — then, and
//! only then, regenerate the fixtures.

use fdml_comm::message::{Message, MonitorEvent, TaskPayload, TreeEdit};
use fdml_wire::{decode_message, encode_message};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn fixtures() -> Vec<(&'static str, Message, &'static str)> {
    vec![
        ("worker_ready", Message::WorkerReady, "fd0101"),
        ("ping", Message::Ping, "fd0111"),
        ("shutdown", Message::Shutdown, "fd0112"),
        (
            "tree_task",
            Message::TreeTask {
                task: 300,
                newick: "(a:1,b:2);".into(),
            },
            "fd0102ac020a28613a312c623a32293b",
        ),
        (
            "tree_result",
            Message::TreeResult {
                task: 300,
                newick: "(a:1.5,b:2.5);".into(),
                ln_likelihood: -1234.5625,
                work_units: 777,
            },
            "fd0103ac020e28613a312e352c623a322e35293b00000000404a93c08906",
        ),
        (
            "edit_insert",
            Message::TreeEditTask {
                task: 65,
                base_id: 9,
                edit: TreeEdit::Insert {
                    taxon: 12,
                    a: 3,
                    b: 130,
                },
                base_newick: None,
            },
            "fd01104109000c03820100",
        ),
        (
            "edit_regraft_embedded",
            Message::TreeEditTask {
                task: 66,
                base_id: 9,
                edit: TreeEdit::Regraft {
                    root: 5,
                    attachment: 6,
                    a: 1,
                    b: 2,
                },
                base_newick: Some("(a,b);".into()),
            },
            "fd011042090105060102010628612c62293b",
        ),
        (
            "base_topology",
            Message::BaseTopology {
                base_id: 9,
                newick: "(a:1,b:2);".into(),
            },
            "fd010f090a28613a312c623a32293b",
        ),
        (
            "lease_request",
            Message::LeaseRequest { want: 200 },
            "fd0114c801",
        ),
        (
            "steal_request",
            Message::StealRequest { want: 4 },
            "fd011504",
        ),
        ("rehome", Message::Rehome { foreman: 5 }, "fd011705"),
        (
            "quarantined",
            Message::Quarantined {
                task: 9,
                failures: 3,
                payload: TaskPayload::TreeEdit {
                    base_id: 2,
                    edit: TreeEdit::Insert {
                        taxon: 1,
                        a: 2,
                        b: 3,
                    },
                },
            },
            "fd01090903020200010203",
        ),
        (
            "monitor_completed",
            Message::Monitor(MonitorEvent::Completed {
                task: 4,
                worker: 3,
                ln_likelihood: -0.5,
                work_units: 10,
                service_us: 1000,
            }),
            "fd0106010403000000000000e0bf0ae807",
        ),
        (
            "batch",
            Message::Batch {
                msgs: vec![
                    Message::TreeEditTask {
                        task: 65,
                        base_id: 9,
                        edit: TreeEdit::Insert {
                            taxon: 12,
                            a: 3,
                            b: 130,
                        },
                        base_newick: None,
                    },
                    Message::Ping,
                ],
            },
            "fd011302104109000c0382010011",
        ),
        (
            "steal_return",
            Message::StealReturn {
                tasks: vec![Message::JumbleTask { task: 2, seed: 128 }],
            },
            "fd01160104028001",
        ),
        (
            "wal_round",
            Message::WalRound {
                job: 0,
                seed: 11,
                index: 2,
                entry: "x".into(),
            },
            "fd0118000b020178",
        ),
        (
            "jumble_resume",
            Message::JumbleResume {
                job: 3,
                task: 300,
                seed: 11,
                wal: vec!["ab".into()],
            },
            "fd011903ac020b01026162",
        ),
    ]
}

#[test]
fn encoder_matches_golden_bytes() {
    for (name, msg, expected) in fixtures() {
        assert_eq!(
            hex(&encode_message(&msg)),
            expected,
            "binary layout changed for fixture `{name}` — bump BINARY_VERSION"
        );
    }
}

#[test]
fn decoder_reads_golden_bytes() {
    for (name, msg, expected) in fixtures() {
        let bytes: Vec<u8> = (0..expected.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&expected[i..i + 2], 16).unwrap())
            .collect();
        assert_eq!(
            decode_message(&bytes).unwrap(),
            msg,
            "decoder disagrees with fixture `{name}`"
        );
    }
}

#[test]
fn compact_task_is_under_16_bytes() {
    // The point of the exercise: a PR 7 edit task fits in a dozen bytes.
    let msg = Message::TreeEditTask {
        task: 65,
        base_id: 9,
        edit: TreeEdit::Insert {
            taxon: 12,
            a: 3,
            b: 130,
        },
        base_newick: None,
    };
    assert!(encode_message(&msg).len() < 16);
}
