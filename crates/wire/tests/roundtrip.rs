//! Encode→decode identity for every `Message` variant, in both codecs.
//!
//! The generator is seed-driven: each case builds one message of every
//! variant from a splitmix64 stream, so a single proptest case sweeps the
//! whole vocabulary (including nested batches) and a thousand cases sweep
//! it with a thousand different payload shapes.

use fdml_comm::codec::{JsonCodec, MessageCodec};
use fdml_comm::message::{Message, MessageKind, MonitorEvent, TaskPayload, TreeEdit};
use fdml_wire::{decode_auto, BinaryCodec};
use proptest::prelude::*;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // splitmix64: cheap, seedable, good enough to vary payloads.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn string(&mut self) -> String {
        let len = (self.next() % 40) as usize;
        // Mix ASCII newick-ish text with multi-byte code points so UTF-8
        // length prefixes are exercised.
        (0..len)
            .map(|_| match self.next() % 8 {
                0 => 'é',
                1 => '…',
                n => (b"(a:1,b);"[n as usize % 8]) as char,
            })
            .collect()
    }

    fn f64(&mut self) -> f64 {
        // Arbitrary bit patterns, steering clear of NaN (NaN != NaN would
        // fail the equality check for reasons unrelated to the codec).
        let v = f64::from_bits(self.next());
        if v.is_nan() {
            -1234.5
        } else {
            v
        }
    }

    fn edit(&mut self) -> TreeEdit {
        if self.next().is_multiple_of(2) {
            TreeEdit::Insert {
                taxon: self.next() as u32,
                a: self.next() as u32,
                b: self.next() as u32,
            }
        } else {
            TreeEdit::Regraft {
                root: self.next() as u32,
                attachment: self.next() as u32,
                a: self.next() as u32,
                b: self.next() as u32,
            }
        }
    }

    fn payload(&mut self) -> TaskPayload {
        match self.next() % 3 {
            0 => TaskPayload::Tree {
                newick: self.string(),
            },
            1 => TaskPayload::Jumble { seed: self.next() },
            _ => TaskPayload::TreeEdit {
                base_id: self.next(),
                edit: self.edit(),
            },
        }
    }

    fn monitor(&mut self) -> MonitorEvent {
        match self.next() % 5 {
            0 => MonitorEvent::Dispatched {
                task: self.next(),
                worker: (self.next() % 4096) as usize,
            },
            1 => MonitorEvent::Completed {
                task: self.next(),
                worker: (self.next() % 4096) as usize,
                ln_likelihood: self.f64(),
                work_units: self.next(),
                service_us: self.next(),
            },
            2 => MonitorEvent::WorkerTimedOut {
                worker: (self.next() % 4096) as usize,
                task: self.next(),
            },
            3 => MonitorEvent::WorkerRecovered {
                worker: (self.next() % 4096) as usize,
            },
            _ => MonitorEvent::RoundComplete {
                round: self.next(),
                candidates: (self.next() % 10_000) as usize,
                best_ln_likelihood: self.f64(),
                best_newick: self.string(),
            },
        }
    }

    /// One message of the variant with this index; `depth` bounds batch
    /// nesting so generation terminates.
    fn message(&mut self, variant: usize, depth: u32) -> Message {
        match variant {
            0 => Message::ProblemData {
                phylip: self.string(),
                config_json: self.string(),
            },
            1 => Message::WorkerReady,
            2 => Message::TreeTask {
                task: self.next(),
                newick: self.string(),
            },
            3 => Message::TreeResult {
                task: self.next(),
                newick: self.string(),
                ln_likelihood: self.f64(),
                work_units: self.next(),
            },
            4 => Message::JumbleTask {
                task: self.next(),
                seed: self.next(),
            },
            5 => Message::JumbleResult {
                task: self.next(),
                seed: self.next(),
                newick: self.string(),
                ln_likelihood: self.f64(),
                rounds: self.next(),
                candidates: self.next(),
                work_units: self.next(),
            },
            6 => Message::Monitor(self.monitor()),
            7 => Message::PeerDown {
                rank: (self.next() % 4096) as usize,
            },
            8 => Message::PeerUp {
                rank: (self.next() % 4096) as usize,
            },
            9 => Message::Quarantined {
                task: self.next(),
                failures: self.next(),
                payload: self.payload(),
            },
            10 => Message::Abort {
                reason: self.string(),
            },
            11 => Message::JobData {
                job: self.next(),
                phylip: self.string(),
                config_json: self.string(),
            },
            12 => Message::JobTask {
                job: self.next(),
                task: self.next(),
                seed: self.next(),
            },
            13 => Message::JobTaskResult {
                job: self.next(),
                task: self.next(),
                seed: self.next(),
                newick: self.string(),
                ln_likelihood: self.f64(),
                work_units: self.next(),
            },
            14 => Message::JobRetire { job: self.next() },
            15 => Message::BaseTopology {
                base_id: self.next(),
                newick: self.string(),
            },
            16 => Message::TreeEditTask {
                task: self.next(),
                base_id: self.next(),
                edit: self.edit(),
                base_newick: if self.next().is_multiple_of(2) {
                    None
                } else {
                    Some(self.string())
                },
            },
            17 => Message::Ping,
            18 => Message::Batch {
                msgs: self.messages(depth),
            },
            19 => Message::LeaseRequest {
                want: self.next() as u32,
            },
            20 => Message::StealRequest {
                want: self.next() as u32,
            },
            21 => Message::StealReturn {
                tasks: self.messages(depth),
            },
            22 => Message::Rehome {
                foreman: (self.next() % 4096) as usize,
            },
            _ => Message::Shutdown,
        }
    }

    fn messages(&mut self, depth: u32) -> Vec<Message> {
        if depth == 0 {
            return Vec::new();
        }
        let n = (self.next() % 4) as usize;
        (0..n)
            .map(|_| {
                let v = (self.next() % VARIANTS as u64) as usize;
                self.message(v, depth - 1)
            })
            .collect()
    }
}

const VARIANTS: usize = 24;

fn roundtrip(codec: &dyn MessageCodec, msg: &Message) -> Result<(), TestCaseError> {
    let bytes = codec.encode(msg).expect("encode");
    let back = codec.decode(&bytes).expect("decode");
    prop_assert_eq!(&back, msg, "{} codec broke identity", codec.name());
    // The sniffing reader must agree regardless of which codec wrote it.
    let sniffed = decode_auto(&bytes).expect("decode_auto");
    prop_assert_eq!(&sniffed, msg, "auto-detect broke on {}", codec.name());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    fn every_variant_roundtrips_in_both_codecs(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        for variant in 0..VARIANTS {
            let msg = rng.message(variant, 2);
            roundtrip(&BinaryCodec, &msg)?;
            roundtrip(&JsonCodec, &msg)?;
        }
    }
}

/// The generator above must actually cover the whole vocabulary: if a new
/// variant is added to `Message` without extending the generator (or the
/// codec), this fails at compile time in `kind()`'s match or here.
#[test]
fn generator_covers_every_message_kind() {
    let mut rng = Rng(7);
    let kinds: std::collections::BTreeSet<MessageKind> =
        (0..VARIANTS).map(|v| rng.message(v, 1).kind()).collect();
    assert_eq!(kinds.len(), VARIANTS, "generator misses a variant");
}
