//! `fdml-wire` — the compact binary codec for the runtime's messages.
//!
//! The seed wire format is one JSON document per message: self-describing
//! and easy to debug, but a ~50 B [`TreeEdit`](fdml_comm::TreeEdit) task
//! costs well over 100 bytes of field names and quoting, and at thousands
//! of ranks the master's NIC serializes on that overhead (the paper's §3.2
//! dispatch wall, moved from the CPU to the wire). This crate defines the
//! binary alternative:
//!
//! * body = `0xFD` magic, format version byte, variant tag byte, fields;
//! * integers are LEB128 varints, floats are exact IEEE-754 bit patterns,
//!   strings are length-prefixed UTF-8 ([`varint`]);
//! * [`Message::Batch`] and [`Message::StealReturn`] nest inner message
//!   bodies recursively (varint count, then each body tag-first), so one
//!   frame carries a whole lease grant or result batch;
//! * the first body byte distinguishes codecs (`0xFD` vs JSON's `{`), so
//!   readers sniff per body and binary/JSON peers interoperate during a
//!   rollout with no flag-day.
//!
//! Framing — length prefix and CRC32 — is unchanged and stays in
//! `fdml-net`; this crate only defines what goes inside a frame.
//!
//! The layout is pinned by a golden-bytes fixture test: changing any tag
//! or field order must bump [`BINARY_VERSION`] and fail that test first.

#![warn(missing_docs)]

pub mod varint;

use fdml_comm::codec::{CodecError, JsonCodec, MessageCodec};
use fdml_comm::message::{Message, MonitorEvent, TaskPayload, TreeEdit};
use varint::Reader;

/// First byte of every binary body. Deliberately not valid leading UTF-8
/// for a JSON document, so codec sniffing is unambiguous.
pub const MAGIC: u8 = 0xFD;

/// Version of the binary layout (tags, field order, primitive encodings).
/// Bump on any incompatible change; decoders reject other versions.
pub const BINARY_VERSION: u8 = 1;

/// Deepest allowed nesting of [`Message::Batch`] / [`Message::StealReturn`]
/// while decoding, so a malicious body cannot recurse the stack away. The
/// runtime never nests more than two levels (a batch of task messages).
const MAX_DEPTH: u32 = 8;

/// A malformed binary body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before a field did.
    Truncated,
    /// The first byte was neither the binary magic nor expected.
    BadMagic(u8),
    /// The version byte names a layout this build does not speak.
    BadVersion(u8),
    /// An enum tag (named by the first field) had no meaning.
    BadTag(&'static str, u64),
    /// A varint did not fit its destination integer.
    VarintOverflow,
    /// A string field was not UTF-8.
    BadUtf8,
    /// Decoding finished with bytes left over.
    Trailing(usize),
    /// Batches nested deeper than [`MAX_DEPTH`].
    TooDeep,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "body truncated mid-field"),
            WireError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02X}"),
            WireError::BadVersion(v) => write!(f, "unsupported binary version {v}"),
            WireError::BadTag(what, tag) => write!(f, "unknown {what} tag {tag}"),
            WireError::VarintOverflow => write!(f, "varint overflows its field"),
            WireError::BadUtf8 => write!(f, "string field is not utf-8"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            WireError::TooDeep => write!(f, "batch nesting exceeds {MAX_DEPTH} levels"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> Self {
        CodecError::Decode(e.to_string())
    }
}

// Variant tags. Append-only: new variants take the next free tag; existing
// tags are frozen by the golden-bytes test.
mod tag {
    pub const PROBLEM_DATA: u8 = 0;
    pub const WORKER_READY: u8 = 1;
    pub const TREE_TASK: u8 = 2;
    pub const TREE_RESULT: u8 = 3;
    pub const JUMBLE_TASK: u8 = 4;
    pub const JUMBLE_RESULT: u8 = 5;
    pub const MONITOR: u8 = 6;
    pub const PEER_DOWN: u8 = 7;
    pub const PEER_UP: u8 = 8;
    pub const QUARANTINED: u8 = 9;
    pub const ABORT: u8 = 10;
    pub const JOB_DATA: u8 = 11;
    pub const JOB_TASK: u8 = 12;
    pub const JOB_TASK_RESULT: u8 = 13;
    pub const JOB_RETIRE: u8 = 14;
    pub const BASE_TOPOLOGY: u8 = 15;
    pub const TREE_EDIT_TASK: u8 = 16;
    pub const PING: u8 = 17;
    pub const SHUTDOWN: u8 = 18;
    pub const BATCH: u8 = 19;
    pub const LEASE_REQUEST: u8 = 20;
    pub const STEAL_REQUEST: u8 = 21;
    pub const STEAL_RETURN: u8 = 22;
    pub const REHOME: u8 = 23;
    pub const WAL_ROUND: u8 = 24;
    pub const JUMBLE_RESUME: u8 = 25;

    pub const MON_DISPATCHED: u8 = 0;
    pub const MON_COMPLETED: u8 = 1;
    pub const MON_TIMED_OUT: u8 = 2;
    pub const MON_RECOVERED: u8 = 3;
    pub const MON_ROUND_COMPLETE: u8 = 4;

    pub const PAYLOAD_TREE: u8 = 0;
    pub const PAYLOAD_JUMBLE: u8 = 1;
    pub const PAYLOAD_TREE_EDIT: u8 = 2;

    pub const EDIT_INSERT: u8 = 0;
    pub const EDIT_REGRAFT: u8 = 1;
}

fn put_edit(buf: &mut Vec<u8>, edit: &TreeEdit) {
    match *edit {
        TreeEdit::Insert { taxon, a, b } => {
            buf.push(tag::EDIT_INSERT);
            varint::put_u32(buf, taxon);
            varint::put_u32(buf, a);
            varint::put_u32(buf, b);
        }
        TreeEdit::Regraft {
            root,
            attachment,
            a,
            b,
        } => {
            buf.push(tag::EDIT_REGRAFT);
            varint::put_u32(buf, root);
            varint::put_u32(buf, attachment);
            varint::put_u32(buf, a);
            varint::put_u32(buf, b);
        }
    }
}

fn get_edit(r: &mut Reader<'_>) -> Result<TreeEdit, WireError> {
    match r.u8()? {
        tag::EDIT_INSERT => Ok(TreeEdit::Insert {
            taxon: r.u32()?,
            a: r.u32()?,
            b: r.u32()?,
        }),
        tag::EDIT_REGRAFT => Ok(TreeEdit::Regraft {
            root: r.u32()?,
            attachment: r.u32()?,
            a: r.u32()?,
            b: r.u32()?,
        }),
        t => Err(WireError::BadTag("tree-edit", u64::from(t))),
    }
}

fn put_payload(buf: &mut Vec<u8>, payload: &TaskPayload) {
    match payload {
        TaskPayload::Tree { newick } => {
            buf.push(tag::PAYLOAD_TREE);
            varint::put_str(buf, newick);
        }
        TaskPayload::Jumble { seed } => {
            buf.push(tag::PAYLOAD_JUMBLE);
            varint::put_u64(buf, *seed);
        }
        TaskPayload::TreeEdit { base_id, edit } => {
            buf.push(tag::PAYLOAD_TREE_EDIT);
            varint::put_u64(buf, *base_id);
            put_edit(buf, edit);
        }
    }
}

fn get_payload(r: &mut Reader<'_>) -> Result<TaskPayload, WireError> {
    match r.u8()? {
        tag::PAYLOAD_TREE => Ok(TaskPayload::Tree { newick: r.str()? }),
        tag::PAYLOAD_JUMBLE => Ok(TaskPayload::Jumble { seed: r.u64()? }),
        tag::PAYLOAD_TREE_EDIT => Ok(TaskPayload::TreeEdit {
            base_id: r.u64()?,
            edit: get_edit(r)?,
        }),
        t => Err(WireError::BadTag("task-payload", u64::from(t))),
    }
}

fn put_monitor(buf: &mut Vec<u8>, ev: &MonitorEvent) {
    match ev {
        MonitorEvent::Dispatched { task, worker } => {
            buf.push(tag::MON_DISPATCHED);
            varint::put_u64(buf, *task);
            varint::put_usize(buf, *worker);
        }
        MonitorEvent::Completed {
            task,
            worker,
            ln_likelihood,
            work_units,
            service_us,
        } => {
            buf.push(tag::MON_COMPLETED);
            varint::put_u64(buf, *task);
            varint::put_usize(buf, *worker);
            varint::put_f64(buf, *ln_likelihood);
            varint::put_u64(buf, *work_units);
            varint::put_u64(buf, *service_us);
        }
        MonitorEvent::WorkerTimedOut { worker, task } => {
            buf.push(tag::MON_TIMED_OUT);
            varint::put_usize(buf, *worker);
            varint::put_u64(buf, *task);
        }
        MonitorEvent::WorkerRecovered { worker } => {
            buf.push(tag::MON_RECOVERED);
            varint::put_usize(buf, *worker);
        }
        MonitorEvent::RoundComplete {
            round,
            candidates,
            best_ln_likelihood,
            best_newick,
        } => {
            buf.push(tag::MON_ROUND_COMPLETE);
            varint::put_u64(buf, *round);
            varint::put_usize(buf, *candidates);
            varint::put_f64(buf, *best_ln_likelihood);
            varint::put_str(buf, best_newick);
        }
    }
}

fn get_monitor(r: &mut Reader<'_>) -> Result<MonitorEvent, WireError> {
    match r.u8()? {
        tag::MON_DISPATCHED => Ok(MonitorEvent::Dispatched {
            task: r.u64()?,
            worker: r.usize()?,
        }),
        tag::MON_COMPLETED => Ok(MonitorEvent::Completed {
            task: r.u64()?,
            worker: r.usize()?,
            ln_likelihood: r.f64()?,
            work_units: r.u64()?,
            service_us: r.u64()?,
        }),
        tag::MON_TIMED_OUT => Ok(MonitorEvent::WorkerTimedOut {
            worker: r.usize()?,
            task: r.u64()?,
        }),
        tag::MON_RECOVERED => Ok(MonitorEvent::WorkerRecovered { worker: r.usize()? }),
        tag::MON_ROUND_COMPLETE => Ok(MonitorEvent::RoundComplete {
            round: r.u64()?,
            candidates: r.usize()?,
            best_ln_likelihood: r.f64()?,
            best_newick: r.str()?,
        }),
        t => Err(WireError::BadTag("monitor-event", u64::from(t))),
    }
}

fn put_msgs(buf: &mut Vec<u8>, msgs: &[Message]) {
    varint::put_usize(buf, msgs.len());
    for m in msgs {
        encode_body(m, buf);
    }
}

fn get_msgs(r: &mut Reader<'_>, depth: u32) -> Result<Vec<Message>, WireError> {
    if depth >= MAX_DEPTH {
        return Err(WireError::TooDeep);
    }
    let n = r.usize()?;
    // Every message body is at least one tag byte; reject counts the
    // remaining bytes cannot possibly satisfy before allocating.
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_body_at(r, depth + 1)?);
    }
    Ok(out)
}

/// Append one message body — variant tag, then fields — without the
/// magic/version header. This is the nesting unit used inside batches.
pub fn encode_body(msg: &Message, buf: &mut Vec<u8>) {
    match msg {
        Message::ProblemData {
            phylip,
            config_json,
        } => {
            buf.push(tag::PROBLEM_DATA);
            varint::put_str(buf, phylip);
            varint::put_str(buf, config_json);
        }
        Message::WorkerReady => buf.push(tag::WORKER_READY),
        Message::TreeTask { task, newick } => {
            buf.push(tag::TREE_TASK);
            varint::put_u64(buf, *task);
            varint::put_str(buf, newick);
        }
        Message::TreeResult {
            task,
            newick,
            ln_likelihood,
            work_units,
        } => {
            buf.push(tag::TREE_RESULT);
            varint::put_u64(buf, *task);
            varint::put_str(buf, newick);
            varint::put_f64(buf, *ln_likelihood);
            varint::put_u64(buf, *work_units);
        }
        Message::JumbleTask { task, seed } => {
            buf.push(tag::JUMBLE_TASK);
            varint::put_u64(buf, *task);
            varint::put_u64(buf, *seed);
        }
        Message::JumbleResult {
            task,
            seed,
            newick,
            ln_likelihood,
            rounds,
            candidates,
            work_units,
        } => {
            buf.push(tag::JUMBLE_RESULT);
            varint::put_u64(buf, *task);
            varint::put_u64(buf, *seed);
            varint::put_str(buf, newick);
            varint::put_f64(buf, *ln_likelihood);
            varint::put_u64(buf, *rounds);
            varint::put_u64(buf, *candidates);
            varint::put_u64(buf, *work_units);
        }
        Message::Monitor(ev) => {
            buf.push(tag::MONITOR);
            put_monitor(buf, ev);
        }
        Message::PeerDown { rank } => {
            buf.push(tag::PEER_DOWN);
            varint::put_usize(buf, *rank);
        }
        Message::PeerUp { rank } => {
            buf.push(tag::PEER_UP);
            varint::put_usize(buf, *rank);
        }
        Message::Quarantined {
            task,
            failures,
            payload,
        } => {
            buf.push(tag::QUARANTINED);
            varint::put_u64(buf, *task);
            varint::put_u64(buf, *failures);
            put_payload(buf, payload);
        }
        Message::Abort { reason } => {
            buf.push(tag::ABORT);
            varint::put_str(buf, reason);
        }
        Message::JobData {
            job,
            phylip,
            config_json,
        } => {
            buf.push(tag::JOB_DATA);
            varint::put_u64(buf, *job);
            varint::put_str(buf, phylip);
            varint::put_str(buf, config_json);
        }
        Message::JobTask { job, task, seed } => {
            buf.push(tag::JOB_TASK);
            varint::put_u64(buf, *job);
            varint::put_u64(buf, *task);
            varint::put_u64(buf, *seed);
        }
        Message::JobTaskResult {
            job,
            task,
            seed,
            newick,
            ln_likelihood,
            work_units,
        } => {
            buf.push(tag::JOB_TASK_RESULT);
            varint::put_u64(buf, *job);
            varint::put_u64(buf, *task);
            varint::put_u64(buf, *seed);
            varint::put_str(buf, newick);
            varint::put_f64(buf, *ln_likelihood);
            varint::put_u64(buf, *work_units);
        }
        Message::JobRetire { job } => {
            buf.push(tag::JOB_RETIRE);
            varint::put_u64(buf, *job);
        }
        Message::BaseTopology { base_id, newick } => {
            buf.push(tag::BASE_TOPOLOGY);
            varint::put_u64(buf, *base_id);
            varint::put_str(buf, newick);
        }
        Message::TreeEditTask {
            task,
            base_id,
            edit,
            base_newick,
        } => {
            buf.push(tag::TREE_EDIT_TASK);
            varint::put_u64(buf, *task);
            varint::put_u64(buf, *base_id);
            put_edit(buf, edit);
            varint::put_opt_str(buf, base_newick.as_deref());
        }
        Message::Ping => buf.push(tag::PING),
        Message::Shutdown => buf.push(tag::SHUTDOWN),
        Message::Batch { msgs } => {
            buf.push(tag::BATCH);
            put_msgs(buf, msgs);
        }
        Message::LeaseRequest { want } => {
            buf.push(tag::LEASE_REQUEST);
            varint::put_u32(buf, *want);
        }
        Message::StealRequest { want } => {
            buf.push(tag::STEAL_REQUEST);
            varint::put_u32(buf, *want);
        }
        Message::StealReturn { tasks } => {
            buf.push(tag::STEAL_RETURN);
            put_msgs(buf, tasks);
        }
        Message::Rehome { foreman } => {
            buf.push(tag::REHOME);
            varint::put_usize(buf, *foreman);
        }
        Message::WalRound {
            job,
            seed,
            index,
            entry,
        } => {
            buf.push(tag::WAL_ROUND);
            varint::put_u64(buf, *job);
            varint::put_u64(buf, *seed);
            varint::put_u64(buf, *index);
            varint::put_str(buf, entry);
        }
        Message::JumbleResume {
            job,
            task,
            seed,
            wal,
        } => {
            buf.push(tag::JUMBLE_RESUME);
            varint::put_u64(buf, *job);
            varint::put_u64(buf, *task);
            varint::put_u64(buf, *seed);
            varint::put_usize(buf, wal.len());
            for entry in wal {
                varint::put_str(buf, entry);
            }
        }
    }
}

fn decode_body_at(r: &mut Reader<'_>, depth: u32) -> Result<Message, WireError> {
    match r.u8()? {
        tag::PROBLEM_DATA => Ok(Message::ProblemData {
            phylip: r.str()?,
            config_json: r.str()?,
        }),
        tag::WORKER_READY => Ok(Message::WorkerReady),
        tag::TREE_TASK => Ok(Message::TreeTask {
            task: r.u64()?,
            newick: r.str()?,
        }),
        tag::TREE_RESULT => Ok(Message::TreeResult {
            task: r.u64()?,
            newick: r.str()?,
            ln_likelihood: r.f64()?,
            work_units: r.u64()?,
        }),
        tag::JUMBLE_TASK => Ok(Message::JumbleTask {
            task: r.u64()?,
            seed: r.u64()?,
        }),
        tag::JUMBLE_RESULT => Ok(Message::JumbleResult {
            task: r.u64()?,
            seed: r.u64()?,
            newick: r.str()?,
            ln_likelihood: r.f64()?,
            rounds: r.u64()?,
            candidates: r.u64()?,
            work_units: r.u64()?,
        }),
        tag::MONITOR => Ok(Message::Monitor(get_monitor(r)?)),
        tag::PEER_DOWN => Ok(Message::PeerDown { rank: r.usize()? }),
        tag::PEER_UP => Ok(Message::PeerUp { rank: r.usize()? }),
        tag::QUARANTINED => Ok(Message::Quarantined {
            task: r.u64()?,
            failures: r.u64()?,
            payload: get_payload(r)?,
        }),
        tag::ABORT => Ok(Message::Abort { reason: r.str()? }),
        tag::JOB_DATA => Ok(Message::JobData {
            job: r.u64()?,
            phylip: r.str()?,
            config_json: r.str()?,
        }),
        tag::JOB_TASK => Ok(Message::JobTask {
            job: r.u64()?,
            task: r.u64()?,
            seed: r.u64()?,
        }),
        tag::JOB_TASK_RESULT => Ok(Message::JobTaskResult {
            job: r.u64()?,
            task: r.u64()?,
            seed: r.u64()?,
            newick: r.str()?,
            ln_likelihood: r.f64()?,
            work_units: r.u64()?,
        }),
        tag::JOB_RETIRE => Ok(Message::JobRetire { job: r.u64()? }),
        tag::BASE_TOPOLOGY => Ok(Message::BaseTopology {
            base_id: r.u64()?,
            newick: r.str()?,
        }),
        tag::TREE_EDIT_TASK => Ok(Message::TreeEditTask {
            task: r.u64()?,
            base_id: r.u64()?,
            edit: get_edit(r)?,
            base_newick: r.opt_str()?,
        }),
        tag::PING => Ok(Message::Ping),
        tag::SHUTDOWN => Ok(Message::Shutdown),
        tag::BATCH => Ok(Message::Batch {
            msgs: get_msgs(r, depth)?,
        }),
        tag::LEASE_REQUEST => Ok(Message::LeaseRequest { want: r.u32()? }),
        tag::STEAL_REQUEST => Ok(Message::StealRequest { want: r.u32()? }),
        tag::STEAL_RETURN => Ok(Message::StealReturn {
            tasks: get_msgs(r, depth)?,
        }),
        tag::REHOME => Ok(Message::Rehome {
            foreman: r.usize()?,
        }),
        tag::WAL_ROUND => Ok(Message::WalRound {
            job: r.u64()?,
            seed: r.u64()?,
            index: r.u64()?,
            entry: r.str()?,
        }),
        tag::JUMBLE_RESUME => {
            let job = r.u64()?;
            let task = r.u64()?;
            let seed = r.u64()?;
            let n = r.usize()?;
            // Each entry is at least a length byte; reject counts the
            // remaining bytes cannot possibly satisfy before allocating.
            if n > r.remaining() {
                return Err(WireError::Truncated);
            }
            let mut wal = Vec::with_capacity(n);
            for _ in 0..n {
                wal.push(r.str()?);
            }
            Ok(Message::JumbleResume {
                job,
                task,
                seed,
                wal,
            })
        }
        t => Err(WireError::BadTag("message", u64::from(t))),
    }
}

/// Decode one message body (no magic/version header) from a reader.
pub fn decode_body(r: &mut Reader<'_>) -> Result<Message, WireError> {
    decode_body_at(r, 0)
}

/// Encode a complete binary body: magic, version, then the message.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::with_capacity(msg.wire_bytes() / 2 + 8);
    buf.push(MAGIC);
    buf.push(BINARY_VERSION);
    encode_body(msg, &mut buf);
    buf
}

/// Decode a complete binary body produced by [`encode_message`]. Rejects
/// bad magic, unknown versions, and trailing bytes.
pub fn decode_message(bytes: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(bytes);
    let magic = r.u8()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != BINARY_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let msg = decode_body(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::Trailing(r.remaining()));
    }
    Ok(msg)
}

/// The binary codec as a [`MessageCodec`] — the negotiated alternative to
/// [`JsonCodec`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCodec;

impl MessageCodec for BinaryCodec {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn encode(&self, msg: &Message) -> Result<Vec<u8>, CodecError> {
        Ok(encode_message(msg))
    }

    fn decode(&self, bytes: &[u8]) -> Result<Message, CodecError> {
        Ok(decode_message(bytes)?)
    }
}

/// The wire format a peer writes with. Readers never need it — every body
/// is sniffed by its first byte — so two peers with different formats
/// still understand each other; the negotiated value only tells a writer
/// what its counterpart prefers to receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// One serde-JSON document per message (the seed format).
    Json,
    /// The compact tagged-varint layout of this crate (the default).
    #[default]
    Binary,
}

impl WireFormat {
    /// Parse a `--wire` flag or handshake field value.
    pub fn parse(s: &str) -> Option<WireFormat> {
        match s {
            "json" => Some(WireFormat::Json),
            "binary" => Some(WireFormat::Binary),
            _ => None,
        }
    }

    /// The stable name used in flags and handshakes.
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Json => "json",
            WireFormat::Binary => "binary",
        }
    }

    /// The codec implementing this format.
    pub fn codec(self) -> &'static dyn MessageCodec {
        match self {
            WireFormat::Json => &JsonCodec,
            WireFormat::Binary => &BinaryCodec,
        }
    }

    /// Encode with this format's codec.
    pub fn encode(self, msg: &Message) -> Result<Vec<u8>, CodecError> {
        self.codec().encode(msg)
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Decode a body in whichever codec produced it, sniffed from the first
/// byte: [`MAGIC`] means binary, anything else is handed to the JSON
/// codec. This is what makes mixed-codec fleets work — a reader does not
/// care what the sender negotiated.
pub fn decode_auto(bytes: &[u8]) -> Result<Message, CodecError> {
    match bytes.first() {
        Some(&MAGIC) => Ok(decode_message(bytes)?),
        _ => JsonCodec.decode(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edit_task() -> Message {
        Message::TreeEditTask {
            task: 4242,
            base_id: 17,
            edit: TreeEdit::Regraft {
                root: 40,
                attachment: 41,
                a: 7,
                b: 8,
            },
            base_newick: None,
        }
    }

    #[test]
    fn binary_roundtrips_a_batch() {
        let msg = Message::Batch {
            msgs: vec![
                sample_edit_task(),
                Message::TreeResult {
                    task: 1,
                    newick: "(a:1.25,b:0.5);".into(),
                    ln_likelihood: -1234.5678901234,
                    work_units: 99,
                },
                Message::Ping,
            ],
        };
        let bytes = encode_message(&msg);
        assert_eq!(decode_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn binary_is_much_smaller_than_json_for_edit_tasks() {
        let msg = sample_edit_task();
        let bin = encode_message(&msg);
        let json = JsonCodec.encode(&msg).unwrap();
        assert!(
            bin.len() * 5 <= json.len(),
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn auto_detect_sniffs_both_codecs() {
        let msg = Message::LeaseRequest { want: 32 };
        let bin = encode_message(&msg);
        let json = JsonCodec.encode(&msg).unwrap();
        assert_eq!(decode_auto(&bin).unwrap(), msg);
        assert_eq!(decode_auto(&json).unwrap(), msg);
    }

    #[test]
    fn bad_version_and_trailing_bytes_are_rejected() {
        let mut bytes = encode_message(&Message::Ping);
        bytes[1] = 99;
        assert_eq!(decode_message(&bytes), Err(WireError::BadVersion(99)));

        let mut bytes = encode_message(&Message::Ping);
        bytes.push(0);
        assert_eq!(decode_message(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn deep_batch_nesting_is_rejected() {
        let mut msg = Message::Ping;
        for _ in 0..(MAX_DEPTH + 1) {
            msg = Message::Batch { msgs: vec![msg] };
        }
        let bytes = encode_message(&msg);
        assert_eq!(decode_message(&bytes), Err(WireError::TooDeep));
    }

    #[test]
    fn hostile_batch_count_does_not_allocate() {
        // A batch claiming u64::MAX messages must fail fast, not OOM.
        let mut bytes = vec![MAGIC, BINARY_VERSION, 19];
        varint::put_u64(&mut bytes, u64::MAX);
        assert!(decode_message(&bytes).is_err());
    }
}
