//! LEB128 varints and the primitive field encodings of the binary codec.
//!
//! Every integer field travels as an unsigned LEB128 varint (7 payload
//! bits per byte, high bit = continuation), so the common small values —
//! ranks, task ids, node ids — cost one or two bytes instead of JSON's
//! quoted decimal digits plus a field name. Floats travel as their exact
//! IEEE-754 bit pattern (8 little-endian bytes), which round-trips
//! bit-identically where JSON's decimal formatting needs shortest-float
//! printing to do the same. Strings are length-prefixed UTF-8.

use crate::WireError;

/// Append `v` to `buf` as an unsigned LEB128 varint.
pub fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append a `u32` field (varint-encoded; never wider than its value needs).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    put_u64(buf, u64::from(v));
}

/// Append a `usize` field (varint-encoded).
pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Append an `f64` as its exact bit pattern, little-endian.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Append an optional string: presence byte, then the string if present.
pub fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
    }
}

/// A bounds-checked cursor over an encoded body.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from its first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read an unsigned LEB128 varint. Rejects encodings wider than a u64
    /// (more than 10 bytes, or overflowing high bits).
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Read a varint that must fit in a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.u64()?).map_err(|_| WireError::VarintOverflow)
    }

    /// Read a varint that must fit in a `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::VarintOverflow)
    }

    /// Read an `f64` bit pattern (8 little-endian bytes).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.usize()?;
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = std::str::from_utf8(&self.buf[self.pos..end]).map_err(|_| WireError::BadUtf8)?;
        self.pos = end;
        Ok(s.to_string())
    }

    /// Read an optional string written by [`put_opt_str`].
    pub fn opt_str(&mut self) -> Result<Option<String>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            b => Err(WireError::BadTag("option", u64::from(b))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.u64().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        assert_eq!(buf, vec![42]);
    }

    #[test]
    fn varint_rejects_overflow() {
        // 11 continuation bytes cannot fit in a u64.
        let buf = [0xFFu8; 11];
        assert_eq!(Reader::new(&buf).u64(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn f64_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -12345.6789e-200,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let got = Reader::new(&buf).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_string_is_an_error() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        buf.truncate(3);
        assert_eq!(Reader::new(&buf).str(), Err(WireError::Truncated));
    }
}
