//! The full-tree likelihood evaluator.
//!
//! This is the computation a fastDNAml *worker* performs for every tree it
//! receives: build conditional likelihood vectors over the whole tree,
//! optimize every branch length (Newton, Gauss–Seidel sweeps until the
//! lengths stabilize), and report the final log-likelihood.
//!
//! The evaluator anchors a *directional* CLV at each end of every edge:
//! `down[e]` covers the subtree on the far side of `e` from the root tip,
//! `up[e]` covers everything else. Both are computed by sweeps of the
//! CLV-combine kernel (see [`crate::kernels`]); a branch's log-likelihood
//! joins its two directional CLVs through the branch's transition
//! coefficients. Kernels are dispatched through the engine's
//! [`KernelMode`]: the blocked, division-free path by default, the scalar
//! reference oracle on request.

use crate::categories::RateCategories;
use crate::clv::{fill_tip_clv, WTerms, LN_SCALE};
use crate::f84::F84Model;
use crate::kernels::{self, KernelMode, KernelScratch};
use crate::newton::NewtonOptions;
use crate::par::IntraPar;
use crate::work::WorkCounter;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::dna::NUM_STATES;
use fdml_phylo::patterns::PatternAlignment;
use fdml_phylo::tree::{EdgeId, NodeId, Tree};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Options controlling full-tree branch-length optimization.
#[derive(Debug, Clone, Copy)]
pub struct OptimizeOptions {
    /// Maximum Gauss–Seidel sweeps over all branches (fastDNAml's
    /// "smoothings").
    pub max_passes: usize,
    /// Stop sweeping when no branch moved more than this (absolute).
    pub length_tolerance: f64,
    /// Per-branch Newton options.
    pub newton: NewtonOptions,
}

impl Default for OptimizeOptions {
    fn default() -> OptimizeOptions {
        OptimizeOptions {
            max_passes: 8,
            length_tolerance: 1e-5,
            newton: NewtonOptions::default(),
        }
    }
}

/// Outcome of an evaluation: the log-likelihood and the work expended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Natural-log likelihood of the alignment given the tree.
    pub ln_likelihood: f64,
    /// Operation counts (consumed by the cluster simulator).
    pub work: WorkCounter,
}

/// A likelihood engine bound to one pattern-compressed alignment, one F84
/// model, and one rate-category assignment.
#[derive(Debug, Clone)]
pub struct LikelihoodEngine {
    patterns: PatternAlignment,
    model: F84Model,
    categories: RateCategories,
    /// Tip CLVs cached per taxon.
    tip_clvs: Vec<Vec<f64>>,
    /// Which kernel implementation evaluations route through.
    mode: KernelMode,
    /// Intra-rank thread pool fanning kernel pattern blocks (serial by
    /// default; see [`crate::par`]).
    intra: IntraPar,
    /// Recycled workspace buffers (optimized mode only; the reference mode
    /// allocates per call like the seed implementation it reproduces).
    pool: WorkspacePool,
}

/// Upper bound on retained workspace buffer sets. Evaluations overlap only
/// when a scorer holds its indexed workspace while re-optimizing, so a
/// handful covers every caller without hoarding memory.
const MAX_POOLED_WORKSPACES: usize = 8;

/// A lock-guarded stack of recycled [`PoolEntry`] buffer sets.
///
/// Cloning an engine starts the clone with an empty pool: pooled buffers
/// are a cache, not state.
///
/// Every hand-out moves the entry out of the pool, so two workspaces can
/// never alias one buffer set by construction; debug builds additionally
/// track each entry's lease id and assert that an id is never out twice
/// (nor returned without being out), which would catch any future
/// duplication bug before it corrupts CLVs across threads.
struct WorkspacePool {
    entries: Mutex<Vec<PoolEntry>>,
    /// Lease ids currently handed out (debug builds only).
    #[cfg(debug_assertions)]
    outstanding: Mutex<std::collections::HashSet<u64>>,
}

impl WorkspacePool {
    fn new() -> WorkspacePool {
        WorkspacePool {
            entries: Mutex::new(Vec::new()),
            #[cfg(debug_assertions)]
            outstanding: Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// Hand out a buffer set: a recycled one when available, else fresh.
    fn lease(&self, categories: &RateCategories, par: &IntraPar) -> PoolEntry {
        let entry = self
            .entries
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| PoolEntry::fresh(categories, par));
        #[cfg(debug_assertions)]
        {
            let inserted = self.outstanding.lock().unwrap().insert(entry.lease);
            assert!(
                inserted,
                "workspace buffer set {} leased twice",
                entry.lease
            );
        }
        entry
    }

    fn put(&self, entry: PoolEntry) {
        #[cfg(debug_assertions)]
        {
            let removed = self.outstanding.lock().unwrap().remove(&entry.lease);
            assert!(
                removed,
                "returned workspace buffer set {} was not leased from this pool",
                entry.lease
            );
        }
        let mut pool = self.entries.lock().unwrap();
        if pool.len() < MAX_POOLED_WORKSPACES {
            pool.push(entry);
        }
    }

    fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

impl Clone for WorkspacePool {
    fn clone(&self) -> WorkspacePool {
        WorkspacePool::new()
    }
}

impl std::fmt::Debug for WorkspacePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkspacePool({})", self.entries.lock().unwrap().len())
    }
}

impl LikelihoodEngine {
    /// Engine with fastDNAml defaults: empirical base frequencies,
    /// transition/transversion ratio 2.0, one rate category.
    pub fn new(alignment: &Alignment) -> LikelihoodEngine {
        let patterns = PatternAlignment::compress(alignment);
        let model = F84Model::from_alignment(alignment);
        let categories = RateCategories::single(patterns.num_patterns());
        LikelihoodEngine::with_parts(patterns, model, categories)
    }

    /// Engine from explicit parts.
    pub fn with_parts(
        patterns: PatternAlignment,
        model: F84Model,
        categories: RateCategories,
    ) -> LikelihoodEngine {
        assert_eq!(
            categories.num_patterns(),
            patterns.num_patterns(),
            "rate categories must cover every pattern"
        );
        let np = patterns.num_patterns();
        let tip_clvs = (0..patterns.num_taxa())
            .map(|taxon| {
                let mut clv = vec![0.0; np * NUM_STATES];
                fill_tip_clv(&patterns, taxon, &mut clv);
                clv
            })
            .collect();
        LikelihoodEngine {
            patterns,
            model,
            categories,
            tip_clvs,
            mode: KernelMode::default(),
            intra: IntraPar::serial(),
            pool: WorkspacePool::new(),
        }
    }

    /// The same engine routed through a specific kernel implementation
    /// (used by equivalence tests and benchmark baselines).
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> LikelihoodEngine {
        self.mode = mode;
        self
    }

    /// The same engine with an `n`-thread intra-rank pool fanning kernel
    /// pattern blocks (the `--intra-threads` flag); `n <= 1` keeps the
    /// zero-overhead serial path. Results are bit-identical at any `n`.
    pub fn with_intra_threads(mut self, n: usize) -> LikelihoodEngine {
        self.set_intra_threads(n);
        self
    }

    /// Rebuild the intra-rank pool in place.
    pub fn set_intra_threads(&mut self, n: usize) {
        self.intra = IntraPar::with_threads(n);
        // Pooled kernel scratch carries a handle to the previous pool.
        self.pool.clear();
    }

    /// The configured intra-rank thread count (1 when serial).
    pub fn intra_threads(&self) -> usize {
        self.intra.threads()
    }

    /// The intra-rank pool handle.
    pub(crate) fn intra(&self) -> &IntraPar {
        &self.intra
    }

    /// Kernel scratch bound to this engine's categories and intra-rank
    /// pool, for callers whose scratch outlives a [`Workspace`] (the
    /// scorer, the incremental CLV cache).
    pub(crate) fn kernel_scratch(&self) -> KernelScratch {
        KernelScratch::with_par(&self.categories, self.intra.clone())
    }

    /// Switch the kernel implementation in place.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
    }

    /// The active kernel implementation.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// The pattern-compressed alignment.
    pub fn patterns(&self) -> &PatternAlignment {
        &self.patterns
    }

    /// The substitution model.
    pub fn model(&self) -> &F84Model {
        &self.model
    }

    /// The rate categories.
    pub fn categories(&self) -> &RateCategories {
        &self.categories
    }

    /// Replace the rate categories (e.g. with DNArates estimates).
    pub fn set_categories(&mut self, categories: RateCategories) {
        assert_eq!(categories.num_patterns(), self.patterns.num_patterns());
        self.categories = categories;
        // Pooled kernel scratch carries category runs for the old
        // assignment; drop it rather than let stale runs be reused.
        self.pool.clear();
    }

    /// The cached tip CLV of one taxon.
    pub(crate) fn tip_clv(&self, taxon: u32) -> &[f64] {
        &self.tip_clvs[taxon as usize]
    }

    /// Log-likelihood of a tree with its current branch lengths.
    pub fn evaluate(&self, tree: &Tree) -> EvalResult {
        let mut ws = Workspace::new(self, tree);
        let mut work = WorkCounter::new();
        ws.compute_all_down(tree, &mut work);
        let lnl = ws.root_log_likelihood(tree, &mut work);
        work.trees_evaluated = 1;
        EvalResult {
            ln_likelihood: lnl,
            work,
        }
    }

    /// Optimize every branch length in place; returns the final
    /// log-likelihood. This is the worker's full treatment of a tree.
    pub fn optimize(&self, tree: &mut Tree, opts: &OptimizeOptions) -> EvalResult {
        let mut ws = Workspace::new(self, tree);
        let mut work = WorkCounter::new();
        ws.compute_all_down(tree, &mut work);
        for _ in 0..opts.max_passes {
            let max_delta = ws.smooth_pass(tree, opts, &mut work);
            if max_delta <= opts.length_tolerance {
                break;
            }
        }
        let lnl = ws.root_log_likelihood(tree, &mut work);
        work.trees_evaluated = 1;
        EvalResult {
            ln_likelihood: lnl,
            work,
        }
    }

    /// Per-pattern log-likelihood contributions (without pattern weights);
    /// used by the DNArates analog.
    pub fn per_pattern_log_likelihoods(&self, tree: &Tree) -> Vec<f64> {
        self.per_pattern_lnl_at_rate(tree, 1.0)
    }

    /// Per-pattern log-likelihoods with every rate multiplied by
    /// `rate_factor` (the DNArates grid scan).
    pub fn per_pattern_lnl_at_rate(&self, tree: &Tree, rate_factor: f64) -> Vec<f64> {
        let engine = if (rate_factor - 1.0).abs() < 1e-15 {
            self.clone()
        } else {
            LikelihoodEngine::with_parts(
                self.patterns.clone(),
                self.model.clone(),
                self.categories.scaled(rate_factor),
            )
        };
        let mut ws = Workspace::new(&engine, tree);
        let mut work = WorkCounter::new();
        ws.compute_all_down(tree, &mut work);
        ws.per_pattern_root_lnl(tree)
    }
}

/// The directional CLV buffers of one workspace, separated from the rest so
/// kernel scratch (`&mut`) and CLV reads (`&`) can borrow disjoint fields.
#[derive(Default)]
pub(crate) struct ClvBuffers {
    /// Parent node of each edge under the root orientation.
    parent: Vec<NodeId>,
    /// Child node of each edge under the root orientation.
    child: Vec<NodeId>,
    /// Taxon whose cached tip CLV backs `down[e]` (`u32::MAX` when the
    /// buffer itself holds the data). Optimized mode aliases pendant-edge
    /// CLVs to the engine's tip cache instead of copying them.
    down_tip: Vec<u32>,
    /// Same for `up[e]` (only the root pendant edge has a tip parent).
    up_tip: Vec<u32>,
    down: Vec<Vec<f64>>,
    down_scale: Vec<Vec<i32>>,
    up: Vec<Vec<f64>>,
    up_scale: Vec<Vec<i32>>,
    /// Shared all-zero scale vector backing aliased tip CLVs.
    zero_scale: Vec<i32>,
}

impl ClvBuffers {
    /// Re-key the buffers to one tree: size the per-edge tables and rebuild
    /// the orientation index. Existing CLV allocations are kept; their stale
    /// contents are fully overwritten before being read.
    fn prepare(&mut self, cap: usize, order: &[(NodeId, EdgeId, NodeId)]) {
        self.down.resize_with(cap, Vec::new);
        self.down_scale.resize_with(cap, Vec::new);
        self.up.resize_with(cap, Vec::new);
        self.up_scale.resize_with(cap, Vec::new);
        self.parent.clear();
        self.parent.resize(cap, NodeId(u32::MAX));
        self.child.clear();
        self.child.resize(cap, NodeId(u32::MAX));
        self.down_tip.clear();
        self.down_tip.resize(cap, u32::MAX);
        self.up_tip.clear();
        self.up_tip.resize(cap, u32::MAX);
        for &(c, e, p) in order {
            self.parent[e.0 as usize] = p;
            self.child[e.0 as usize] = c;
        }
    }

    /// The `down` CLV of edge `ei` with its scale counts, resolving tip
    /// aliases to the engine's cached tip vectors.
    fn down_of<'a>(&'a self, engine: &'a LikelihoodEngine, ei: usize) -> (&'a [f64], &'a [i32]) {
        match self.down_tip[ei] {
            u32::MAX => (&self.down[ei], &self.down_scale[ei]),
            taxon => (engine.tip_clv(taxon), &self.zero_scale),
        }
    }

    /// The `up` CLV of edge `ei` with its scale counts (see [`Self::down_of`]).
    fn up_of<'a>(&'a self, engine: &'a LikelihoodEngine, ei: usize) -> (&'a [f64], &'a [i32]) {
        match self.up_tip[ei] {
            u32::MAX => (&self.up[ei], &self.up_scale[ei]),
            taxon => (engine.tip_clv(taxon), &self.zero_scale),
        }
    }

    /// The directional CLV of edge `e` anchored at `anchor` (an endpoint of
    /// `e`), covering `anchor`'s component when `e` is cut. Requires both
    /// sweeps to have run on the tree these buffers were prepared for.
    pub(crate) fn directional<'a>(
        &'a self,
        engine: &'a LikelihoodEngine,
        e: EdgeId,
        anchor: NodeId,
    ) -> (&'a [f64], &'a [i32]) {
        let ei = e.0 as usize;
        if self.child[ei] == anchor {
            self.down_of(engine, ei)
        } else {
            debug_assert_eq!(self.parent[ei], anchor);
            self.up_of(engine, ei)
        }
    }
}

/// Source of unique [`PoolEntry`] lease ids (shared by every pool; only
/// uniqueness matters, not density).
static NEXT_LEASE: AtomicU64 = AtomicU64::new(1);

/// One recycled buffer set: CLVs plus the per-workspace kernel state.
struct PoolEntry {
    clvs: ClvBuffers,
    wterms: Vec<WTerms>,
    scratch: KernelScratch,
    /// Unique id backing the pool's debug double-hand-out assertion.
    lease: u64,
}

impl PoolEntry {
    fn fresh(categories: &RateCategories, par: &IntraPar) -> PoolEntry {
        PoolEntry {
            clvs: ClvBuffers::default(),
            wterms: Vec::new(),
            scratch: KernelScratch::with_par(categories, par.clone()),
            lease: NEXT_LEASE.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// Directional-CLV workspace for one tree.
pub(crate) struct Workspace<'e> {
    engine: &'e LikelihoodEngine,
    /// Root tip (lowest taxon) and its pendant edge.
    root: NodeId,
    root_edge: EdgeId,
    /// Postorder of directed steps (child, edge, parent) toward `root`.
    order: Vec<(NodeId, EdgeId, NodeId)>,
    /// Per-edge CLV storage and orientation index.
    clvs: ClvBuffers,
    /// Scratch for W-terms.
    wterms: Vec<WTerms>,
    /// Reusable kernel state (category runs + coefficient tables).
    scratch: KernelScratch,
    /// Lease id of the pooled buffer set (see [`WorkspacePool`]).
    lease: u64,
}

impl<'e> Workspace<'e> {
    pub(crate) fn new(engine: &'e LikelihoodEngine, tree: &Tree) -> Workspace<'e> {
        let np = engine.patterns.num_patterns();
        let root = tree
            .tips()
            .min_by_key(|&(_, t)| t)
            .expect("tree must have tips")
            .0;
        let root_edge = tree.incident_edges(root)[0];
        let order = tree.postorder_toward(root);
        let cap = tree.edge_capacity();
        let entry = if engine.mode == KernelMode::Optimized {
            engine.pool.lease(&engine.categories, &engine.intra)
        } else {
            // Reference mode reproduces the seed's allocate-per-call
            // behavior and never recycles through the pool.
            PoolEntry::fresh(&engine.categories, &engine.intra)
        };
        let PoolEntry {
            mut clvs,
            mut wterms,
            scratch,
            lease,
        } = entry;
        clvs.prepare(cap, &order);
        if engine.mode == KernelMode::Optimized && clvs.zero_scale.len() != np {
            clvs.zero_scale.clear();
            clvs.zero_scale.resize(np, 0);
        }
        if wterms.len() != np {
            wterms.clear();
            wterms.resize(np, WTerms::ZERO);
        }
        Workspace {
            engine,
            root,
            root_edge,
            order,
            clvs,
            wterms,
            scratch,
            lease,
        }
    }

    fn np(&self) -> usize {
        self.engine.patterns.num_patterns()
    }

    /// Compute `down[e]` for every edge, children before parents.
    pub(crate) fn compute_all_down(&mut self, tree: &Tree, work: &mut WorkCounter) {
        for i in 0..self.order.len() {
            let (c, e, _) = self.order[i];
            self.compute_down_edge(tree, c, e, work);
        }
    }

    /// Compute `up[e]` for every edge, parents before children (requires
    /// `compute_all_down` to have run).
    pub(crate) fn compute_all_up(&mut self, tree: &Tree, work: &mut WorkCounter) {
        for i in (0..self.order.len()).rev() {
            let (_, e, _) = self.order[i];
            self.compute_up_edge(tree, e, work);
        }
    }

    /// The directional CLV anchored at `anchor` (an endpoint of `e`),
    /// covering `anchor`'s component when `e` is cut, with its per-pattern
    /// scale counts. Requires both sweeps to have run.
    pub(crate) fn directional(&self, e: EdgeId, anchor: NodeId) -> (&[f64], &[i32]) {
        self.clvs.directional(self.engine, e, anchor)
    }

    /// The underlying CLV buffers, for callers that resolve directional
    /// CLVs against a separately borrowed engine (prune contexts, the
    /// incremental cache).
    pub(crate) fn clv_buffers(&self) -> &ClvBuffers {
        &self.clvs
    }

    /// Extract the computed CLV buffers, consuming the workspace view.
    /// The incremental cache owns its CLVs across tasks instead of
    /// borrowing the engine; `Drop` still recycles the remaining (emptied)
    /// pooled parts, which `prepare` re-sizes on reuse.
    pub(crate) fn into_clv_buffers(mut self) -> ClvBuffers {
        std::mem::take(&mut self.clvs)
    }

    /// Recompute `down[e]` (anchored at its child `c`) from the children of
    /// `c`, or from the tip vector when `c` is a tip.
    fn compute_down_edge(&mut self, tree: &Tree, c: NodeId, e: EdgeId, work: &mut WorkCounter) {
        let np = self.np();
        let ei = e.0 as usize;
        let engine = self.engine;
        if let Some(taxon) = tree.taxon(c) {
            if engine.mode == KernelMode::Optimized {
                // Zero-copy: the pendant CLV aliases the engine's cached
                // tip vector; scale counts alias the shared zero vector.
                self.clvs.down_tip[ei] = taxon;
            } else {
                // Seed behavior: copy the tip CLV into this edge's buffer,
                // reusing its allocation.
                let dst = &mut self.clvs.down[ei];
                dst.clear();
                dst.extend_from_slice(engine.tip_clv(taxon));
                let sc = &mut self.clvs.down_scale[ei];
                sc.clear();
                sc.resize(np, 0);
            }
            return;
        }
        let mut kids = [(usize::MAX, 0.0f64); 2];
        let mut nk = 0;
        for (f, _) in tree.neighbors(c) {
            if f != e {
                kids[nk] = (f.0 as usize, tree.length(f));
                nk += 1;
            }
        }
        debug_assert_eq!(nk, 2);
        let (f1, f2) = (kids[0].0, kids[1].0);
        let mut out = std::mem::take(&mut self.clvs.down[ei]);
        let mut out_scale = std::mem::take(&mut self.clvs.down_scale[ei]);
        out.resize(np * NUM_STATES, 0.0);
        out_scale.resize(np, 0);
        let (clv1, sc1) = self.clvs.down_of(engine, f1);
        let (clv2, sc2) = self.clvs.down_of(engine, f2);
        work.clv_pattern_updates += kernels::combine_edges(
            engine.mode,
            &engine.model,
            &engine.categories,
            &mut self.scratch,
            kids[0].1,
            clv1,
            sc1,
            kids[1].1,
            clv2,
            sc2,
            &mut out,
            &mut out_scale,
        );
        self.clvs.down[ei] = out;
        self.clvs.down_scale[ei] = out_scale;
    }

    /// Recompute `up[e]` (anchored at its parent `p`) from `p`'s other
    /// edges, or from the tip vector when `p` is a tip (the root).
    fn compute_up_edge(&mut self, tree: &Tree, e: EdgeId, work: &mut WorkCounter) {
        let np = self.np();
        let ei = e.0 as usize;
        let p = self.clvs.parent[ei];
        let engine = self.engine;
        if let Some(taxon) = tree.taxon(p) {
            if engine.mode == KernelMode::Optimized {
                self.clvs.up_tip[ei] = taxon;
            } else {
                let dst = &mut self.clvs.up[ei];
                dst.clear();
                dst.extend_from_slice(engine.tip_clv(taxon));
                let sc = &mut self.clvs.up_scale[ei];
                sc.clear();
                sc.resize(np, 0);
            }
            return;
        }
        // p's other two edges: either down-edges (p is their parent) or p's
        // own rootward edge (p is its child) whose far CLV is `up`.
        let mut others = [(usize::MAX, 0.0f64, false); 2];
        let mut nk = 0;
        for (f, _) in tree.neighbors(p) {
            if f != e {
                let fi = f.0 as usize;
                others[nk] = (fi, tree.length(f), self.clvs.parent[fi] == p);
                nk += 1;
            }
        }
        debug_assert_eq!(nk, 2);
        // When p is the far edge's parent, the far CLV is that edge's down;
        // when p is its child (p's own rootward edge), the far CLV is up.
        let (f1, f1_down) = (others[0].0, others[0].2);
        let (f2, f2_down) = (others[1].0, others[1].2);
        let mut out = std::mem::take(&mut self.clvs.up[ei]);
        let mut out_scale = std::mem::take(&mut self.clvs.up_scale[ei]);
        out.resize(np * NUM_STATES, 0.0);
        out_scale.resize(np, 0);
        let (clv1, sc1) = if f1_down {
            self.clvs.down_of(engine, f1)
        } else {
            self.clvs.up_of(engine, f1)
        };
        let (clv2, sc2) = if f2_down {
            self.clvs.down_of(engine, f2)
        } else {
            self.clvs.up_of(engine, f2)
        };
        work.clv_pattern_updates += kernels::combine_edges(
            engine.mode,
            &engine.model,
            &engine.categories,
            &mut self.scratch,
            others[0].1,
            clv1,
            sc1,
            others[1].1,
            clv2,
            sc2,
            &mut out,
            &mut out_scale,
        );
        self.clvs.up[ei] = out;
        self.clvs.up_scale[ei] = out_scale;
    }

    /// One Gauss–Seidel sweep: preorder down the tree, optimizing each
    /// branch with a fresh `up` CLV, then rebuilding `down` CLVs on the way
    /// back up. Returns the largest branch-length change.
    fn smooth_pass(
        &mut self,
        tree: &mut Tree,
        opts: &OptimizeOptions,
        work: &mut WorkCounter,
    ) -> f64 {
        self.smooth_edge(tree, self.root_edge, opts, work)
    }

    fn smooth_edge(
        &mut self,
        tree: &mut Tree,
        e: EdgeId,
        opts: &OptimizeOptions,
        work: &mut WorkCounter,
    ) -> f64 {
        let ei = e.0 as usize;
        self.compute_up_edge(tree, e, work);
        // Optimize this branch.
        let engine = self.engine;
        let (up_clv, _) = self.clvs.up_of(engine, ei);
        let (down_clv, _) = self.clvs.down_of(engine, ei);
        work.loglik_pattern_evals += kernels::compute_w_terms(
            engine.mode,
            &engine.model,
            engine.intra(),
            up_clv,
            down_clv,
            &mut self.wterms,
        );
        let t0 = tree.length(e);
        let t = kernels::optimize_branch_dispatch(
            engine.mode,
            &engine.model,
            &engine.categories,
            &mut self.scratch,
            &self.wterms,
            engine.patterns.weights(),
            t0,
            &opts.newton,
            work,
        );
        tree.set_length(e, t);
        let mut max_delta = (t - t0).abs();
        let c = self.clvs.child[ei];
        if tree.is_internal(c) {
            let mut kid_edges = [EdgeId(u32::MAX); 2];
            let mut nk = 0;
            for (f, _) in tree.neighbors(c) {
                if f != e {
                    kid_edges[nk] = f;
                    nk += 1;
                }
            }
            for &f in &kid_edges[..nk] {
                max_delta = max_delta.max(self.smooth_edge(tree, f, opts, work));
            }
            self.compute_down_edge(tree, c, e, work);
        }
        max_delta
    }

    /// Final log-likelihood at the root pendant edge.
    fn root_log_likelihood(&mut self, tree: &Tree, work: &mut WorkCounter) -> f64 {
        let ei = self.root_edge.0 as usize;
        let engine = self.engine;
        // up[root_edge] is the root tip vector.
        let root_taxon = tree.taxon(self.root).expect("root is a tip");
        let tip = engine.tip_clv(root_taxon);
        let (down_clv, down_sc) = self.clvs.down_of(engine, ei);
        work.loglik_pattern_evals += kernels::compute_w_terms(
            engine.mode,
            &engine.model,
            engine.intra(),
            tip,
            down_clv,
            &mut self.wterms,
        );
        kernels::branch_lnl(
            engine.mode,
            &engine.model,
            &engine.categories,
            &mut self.scratch,
            tree.length(self.root_edge),
            &self.wterms,
            engine.patterns.weights(),
            down_sc,
        )
    }

    /// Per-pattern (unweighted) root log-likelihoods (no branch scaling).
    fn per_pattern_root_lnl(&mut self, tree: &Tree) -> Vec<f64> {
        let ei = self.root_edge.0 as usize;
        let engine = self.engine;
        let root_taxon = tree.taxon(self.root).expect("root is a tip");
        let tip = engine.tip_clv(root_taxon);
        let (down_clv, down_sc) = self.clvs.down_of(engine, ei);
        kernels::compute_w_terms(
            engine.mode,
            &engine.model,
            engine.intra(),
            tip,
            down_clv,
            &mut self.wterms,
        );
        // Cold path (one call per rate scan); the per-call allocation is fine.
        let co = crate::reference::branch_coefficients(
            &engine.model,
            &engine.categories,
            tree.length(self.root_edge),
        );
        self.wterms
            .iter()
            .enumerate()
            .map(|(p, w)| {
                let c = &co[engine.categories.category_of(p)];
                let f = (c.c1 * w.w1 + c.c2 * w.w2 + c.c3 * w.w3).max(f64::MIN_POSITIVE);
                f.ln() + down_sc[p] as f64 * LN_SCALE
            })
            .collect()
    }
}

impl Drop for Workspace<'_> {
    /// Recycle the buffer set through the engine's pool (optimized mode
    /// only; the reference mode frees per call like the seed).
    fn drop(&mut self) {
        if self.engine.mode == KernelMode::Optimized {
            self.engine.pool.put(PoolEntry {
                clvs: std::mem::take(&mut self.clvs),
                wterms: std::mem::take(&mut self.wterms),
                scratch: std::mem::take(&mut self.scratch),
                lease: self.lease,
            });
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // 4×4 matrix index math reads clearest
mod tests {
    use super::*;
    use fdml_phylo::dna::Nucleotide;
    use fdml_phylo::tree::DEFAULT_BRANCH_LENGTH;

    /// Independent brute-force likelihood: per original site, recursive
    /// summation with full 4×4 transition matrices, no pattern compression,
    /// no scaling, no three-term decomposition.
    fn brute_force_lnl(engine: &LikelihoodEngine, alignment: &Alignment, tree: &Tree) -> f64 {
        fn subtree_lnl(
            model: &F84Model,
            alignment: &Alignment,
            tree: &Tree,
            site: usize,
            rate: f64,
            node: NodeId,
            via: EdgeId,
        ) -> [f64; 4] {
            if let Some(taxon) = tree.taxon(node) {
                let mask: Nucleotide = alignment.sequence(taxon)[site];
                let mut v = [0.0; 4];
                for s in 0..4 {
                    v[s] = if mask.allows(s) { 1.0 } else { 0.0 };
                }
                return v;
            }
            let mut out = [1.0f64; 4];
            for (e, next) in tree.neighbors(node) {
                if e == via {
                    continue;
                }
                let sub = subtree_lnl(model, alignment, tree, site, rate, next, e);
                let p = model.transition_matrix(tree.length(e), rate);
                for s in 0..4 {
                    let mut acc = 0.0;
                    for (x, sx) in sub.iter().enumerate() {
                        acc += p[s][x] * sx;
                    }
                    out[s] *= acc;
                }
            }
            out
        }
        let model = engine.model();
        let root = tree.tips().min_by_key(|&(_, t)| t).unwrap().0;
        let e0 = tree.incident_edges(root)[0];
        let c0 = tree.other_end(e0, root);
        let mut lnl = 0.0;
        for site in 0..alignment.num_sites() {
            let pattern = engine.patterns().pattern_of_site(site) as usize;
            let rate = engine.categories().rate_of_pattern(pattern);
            let below = subtree_lnl(model, alignment, tree, site, rate, c0, e0);
            let p = model.transition_matrix(tree.length(e0), rate);
            let root_mask = alignment.sequence(tree.taxon(root).unwrap())[site];
            let mut total = 0.0;
            for s in 0..4 {
                if !root_mask.allows(s) {
                    continue;
                }
                let mut acc = 0.0;
                for (x, bx) in below.iter().enumerate() {
                    acc += p[s][x] * bx;
                }
                total += model.freqs[s] * acc;
            }
            lnl += total.ln();
        }
        lnl
    }

    fn five_taxon_case() -> (Alignment, Tree) {
        let a = Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTTTGA"),
            ("t1", "ACGTACGAACGTTTGA"),
            ("t2", "ACGTTCGAACGATTGA"),
            ("t3", "CCGTTCGAACGATAGA"),
            ("t4", "CCGTTCGAACNATAG-"),
        ])
        .unwrap();
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.incident_edges(t.tip_of(2).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        let e = t.incident_edges(t.tip_of(3).unwrap())[0];
        t.insert_taxon(4, e).unwrap();
        for (i, e) in t.edge_ids().collect::<Vec<_>>().into_iter().enumerate() {
            t.set_length(e, 0.05 + 0.03 * i as f64);
        }
        (a, t)
    }

    #[test]
    fn evaluate_matches_brute_force() {
        let (a, t) = five_taxon_case();
        let engine = LikelihoodEngine::new(&a);
        let fast = engine.evaluate(&t).ln_likelihood;
        let brute = brute_force_lnl(&engine, &a, &t);
        assert!((fast - brute).abs() < 1e-8, "fast {fast} vs brute {brute}");
    }

    #[test]
    fn evaluate_matches_brute_force_with_categories() {
        let (a, t) = five_taxon_case();
        let patterns = PatternAlignment::compress(&a);
        let np = patterns.num_patterns();
        let assignment: Vec<u32> = (0..np as u32).map(|p| p % 3).collect();
        let cats = RateCategories::new(vec![0.3, 1.0, 2.5], assignment);
        let engine = LikelihoodEngine::with_parts(patterns, F84Model::from_alignment(&a), cats);
        let fast = engine.evaluate(&t).ln_likelihood;
        let brute = brute_force_lnl(&engine, &a, &t);
        assert!((fast - brute).abs() < 1e-8, "fast {fast} vs brute {brute}");
    }

    #[test]
    fn compression_preserves_likelihood() {
        let (a, t) = five_taxon_case();
        let compressed = LikelihoodEngine::new(&a);
        let uncompressed = LikelihoodEngine::with_parts(
            PatternAlignment::uncompressed(&a),
            F84Model::from_alignment(&a),
            RateCategories::single(a.num_sites()),
        );
        let l1 = compressed.evaluate(&t).ln_likelihood;
        let l2 = uncompressed.evaluate(&t).ln_likelihood;
        assert!((l1 - l2).abs() < 1e-9);
        // Compression does less work.
        assert!(
            compressed.evaluate(&t).work.clv_pattern_updates
                < uncompressed.evaluate(&t).work.clv_pattern_updates
        );
    }

    #[test]
    fn pair_tree_evaluation_works() {
        let a = Alignment::from_strings(&[("x", "ACGTACGT"), ("y", "ACGTACGA")]).unwrap();
        let engine = LikelihoodEngine::new(&a);
        let t = Tree::pair(0, 1);
        let r = engine.evaluate(&t);
        assert!(r.ln_likelihood.is_finite() && r.ln_likelihood < 0.0);
    }

    #[test]
    fn optimize_improves_and_converges() {
        let (a, mut t) = five_taxon_case();
        let engine = LikelihoodEngine::new(&a);
        let before = engine.evaluate(&t).ln_likelihood;
        let opts = OptimizeOptions::default();
        let after = engine.optimize(&mut t, &opts).ln_likelihood;
        assert!(
            after >= before - 1e-9,
            "optimize must not reduce lnL: {before} → {after}"
        );
        // Idempotence: a second optimization barely moves.
        let mut t2 = t.clone();
        let again = engine.optimize(&mut t2, &opts).ln_likelihood;
        assert!((again - after).abs() < 1e-3, "{after} vs {again}");
    }

    #[test]
    fn optimized_lengths_match_jukes_cantor_formula() {
        // Uniform frequencies + unachievable tt-ratio degenerate to JC.
        // For two sequences with proportion p of differing sites, the ML
        // distance is -(3/4)·ln(1 - 4p/3).
        let n = 400;
        let k = 60; // differing sites
        let s1 = "A".repeat(n);
        let s2 = format!("{}{}", "C".repeat(k), "A".repeat(n - k));
        let a = Alignment::from_strings(&[("x", &s1), ("y", &s2)]).unwrap();
        let engine = LikelihoodEngine::with_parts(
            PatternAlignment::compress(&a),
            F84Model::uniform(0.5),
            RateCategories::single(PatternAlignment::compress(&a).num_patterns()),
        );
        let mut t = Tree::pair(0, 1);
        let opts = OptimizeOptions {
            max_passes: 20,
            length_tolerance: 1e-10,
            newton: NewtonOptions {
                max_iters: 60,
                tolerance: 1e-12,
            },
        };
        engine.optimize(&mut t, &opts);
        let p = k as f64 / n as f64;
        let expected = -0.75 * (1.0 - 4.0 * p / 3.0).ln();
        let e = t.edge_ids().next().unwrap();
        assert!(
            (t.length(e) - expected).abs() < 1e-3,
            "JC distance: expected {expected}, got {}",
            t.length(e)
        );
    }

    #[test]
    fn likelihood_invariant_under_construction_order() {
        // Same topology assembled two ways must evaluate identically.
        let (a, _) = five_taxon_case();
        let engine = LikelihoodEngine::new(&a);
        let names: Vec<String> = a.names().to_vec();
        let newick = "((t0:0.1,t1:0.2):0.05,(t2:0.15,t3:0.1):0.07,t4:0.3);";
        let t1 = fdml_phylo::newick::parse_tree_with_names(newick, &names).unwrap();
        // Same tree, serialized and re-parsed.
        let text = fdml_phylo::newick::write_tree(&t1, &names);
        let t2 = fdml_phylo::newick::parse_tree_with_names(&text, &names).unwrap();
        let l1 = engine.evaluate(&t1).ln_likelihood;
        let l2 = engine.evaluate(&t2).ln_likelihood;
        assert!((l1 - l2).abs() < 1e-9);
    }

    #[test]
    fn rate_doubling_equals_length_doubling() {
        let (a, t) = five_taxon_case();
        let patterns = PatternAlignment::compress(&a);
        let np = patterns.num_patterns();
        let model = F84Model::from_alignment(&a);
        let double_rate = LikelihoodEngine::with_parts(
            patterns.clone(),
            model.clone(),
            RateCategories::new(vec![2.0], vec![0; np]),
        );
        let unit_rate = LikelihoodEngine::with_parts(patterns, model, RateCategories::single(np));
        let mut t2 = t.clone();
        for e in t2.edge_ids().collect::<Vec<_>>() {
            let len = t2.length(e);
            t2.set_length(e, len * 2.0);
        }
        let l1 = double_rate.evaluate(&t).ln_likelihood;
        let l2 = unit_rate.evaluate(&t2).ln_likelihood;
        assert!((l1 - l2).abs() < 1e-9);
    }

    #[test]
    fn large_tree_does_not_underflow() {
        // 120-taxon caterpillar with identical-ish sequences: without
        // scaling, per-pattern likelihoods would underflow f64.
        let n = 120usize;
        let rows: Vec<(String, String)> = (0..n)
            .map(|i| {
                let mut s = "ACGTACGTACGTACGTACGT".to_string();
                // a couple of taxon-specific substitutions
                if i % 3 == 0 {
                    s.replace_range(0..1, "T");
                }
                if i % 5 == 0 {
                    s.replace_range(4..5, "C");
                }
                (format!("t{i}"), s)
            })
            .collect();
        let row_refs: Vec<(&str, &str)> =
            rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        let a = Alignment::from_strings(&row_refs).unwrap();
        let mut t = Tree::triplet(0, 1, 2);
        for taxon in 3..n as u32 {
            let e = t.incident_edges(t.tip_of(taxon - 1).unwrap())[0];
            t.insert_taxon(taxon, e).unwrap();
        }
        for e in t.edge_ids().collect::<Vec<_>>() {
            t.set_length(e, 1e-4);
        }
        let engine = LikelihoodEngine::new(&a);
        let r = engine.evaluate(&t);
        assert!(
            r.ln_likelihood.is_finite(),
            "lnL must stay finite: {}",
            r.ln_likelihood
        );
        assert!(r.ln_likelihood < 0.0);
    }

    #[test]
    fn per_pattern_lnl_sums_to_total() {
        let (a, t) = five_taxon_case();
        let engine = LikelihoodEngine::new(&a);
        let per = engine.per_pattern_log_likelihoods(&t);
        let total: f64 = per
            .iter()
            .zip(engine.patterns().weights())
            .map(|(l, &w)| l * w as f64)
            .sum();
        let direct = engine.evaluate(&t).ln_likelihood;
        assert!((total - direct).abs() < 1e-9);
    }

    #[test]
    fn per_pattern_rate_scan_brackets_optimum() {
        // At very small and very large global rates the likelihood drops.
        let (a, mut t) = five_taxon_case();
        let engine = LikelihoodEngine::new(&a);
        engine.optimize(&mut t, &OptimizeOptions::default());
        let sum = |v: Vec<f64>| -> f64 {
            v.iter()
                .zip(engine.patterns().weights())
                .map(|(l, &w)| l * w as f64)
                .sum()
        };
        let tiny = sum(engine.per_pattern_lnl_at_rate(&t, 1e-3));
        let mid = sum(engine.per_pattern_lnl_at_rate(&t, 1.0));
        let huge = sum(engine.per_pattern_lnl_at_rate(&t, 100.0));
        assert!(
            mid > tiny && mid > huge,
            "tiny {tiny}, mid {mid}, huge {huge}"
        );
    }

    #[test]
    fn work_counters_populate() {
        let (a, mut t) = five_taxon_case();
        let engine = LikelihoodEngine::new(&a);
        let r = engine.optimize(&mut t, &OptimizeOptions::default());
        assert!(r.work.clv_pattern_updates > 0);
        assert!(r.work.newton_pattern_iters > 0);
        assert!(r.work.loglik_pattern_evals > 0);
        assert_eq!(r.work.trees_evaluated, 1);
        assert!(r.work.work_units() > 0);
    }

    #[test]
    fn pooled_workspace_reuse_is_deterministic() {
        // The optimized mode recycles workspace buffers through the
        // engine's pool; repeated evaluations — including across trees of
        // different sizes, where the pooled per-edge tables are re-keyed —
        // must reproduce a fresh engine's results exactly.
        let (a, t) = five_taxon_case();
        let engine = LikelihoodEngine::new(&a);
        let first = engine.evaluate(&t).ln_likelihood;
        for _ in 0..3 {
            assert_eq!(engine.evaluate(&t).ln_likelihood, first);
        }
        // A smaller tree over the same alignment (taxa subset) between two
        // full-size evaluations exercises pool entries shrinking/growing.
        let small = Tree::triplet(0, 1, 2);
        let small_first = engine.evaluate(&small).ln_likelihood;
        assert_eq!(engine.evaluate(&t).ln_likelihood, first);
        assert_eq!(engine.evaluate(&small).ln_likelihood, small_first);
        // And a fresh engine (empty pool) agrees bit-for-bit.
        let fresh = LikelihoodEngine::new(&a);
        assert_eq!(fresh.evaluate(&t).ln_likelihood, first);
        assert_eq!(fresh.evaluate(&small).ln_likelihood, small_first);
    }

    #[test]
    fn intra_threads_are_bit_identical() {
        // The canonical block reduction makes the thread count invisible
        // in the output bits: evaluation and full branch-length
        // optimization agree exactly between a serial engine and a
        // 4-thread pool (on a tree large enough to span several blocks).
        let (a, t) = five_taxon_case();
        let serial = LikelihoodEngine::new(&a);
        let pooled = LikelihoodEngine::new(&a).with_intra_threads(4);
        assert_eq!(pooled.intra_threads(), 4);
        assert_eq!(
            serial.evaluate(&t).ln_likelihood,
            pooled.evaluate(&t).ln_likelihood
        );
        let opts = OptimizeOptions::default();
        let mut t_serial = t.clone();
        let mut t_pooled = t.clone();
        let lnl_s = serial.optimize(&mut t_serial, &opts).ln_likelihood;
        let lnl_p = pooled.optimize(&mut t_pooled, &opts).ln_likelihood;
        assert_eq!(lnl_s, lnl_p);
        for e in t_serial.edge_ids() {
            assert_eq!(t_serial.length(e).to_bits(), t_pooled.length(e).to_bits());
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "leased twice")]
    fn pool_detects_double_hand_out() {
        let pool = WorkspacePool::new();
        let cats = RateCategories::single(4);
        let par = IntraPar::serial();
        let first = pool.lease(&cats, &par);
        // Forge an entry aliasing `first`'s lease id and sneak it into the
        // idle stack: handing the same id out twice must trip the debug
        // assertion before two workspaces could share buffers.
        let mut forged = PoolEntry::fresh(&cats, &par);
        forged.lease = first.lease;
        pool.entries.lock().unwrap().push(forged);
        let _second = pool.lease(&cats, &par);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "not leased")]
    fn pool_rejects_unleased_return() {
        let pool = WorkspacePool::new();
        let cats = RateCategories::single(4);
        pool.put(PoolEntry::fresh(&cats, &IntraPar::serial()));
    }

    #[test]
    fn default_branch_length_constant_sane() {
        // Constant relationship, but pinned here so a constants change
        // cannot silently break insertion defaults.
        let (lo, hi) = (
            crate::newton::MIN_BRANCH_LENGTH,
            crate::newton::MAX_BRANCH_LENGTH,
        );
        assert!((lo..hi).contains(&DEFAULT_BRANCH_LENGTH));
    }
}
