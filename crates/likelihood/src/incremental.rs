//! Incremental candidate evaluation against a cached base topology.
//!
//! Within a stepwise-addition or rearrangement round, every candidate
//! shares almost all of its subtrees with the round's base tree. The
//! [`ClvCache`] holds the base tree together with its fully indexed
//! directional CLVs (the per-edge partial likelihood tensors of Sumner &
//! Charleston, arXiv:0807.3387) and scores a candidate *edit* — a taxon
//! insertion or a subtree regraft — by recomputing only the dirty path the
//! edit perturbs: the three junction branches are Newton-optimized while
//! every other CLV is read straight from the cache. For a regraft, the
//! CLVs that face the dissolved attachment point are recomputed lazily
//! outward (the minimal dirty set), memoized across edits sharing a prune
//! point.
//!
//! Unlike [`crate::scorer::TreeScorer`], the cache *owns* its buffers
//! instead of borrowing the engine, so a worker process can keep one cache
//! alive across many single-edit tasks (the `TaskPayload::TreeEdit` wire
//! form) and rebuild it only when the round's base topology changes.
//!
//! Determinism: a score depends only on the base tree, the edit, and the
//! engine configuration — never on which edits were scored before it on
//! the same cache (the adjusted-CLV memo is a pure function of `(edge,
//! anchor)`). Two workers, or a worker and the master's quarantine path,
//! therefore produce bit-identical scores for the same edit.

use crate::engine::{ClvBuffers, LikelihoodEngine, OptimizeOptions, Workspace};
use crate::kernels::{JunctionScratch, KernelScratch};
use crate::scorer::{score_attachment, PruneContext};
use crate::work::WorkCounter;
use fdml_phylo::error::PhyloError;
use fdml_phylo::ops::{apply_move, TreeMove};
use fdml_phylo::tree::{NodeId, Tree, DEFAULT_BRANCH_LENGTH};

/// The outcome of scoring one edit incrementally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EditScore {
    /// Log-likelihood of the candidate (junction branches optimized, every
    /// other branch frozen at the base tree's lengths).
    pub ln_likelihood: f64,
    /// The three optimized junction branch lengths, ordered `[toward
    /// anchor a, toward anchor b, pendant]`.
    pub lens: [f64; 3],
    /// The two base-tree nodes flanking the new junction (the split edge's
    /// endpoints; for a regraft, ordered facing-the-prune-site first).
    pub anchors: (NodeId, NodeId),
    /// Work spent scoring this edit.
    pub work: WorkCounter,
    /// Directional CLVs served from the cache for this edit.
    pub cache_hits: u64,
    /// CLVs recomputed for the dirty path (regrafts only).
    pub edges_recomputed: u64,
}

/// Per-edge CLV cache over one base topology.
///
/// Build once per round base with [`ClvCache::build`], then call
/// [`ClvCache::score_edit`] for each candidate edit of the round.
pub struct ClvCache {
    tree: Tree,
    clvs: ClvBuffers,
    zero_scale: Vec<i32>,
    scratch: KernelScratch,
    junction: JunctionScratch,
    /// Memoized prune context, reused while consecutive edits share a
    /// prune point (scores are identical either way; only work counters
    /// and hit rates change).
    ctx: Option<PruneContext>,
    build_work: WorkCounter,
}

impl ClvCache {
    /// Index the directional CLVs of `tree` (both sweeps, no branch-length
    /// optimization — the base is expected to arrive already optimized).
    pub fn build(engine: &LikelihoodEngine, tree: Tree) -> ClvCache {
        let mut work = WorkCounter::new();
        let mut ws = Workspace::new(engine, &tree);
        ws.compute_all_down(&tree, &mut work);
        ws.compute_all_up(&tree, &mut work);
        let clvs = ws.into_clv_buffers();
        ClvCache {
            tree,
            clvs,
            zero_scale: vec![0; engine.patterns().num_patterns()],
            scratch: engine.kernel_scratch(),
            junction: JunctionScratch::new(engine.patterns().num_patterns()),
            ctx: None,
            build_work: work,
        }
    }

    /// The base tree the cache is keyed on.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Work spent building the cache (charged to the first edit scored).
    pub fn build_work(&self) -> WorkCounter {
        self.build_work
    }

    /// Score one edit against the cached base.
    pub fn score_edit(
        &mut self,
        engine: &LikelihoodEngine,
        mv: &TreeMove,
        opts: &OptimizeOptions,
    ) -> Result<EditScore, PhyloError> {
        match *mv {
            TreeMove::Insertion { taxon, at } => {
                let e = self.tree.edge_between(at.0, at.1).ok_or_else(|| {
                    PhyloError::InvalidTreeOp(format!("edit target {at:?} is not a base edge"))
                })?;
                let (clv_a, sc_a) = self.clvs.directional(engine, e, at.0);
                let (clv_b, sc_b) = self.clvs.directional(engine, e, at.1);
                let clv_c = engine.tip_clv(taxon);
                let half = self.tree.length(e) / 2.0;
                let mut lens = [half, half, DEFAULT_BRANCH_LENGTH];
                let scored = score_attachment(
                    engine,
                    &mut self.scratch,
                    &mut self.junction,
                    (clv_a, sc_a),
                    (clv_b, sc_b),
                    (clv_c, &self.zero_scale),
                    &mut lens,
                    opts,
                );
                Ok(EditScore {
                    ln_likelihood: scored.ln_likelihood,
                    lens,
                    anchors: at,
                    work: scored.work,
                    cache_hits: 3,
                    edges_recomputed: 0,
                })
            }
            TreeMove::Spr {
                root,
                attachment,
                target,
            } => {
                let rebuild = match &self.ctx {
                    Some(c) => c.root != root || c.attachment != attachment,
                    None => true,
                };
                if rebuild {
                    if self.tree.edge_between(root, attachment).is_none() {
                        return Err(PhyloError::InvalidTreeOp(format!(
                            "edit prune point {root:?}-{attachment:?} is not a base edge"
                        )));
                    }
                    self.ctx = Some(PruneContext::build(&self.tree, root, attachment));
                }
                let ctx = self.ctx.as_mut().expect("context just ensured");
                let f = ctx
                    .work_tree
                    .edge_between(target.0, target.1)
                    .ok_or_else(|| {
                        PhyloError::InvalidTreeOp(format!(
                            "edit regraft target {target:?} is not an edge of the pruned tree"
                        ))
                    })?;
                let (facing, away) = if ctx.dist(target.0) <= ctx.dist(target.1) {
                    (target.0, target.1)
                } else {
                    (target.1, target.0)
                };
                let adjusted_before = ctx.adjusted.len();
                let mut work = WorkCounter::new();
                ctx.ensure_adjusted(engine, &self.clvs, &mut self.scratch, f, facing, &mut work);
                let edges_recomputed = (ctx.adjusted.len() - adjusted_before) as u64;
                // The away-side and subtree CLVs always come from the
                // cache; the facing side counts as a hit when its adjusted
                // CLV was already memoized.
                let cache_hits = 2 + u64::from(edges_recomputed == 0);
                let (adj_clv, adj_sc) = ctx.adjusted.get(&(f, facing)).expect("just ensured");
                let (away_clv, away_sc) = self.clvs.directional(engine, f, away);
                let (sub_clv, sub_sc) =
                    self.clvs
                        .directional(engine, ctx.pendant_edge, ctx.subtree_root);
                let half = ctx.work_tree.length(f) / 2.0;
                let mut lens = [half, half, ctx.pendant_length];
                let mut scored = score_attachment(
                    engine,
                    &mut self.scratch,
                    &mut self.junction,
                    (adj_clv, adj_sc),
                    (away_clv, away_sc),
                    (sub_clv, sub_sc),
                    &mut lens,
                    opts,
                );
                scored.work += work;
                Ok(EditScore {
                    ln_likelihood: scored.ln_likelihood,
                    lens,
                    anchors: (facing, away),
                    work: scored.work,
                    cache_hits,
                    edges_recomputed,
                })
            }
        }
    }

    /// Materialize the candidate tree a score describes: the base tree with
    /// the edit applied and the three junction branches set to the
    /// optimized lengths. Evaluating this tree from scratch reproduces
    /// `score.ln_likelihood` (the equivalence suite's oracle check).
    pub fn materialize(&self, mv: &TreeMove, score: &EditScore) -> Result<Tree, PhyloError> {
        let mut cand = self.tree.clone();
        let pendant = apply_move(&mut cand, mv)?;
        let outer = match *mv {
            TreeMove::Insertion { taxon, .. } => cand.tip_of(taxon).ok_or_else(|| {
                PhyloError::InvalidTreeOp(format!("inserted taxon {taxon} has no tip"))
            })?,
            TreeMove::Spr { root, .. } => root,
        };
        let q = cand.other_end(pendant, outer);
        let (na, nb) = score.anchors;
        for (n, len) in [(na, score.lens[0]), (nb, score.lens[1])] {
            let e = cand.edge_between(q, n).ok_or_else(|| {
                PhyloError::InvalidTreeOp(format!("junction anchor {n:?} not adjacent"))
            })?;
            cand.set_length(e, len);
        }
        cand.set_length(pendant, score.lens[2]);
        Ok(cand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LikelihoodEngine;
    use crate::kernels::KernelMode;
    use crate::scorer::TreeScorer;
    use fdml_phylo::alignment::Alignment;
    use fdml_phylo::ops::{enumerate_insertion_moves, enumerate_spr_moves};

    /// Tiny deterministic generator (xorshift64*) for the seeded
    /// randomized equivalence suite.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Random alignment over `taxa` sequences of `sites` sites: a shared
    /// backbone with per-taxon substitutions so branch lengths stay away
    /// from the Newton bounds.
    fn random_alignment(rng: &mut Rng, taxa: usize, sites: usize) -> Alignment {
        const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
        let backbone: Vec<char> = (0..sites).map(|_| BASES[rng.below(4)]).collect();
        let rows: Vec<(String, String)> = (0..taxa)
            .map(|i| {
                let mut s = backbone.clone();
                for _ in 0..sites / 6 {
                    let site = rng.below(sites);
                    s[site] = BASES[rng.below(4)];
                }
                (format!("t{i}"), s.into_iter().collect())
            })
            .collect();
        let refs: Vec<(&str, &str)> = rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        Alignment::from_strings(&refs).unwrap()
    }

    /// Random binary tree over taxa `0..n-1` by random stepwise insertion.
    fn random_tree(rng: &mut Rng, n: usize) -> Tree {
        let mut t = Tree::triplet(0, 1, 2);
        for taxon in 3..n as u32 {
            let edges: Vec<_> = t.edge_ids().collect();
            let e = edges[rng.below(edges.len())];
            t.insert_taxon(taxon, e).unwrap();
        }
        t
    }

    fn assert_close_1e12(a: f64, b: f64, what: &str) {
        let tol = 1e-12 * a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "{what}: incremental {a} vs from-scratch {b} (|Δ| = {}, tol = {tol})",
            (a - b).abs()
        );
    }

    /// The seeded randomized equivalence suite: for random trees and random
    /// edits, the incremental score equals a from-scratch evaluation of the
    /// materialized candidate to ≤ 1e-12 (relative), on both kernel paths.
    /// Newton is disabled so the junction lengths are pinned and the score
    /// is exactly a likelihood, not an optimum (the with-Newton path is
    /// pinned bit-for-bit against `TreeScorer` below).
    #[test]
    fn randomized_edits_match_from_scratch_reference() {
        for seed in [3u64, 17, 91] {
            let mut rng = Rng(seed | 1);
            let a = random_alignment(&mut rng, 8, 48);
            for mode in [KernelMode::Optimized, KernelMode::Reference] {
                let engine = LikelihoodEngine::new(&a).with_kernel_mode(mode);
                let mut base = random_tree(&mut rng, 7);
                let mut opts = OptimizeOptions::default();
                engine.optimize(&mut base, &opts);
                opts.newton.max_iters = 0;
                let mut cache = ClvCache::build(&engine, base.clone());
                let mut moves = enumerate_insertion_moves(&base, 7);
                moves.extend(enumerate_spr_moves(&base, 3));
                // A deterministic random subsample keeps the suite fast.
                let picks: Vec<TreeMove> = (0..12).map(|_| moves[rng.below(moves.len())]).collect();
                for mv in &picks {
                    let score = cache.score_edit(&engine, mv, &opts).unwrap();
                    let cand = cache.materialize(mv, &score).unwrap();
                    cand.check_valid().unwrap();
                    let scratch = engine.evaluate(&cand).ln_likelihood;
                    assert_close_1e12(
                        score.ln_likelihood,
                        scratch,
                        &format!("seed {seed} mode {mode:?} move {mv:?}"),
                    );
                }
            }
        }
    }

    /// With Newton enabled, the cache must agree bit-for-bit with
    /// `TreeScorer` (the in-process scorer the serial search uses): same
    /// base CLVs, same junction algorithm, same optimized lengths — this is
    /// what makes a worker's edit score independent of which worker (or
    /// the master's quarantine path) computes it.
    #[test]
    fn score_edit_is_bit_identical_to_tree_scorer() {
        let mut rng = Rng(0xfeed);
        let a = random_alignment(&mut rng, 7, 40);
        let engine = LikelihoodEngine::new(&a);
        let base = random_tree(&mut rng, 6);
        let opts = OptimizeOptions::default();
        let mut scorer = TreeScorer::new(&engine, base, opts);
        let mut moves = enumerate_insertion_moves(scorer.tree(), 6);
        moves.extend(enumerate_spr_moves(scorer.tree(), 2));
        let expected = scorer.score_moves(&moves);
        let mut cache = ClvCache::build(&engine, scorer.tree().clone());
        for (mv, exp) in moves.iter().zip(&expected) {
            let got = cache.score_edit(&engine, mv, &opts).unwrap();
            assert_eq!(
                got.ln_likelihood.to_bits(),
                exp.ln_likelihood.to_bits(),
                "move {mv:?}: cache {} vs scorer {}",
                got.ln_likelihood,
                exp.ln_likelihood
            );
        }
    }

    /// Scores are a pure function of (base, edit): scoring order and memo
    /// reuse must not change a single bit.
    #[test]
    fn scores_are_independent_of_scoring_order() {
        let mut rng = Rng(0xabcd);
        let a = random_alignment(&mut rng, 7, 36);
        let engine = LikelihoodEngine::new(&a);
        let mut base = random_tree(&mut rng, 7);
        let opts = OptimizeOptions::default();
        engine.optimize(&mut base, &opts);
        let moves = enumerate_spr_moves(&base, 3);
        assert!(moves.len() >= 4);
        let mut forward = ClvCache::build(&engine, base.clone());
        let fwd: Vec<f64> = moves
            .iter()
            .map(|mv| {
                forward
                    .score_edit(&engine, mv, &opts)
                    .unwrap()
                    .ln_likelihood
            })
            .collect();
        let mut backward = ClvCache::build(&engine, base.clone());
        let bwd: Vec<f64> = moves
            .iter()
            .rev()
            .map(|mv| {
                backward
                    .score_edit(&engine, mv, &opts)
                    .unwrap()
                    .ln_likelihood
            })
            .collect();
        for (i, mv) in moves.iter().enumerate() {
            let b = bwd[moves.len() - 1 - i];
            assert_eq!(fwd[i].to_bits(), b.to_bits(), "move {mv:?}");
        }
        // One-at-a-time on a fresh cache (the cold-worker case) agrees too.
        for (i, mv) in moves.iter().enumerate() {
            let mut solo = ClvCache::build(&engine, base.clone());
            let s = solo.score_edit(&engine, mv, &opts).unwrap().ln_likelihood;
            assert_eq!(fwd[i].to_bits(), s.to_bits(), "move {mv:?}");
        }
    }

    /// Cache-hit accounting: insertions never recompute an edge; regrafts
    /// sharing a prune point recompute the dirty path once and hit the memo
    /// afterwards.
    #[test]
    fn hit_counters_reflect_dirty_path_reuse() {
        let mut rng = Rng(0x77);
        let a = random_alignment(&mut rng, 8, 40);
        let engine = LikelihoodEngine::new(&a);
        let mut base = random_tree(&mut rng, 8);
        let opts = OptimizeOptions::default();
        engine.optimize(&mut base, &opts);
        let mut cache = ClvCache::build(&engine, base.clone());
        let spr = enumerate_spr_moves(&base, 2);
        let mut recomputed = 0u64;
        let mut hits = 0u64;
        for mv in &spr {
            let s = cache.score_edit(&engine, mv, &opts).unwrap();
            recomputed += s.edges_recomputed;
            hits += s.cache_hits;
        }
        assert!(recomputed > 0, "some dirty-path CLVs must be recomputed");
        assert!(
            hits >= 2 * spr.len() as u64,
            "away + subtree CLVs always come from the cache"
        );
        // Re-scoring a move right after itself hits the adjusted-CLV memo:
        // the dirty path was already recomputed by the first scoring.
        let _ = cache.score_edit(&engine, &spr[0], &opts).unwrap();
        let again = cache.score_edit(&engine, &spr[0], &opts).unwrap();
        assert_eq!(again.edges_recomputed, 0);
        assert_eq!(again.cache_hits, 3);
    }

    /// Stale edits (nodes that are not an edge of the base) are typed
    /// errors, not panics — the worker turns these into protocol errors.
    #[test]
    fn stale_edit_is_a_typed_error() {
        let mut rng = Rng(0x5);
        let a = random_alignment(&mut rng, 6, 30);
        let engine = LikelihoodEngine::new(&a);
        let base = random_tree(&mut rng, 5);
        let mut cache = ClvCache::build(&engine, base);
        let bogus = TreeMove::Insertion {
            taxon: 5,
            at: (NodeId(0), NodeId(0)),
        };
        assert!(cache
            .score_edit(&engine, &bogus, &OptimizeOptions::default())
            .is_err());
    }
}
