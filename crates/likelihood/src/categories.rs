//! Per-site rate categories.
//!
//! fastDNAml adjusts the Markov process "at each sequence position to
//! account for differences between loci in propensity to show genetic
//! changes" (paper §2): every site belongs to one rate *category*, and the
//! branch lengths on that site's likelihood path are scaled by the
//! category's rate. Categories are estimated by the companion program
//! DNArates (reproduced in the `fdml-rates` crate) or supplied by the user.
//!
//! Note this is a deterministic per-site assignment, not a mixture model —
//! matching DNAml/fastDNAml, not the later gamma-mixture programs.

use serde::{Deserialize, Serialize};

/// Rate categories plus the per-pattern assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateCategories {
    rates: Vec<f64>,
    /// `assignment[pattern]` = index into `rates`.
    assignment: Vec<u32>,
}

impl RateCategories {
    /// A single unit-rate category covering all `num_patterns` patterns:
    /// the default homogeneous model.
    pub fn single(num_patterns: usize) -> RateCategories {
        RateCategories {
            rates: vec![1.0],
            assignment: vec![0; num_patterns],
        }
    }

    /// Build from explicit category rates and per-pattern assignment.
    pub fn new(rates: Vec<f64>, assignment: Vec<u32>) -> RateCategories {
        assert!(!rates.is_empty(), "at least one rate category required");
        assert!(
            rates.iter().all(|&r| r.is_finite() && r > 0.0),
            "rates must be positive, got {rates:?}"
        );
        assert!(
            assignment.iter().all(|&c| (c as usize) < rates.len()),
            "assignment references a missing category"
        );
        RateCategories { rates, assignment }
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.rates.len()
    }

    /// Number of patterns covered.
    pub fn num_patterns(&self) -> usize {
        self.assignment.len()
    }

    /// The rate of category `c`.
    #[inline]
    pub fn rate(&self, c: usize) -> f64 {
        self.rates[c]
    }

    /// All category rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The category of pattern `p`.
    #[inline]
    pub fn category_of(&self, p: usize) -> usize {
        self.assignment[p] as usize
    }

    /// The rate of pattern `p`'s category.
    #[inline]
    pub fn rate_of_pattern(&self, p: usize) -> f64 {
        self.rates[self.assignment[p] as usize]
    }

    /// Per-pattern assignment slice.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Rescale the category rates so that the pattern-weighted mean rate is
    /// one, keeping branch lengths in expected-substitutions units.
    /// `weights[p]` is the pattern multiplicity.
    pub fn normalized(mut self, weights: &[u32]) -> RateCategories {
        assert_eq!(weights.len(), self.assignment.len());
        let mut total = 0.0f64;
        let mut wsum = 0.0f64;
        for (p, &w) in weights.iter().enumerate() {
            total += w as f64 * self.rate_of_pattern(p);
            wsum += w as f64;
        }
        let mean = total / wsum;
        assert!(mean > 0.0);
        for r in &mut self.rates {
            *r /= mean;
        }
        self
    }

    /// A multiplicative global rescale of all category rates (used by the
    /// DNArates analog when scanning a rate grid).
    pub fn scaled(&self, factor: f64) -> RateCategories {
        assert!(factor > 0.0);
        RateCategories {
            rates: self.rates.iter().map(|r| r * factor).collect(),
            assignment: self.assignment.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_category_defaults() {
        let c = RateCategories::single(7);
        assert_eq!(c.num_categories(), 1);
        assert_eq!(c.num_patterns(), 7);
        assert_eq!(c.rate_of_pattern(3), 1.0);
    }

    #[test]
    fn explicit_assignment() {
        let c = RateCategories::new(vec![0.5, 2.0], vec![0, 1, 1, 0]);
        assert_eq!(c.category_of(1), 1);
        assert_eq!(c.rate_of_pattern(1), 2.0);
        assert_eq!(c.rate_of_pattern(3), 0.5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_assignment_panics() {
        RateCategories::new(vec![1.0], vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn nonpositive_rate_panics() {
        RateCategories::new(vec![0.0], vec![0]);
    }

    #[test]
    fn normalization_gives_unit_mean() {
        let c = RateCategories::new(vec![1.0, 4.0], vec![0, 1]).normalized(&[3, 1]);
        // mean = (3*1 + 1*4)/4 = 1.75
        let mean = (3.0 * c.rate(0) + c.rate(1)) / 4.0;
        assert!((mean - 1.0).abs() < 1e-12);
        // Relative rates preserved.
        assert!((c.rate(1) / c.rate(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_multiplies_rates() {
        let c = RateCategories::new(vec![1.0, 2.0], vec![0, 1]).scaled(3.0);
        assert_eq!(c.rate(0), 3.0);
        assert_eq!(c.rate(1), 6.0);
    }
}
