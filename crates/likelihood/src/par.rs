//! Intra-rank pattern-block parallelism: a shared thread-pool handle plus
//! the deterministic block partition used by every parallel kernel.
//!
//! The paper scales fastDNAml by adding ranks; this module scales each
//! rank across cores. The design constraint is **bit-identity at any
//! thread count**, which falls out of three rules:
//!
//! 1. **Canonical blocks.** Pattern space is cut into fixed
//!    [`PAR_BLOCK`]-pattern blocks — the same cut at every thread count,
//!    including 1. The blocked likelihood folds compute one partial per
//!    block and merge the partials serially in block order, so the
//!    floating-point op sequence is a function of the pattern count alone.
//! 2. **Deterministic assignment.** Thread `t` of `T` processes blocks
//!    `t, t+T, t+2T, …` (round-robin). Assignment affects only *where* a
//!    block's partial is computed, never its value or merge position.
//! 3. **Disjoint writes.** A block owns its pattern range exclusively:
//!    CLV combine and W-term kernels write disjoint slices, fold kernels
//!    write disjoint partial slots. No atomics, no locks in the hot path.
//!
//! [`PAR_BLOCK`] is 256 patterns: a multiple of the rescale-scan block
//! (32) so the deferred underflow scan sees identical 32-pattern windows,
//! a multiple of the widest SIMD quad (8), and small enough (256 patterns
//! × 4 states × 8 bytes = 8 KiB per CLV operand) that a block's working
//! set stays in L1/L2 while large enough to amortize thread wake-up.

use rayon::{ThreadPool, ThreadPoolBuilder};
use std::sync::Arc;

/// Patterns per parallel block — the canonical cut; see the module docs.
pub const PAR_BLOCK: usize = 256;

/// A cloneable handle to a rank's intra-thread pool. `IntraPar::serial()`
/// (the default) carries no pool and makes every kernel run the plain
/// serial block loop — zero overhead for `--intra-threads 1`.
#[derive(Debug, Clone, Default)]
pub struct IntraPar {
    pool: Option<Arc<ThreadPool>>,
}

impl IntraPar {
    /// The no-pool handle: kernels iterate blocks inline on the caller.
    pub fn serial() -> IntraPar {
        IntraPar::default()
    }

    /// A handle backed by an `n`-thread pool (`n <= 1` builds no pool —
    /// the caller thread is the whole fleet).
    pub fn with_threads(n: usize) -> IntraPar {
        if n <= 1 {
            return IntraPar::serial();
        }
        let pool = ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("build intra-rank thread pool");
        IntraPar {
            pool: Some(Arc::new(pool)),
        }
    }

    /// The configured thread count (1 when serial).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.current_num_threads())
    }

    /// Run `f(block_index)` for every block in `0..nblocks`, round-robin
    /// across the pool. Single-block work (and the serial handle) runs
    /// inline on the caller — parallelism only engages when there are at
    /// least two blocks to split.
    pub fn for_each_block<F>(&self, nblocks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        match &self.pool {
            Some(pool) if nblocks >= 2 => {
                pool.broadcast(|ctx| {
                    let mut b = ctx.index();
                    while b < nblocks {
                        f(b);
                        b += ctx.num_threads();
                    }
                });
            }
            _ => {
                for b in 0..nblocks {
                    f(b);
                }
            }
        }
    }
}

/// How many [`PAR_BLOCK`] blocks cover `np` patterns.
pub fn block_count(np: usize) -> usize {
    np.div_ceil(PAR_BLOCK)
}

/// The pattern range of block `b` over `np` patterns.
pub fn block_range(b: usize, np: usize) -> (usize, usize) {
    let lo = b * PAR_BLOCK;
    (lo, (lo + PAR_BLOCK).min(np))
}

/// The deterministic critical-path speedup of the round-robin partition:
/// total patterns divided by the heaviest thread's load. This is the
/// machine-independent figure the `intra_scaling` bench gate asserts —
/// measured wall-clock rides alongside, but a 1-core CI box cannot be
/// asked to *demonstrate* a 4-thread speedup, only to prove the partition
/// admits one.
pub fn modeled_speedup(np: usize, threads: usize) -> f64 {
    if np == 0 || threads <= 1 {
        return 1.0;
    }
    let nblocks = block_count(np);
    let mut heaviest = 0usize;
    for t in 0..threads.min(nblocks) {
        let mut load = 0;
        let mut b = t;
        while b < nblocks {
            let (lo, hi) = block_range(b, np);
            load += hi - lo;
            b += threads;
        }
        heaviest = heaviest.max(load);
    }
    np as f64 / heaviest as f64
}

/// A raw-pointer wrapper asserting that parallel block writers touch
/// disjoint index ranges. The kernels hand each block exclusive ownership
/// of its pattern range (see the module docs); this wrapper is what lets
/// that ownership cross the closure's `Fn + Sync` boundary.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub *mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. Access goes through a whole-struct method (not
    /// the field) so closures capture the `Send + Sync` wrapper rather
    /// than disjointly capturing the raw pointer inside it.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

// Safety: every user partitions the pointee by block index; no two blocks
// alias, and the broadcast completes before the borrow ends.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_covers_patterns_exactly() {
        for np in [0, 1, 255, 256, 257, 1000, 4096] {
            let n = block_count(np);
            let mut covered = 0;
            for b in 0..n {
                let (lo, hi) = block_range(b, np);
                assert_eq!(lo, covered);
                assert!(hi > lo || np == 0);
                covered = hi;
            }
            assert_eq!(covered, np);
        }
    }

    #[test]
    fn serial_handle_runs_inline() {
        let par = IntraPar::serial();
        assert_eq!(par.threads(), 1);
        let mut seen = vec![false; 7];
        let ptr = SendPtr(seen.as_mut_ptr());
        par.for_each_block(7, |b| unsafe { *ptr.get().add(b) = true });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pooled_handle_covers_every_block_once() {
        let par = IntraPar::with_threads(4);
        assert_eq!(par.threads(), 4);
        let counts: Vec<std::sync::atomic::AtomicU32> = (0..23)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        par.for_each_block(23, |b| {
            counts[b].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(std::sync::atomic::Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn modeled_speedup_matches_round_robin_critical_path() {
        // 1500 patterns → 6 blocks of ≤256; 4 threads → heaviest gets 2
        // blocks (512 patterns): 1500/512 ≈ 2.93.
        let s = modeled_speedup(1500, 4);
        assert!((s - 1500.0 / 512.0).abs() < 1e-12);
        assert_eq!(modeled_speedup(100, 4), 1.0); // single block: no split
        assert_eq!(modeled_speedup(1500, 1), 1.0);
        assert!(modeled_speedup(256 * 8, 4) >= 2.0 - 1e-12);
    }
}
