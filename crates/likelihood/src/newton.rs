//! Newton–Raphson branch-length optimization.
//!
//! Given the per-pattern W-terms of one branch (see [`crate::clv`]), the
//! branch log-likelihood and its first two derivatives with respect to the
//! branch length cost O(patterns) per candidate length — no CLV updates —
//! because only the three F84 coefficients depend on `t`:
//!
//! ```text
//! ℓ(t)  = Σ_p w_p ln f_p(t),      f_p = c1·W1 + c2·W2 + c3·W3
//! ℓ'(t) = Σ_p w_p f'_p / f_p
//! ℓ''(t)= Σ_p w_p (f''_p/f_p − (f'_p/f_p)²)
//! ```
//!
//! The iteration is the safeguarded Newton ascent DNAml uses: take the
//! Newton step when the curvature is negative, otherwise double or halve,
//! and clamp to the representable branch-length range.

use crate::categories::RateCategories;
use crate::clv::WTerms;
use crate::f84::F84Model;
use crate::work::WorkCounter;

/// Smallest representable branch length (DNAml's `zmin` analog).
pub const MIN_BRANCH_LENGTH: f64 = 1e-8;
/// Largest branch length considered (effectively saturated).
pub const MAX_BRANCH_LENGTH: f64 = 30.0;

/// Options for one branch optimization.
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum Newton iterations per branch.
    pub max_iters: usize,
    /// Convergence threshold on the relative length change.
    pub tolerance: f64,
}

impl Default for NewtonOptions {
    fn default() -> NewtonOptions {
        NewtonOptions {
            max_iters: 12,
            tolerance: 1e-6,
        }
    }
}

/// Branch log-likelihood (up to the constant scaling offset) and its first
/// and second derivatives at `t`.
pub fn log_likelihood_d012(
    model: &F84Model,
    cats: &RateCategories,
    t: f64,
    w: &[WTerms],
    weights: &[u32],
) -> (f64, f64, f64) {
    let per_cat: Vec<_> = (0..cats.num_categories())
        .map(|c| model.coefficients_d2(t, cats.rate(c)))
        .collect();
    let mut lnl = 0.0;
    let mut d1 = 0.0;
    let mut d2 = 0.0;
    for (p, terms) in w.iter().enumerate() {
        let co = &per_cat[cats.category_of(p)];
        let f = (co.value.c1 * terms.w1 + co.value.c2 * terms.w2 + co.value.c3 * terms.w3)
            .max(f64::MIN_POSITIVE);
        let fp = co.d1.c1 * terms.w1 + co.d1.c2 * terms.w2 + co.d1.c3 * terms.w3;
        let fpp = co.d2.c1 * terms.w1 + co.d2.c2 * terms.w2 + co.d2.c3 * terms.w3;
        let wgt = weights[p] as f64;
        let r = fp / f;
        lnl += wgt * f.ln();
        d1 += wgt * r;
        d2 += wgt * (fpp / f - r * r);
    }
    (lnl, d1, d2)
}

/// First and second derivative of the branch log-likelihood at `t`.
pub fn log_likelihood_derivatives(
    model: &F84Model,
    cats: &RateCategories,
    t: f64,
    w: &[WTerms],
    weights: &[u32],
) -> (f64, f64) {
    let (_, d1, d2) = log_likelihood_d012(model, cats, t, w, weights);
    (d1, d2)
}

/// The safeguarded Newton ascent shared by both kernel paths: `eval(t)`
/// returns `(lnL, d1, d2)` at a candidate length (and does its own work
/// accounting). Factored out so the optimized fused-kernel objective in
/// [`crate::kernels`] and the scalar reference objective iterate through
/// byte-identical control flow.
pub(crate) fn newton_loop(
    t0: f64,
    opts: &NewtonOptions,
    eval: &mut dyn FnMut(f64) -> (f64, f64, f64),
) -> f64 {
    if opts.max_iters == 0 {
        // Optimization disabled: keep the starting length exactly (the
        // clamp below would perturb lengths outside the representable
        // range, breaking "evaluate at given lengths" semantics).
        return t0;
    }
    let mut t = t0.clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH);
    let mut best_t = t;
    let mut best_lnl = f64::NEG_INFINITY;
    for _ in 0..opts.max_iters {
        let (lnl, d1, d2) = eval(t);
        // Track the best point actually visited: Newton steps can overshoot
        // and reduce the likelihood, but returning the argmax over visited
        // points makes the optimization monotone (never worse than t0).
        if lnl > best_lnl {
            best_lnl = lnl;
            best_t = t;
        }
        let next = if d2 < 0.0 {
            // Newton ascent step.
            (t - d1 / d2).clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH)
        } else if d1 > 0.0 {
            // Convex region, likelihood still rising: move outward.
            (t * 2.0).min(MAX_BRANCH_LENGTH)
        } else {
            // Convex region, likelihood falling: move inward aggressively
            // (boundary optima at t → 0 are common for identical sequences).
            (t * 0.1).max(MIN_BRANCH_LENGTH)
        };
        let delta = (next - t).abs();
        t = next;
        if delta <= opts.tolerance * t.max(1e-3) {
            break;
        }
    }
    // Account for the final point (reached but not yet measured).
    let (lnl, _, _) = eval(t);
    if lnl > best_lnl {
        best_t = t;
    }
    best_t
}

/// Maximize the branch log-likelihood over the branch length, starting from
/// `t0`. Returns the optimized length; accumulates per-pattern Newton work
/// into `work`. This is the scalar-objective entry point (the seed's code
/// path, including its per-evaluation coefficient allocation); the engine's
/// default path goes through
/// [`crate::kernels::optimize_branch_dispatch`].
pub fn optimize_branch(
    model: &F84Model,
    cats: &RateCategories,
    w: &[WTerms],
    weights: &[u32],
    t0: f64,
    opts: &NewtonOptions,
    work: &mut WorkCounter,
) -> f64 {
    newton_loop(t0, opts, &mut |t| {
        work.newton_pattern_iters += w.len() as u64;
        log_likelihood_d012(model, cats, t, w, weights)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::edge_log_likelihood;

    fn model() -> F84Model {
        F84Model::new([0.3, 0.2, 0.25, 0.25], 2.0)
    }

    /// W-terms for a two-tip system where both tips observe the same
    /// unambiguous base — the likelihood should be maximized at t → 0.
    fn identical_tip_terms() -> (Vec<WTerms>, Vec<u32>) {
        // U = D = indicator of A.
        let m = model();
        let mut terms = vec![WTerms {
            w1: 0.0,
            w2: 0.0,
            w3: 0.0,
        }];
        let u = [1.0, 0.0, 0.0, 0.0];
        crate::reference::edge_w_terms(&m, &u, &u, &mut terms);
        (terms, vec![1])
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = model();
        let cats = RateCategories::new(vec![0.7, 1.8], vec![0, 1, 0]);
        let w = vec![
            WTerms {
                w1: 0.05,
                w2: 0.3,
                w3: 0.2,
            },
            WTerms {
                w1: 0.4,
                w2: 0.1,
                w3: 0.25,
            },
            WTerms {
                w1: 0.15,
                w2: 0.45,
                w3: 0.1,
            },
        ];
        let weights = [2u32, 1, 3];
        let scales = [0i32; 3];
        let t = 0.27;
        let h = 1e-6;
        let f = |x: f64| edge_log_likelihood(&m, &cats, x, &w, &weights, &scales);
        let (d1, d2) = log_likelihood_derivatives(&m, &cats, t, &w, &weights);
        let fd1 = (f(t + h) - f(t - h)) / (2.0 * h);
        let fd2 = (f(t + h) - 2.0 * f(t) + f(t - h)) / (h * h);
        assert!((d1 - fd1).abs() < 1e-5, "d1 {d1} vs fd {fd1}");
        assert!((d2 - fd2).abs() < 1e-2, "d2 {d2} vs fd {fd2}");
    }

    #[test]
    fn identical_sequences_drive_length_to_minimum() {
        let m = model();
        let cats = RateCategories::single(1);
        let (w, weights) = identical_tip_terms();
        let mut work = WorkCounter::new();
        let t = optimize_branch(
            &m,
            &cats,
            &w,
            &weights,
            0.5,
            &NewtonOptions::default(),
            &mut work,
        );
        assert!(t <= MIN_BRANCH_LENGTH * 10.0, "optimized length {t}");
        assert!(work.newton_pattern_iters > 0);
    }

    #[test]
    fn optimum_is_a_stationary_point() {
        // Mixed data: some sites agree, some differ → interior optimum.
        let m = model();
        let cats = RateCategories::single(2);
        let same = [1.0, 0.0, 0.0, 0.0];
        let diff = [0.0, 1.0, 0.0, 0.0];
        let mut w = vec![
            WTerms {
                w1: 0.0,
                w2: 0.0,
                w3: 0.0
            };
            2
        ];
        crate::reference::edge_w_terms(&m, &same, &same, &mut w[0..1]);
        crate::reference::edge_w_terms(&m, &same, &diff, &mut w[1..2]);
        let weights = [8u32, 2];
        let mut work = WorkCounter::new();
        let opts = NewtonOptions {
            max_iters: 40,
            tolerance: 1e-10,
        };
        let t = optimize_branch(&m, &cats, &w, &weights, 0.1, &opts, &mut work);
        assert!(t > MIN_BRANCH_LENGTH && t < MAX_BRANCH_LENGTH);
        let (d1, _) = log_likelihood_derivatives(&m, &cats, t, &w, &weights);
        assert!(d1.abs() < 1e-4, "gradient at optimum: {d1}");
        // And it is actually a maximum: nearby values are worse.
        let scales = [0i32; 2];
        let at = edge_log_likelihood(&m, &cats, t, &w, &weights, &scales);
        let lo = edge_log_likelihood(&m, &cats, t * 0.8, &w, &weights, &scales);
        let hi = edge_log_likelihood(&m, &cats, t * 1.25, &w, &weights, &scales);
        assert!(at >= lo && at >= hi);
    }

    #[test]
    fn optimum_independent_of_start() {
        let m = model();
        let cats = RateCategories::single(2);
        let same = [1.0, 0.0, 0.0, 0.0];
        let diff = [0.0, 0.0, 1.0, 0.0];
        let mut w = vec![
            WTerms {
                w1: 0.0,
                w2: 0.0,
                w3: 0.0
            };
            2
        ];
        crate::reference::edge_w_terms(&m, &same, &same, &mut w[0..1]);
        crate::reference::edge_w_terms(&m, &same, &diff, &mut w[1..2]);
        let weights = [5u32, 1];
        let opts = NewtonOptions {
            max_iters: 60,
            tolerance: 1e-12,
        };
        let mut wk = WorkCounter::new();
        let t_a = optimize_branch(&m, &cats, &w, &weights, 0.01, &opts, &mut wk);
        let t_b = optimize_branch(&m, &cats, &w, &weights, 3.0, &opts, &mut wk);
        assert!((t_a - t_b).abs() < 1e-5, "{t_a} vs {t_b}");
    }

    #[test]
    fn saturated_data_hits_max_length() {
        // Anti-correlated tips at every site push the length to saturation.
        let m = F84Model::uniform(2.0);
        let cats = RateCategories::single(1);
        let u = [1.0, 0.0, 0.0, 0.0];
        let d = [0.0, 1.0, 0.0, 0.0];
        let mut w = vec![WTerms {
            w1: 0.0,
            w2: 0.0,
            w3: 0.0,
        }];
        crate::reference::edge_w_terms(&m, &u, &d, &mut w);
        let mut wk = WorkCounter::new();
        let opts = NewtonOptions {
            max_iters: 60,
            tolerance: 1e-9,
        };
        let t = optimize_branch(&m, &cats, &w, &[1], 0.1, &opts, &mut wk);
        assert!(
            t > 1.0,
            "fully conflicting single site should favor a long branch, got {t}"
        );
    }
}
