//! Exact work accounting.
//!
//! Every likelihood operation increments these counters, giving a
//! deterministic, machine-independent measure of the computation a tree
//! evaluation performs. The RS/6000 SP simulator (`fdml-simsp`) converts
//! counters into virtual seconds with a calibrated per-counter cost — this
//! is how the paper's Figures 3 and 4 are regenerated without 64 physical
//! processors, while preserving the *variance* between trees that produces
//! the paper's "loosely synchronized" barriers.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counters of elementary likelihood operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkCounter {
    /// Conditional-likelihood vector updates, counted per pattern
    /// (one = propagate two children through their branches and combine,
    /// or one directional propagation while scoring).
    pub clv_pattern_updates: u64,
    /// Newton–Raphson iterations, counted per pattern (one = evaluate the
    /// three-term derivative sums for one pattern at one candidate length).
    pub newton_pattern_iters: u64,
    /// Per-pattern log-likelihood evaluations (final combining step).
    pub loglik_pattern_evals: u64,
    /// Whole trees evaluated (parse → evaluate → reply granularity).
    pub trees_evaluated: u64,
}

impl WorkCounter {
    /// A zeroed counter.
    pub fn new() -> WorkCounter {
        WorkCounter::default()
    }

    /// Collapse the counters into abstract *work units*, weighting each
    /// counter by its approximate floating-point cost relative to one CLV
    /// pattern update (the dominant kernel: ~40 flops). These relative
    /// weights were chosen from operation counts of the kernels, not timing,
    /// so they are deterministic across machines.
    pub fn work_units(&self) -> u64 {
        // newton per-pattern iteration ≈ 18 flops ≈ 0.45 updates;
        // final log-likelihood per pattern ≈ 30 flops ≈ 0.75 updates.
        self.clv_pattern_updates
            + (self.newton_pattern_iters * 45).div_ceil(100)
            + (self.loglik_pattern_evals * 75).div_ceil(100)
    }

    /// Total per-pattern kernel operations, unweighted: the raw pattern
    /// throughput number behind the observability layer's patterns/sec
    /// gauge. Counted identically by the optimized and reference kernel
    /// paths, so rates are comparable across `KernelMode`s (and against
    /// the simulator, which accounts in the same units).
    pub fn total_pattern_updates(&self) -> u64 {
        self.clv_pattern_updates + self.newton_pattern_iters + self.loglik_pattern_evals
    }

    /// True when nothing has been counted.
    pub fn is_zero(&self) -> bool {
        *self == WorkCounter::default()
    }
}

impl Add for WorkCounter {
    type Output = WorkCounter;

    fn add(self, rhs: WorkCounter) -> WorkCounter {
        WorkCounter {
            clv_pattern_updates: self.clv_pattern_updates + rhs.clv_pattern_updates,
            newton_pattern_iters: self.newton_pattern_iters + rhs.newton_pattern_iters,
            loglik_pattern_evals: self.loglik_pattern_evals + rhs.loglik_pattern_evals,
            trees_evaluated: self.trees_evaluated + rhs.trees_evaluated,
        }
    }
}

impl AddAssign for WorkCounter {
    fn add_assign(&mut self, rhs: WorkCounter) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counter() {
        let w = WorkCounter::new();
        assert!(w.is_zero());
        assert_eq!(w.work_units(), 0);
    }

    #[test]
    fn addition_accumulates() {
        let a = WorkCounter {
            clv_pattern_updates: 10,
            newton_pattern_iters: 4,
            ..Default::default()
        };
        let b = WorkCounter {
            clv_pattern_updates: 5,
            trees_evaluated: 1,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.clv_pattern_updates, 15);
        assert_eq!(c.newton_pattern_iters, 4);
        assert_eq!(c.trees_evaluated, 1);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn work_units_weighting() {
        let w = WorkCounter {
            clv_pattern_updates: 100,
            newton_pattern_iters: 100,
            loglik_pattern_evals: 100,
            trees_evaluated: 3,
        };
        assert_eq!(w.work_units(), 100 + 45 + 75);
    }
}
