//! Scalar reference kernels — the oracle the optimized kernels are tested
//! against.
//!
//! These are the original, straightforward implementations of CLV
//! propagation, W-term assembly, and branch log-likelihood: one pattern at a
//! time, divisions in the inner loop, per-call coefficient allocation. They
//! are kept public (and unchanged in numerics) so that
//!
//! * the randomized equivalence suite can assert the optimized kernels in
//!   [`crate::kernels`] reproduce them to tight tolerances, and
//! * `KernelMode::Reference` can run a whole evaluation through them for
//!   benchmark baselines (`BENCH_kernels.json` records optimized-vs-reference
//!   speedups on exactly this code).
//!
//! See [`crate::clv`] for the shared math notation.

use crate::categories::RateCategories;
use crate::clv::{WTerms, LN_SCALE, SCALE_FACTOR, SCALE_THRESHOLD};
use crate::f84::{Coefficients, F84Model};
use fdml_phylo::dna::{A, C, G, NUM_STATES, T};

/// Per-category branch coefficients for one edge at one length.
pub fn branch_coefficients(model: &F84Model, cats: &RateCategories, t: f64) -> Vec<Coefficients> {
    (0..cats.num_categories())
        .map(|c| model.coefficients(t, cats.rate(c)))
        .collect()
}

/// Propagate one CLV pattern through a branch.
#[inline]
pub fn prop_pattern(model: &F84Model, co: &Coefficients, l: &[f64], out: &mut [f64]) {
    let f = &model.freqs;
    let sr = f[A] * l[A] + f[G] * l[G];
    let sy = f[C] * l[C] + f[T] * l[T];
    let s = sr + sy;
    let wr = co.c2 * sr / model.freq_r() + co.c3 * s;
    let wy = co.c2 * sy / model.freq_y() + co.c3 * s;
    out[A] = co.c1 * l[A] + wr;
    out[G] = co.c1 * l[G] + wr;
    out[C] = co.c1 * l[C] + wy;
    out[T] = co.c1 * l[T] + wy;
}

/// Compute the CLV of an internal node from its two child CLVs:
/// `out = prop(branch1, clv1) ⊙ prop(branch2, clv2)`, with per-pattern
/// rescaling. `scale_out[p] = scale1[p] + scale2[p] (+1 if rescaled)`.
/// Returns the number of pattern updates performed (for work accounting).
#[allow(clippy::too_many_arguments)]
pub fn combine_children(
    model: &F84Model,
    cats: &RateCategories,
    co1: &[Coefficients],
    clv1: &[f64],
    scale1: &[i32],
    co2: &[Coefficients],
    clv2: &[f64],
    scale2: &[i32],
    out: &mut [f64],
    scale_out: &mut [i32],
) -> u64 {
    let np = cats.num_patterns();
    let mut a = [0.0f64; NUM_STATES];
    let mut b = [0.0f64; NUM_STATES];
    for p in 0..np {
        let cat = cats.category_of(p);
        let base = p * NUM_STATES;
        prop_pattern(model, &co1[cat], &clv1[base..base + 4], &mut a);
        prop_pattern(model, &co2[cat], &clv2[base..base + 4], &mut b);
        let o = &mut out[base..base + 4];
        let mut max = 0.0f64;
        for s in 0..NUM_STATES {
            o[s] = a[s] * b[s];
            if o[s] > max {
                max = o[s];
            }
        }
        let mut sc = scale1[p] + scale2[p];
        if max < SCALE_THRESHOLD && max > 0.0 {
            for v in o.iter_mut() {
                *v *= SCALE_FACTOR;
            }
            sc += 1;
        }
        scale_out[p] = sc;
    }
    np as u64
}

/// Compute the W-terms for every pattern; `out` has one entry per pattern.
pub fn edge_w_terms(model: &F84Model, u: &[f64], d: &[f64], out: &mut [WTerms]) -> u64 {
    let f = &model.freqs;
    let np = out.len();
    for (p, w) in out.iter_mut().enumerate() {
        let b = p * NUM_STATES;
        let (ua, uc, ug, ut) = (u[b + A], u[b + C], u[b + G], u[b + T]);
        let (da, dc, dg, dt) = (d[b + A], d[b + C], d[b + G], d[b + T]);
        let w1 = f[A] * ua * da + f[C] * uc * dc + f[G] * ug * dg + f[T] * ut * dt;
        let ur = f[A] * ua + f[G] * ug;
        let uy = f[C] * uc + f[T] * ut;
        let dr = f[A] * da + f[G] * dg;
        let dy = f[C] * dc + f[T] * dt;
        let w2 = ur * dr / model.freq_r() + uy * dy / model.freq_y();
        let w3 = (ur + uy) * (dr + dy);
        *w = WTerms { w1, w2, w3 };
    }
    np as u64
}

/// Log-likelihood of one branch given per-pattern W-terms, pattern weights,
/// and the combined per-pattern scale counts of the two CLVs.
pub fn edge_log_likelihood(
    model: &F84Model,
    cats: &RateCategories,
    t: f64,
    w: &[WTerms],
    weights: &[u32],
    scale: &[i32],
) -> f64 {
    let co = branch_coefficients(model, cats, t);
    let mut lnl = 0.0;
    for (p, terms) in w.iter().enumerate() {
        let c = &co[cats.category_of(p)];
        let f = (c.c1 * terms.w1 + c.c2 * terms.w2 + c.c3 * terms.w3).max(f64::MIN_POSITIVE);
        lnl += weights[p] as f64 * (f.ln() + scale[p] as f64 * LN_SCALE);
    }
    lnl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clv::fill_tip_clv;
    use fdml_phylo::alignment::Alignment;
    use fdml_phylo::patterns::PatternAlignment;

    fn setup() -> (PatternAlignment, F84Model, RateCategories) {
        let a = Alignment::from_strings(&[("x", "ACGTN"), ("y", "AAGTC"), ("z", "TCGAA")]).unwrap();
        let p = PatternAlignment::compress(&a);
        let m = F84Model::new([0.3, 0.2, 0.25, 0.25], 2.0);
        let c = RateCategories::single(p.num_patterns());
        (p, m, c)
    }

    #[test]
    fn propagation_matches_matrix_multiplication() {
        let (_, m, _) = setup();
        let t = 0.31;
        let co = m.coefficients(t, 1.0);
        let pmat = m.transition_matrix(t, 1.0);
        let l = [0.2, 0.9, 0.05, 0.4];
        let mut out = [0.0; 4];
        prop_pattern(&m, &co, &l, &mut out);
        for x in 0..4 {
            let direct: f64 = (0..4).map(|s| pmat[x][s] * l[s]).sum();
            assert!((out[x] - direct).abs() < 1e-12, "state {x}");
        }
    }

    #[test]
    fn combine_children_multiplies_propagated() {
        let (p, m, cats) = setup();
        let np = p.num_patterns();
        let mut c1 = vec![0.0; np * 4];
        let mut c2 = vec![0.0; np * 4];
        fill_tip_clv(&p, 0, &mut c1);
        fill_tip_clv(&p, 1, &mut c2);
        let s0 = vec![0i32; np];
        let co1 = branch_coefficients(&m, &cats, 0.1);
        let co2 = branch_coefficients(&m, &cats, 0.4);
        let mut out = vec![0.0; np * 4];
        let mut sc = vec![0i32; np];
        let n = combine_children(&m, &cats, &co1, &c1, &s0, &co2, &c2, &s0, &mut out, &mut sc);
        assert_eq!(n, np as u64);
        // Verify one pattern by direct matrix computation.
        let p1 = m.transition_matrix(0.1, 1.0);
        let p2 = m.transition_matrix(0.4, 1.0);
        for pat in 0..np {
            for s in 0..4 {
                let a: f64 = (0..4).map(|x| p1[s][x] * c1[pat * 4 + x]).sum();
                let b: f64 = (0..4).map(|x| p2[s][x] * c2[pat * 4 + x]).sum();
                assert!((out[pat * 4 + s] - a * b).abs() < 1e-12);
            }
            assert_eq!(sc[pat], 0);
        }
    }

    #[test]
    fn rescaling_triggers_and_preserves_value() {
        let (p, m, cats) = setup();
        let np = p.num_patterns();
        // Feed tiny CLVs so the product underflows the threshold.
        let c1 = vec![1e-60; np * 4];
        let c2 = vec![1e-60; np * 4];
        let s0 = vec![3i32; np];
        let co = branch_coefficients(&m, &cats, 0.1);
        let mut out = vec![0.0; np * 4];
        let mut sc = vec![0i32; np];
        combine_children(&m, &cats, &co, &c1, &s0, &co, &c2, &s0, &mut out, &mut sc);
        for pat in 0..np {
            assert_eq!(sc[pat], 7, "3+3 inherited plus one new");
            assert!(out[pat * 4] > SCALE_THRESHOLD);
        }
    }

    #[test]
    fn w_terms_reproduce_full_quadratic_form() {
        let (_, m, cats) = setup();
        let u = [0.3, 0.7, 0.2, 0.9];
        let d = [0.5, 0.1, 0.6, 0.2];
        let mut terms = vec![
            WTerms {
                w1: 0.0,
                w2: 0.0,
                w3: 0.0
            };
            1
        ];
        edge_w_terms(&m, &u, &d, &mut terms);
        for t in [0.05, 0.3, 1.5] {
            let co = branch_coefficients(&m, &cats, t)[0];
            let via_terms = co.c1 * terms[0].w1 + co.c2 * terms[0].w2 + co.c3 * terms[0].w3;
            let pmat = m.transition_matrix(t, 1.0);
            let mut direct = 0.0;
            for s in 0..4 {
                for x in 0..4 {
                    direct += m.freqs[s] * u[s] * pmat[s][x] * d[x];
                }
            }
            assert!((via_terms - direct).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn edge_log_likelihood_accounts_for_scaling() {
        let (_, m, _) = setup();
        let cats = RateCategories::single(1);
        let terms = vec![WTerms {
            w1: 0.1,
            w2: 0.2,
            w3: 0.3,
        }];
        let weights = [2u32];
        let no_scale = edge_log_likelihood(&m, &cats, 0.2, &terms, &weights, &[0]);
        let scaled = edge_log_likelihood(&m, &cats, 0.2, &terms, &weights, &[1]);
        assert!((scaled - (no_scale + 2.0 * LN_SCALE)).abs() < 1e-9);
    }

    #[test]
    fn rate_categories_change_propagation() {
        let (_, m, _) = setup();
        let cats = RateCategories::new(vec![0.5, 2.0], vec![0, 1]);
        let co = branch_coefficients(&m, &cats, 0.3);
        // Category 1 evolves 4× faster than category 0.
        assert!(co[1].c3 > co[0].c3);
        let co_equiv = m.coefficients(0.6, 1.0);
        assert!((co[1].c1 - co_equiv.c1).abs() < 1e-15);
    }
}
