//! Optimized likelihood kernels: division-free, allocation-free, blocked,
//! runtime-dispatched, and intra-rank parallel.
//!
//! This module is the default implementation behind
//! [`crate::engine::LikelihoodEngine`]; the original scalar code lives in
//! [`crate::reference`] and serves as the equivalence oracle and benchmark
//! baseline. Five transformations separate the two:
//!
//! 1. **Folded coefficients** ([`EdgeCoefficients`]): the per-branch F84
//!    triple `(c1, c2, c3)` is precomputed per rate category with
//!    `c2/π_R` and `c2/π_Y` folded in, so the propagation inner loop is
//!    pure multiply-adds — the reference kernel divides twice per pattern.
//! 2. **Reusable scratch** ([`KernelScratch`], [`JunctionScratch`]): the
//!    coefficient tables, category runs, and junction buffers are owned by
//!    the caller's workspace and refilled in place, eliminating the
//!    per-call `Vec` allocations of `reference::branch_coefficients` —
//!    most importantly from the per-iteration Newton objective.
//! 3. **Blocked, category-run iteration**: patterns sharing a rate category
//!    form maximal runs ([`CategoryRun`]), so the per-pattern category
//!    lookup disappears from the hot loops and coefficients stay in
//!    registers; the underflow-rescaling check is deferred out of the
//!    multiply-add loop and performed in blocks of [`SCALE_CHECK_BLOCK`]
//!    patterns, with a branch-free fast path when no pattern underflows.
//!    Newton's per-pattern `ln` — the dominant cost of branch-length
//!    optimization — is replaced by a running product in mantissa/exponent
//!    form ([`LnProd`]) that takes a single `ln` per evaluation.
//! 4. **Runtime ISA dispatch** ([`crate::isa`]): the CLV-combine span
//!    kernel selects scalar / AVX2+FMA / AVX-512 (x86-64) or NEON
//!    (aarch64) per the host's detected features, one probe per process.
//!    Every vector lane performs the exact scalar multiply-add DAG per
//!    pattern (vertical packed ops only), so lane selection never changes
//!    a bit of output.
//! 5. **Pattern-block parallelism** ([`crate::par`]): the combine, W-term,
//!    and likelihood-fold kernels split pattern space into canonical
//!    [`crate::par::PAR_BLOCK`]-pattern blocks, fanned round-robin across
//!    the scratch's [`IntraPar`] pool. Map kernels write disjoint slices;
//!    fold kernels compute one partial per block and merge the partials
//!    serially in block order, so the result is bit-identical at any
//!    thread count (the 1-thread execution *is* the canonical order).
//!
//! Work accounting is unchanged: both paths count one unit per pattern per
//! kernel invocation, so `WorkCounter` totals are comparable across
//! [`KernelMode::Optimized`] and [`KernelMode::Reference`] runs — and
//! across thread counts and ISAs.

use crate::categories::RateCategories;
use crate::clv::{WTerms, LN_SCALE, SCALE_FACTOR, SCALE_THRESHOLD};
use crate::f84::{CoefficientsD2, F84Model};
use crate::isa;
use crate::newton::{self, NewtonOptions};
use crate::par::{self, IntraPar, SendPtr};
use crate::reference;
use crate::work::WorkCounter;
use fdml_phylo::dna::{A, C, G, T};

/// How many patterns the deferred underflow scan covers per block.
pub const SCALE_CHECK_BLOCK: usize = 32;

/// Fold partial slots kept on the stack before falling back to the heap:
/// 64 blocks × 256 patterns covers 16 384 patterns without allocating.
const MAX_STACK_BLOCKS: usize = 64;

/// Which kernel implementation an engine routes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// The blocked, division-free kernels in this module (the default).
    #[default]
    Optimized,
    /// The scalar oracle in [`crate::reference`] — the seed implementation,
    /// kept selectable for equivalence tests and benchmark baselines.
    Reference,
}

/// One branch's F84 coefficients for one rate category, with the group
/// divisions pre-folded: `c2r = c2/π_R`, `c2y = c2/π_Y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldedCoefficients {
    /// Identity-term weight.
    pub c1: f64,
    /// Raw within-group weight (needed where the likelihood itself uses
    /// `c2`, e.g. against W-terms that already carry the division).
    pub c2: f64,
    /// `c2 / π_R`.
    pub c2r: f64,
    /// `c2 / π_Y`.
    pub c2y: f64,
    /// Equilibrium-term weight.
    pub c3: f64,
}

/// Per-category folded coefficients for one branch at one length, refilled
/// in place (no allocation after the first fill at a given category count).
#[derive(Debug, Clone, Default)]
pub struct EdgeCoefficients {
    per_cat: Vec<FoldedCoefficients>,
}

impl EdgeCoefficients {
    /// An empty table; call [`EdgeCoefficients::fill`] before use.
    pub fn new() -> EdgeCoefficients {
        EdgeCoefficients::default()
    }

    /// Recompute the table for a branch of length `t`.
    pub fn fill(&mut self, model: &F84Model, cats: &RateCategories, t: f64) {
        let inv_r = 1.0 / model.freq_r();
        let inv_y = 1.0 / model.freq_y();
        self.per_cat.clear();
        self.per_cat.extend((0..cats.num_categories()).map(|c| {
            let co = model.coefficients(t, cats.rate(c));
            FoldedCoefficients {
                c1: co.c1,
                c2: co.c2,
                c2r: co.c2 * inv_r,
                c2y: co.c2 * inv_y,
                c3: co.c3,
            }
        }));
    }

    /// The folded coefficients, indexed by category.
    pub fn per_cat(&self) -> &[FoldedCoefficients] {
        &self.per_cat
    }
}

/// Per-category value/d1/d2 coefficient triples for one branch, refilled in
/// place each Newton iteration (replacing a per-iteration `Vec` collect).
#[derive(Debug, Clone, Default)]
pub struct EdgeDerivCoefficients {
    per_cat: Vec<CoefficientsD2>,
}

impl EdgeDerivCoefficients {
    /// Recompute the table for a branch of length `t`.
    pub fn fill(&mut self, model: &F84Model, cats: &RateCategories, t: f64) {
        self.per_cat.clear();
        self.per_cat
            .extend((0..cats.num_categories()).map(|c| model.coefficients_d2(t, cats.rate(c))));
    }

    /// The coefficient triples, indexed by category.
    pub fn per_cat(&self) -> &[CoefficientsD2] {
        &self.per_cat
    }
}

/// A maximal run of consecutive patterns sharing one rate category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryRun {
    /// First pattern of the run.
    pub start: usize,
    /// One past the last pattern of the run.
    pub end: usize,
    /// The shared category index.
    pub category: usize,
}

/// Decompose a category assignment into maximal constant-category runs.
pub fn category_runs(cats: &RateCategories) -> Vec<CategoryRun> {
    let mut runs = Vec::new();
    fill_category_runs(cats, &mut runs);
    runs
}

fn fill_category_runs(cats: &RateCategories, out: &mut Vec<CategoryRun>) {
    out.clear();
    let assignment = cats.assignment();
    let mut p = 0;
    while p < assignment.len() {
        let category = assignment[p] as usize;
        let start = p;
        while p < assignment.len() && assignment[p] as usize == category {
            p += 1;
        }
        out.push(CategoryRun {
            start,
            end: p,
            category,
        });
    }
}

/// Reusable per-workspace kernel state: the category-run decomposition,
/// coefficient tables for the (at most two) branches of one kernel call,
/// and the workspace's intra-rank thread-pool handle.
///
/// The `Default` value is an inert placeholder (no runs, no pattern maxes,
/// serial) left behind when a workspace's scratch is recycled; build usable
/// scratch with [`KernelScratch::new`] or [`KernelScratch::with_par`].
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    runs: Vec<CategoryRun>,
    co_a: EdgeCoefficients,
    co_b: EdgeCoefficients,
    deriv: EdgeDerivCoefficients,
    maxes: Vec<f64>,
    par: IntraPar,
}

impl KernelScratch {
    /// Serial scratch bound to one category assignment (the runs are
    /// computed once here; a `RateCategories` is immutable for the
    /// scratch's lifetime).
    pub fn new(cats: &RateCategories) -> KernelScratch {
        KernelScratch::with_par(cats, IntraPar::serial())
    }

    /// Scratch whose kernels fan pattern blocks across `par`'s pool.
    pub fn with_par(cats: &RateCategories, par: IntraPar) -> KernelScratch {
        KernelScratch {
            runs: category_runs(cats),
            co_a: EdgeCoefficients::new(),
            co_b: EdgeCoefficients::new(),
            deriv: EdgeDerivCoefficients::default(),
            maxes: vec![0.0; cats.num_patterns()],
            par,
        }
    }

    /// The category runs.
    pub fn runs(&self) -> &[CategoryRun] {
        &self.runs
    }

    /// The intra-rank pool handle this scratch's kernels dispatch through.
    pub fn par(&self) -> &IntraPar {
        &self.par
    }
}

/// Reusable buffers for three-way junction scoring (`scorer`): the paired
/// CLV, its scale counts, the total-scale buffer, and the W-terms.
#[derive(Debug, Clone)]
pub struct JunctionScratch {
    /// Combined CLV of two junction arms.
    pub pair_clv: Vec<f64>,
    /// Scale counts of `pair_clv`.
    pub pair_scale: Vec<i32>,
    /// `pair_scale + third arm's scale`, for the final likelihood.
    pub scale_total: Vec<i32>,
    /// W-terms between `pair_clv` and the third arm.
    pub wterms: Vec<WTerms>,
}

impl JunctionScratch {
    /// Buffers sized for `np` patterns.
    pub fn new(np: usize) -> JunctionScratch {
        JunctionScratch {
            pair_clv: vec![0.0; np * 4],
            pair_scale: vec![0; np],
            scale_total: vec![0; np],
            wterms: vec![WTerms::ZERO; np],
        }
    }
}

/// A running product `Π f_p^{w_p}` kept as `mantissa · 2^exponent` (plus a
/// plain log-space accumulator for oversized powers), so the branch
/// log-likelihood needs one `ln` per *evaluation* instead of one per
/// pattern.
#[derive(Debug, Clone, Copy)]
pub struct LnProd {
    mantissa: f64,
    exponent: i64,
    extra: f64,
}

/// Largest weight folded into the product via `powi`; beyond this the
/// pattern falls back to `w·ln f` directly (accuracy of `powi` degrades and
/// the fallback is rare enough not to matter).
const POW_LIMIT: u32 = 512;

const MANTISSA_MASK: u64 = 0x000f_ffff_ffff_ffff;
const ONE_EXPONENT: u64 = 0x3ff0_0000_0000_0000;

impl LnProd {
    /// The empty product (value 1, log 0).
    #[allow(clippy::new_without_default)]
    pub fn new() -> LnProd {
        LnProd {
            mantissa: 1.0,
            exponent: 0,
            extra: 0.0,
        }
    }

    #[inline]
    fn renormalize(&mut self) {
        let bits = self.mantissa.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        if e != 0 {
            self.mantissa = f64::from_bits((bits & MANTISSA_MASK) | ONE_EXPONENT);
            self.exponent += e;
        }
    }

    /// Multiply `f^w` into the product. `f` must be positive, finite, and
    /// normal (callers clamp with `max(f64::MIN_POSITIVE)`).
    #[inline]
    pub fn mul_pow(&mut self, f: f64, w: u32) {
        debug_assert!(f >= f64::MIN_POSITIVE && f.is_finite());
        if w == 0 {
            return;
        }
        let bits = f.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let m = f64::from_bits((bits & MANTISSA_MASK) | ONE_EXPONENT);
        if w == 1 {
            // The common case (pattern weight 1): one multiply, and a
            // renormalize only when the mantissa has drifted far enough
            // that another factor in [1,2) could eventually overflow.
            self.mantissa *= m;
            self.exponent += e;
            if self.mantissa >= 1e128 {
                self.renormalize();
            }
        } else if w <= POW_LIMIT {
            // m ∈ [1,2) and w ≤ 512, so m^w ≤ 2^512 — representable, but
            // keep the running mantissa small around it.
            self.renormalize();
            self.mantissa *= m.powi(w as i32);
            self.exponent += e * w as i64;
            self.renormalize();
        } else {
            self.extra += w as f64 * f.ln();
        }
    }

    /// Multiply another accumulated product in: mantissas multiply,
    /// exponents and log-space accumulators add. This is the merge step of
    /// the fixed-order block reduction. Merging a partial into the identity
    /// is bitwise exact (`1.0 * m == m`, `0 + e == e`, `0.0 + x == x` for
    /// the non-negative-zero values that occur here), so a single-block
    /// fold is bit-identical to the plain serial fold — which is what
    /// keeps historical likelihood bits stable for alignments of at most
    /// [`par::PAR_BLOCK`] patterns.
    #[inline]
    pub fn merge(&mut self, other: &LnProd) {
        self.mantissa *= other.mantissa;
        self.exponent += other.exponent;
        self.extra += other.extra;
        if self.mantissa >= 1e128 {
            self.renormalize();
        }
    }

    /// `ln` of the accumulated product.
    pub fn value(&self) -> f64 {
        self.mantissa.ln() + self.exponent as f64 * std::f64::consts::LN_2 + self.extra
    }
}

/// Fold `(f, w)` factors through [`LnProd`] in independent chunks of
/// `block` factors, merging the per-chunk partials in chunk order — the
/// schedule-independent reduction shape used by the parallel fold kernels
/// (whose chunk is [`par::PAR_BLOCK`] patterns). A `block` of at least
/// `factors.len()` degenerates to the plain serial fold, bit for bit.
/// Exposed for the determinism proptests.
pub fn blocked_ln_prod(factors: &[(f64, u32)], block: usize) -> LnProd {
    assert!(block > 0, "block size must be positive");
    let mut total = LnProd::new();
    for chunk in factors.chunks(block) {
        let mut partial = LnProd::new();
        for &(f, w) in chunk {
            partial.mul_pow(f, w);
        }
        total.merge(&partial);
    }
    total
}

/// One pattern of division-free CLV propagation-and-product (the scalar
/// form; also the tail/fallback of the vectorized span kernels). Returns
/// the pattern's maximum entry, feeding the deferred rescale scan without a
/// second pass over the output.
#[inline]
fn combine_pattern(
    freqs: &[f64; 4],
    ca: &FoldedCoefficients,
    cb: &FoldedCoefficients,
    l1: &[f64],
    l2: &[f64],
    op: &mut [f64],
) -> f64 {
    let (fa, fc, fg, ft) = (freqs[A], freqs[C], freqs[G], freqs[T]);
    let sr1 = fa.mul_add(l1[A], fg * l1[G]);
    let sy1 = fc.mul_add(l1[C], ft * l1[T]);
    let s1 = sr1 + sy1;
    let wr1 = ca.c2r.mul_add(sr1, ca.c3 * s1);
    let wy1 = ca.c2y.mul_add(sy1, ca.c3 * s1);
    let sr2 = fa.mul_add(l2[A], fg * l2[G]);
    let sy2 = fc.mul_add(l2[C], ft * l2[T]);
    let s2 = sr2 + sy2;
    let wr2 = cb.c2r.mul_add(sr2, cb.c3 * s2);
    let wy2 = cb.c2y.mul_add(sy2, cb.c3 * s2);
    op[A] = ca.c1.mul_add(l1[A], wr1) * cb.c1.mul_add(l2[A], wr2);
    op[C] = ca.c1.mul_add(l1[C], wy1) * cb.c1.mul_add(l2[C], wy2);
    op[G] = ca.c1.mul_add(l1[G], wr1) * cb.c1.mul_add(l2[G], wr2);
    op[T] = ca.c1.mul_add(l1[T], wy1) * cb.c1.mul_add(l2[T], wy2);
    op[A].max(op[C]).max(op[G]).max(op[T])
}

/// Propagate-and-multiply one constant-category span of patterns, recording
/// each pattern's maximum entry in `maxes` (one slot per pattern).
/// Dispatches through [`crate::isa::active`] to the widest lane the host
/// supports — 8-pattern AVX-512, 4-pattern AVX2+FMA, 2-pattern NEON — with
/// the scalar pattern loop covering the tail and the scalar lane. Every
/// lane performs the identical per-pattern multiply-add DAG, so the output
/// bits do not depend on the dispatch decision.
fn combine_span(
    model: &F84Model,
    ca: &FoldedCoefficients,
    cb: &FoldedCoefficients,
    x1: &[f64],
    x2: &[f64],
    out: &mut [f64],
    maxes: &mut [f64],
) {
    let freqs = &model.freqs;
    let done = match isa::active() {
        // Safety: `isa::active` only ever returns a lane the running host
        // supports (detection probes the CPU; overrides are validated).
        #[cfg(target_arch = "x86_64")]
        isa::KernelIsa::Avx512 => unsafe {
            x86::combine_span_avx512(freqs, ca, cb, x1, x2, out, maxes)
        },
        #[cfg(target_arch = "x86_64")]
        isa::KernelIsa::Avx2 => unsafe {
            x86::combine_span_avx2(freqs, ca, cb, x1, x2, out, maxes)
        },
        #[cfg(target_arch = "aarch64")]
        isa::KernelIsa::Neon => unsafe {
            neon::combine_span_neon(freqs, ca, cb, x1, x2, out, maxes)
        },
        _ => 0,
    };
    for (((l1, l2), op), mx) in x1[done..]
        .chunks_exact(4)
        .zip(x2[done..].chunks_exact(4))
        .zip(out[done..].chunks_exact_mut(4))
        .zip(maxes[done / 4..].iter_mut())
    {
        *mx = combine_pattern(freqs, ca, cb, l1, l2, op);
    }
}

/// Explicitly vectorized x86-64 kernels, compiled unconditionally behind
/// `#[target_feature]` and selected at runtime by [`crate::isa`]. The CLV
/// layout is pattern-major (`[A,C,G,T]` per pattern), so cross-pattern SIMD
/// needs a transpose to state-major registers; after that every step is a
/// vertical packed multiply-add over 4 (AVX2) or 8 (AVX-512) patterns at
/// once, which the scalar form's per-pattern horizontal reductions (`sr`,
/// `sy`) prevent the autovectorizer from discovering on its own.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::FoldedCoefficients;
    use core::arch::x86_64::*;

    /// 4×4 transpose: four pattern rows → four state lanes (or back).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn transpose4(r0: __m256d, r1: __m256d, r2: __m256d, r3: __m256d) -> [__m256d; 4] {
        let t0 = _mm256_unpacklo_pd(r0, r1); // [r0.0 r1.0 r0.2 r1.2]
        let t1 = _mm256_unpackhi_pd(r0, r1); // [r0.1 r1.1 r0.3 r1.3]
        let t2 = _mm256_unpacklo_pd(r2, r3);
        let t3 = _mm256_unpackhi_pd(r2, r3);
        [
            _mm256_permute2f128_pd(t0, t2, 0x20),
            _mm256_permute2f128_pd(t1, t3, 0x20),
            _mm256_permute2f128_pd(t0, t2, 0x31),
            _mm256_permute2f128_pd(t1, t3, 0x31),
        ]
    }

    /// Load four consecutive patterns and transpose to state-major lanes
    /// `[vA, vC, vG, vT]`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load4(src: *const f64) -> [__m256d; 4] {
        let r0 = _mm256_loadu_pd(src);
        let r1 = _mm256_loadu_pd(src.add(4));
        let r2 = _mm256_loadu_pd(src.add(8));
        let r3 = _mm256_loadu_pd(src.add(12));
        transpose4(r0, r1, r2, r3)
    }

    /// Propagate four patterns of one child through its branch:
    /// state-major lanes in, state-major propagated lanes out.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn propagate4(
        co: &FoldedCoefficients,
        f: [__m256d; 4],
        v: [__m256d; 4],
    ) -> [__m256d; 4] {
        let [va, vc, vg, vt] = v;
        let [fa, fc, fg, ft] = f;
        let sr = _mm256_fmadd_pd(fa, va, _mm256_mul_pd(fg, vg));
        let sy = _mm256_fmadd_pd(fc, vc, _mm256_mul_pd(ft, vt));
        let s = _mm256_add_pd(sr, sy);
        let c1 = _mm256_set1_pd(co.c1);
        let c3s = _mm256_mul_pd(_mm256_set1_pd(co.c3), s);
        let wr = _mm256_fmadd_pd(_mm256_set1_pd(co.c2r), sr, c3s);
        let wy = _mm256_fmadd_pd(_mm256_set1_pd(co.c2y), sy, c3s);
        [
            _mm256_fmadd_pd(c1, va, wr),
            _mm256_fmadd_pd(c1, vc, wy),
            _mm256_fmadd_pd(c1, vg, wr),
            _mm256_fmadd_pd(c1, vt, wy),
        ]
    }

    /// The combine kernel over `x1.len()/4` patterns, four at a time, with
    /// per-pattern maxima recorded into `maxes` while the products are
    /// still in state-major registers (three packed `max` ops per quad).
    /// Returns how many *doubles* were processed (a multiple of 16); the
    /// caller's scalar loop finishes the remainder.
    ///
    /// # Safety
    /// The host must support AVX2 and FMA; the three CLV slices must share
    /// one length with `maxes` covering a quarter of it.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn combine_span_avx2(
        freqs: &[f64; 4],
        ca: &FoldedCoefficients,
        cb: &FoldedCoefficients,
        x1: &[f64],
        x2: &[f64],
        out: &mut [f64],
        maxes: &mut [f64],
    ) -> usize {
        let quads = x1.len() / 16;
        let f = [
            _mm256_set1_pd(freqs[0]),
            _mm256_set1_pd(freqs[1]),
            _mm256_set1_pd(freqs[2]),
            _mm256_set1_pd(freqs[3]),
        ];
        for q in 0..quads {
            let base = q * 16;
            // Safety: `base + 16 <= x1.len()` and the three slices share
            // that length by the kernel's contract.
            let p1 = propagate4(ca, f, load4(x1.as_ptr().add(base)));
            let p2 = propagate4(cb, f, load4(x2.as_ptr().add(base)));
            let oa = _mm256_mul_pd(p1[0], p2[0]);
            let oc = _mm256_mul_pd(p1[1], p2[1]);
            let og = _mm256_mul_pd(p1[2], p2[2]);
            let ot = _mm256_mul_pd(p1[3], p2[3]);
            let vmax = _mm256_max_pd(_mm256_max_pd(oa, oc), _mm256_max_pd(og, ot));
            _mm256_storeu_pd(maxes.as_mut_ptr().add(q * 4), vmax);
            let rows = transpose4(oa, oc, og, ot);
            let dst = out.as_mut_ptr().add(base);
            _mm256_storeu_pd(dst, rows[0]);
            _mm256_storeu_pd(dst.add(4), rows[1]);
            _mm256_storeu_pd(dst.add(8), rows[2]);
            _mm256_storeu_pd(dst.add(12), rows[3]);
        }
        quads * 16
    }

    /// An AVX-512 permutation index vector.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn idx8(i: [i64; 8]) -> __m512i {
        _mm512_setr_epi64(i[0], i[1], i[2], i[3], i[4], i[5], i[6], i[7])
    }

    /// Propagate eight patterns of one child through its branch — the same
    /// multiply-add DAG as [`propagate4`], two registers wider.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn propagate8(
        co: &FoldedCoefficients,
        f: [__m512d; 4],
        v: [__m512d; 4],
    ) -> [__m512d; 4] {
        let [va, vc, vg, vt] = v;
        let [fa, fc, fg, ft] = f;
        let sr = _mm512_fmadd_pd(fa, va, _mm512_mul_pd(fg, vg));
        let sy = _mm512_fmadd_pd(fc, vc, _mm512_mul_pd(ft, vt));
        let s = _mm512_add_pd(sr, sy);
        let c1 = _mm512_set1_pd(co.c1);
        let c3s = _mm512_mul_pd(_mm512_set1_pd(co.c3), s);
        let wr = _mm512_fmadd_pd(_mm512_set1_pd(co.c2r), sr, c3s);
        let wy = _mm512_fmadd_pd(_mm512_set1_pd(co.c2y), sy, c3s);
        [
            _mm512_fmadd_pd(c1, va, wr),
            _mm512_fmadd_pd(c1, vc, wy),
            _mm512_fmadd_pd(c1, vg, wr),
            _mm512_fmadd_pd(c1, vt, wy),
        ]
    }

    /// The combine kernel over eight patterns at a time (AVX-512F). The
    /// 8×4 pattern-major ↔ state-major transposes are pairs of two-source
    /// permutes (`vpermt2pd`), eight per direction. Returns how many
    /// *doubles* were processed (a multiple of 32).
    ///
    /// # Safety
    /// The host must support AVX-512F; slice contract as for
    /// [`combine_span_avx2`].
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn combine_span_avx512(
        freqs: &[f64; 4],
        ca: &FoldedCoefficients,
        cb: &FoldedCoefficients,
        x1: &[f64],
        x2: &[f64],
        out: &mut [f64],
        maxes: &mut [f64],
    ) -> usize {
        let octets = x1.len() / 32;
        let f = [
            _mm512_set1_pd(freqs[0]),
            _mm512_set1_pd(freqs[1]),
            _mm512_set1_pd(freqs[2]),
            _mm512_set1_pd(freqs[3]),
        ];
        // Gather indices: a row holds two pattern-major patterns
        // [A C G T A' C' G' T']; `lo`/`hi` split a row pair into
        // [A A' A'' A''' C …] / [G … T …]; `merge_*` splice two such
        // four-lane halves into one eight-lane state vector.
        let lo = idx8([0, 4, 8, 12, 1, 5, 9, 13]);
        let hi = idx8([2, 6, 10, 14, 3, 7, 11, 15]);
        let merge_lo = idx8([0, 1, 2, 3, 8, 9, 10, 11]);
        let merge_hi = idx8([4, 5, 6, 7, 12, 13, 14, 15]);
        // Scatter indices for the inverse transpose (see the store below).
        let pair = idx8([0, 8, 1, 9, 2, 10, 3, 11]);
        let pair_hi = idx8([4, 12, 5, 13, 6, 14, 7, 15]);
        let quad_lo = idx8([0, 1, 8, 9, 2, 3, 10, 11]);
        let quad_hi = idx8([4, 5, 12, 13, 6, 7, 14, 15]);
        let load8 = |src: *const f64| -> [__m512d; 4] {
            let r0 = _mm512_loadu_pd(src);
            let r1 = _mm512_loadu_pd(src.add(8));
            let r2 = _mm512_loadu_pd(src.add(16));
            let r3 = _mm512_loadu_pd(src.add(24));
            let s_lo = _mm512_permutex2var_pd(r0, lo, r1); // A0..A3 C0..C3
            let s_hi = _mm512_permutex2var_pd(r0, hi, r1); // G0..G3 T0..T3
            let u_lo = _mm512_permutex2var_pd(r2, lo, r3); // A4..A7 C4..C7
            let u_hi = _mm512_permutex2var_pd(r2, hi, r3);
            [
                _mm512_permutex2var_pd(s_lo, merge_lo, u_lo), // vA
                _mm512_permutex2var_pd(s_lo, merge_hi, u_lo), // vC
                _mm512_permutex2var_pd(s_hi, merge_lo, u_hi), // vG
                _mm512_permutex2var_pd(s_hi, merge_hi, u_hi), // vT
            ]
        };
        for o in 0..octets {
            let base = o * 32;
            // Safety: `base + 32 <= x1.len()` by the octet count.
            let p1 = propagate8(ca, f, load8(x1.as_ptr().add(base)));
            let p2 = propagate8(cb, f, load8(x2.as_ptr().add(base)));
            let oa = _mm512_mul_pd(p1[0], p2[0]);
            let oc = _mm512_mul_pd(p1[1], p2[1]);
            let og = _mm512_mul_pd(p1[2], p2[2]);
            let ot = _mm512_mul_pd(p1[3], p2[3]);
            let vmax = _mm512_max_pd(_mm512_max_pd(oa, oc), _mm512_max_pd(og, ot));
            _mm512_storeu_pd(maxes.as_mut_ptr().add(o * 8), vmax);
            // Inverse transpose: interleave (A,C) and (G,T) per pattern,
            // then splice AC pairs with GT pairs into pattern-major rows.
            let ac_lo = _mm512_permutex2var_pd(oa, pair, oc); // A0 C0 .. A3 C3
            let ac_hi = _mm512_permutex2var_pd(oa, pair_hi, oc);
            let gt_lo = _mm512_permutex2var_pd(og, pair, ot);
            let gt_hi = _mm512_permutex2var_pd(og, pair_hi, ot);
            let dst = out.as_mut_ptr().add(base);
            _mm512_storeu_pd(dst, _mm512_permutex2var_pd(ac_lo, quad_lo, gt_lo));
            _mm512_storeu_pd(dst.add(8), _mm512_permutex2var_pd(ac_lo, quad_hi, gt_lo));
            _mm512_storeu_pd(dst.add(16), _mm512_permutex2var_pd(ac_hi, quad_lo, gt_hi));
            _mm512_storeu_pd(dst.add(24), _mm512_permutex2var_pd(ac_hi, quad_hi, gt_hi));
        }
        octets * 32
    }
}

/// NEON kernels for aarch64, two patterns per iteration. NEON is baseline
/// on aarch64, so no feature probe gates the call — the dispatch exists so
/// `--isa scalar` exercises the portable loop there too.
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::FoldedCoefficients;
    use core::arch::aarch64::*;

    /// Propagate two patterns of one child — the scalar DAG, two wide.
    #[inline]
    unsafe fn propagate2(
        co: &FoldedCoefficients,
        f: [float64x2_t; 4],
        v: [float64x2_t; 4],
    ) -> [float64x2_t; 4] {
        let [va, vc, vg, vt] = v;
        let [fa, fc, fg, ft] = f;
        let sr = vfmaq_f64(vmulq_f64(fg, vg), fa, va);
        let sy = vfmaq_f64(vmulq_f64(ft, vt), fc, vc);
        let s = vaddq_f64(sr, sy);
        let c1 = vdupq_n_f64(co.c1);
        let c3s = vmulq_f64(vdupq_n_f64(co.c3), s);
        let wr = vfmaq_f64(c3s, vdupq_n_f64(co.c2r), sr);
        let wy = vfmaq_f64(c3s, vdupq_n_f64(co.c2y), sy);
        [
            vfmaq_f64(wr, c1, va),
            vfmaq_f64(wy, c1, vc),
            vfmaq_f64(wr, c1, vg),
            vfmaq_f64(wy, c1, vt),
        ]
    }

    /// The combine kernel over two patterns at a time. Returns how many
    /// *doubles* were processed (a multiple of 8).
    ///
    /// # Safety
    /// Slice contract as for the x86 span kernels.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn combine_span_neon(
        freqs: &[f64; 4],
        ca: &FoldedCoefficients,
        cb: &FoldedCoefficients,
        x1: &[f64],
        x2: &[f64],
        out: &mut [f64],
        maxes: &mut [f64],
    ) -> usize {
        let pairs = x1.len() / 8;
        let f = [
            vdupq_n_f64(freqs[0]),
            vdupq_n_f64(freqs[1]),
            vdupq_n_f64(freqs[2]),
            vdupq_n_f64(freqs[3]),
        ];
        let load2 = |src: *const f64| -> [float64x2_t; 4] {
            let p0 = vld1q_f64(src); // [A0 C0]
            let p0h = vld1q_f64(src.add(2)); // [G0 T0]
            let p1 = vld1q_f64(src.add(4)); // [A1 C1]
            let p1h = vld1q_f64(src.add(6)); // [G1 T1]
            [
                vzip1q_f64(p0, p1),   // [A0 A1]
                vzip2q_f64(p0, p1),   // [C0 C1]
                vzip1q_f64(p0h, p1h), // [G0 G1]
                vzip2q_f64(p0h, p1h), // [T0 T1]
            ]
        };
        for i in 0..pairs {
            let base = i * 8;
            // Safety: `base + 8 <= x1.len()` by the pair count.
            let p1 = propagate2(ca, f, load2(x1.as_ptr().add(base)));
            let p2 = propagate2(cb, f, load2(x2.as_ptr().add(base)));
            let oa = vmulq_f64(p1[0], p2[0]);
            let oc = vmulq_f64(p1[1], p2[1]);
            let og = vmulq_f64(p1[2], p2[2]);
            let ot = vmulq_f64(p1[3], p2[3]);
            let vmax = vmaxq_f64(vmaxq_f64(oa, oc), vmaxq_f64(og, ot));
            vst1q_f64(maxes.as_mut_ptr().add(i * 2), vmax);
            let dst = out.as_mut_ptr().add(base);
            vst1q_f64(dst, vzip1q_f64(oa, oc)); // [A0 C0]
            vst1q_f64(dst.add(2), vzip1q_f64(og, ot)); // [G0 T0]
            vst1q_f64(dst.add(4), vzip2q_f64(oa, oc)); // [A1 C1]
            vst1q_f64(dst.add(6), vzip2q_f64(og, ot)); // [T1 …]
        }
        pairs * 8
    }
}

/// The category runs intersecting `[lo, hi)`: the suffix of `runs` whose
/// first element is the run containing `lo` (runs are sorted and disjoint;
/// callers clip each run to the block themselves).
#[inline]
fn runs_from(runs: &[CategoryRun], lo: usize) -> &[CategoryRun] {
    &runs[runs.partition_point(|r| r.end <= lo)..]
}

/// One pattern block of the combine kernel: spans clipped to `[lo, hi)`
/// plus the deferred rescale scan over the block. `out_b`, `scale_b`, and
/// `maxes_b` are the block's exclusive sub-slices (local indexing).
#[allow(clippy::too_many_arguments)]
fn combine_block(
    model: &F84Model,
    runs: &[CategoryRun],
    co1: &[FoldedCoefficients],
    clv1: &[f64],
    scale1: &[i32],
    co2: &[FoldedCoefficients],
    clv2: &[f64],
    scale2: &[i32],
    lo: usize,
    hi: usize,
    out_b: &mut [f64],
    scale_b: &mut [i32],
    maxes_b: &mut [f64],
) {
    for run in runs_from(runs, lo) {
        if run.start >= hi {
            break;
        }
        let ca = co1[run.category];
        let cb = co2[run.category];
        let (s, e) = (run.start.max(lo), run.end.min(hi));
        combine_span(
            model,
            &ca,
            &cb,
            &clv1[s * 4..e * 4],
            &clv2[s * 4..e * 4],
            &mut out_b[(s - lo) * 4..(e - lo) * 4],
            &mut maxes_b[s - lo..e - lo],
        );
    }
    // Deferred rescaling: scan the per-pattern maxima (recorded by the
    // combine loop while the products were in registers) a
    // [`SCALE_CHECK_BLOCK`] at a time. Because `lo` is a multiple of
    // [`par::PAR_BLOCK`] (itself a multiple of the scan block), these
    // windows coincide exactly with the serial full-range scan. The fast
    // path (every max comfortably above threshold — the overwhelmingly
    // common case) only copies scale sums; the cold path replicates the
    // reference per-pattern decision exactly.
    let mut p = lo;
    while p < hi {
        let end = (p + SCALE_CHECK_BLOCK).min(hi);
        let mut all_above = true;
        for &m in &maxes_b[p - lo..end - lo] {
            all_above &= m >= SCALE_THRESHOLD;
        }
        if all_above {
            for q in p..end {
                scale_b[q - lo] = scale1[q] + scale2[q];
            }
        } else {
            for q in p..end {
                let m = maxes_b[q - lo];
                let b = (q - lo) * 4;
                let mut sc = scale1[q] + scale2[q];
                if m < SCALE_THRESHOLD && m > 0.0 {
                    for v in &mut out_b[b..b + 4] {
                        *v *= SCALE_FACTOR;
                    }
                    sc += 1;
                }
                scale_b[q - lo] = sc;
            }
        }
        p = end;
    }
}

/// Optimized [`reference::combine_children`]: folded coefficients, category
/// runs, multiply-add inner loop, deferred blocked rescaling, pattern
/// blocks fanned across `par`'s pool. Numerics agree with the reference to
/// rounding (≤1e-12 per entry in the equivalence suite) and are
/// bit-identical at any thread count (every per-pattern output is a pure
/// map; the rescale decision is pattern-local).
#[allow(clippy::too_many_arguments)]
pub fn combine_folded(
    par: &IntraPar,
    model: &F84Model,
    runs: &[CategoryRun],
    co1: &[FoldedCoefficients],
    clv1: &[f64],
    scale1: &[i32],
    co2: &[FoldedCoefficients],
    clv2: &[f64],
    scale2: &[i32],
    out: &mut [f64],
    scale_out: &mut [i32],
    maxes: &mut [f64],
) -> u64 {
    let np = scale_out.len();
    let nblocks = par::block_count(np);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let scale_ptr = SendPtr(scale_out.as_mut_ptr());
    let maxes_ptr = SendPtr(maxes.as_mut_ptr());
    par.for_each_block(nblocks, |b| {
        let (lo, hi) = par::block_range(b, np);
        // Safety: block `b` owns patterns `[lo, hi)` exclusively; blocks
        // are disjoint and the broadcast completes before `out` is reused.
        let (out_b, scale_b, maxes_b) = unsafe {
            (
                std::slice::from_raw_parts_mut(out_ptr.get().add(lo * 4), (hi - lo) * 4),
                std::slice::from_raw_parts_mut(scale_ptr.get().add(lo), hi - lo),
                std::slice::from_raw_parts_mut(maxes_ptr.get().add(lo), hi - lo),
            )
        };
        combine_block(
            model, runs, co1, clv1, scale1, co2, clv2, scale2, lo, hi, out_b, scale_b, maxes_b,
        );
    });
    np as u64
}

/// One pattern block of W-term assembly (local indexing on `out_b`).
fn w_terms_block(model: &F84Model, u: &[f64], d: &[f64], out_b: &mut [WTerms]) {
    let f = &model.freqs;
    let (fa, fc, fg, ft) = (f[A], f[C], f[G], f[T]);
    let inv_r = 1.0 / model.freq_r();
    let inv_y = 1.0 / model.freq_y();
    for ((w, uu), dd) in out_b
        .iter_mut()
        .zip(u.chunks_exact(4))
        .zip(d.chunks_exact(4))
    {
        let w1 = (fa * uu[A]).mul_add(
            dd[A],
            (fc * uu[C]).mul_add(dd[C], (fg * uu[G]).mul_add(dd[G], ft * uu[T] * dd[T])),
        );
        let ur = fa.mul_add(uu[A], fg * uu[G]);
        let uy = fc.mul_add(uu[C], ft * uu[T]);
        let dr = fa.mul_add(dd[A], fg * dd[G]);
        let dy = fc.mul_add(dd[C], ft * dd[T]);
        let w2 = (ur * dr).mul_add(inv_r, uy * dy * inv_y);
        let w3 = (ur + uy) * (dr + dy);
        *w = WTerms { w1, w2, w3 };
    }
}

/// Optimized [`reference::edge_w_terms`]: reciprocal group frequencies
/// hoisted, multiply-add form, pattern blocks fanned across `par`'s pool
/// (a pure per-pattern map — bit-identical at any thread count).
pub fn w_terms_folded(
    par: &IntraPar,
    model: &F84Model,
    u: &[f64],
    d: &[f64],
    out: &mut [WTerms],
) -> u64 {
    let np = out.len();
    let nblocks = par::block_count(np);
    let out_ptr = SendPtr(out.as_mut_ptr());
    par.for_each_block(nblocks, |b| {
        let (lo, hi) = par::block_range(b, np);
        // Safety: block `b` owns `out[lo..hi]` exclusively.
        let out_b = unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(lo), hi - lo) };
        w_terms_block(model, &u[lo * 4..hi * 4], &d[lo * 4..hi * 4], out_b);
    });
    np as u64
}

/// Per-block partial of the branch log-likelihood fold.
#[derive(Clone, Copy)]
struct LnlPartial {
    prod: LnProd,
    scale_sum: i64,
}

impl LnlPartial {
    const IDENTITY: LnlPartial = LnlPartial {
        prod: LnProd {
            mantissa: 1.0,
            exponent: 0,
            extra: 0.0,
        },
        scale_sum: 0,
    };
}

fn branch_lnl_block(
    co: &EdgeCoefficients,
    runs: &[CategoryRun],
    w: &[WTerms],
    weights: &[u32],
    scale: &[i32],
    lo: usize,
    hi: usize,
) -> LnlPartial {
    let mut prod = LnProd::new();
    let mut scale_sum: i64 = 0;
    for run in runs_from(runs, lo) {
        if run.start >= hi {
            break;
        }
        let c = &co.per_cat[run.category];
        for p in run.start.max(lo)..run.end.min(hi) {
            let terms = &w[p];
            let f =
                c.c1.mul_add(terms.w1, c.c2.mul_add(terms.w2, c.c3 * terms.w3))
                    .max(f64::MIN_POSITIVE);
            prod.mul_pow(f, weights[p]);
            scale_sum += weights[p] as i64 * scale[p] as i64;
        }
    }
    LnlPartial { prod, scale_sum }
}

/// Optimized [`reference::edge_log_likelihood`] over a prefilled coefficient
/// table: category runs plus [`LnProd`] (one `ln` total instead of one per
/// pattern); the scale offset is accumulated exactly in integers. The fold
/// runs as one [`LnProd`] partial per [`par::PAR_BLOCK`] pattern block —
/// the canonical fixed-order reduction, executed serially or fanned across
/// `par`'s pool with the partials merged in block order either way, so the
/// result is bit-identical at any thread count.
pub fn branch_lnl_folded(
    par: &IntraPar,
    co: &EdgeCoefficients,
    runs: &[CategoryRun],
    w: &[WTerms],
    weights: &[u32],
    scale: &[i32],
) -> f64 {
    let np = w.len();
    let nblocks = par::block_count(np);
    let mut stack = [LnlPartial::IDENTITY; MAX_STACK_BLOCKS];
    let mut heap = Vec::new();
    let parts: &mut [LnlPartial] = if nblocks <= MAX_STACK_BLOCKS {
        &mut stack[..nblocks]
    } else {
        heap.resize(nblocks, LnlPartial::IDENTITY);
        &mut heap
    };
    let parts_ptr = SendPtr(parts.as_mut_ptr());
    par.for_each_block(nblocks, |b| {
        let (lo, hi) = par::block_range(b, np);
        // Safety: slot `b` is written by exactly one block invocation.
        unsafe { *parts_ptr.get().add(b) = branch_lnl_block(co, runs, w, weights, scale, lo, hi) };
    });
    let mut prod = LnProd::new();
    let mut scale_sum: i64 = 0;
    for part in parts.iter() {
        prod.merge(&part.prod);
        scale_sum += part.scale_sum;
    }
    prod.value() + scale_sum as f64 * LN_SCALE
}

/// Per-block partial of the fused Newton objective fold.
#[derive(Clone, Copy)]
struct D012Partial {
    prod: LnProd,
    d1: f64,
    d2: f64,
}

impl D012Partial {
    const IDENTITY: D012Partial = D012Partial {
        prod: LnProd {
            mantissa: 1.0,
            exponent: 0,
            extra: 0.0,
        },
        d1: 0.0,
        d2: 0.0,
    };
}

fn lnl_d012_block(
    deriv: &EdgeDerivCoefficients,
    runs: &[CategoryRun],
    w: &[WTerms],
    weights: &[u32],
    lo: usize,
    hi: usize,
) -> D012Partial {
    let mut prod = LnProd::new();
    let mut d1 = 0.0;
    let mut d2 = 0.0;
    for run in runs_from(runs, lo) {
        if run.start >= hi {
            break;
        }
        let co = &deriv.per_cat[run.category];
        let (v, g, h) = (&co.value, &co.d1, &co.d2);
        for p in run.start.max(lo)..run.end.min(hi) {
            let terms = &w[p];
            let f =
                v.c1.mul_add(terms.w1, v.c2.mul_add(terms.w2, v.c3 * terms.w3))
                    .max(f64::MIN_POSITIVE);
            let fp =
                g.c1.mul_add(terms.w1, g.c2.mul_add(terms.w2, g.c3 * terms.w3));
            let fpp =
                h.c1.mul_add(terms.w1, h.c2.mul_add(terms.w2, h.c3 * terms.w3));
            let wgt = weights[p] as f64;
            let inv = 1.0 / f;
            let r = fp * inv;
            prod.mul_pow(f, weights[p]);
            d1 += wgt * r;
            d2 += wgt * r.mul_add(-r, fpp * inv);
        }
    }
    D012Partial { prod, d1, d2 }
}

/// Fused W-terms → (lnL, d1, d2) evaluation for Newton: one pass over the
/// patterns computes the likelihood and both derivatives from a prefilled
/// derivative-coefficient table. Matches
/// [`crate::newton::log_likelihood_d012`] (which excludes the constant
/// scaling offset) to rounding. Folded per pattern block exactly like
/// [`branch_lnl_folded`] — the derivative sums merge in block order too,
/// so Newton's trajectory is bit-identical at any thread count.
pub fn lnl_d012_folded(
    par: &IntraPar,
    deriv: &EdgeDerivCoefficients,
    runs: &[CategoryRun],
    w: &[WTerms],
    weights: &[u32],
) -> (f64, f64, f64) {
    let np = w.len();
    let nblocks = par::block_count(np);
    let mut stack = [D012Partial::IDENTITY; MAX_STACK_BLOCKS];
    let mut heap = Vec::new();
    let parts: &mut [D012Partial] = if nblocks <= MAX_STACK_BLOCKS {
        &mut stack[..nblocks]
    } else {
        heap.resize(nblocks, D012Partial::IDENTITY);
        &mut heap
    };
    let parts_ptr = SendPtr(parts.as_mut_ptr());
    par.for_each_block(nblocks, |b| {
        let (lo, hi) = par::block_range(b, np);
        // Safety: slot `b` is written by exactly one block invocation.
        unsafe { *parts_ptr.get().add(b) = lnl_d012_block(deriv, runs, w, weights, lo, hi) };
    });
    let mut prod = LnProd::new();
    let mut d1 = 0.0;
    let mut d2 = 0.0;
    for part in parts.iter() {
        prod.merge(&part.prod);
        d1 += part.d1;
        d2 += part.d2;
    }
    (prod.value(), d1, d2)
}

/// Mode-dispatched internal-node CLV combine: fills the scratch coefficient
/// tables from the two branch lengths and runs the selected kernel.
/// `Reference` reproduces the seed behavior including its per-call
/// allocations, so benchmark baselines stay honest.
#[allow(clippy::too_many_arguments)]
pub fn combine_edges(
    mode: KernelMode,
    model: &F84Model,
    cats: &RateCategories,
    scratch: &mut KernelScratch,
    t1: f64,
    clv1: &[f64],
    scale1: &[i32],
    t2: f64,
    clv2: &[f64],
    scale2: &[i32],
    out: &mut [f64],
    scale_out: &mut [i32],
) -> u64 {
    match mode {
        KernelMode::Reference => {
            let co1 = reference::branch_coefficients(model, cats, t1);
            let co2 = reference::branch_coefficients(model, cats, t2);
            reference::combine_children(
                model, cats, &co1, clv1, scale1, &co2, clv2, scale2, out, scale_out,
            )
        }
        KernelMode::Optimized => {
            let KernelScratch {
                runs,
                co_a,
                co_b,
                maxes,
                par,
                ..
            } = scratch;
            co_a.fill(model, cats, t1);
            co_b.fill(model, cats, t2);
            combine_folded(
                par,
                model,
                runs,
                &co_a.per_cat,
                clv1,
                scale1,
                &co_b.per_cat,
                clv2,
                scale2,
                out,
                scale_out,
                maxes,
            )
        }
    }
}

/// Mode-dispatched W-term assembly.
pub fn compute_w_terms(
    mode: KernelMode,
    model: &F84Model,
    par: &IntraPar,
    u: &[f64],
    d: &[f64],
    out: &mut [WTerms],
) -> u64 {
    match mode {
        KernelMode::Reference => reference::edge_w_terms(model, u, d, out),
        KernelMode::Optimized => w_terms_folded(par, model, u, d, out),
    }
}

/// Mode-dispatched branch log-likelihood.
#[allow(clippy::too_many_arguments)]
pub fn branch_lnl(
    mode: KernelMode,
    model: &F84Model,
    cats: &RateCategories,
    scratch: &mut KernelScratch,
    t: f64,
    w: &[WTerms],
    weights: &[u32],
    scale: &[i32],
) -> f64 {
    match mode {
        KernelMode::Reference => reference::edge_log_likelihood(model, cats, t, w, weights, scale),
        KernelMode::Optimized => {
            scratch.co_a.fill(model, cats, t);
            branch_lnl_folded(
                &scratch.par,
                &scratch.co_a,
                &scratch.runs,
                w,
                weights,
                scale,
            )
        }
    }
}

/// Mode-dispatched Newton branch-length optimization. The optimized arm
/// shares the safeguarded iteration in [`crate::newton`] but evaluates the
/// objective through the fused kernel with a reusable coefficient table —
/// no allocation per iteration (the reference arm keeps the seed's
/// per-iteration `Vec` collect).
#[allow(clippy::too_many_arguments)]
pub fn optimize_branch_dispatch(
    mode: KernelMode,
    model: &F84Model,
    cats: &RateCategories,
    scratch: &mut KernelScratch,
    w: &[WTerms],
    weights: &[u32],
    t0: f64,
    opts: &NewtonOptions,
    work: &mut WorkCounter,
) -> f64 {
    match mode {
        KernelMode::Reference => newton::optimize_branch(model, cats, w, weights, t0, opts, work),
        KernelMode::Optimized => {
            let KernelScratch {
                runs, deriv, par, ..
            } = scratch;
            newton::newton_loop(t0, opts, &mut |t| {
                deriv.fill(model, cats, t);
                work.newton_pattern_iters += w.len() as u64;
                lnl_d012_folded(par, deriv, runs, w, weights)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_optimized() {
        assert_eq!(KernelMode::default(), KernelMode::Optimized);
    }

    #[test]
    fn category_runs_cover_assignment() {
        let cats = RateCategories::new(vec![1.0, 2.0, 3.0], vec![0, 0, 1, 1, 1, 2, 0, 0]);
        let runs = category_runs(&cats);
        assert_eq!(
            runs,
            vec![
                CategoryRun {
                    start: 0,
                    end: 2,
                    category: 0
                },
                CategoryRun {
                    start: 2,
                    end: 5,
                    category: 1
                },
                CategoryRun {
                    start: 5,
                    end: 6,
                    category: 2
                },
                CategoryRun {
                    start: 6,
                    end: 8,
                    category: 0
                },
            ]
        );
        let covered: usize = runs.iter().map(|r| r.end - r.start).sum();
        assert_eq!(covered, cats.num_patterns());
    }

    #[test]
    fn category_runs_empty_assignment() {
        let cats = RateCategories::new(vec![1.0], vec![]);
        assert!(category_runs(&cats).is_empty());
    }

    #[test]
    fn runs_from_skips_completed_runs() {
        let cats = RateCategories::new(vec![1.0, 2.0], vec![0, 0, 0, 1, 1, 0, 0, 0]);
        let runs = category_runs(&cats);
        assert_eq!(runs_from(&runs, 0).len(), 3);
        assert_eq!(runs_from(&runs, 3).len(), 2);
        assert_eq!(runs_from(&runs, 4)[0].category, 1);
        assert_eq!(runs_from(&runs, 5).len(), 1);
        assert!(runs_from(&runs, 8).is_empty());
    }

    #[test]
    fn folded_coefficients_match_divisions() {
        let m = F84Model::new([0.3, 0.2, 0.25, 0.25], 2.0);
        let cats = RateCategories::new(vec![0.5, 1.0, 2.0], vec![0, 1, 2]);
        let mut table = EdgeCoefficients::new();
        table.fill(&m, &cats, 0.37);
        for (c, folded) in table.per_cat().iter().enumerate() {
            let raw = m.coefficients(0.37, cats.rate(c));
            assert_eq!(folded.c1, raw.c1);
            assert_eq!(folded.c2, raw.c2);
            let rel = |x: f64, y: f64| (x - y).abs() <= 1e-15 * y.abs().max(1e-300);
            assert!(rel(folded.c2r, raw.c2 / m.freq_r()));
            assert!(rel(folded.c2y, raw.c2 / m.freq_y()));
            assert_eq!(folded.c3, raw.c3);
        }
        // Refill shrinks/reuses without reallocating semantics breakage.
        table.fill(&m, &cats, 1.2);
        assert_eq!(table.per_cat().len(), 3);
    }

    #[test]
    fn ln_prod_matches_direct_log_sum() {
        let mut prod = LnProd::new();
        let mut direct = 0.0;
        let factors = [
            (0.3_f64, 1_u32),
            (1.7e-102, 3),
            (0.999, 200),
            (2.5e-5, 1),
            (0.04, 1000), // beyond POW_LIMIT → ln fallback
            (0.87, 512),
            (f64::MIN_POSITIVE, 2),
        ];
        for &(f, w) in &factors {
            prod.mul_pow(f, w);
            direct += w as f64 * f.ln();
        }
        let got = prod.value();
        assert!(
            (got - direct).abs() < 1e-9 * direct.abs().max(1.0),
            "{got} vs {direct}"
        );
    }

    #[test]
    fn ln_prod_survives_many_tiny_factors() {
        // 10^5 factors of ~1e-100 would underflow any plain product; the
        // mantissa/exponent split keeps the log exact to rounding.
        let mut prod = LnProd::new();
        for i in 0..100_000u32 {
            let f = 1e-100 * (1.0 + (i % 7) as f64 * 0.1);
            prod.mul_pow(f, 1);
        }
        let got = prod.value();
        assert!(got.is_finite());
        let mut direct = 0.0;
        for i in 0..100_000u32 {
            direct += (1e-100 * (1.0 + (i % 7) as f64 * 0.1)).ln();
        }
        assert!(
            (got - direct).abs() < 1e-7 * direct.abs(),
            "{got} vs {direct}"
        );
    }

    #[test]
    fn zero_weight_is_identity() {
        let mut prod = LnProd::new();
        prod.mul_pow(0.5, 0);
        assert_eq!(prod.value(), 0.0);
    }

    /// Deterministic factor stream for the fold tests (xorshift64*).
    fn factor_stream(seed: u64, n: usize) -> Vec<(f64, u32)> {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        (0..n)
            .map(|_| {
                let f = 1e-120_f64.powf((next() % 1000) as f64 / 999.0) * 0.999;
                let w = 1 + (next() % 600) as u32;
                (f.max(f64::MIN_POSITIVE), w)
            })
            .collect()
    }

    #[test]
    fn single_block_fold_is_bitwise_serial() {
        // Merging one partial into the identity must reproduce the plain
        // serial fold bit for bit — the guarantee that keeps historical
        // likelihoods stable for ≤ PAR_BLOCK-pattern alignments.
        for seed in [3, 17, 99] {
            let factors = factor_stream(seed, 700);
            let mut serial = LnProd::new();
            for &(f, w) in &factors {
                serial.mul_pow(f, w);
            }
            let blocked = blocked_ln_prod(&factors, factors.len());
            assert_eq!(serial.value().to_bits(), blocked.value().to_bits());
        }
    }

    #[test]
    fn blocked_fold_merge_order_is_canonical() {
        // Computing the partials in any schedule and merging them in block
        // order must equal the sequential blocked fold bit for bit.
        let factors = factor_stream(42, 1000);
        for block in [1, 7, 64, 256, 999, 1000] {
            let sequential = blocked_ln_prod(&factors, block);
            let mut partials: Vec<LnProd> = factors
                .chunks(block)
                .map(|chunk| {
                    let mut p = LnProd::new();
                    for &(f, w) in chunk {
                        p.mul_pow(f, w);
                    }
                    p
                })
                .collect();
            partials.reverse(); // "compute" in reverse schedule
            partials.reverse(); // …then merge in canonical block order
            let mut merged = LnProd::new();
            for p in &partials {
                merged.merge(p);
            }
            assert_eq!(
                sequential.value().to_bits(),
                merged.value().to_bits(),
                "block {block}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_lanes_match_scalar_bitwise() {
        use crate::isa::KernelIsa;
        // 37 patterns: exercises the 8-wide, 4-wide, and scalar tails.
        let np = 37;
        let mut state = 0xfeed_beef_u64;
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut rand_clv = |scale: f64| -> Vec<f64> {
            (0..np * 4)
                .map(|_| (next() % 10_000) as f64 / 10_000.0 * scale + 1e-9)
                .collect()
        };
        let x1 = rand_clv(1.0);
        let x2 = rand_clv(1e-3);
        let freqs = [0.31, 0.19, 0.27, 0.23];
        let ca = FoldedCoefficients {
            c1: 0.8,
            c2: 0.1,
            c2r: 0.17,
            c2y: 0.24,
            c3: 0.05,
        };
        let cb = FoldedCoefficients {
            c1: 0.6,
            c2: 0.2,
            c2r: 0.35,
            c2y: 0.48,
            c3: 0.11,
        };
        let mut out_s = vec![0.0; np * 4];
        let mut maxes_s = vec![0.0; np];
        for p in 0..np {
            maxes_s[p] = combine_pattern(
                &freqs,
                &ca,
                &cb,
                &x1[p * 4..p * 4 + 4],
                &x2[p * 4..p * 4 + 4],
                &mut out_s[p * 4..p * 4 + 4],
            );
        }
        type SpanFn<'a> = &'a dyn Fn(&mut [f64], &mut [f64]) -> usize;
        let lanes: [(KernelIsa, SpanFn); 2] = [
            (KernelIsa::Avx2, &|out, maxes| unsafe {
                x86::combine_span_avx2(&freqs, &ca, &cb, &x1, &x2, out, maxes)
            }),
            (KernelIsa::Avx512, &|out, maxes| unsafe {
                x86::combine_span_avx512(&freqs, &ca, &cb, &x1, &x2, out, maxes)
            }),
        ];
        for (lane, run) in lanes {
            if !lane.supported() {
                continue;
            }
            let mut out_v = vec![0.0; np * 4];
            let mut maxes_v = vec![0.0; np];
            let done = run(&mut out_v, &mut maxes_v);
            assert!(done > 0 && done % 4 == 0, "{lane}: processed {done}");
            for i in 0..done {
                assert_eq!(
                    out_s[i].to_bits(),
                    out_v[i].to_bits(),
                    "{lane}: double {i} differs"
                );
            }
            for p in 0..done / 4 {
                assert_eq!(
                    maxes_s[p].to_bits(),
                    maxes_v[p].to_bits(),
                    "{lane}: max {p} differs"
                );
            }
        }
    }
}
