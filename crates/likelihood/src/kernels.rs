//! Optimized likelihood kernels: division-free, allocation-free, blocked.
//!
//! This module is the default implementation behind
//! [`crate::engine::LikelihoodEngine`]; the original scalar code lives in
//! [`crate::reference`] and serves as the equivalence oracle and benchmark
//! baseline. Three transformations separate the two:
//!
//! 1. **Folded coefficients** ([`EdgeCoefficients`]): the per-branch F84
//!    triple `(c1, c2, c3)` is precomputed per rate category with
//!    `c2/π_R` and `c2/π_Y` folded in, so the propagation inner loop is
//!    pure multiply-adds — the reference kernel divides twice per pattern.
//! 2. **Reusable scratch** ([`KernelScratch`], [`JunctionScratch`]): the
//!    coefficient tables, category runs, and junction buffers are owned by
//!    the caller's workspace and refilled in place, eliminating the
//!    per-call `Vec` allocations of `reference::branch_coefficients` —
//!    most importantly from the per-iteration Newton objective.
//! 3. **Blocked, category-run iteration**: patterns sharing a rate category
//!    form maximal runs ([`CategoryRun`]), so the per-pattern category
//!    lookup disappears from the hot loops and coefficients stay in
//!    registers; the underflow-rescaling check is deferred out of the
//!    multiply-add loop and performed in blocks of [`SCALE_CHECK_BLOCK`]
//!    patterns, with a branch-free fast path when no pattern underflows.
//!    Newton's per-pattern `ln` — the dominant cost of branch-length
//!    optimization — is replaced by a running product in mantissa/exponent
//!    form ([`LnProd`]) that takes a single `ln` per evaluation.
//!
//! Work accounting is unchanged: both paths count one unit per pattern per
//! kernel invocation, so `WorkCounter` totals are comparable across
//! [`KernelMode::Optimized`] and [`KernelMode::Reference`] runs.

use crate::categories::RateCategories;
use crate::clv::{WTerms, LN_SCALE, SCALE_FACTOR, SCALE_THRESHOLD};
use crate::f84::{CoefficientsD2, F84Model};
use crate::newton::{self, NewtonOptions};
use crate::reference;
use crate::work::WorkCounter;
use fdml_phylo::dna::{A, C, G, T};

/// How many patterns the deferred underflow scan covers per block.
pub const SCALE_CHECK_BLOCK: usize = 32;

/// Which kernel implementation an engine routes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// The blocked, division-free kernels in this module (the default).
    #[default]
    Optimized,
    /// The scalar oracle in [`crate::reference`] — the seed implementation,
    /// kept selectable for equivalence tests and benchmark baselines.
    Reference,
}

/// One branch's F84 coefficients for one rate category, with the group
/// divisions pre-folded: `c2r = c2/π_R`, `c2y = c2/π_Y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldedCoefficients {
    /// Identity-term weight.
    pub c1: f64,
    /// Raw within-group weight (needed where the likelihood itself uses
    /// `c2`, e.g. against W-terms that already carry the division).
    pub c2: f64,
    /// `c2 / π_R`.
    pub c2r: f64,
    /// `c2 / π_Y`.
    pub c2y: f64,
    /// Equilibrium-term weight.
    pub c3: f64,
}

/// Per-category folded coefficients for one branch at one length, refilled
/// in place (no allocation after the first fill at a given category count).
#[derive(Debug, Clone, Default)]
pub struct EdgeCoefficients {
    per_cat: Vec<FoldedCoefficients>,
}

impl EdgeCoefficients {
    /// An empty table; call [`EdgeCoefficients::fill`] before use.
    pub fn new() -> EdgeCoefficients {
        EdgeCoefficients::default()
    }

    /// Recompute the table for a branch of length `t`.
    pub fn fill(&mut self, model: &F84Model, cats: &RateCategories, t: f64) {
        let inv_r = 1.0 / model.freq_r();
        let inv_y = 1.0 / model.freq_y();
        self.per_cat.clear();
        self.per_cat.extend((0..cats.num_categories()).map(|c| {
            let co = model.coefficients(t, cats.rate(c));
            FoldedCoefficients {
                c1: co.c1,
                c2: co.c2,
                c2r: co.c2 * inv_r,
                c2y: co.c2 * inv_y,
                c3: co.c3,
            }
        }));
    }

    /// The folded coefficients, indexed by category.
    pub fn per_cat(&self) -> &[FoldedCoefficients] {
        &self.per_cat
    }
}

/// Per-category value/d1/d2 coefficient triples for one branch, refilled in
/// place each Newton iteration (replacing a per-iteration `Vec` collect).
#[derive(Debug, Clone, Default)]
pub struct EdgeDerivCoefficients {
    per_cat: Vec<CoefficientsD2>,
}

impl EdgeDerivCoefficients {
    /// Recompute the table for a branch of length `t`.
    pub fn fill(&mut self, model: &F84Model, cats: &RateCategories, t: f64) {
        self.per_cat.clear();
        self.per_cat
            .extend((0..cats.num_categories()).map(|c| model.coefficients_d2(t, cats.rate(c))));
    }

    /// The coefficient triples, indexed by category.
    pub fn per_cat(&self) -> &[CoefficientsD2] {
        &self.per_cat
    }
}

/// A maximal run of consecutive patterns sharing one rate category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryRun {
    /// First pattern of the run.
    pub start: usize,
    /// One past the last pattern of the run.
    pub end: usize,
    /// The shared category index.
    pub category: usize,
}

/// Decompose a category assignment into maximal constant-category runs.
pub fn category_runs(cats: &RateCategories) -> Vec<CategoryRun> {
    let mut runs = Vec::new();
    fill_category_runs(cats, &mut runs);
    runs
}

fn fill_category_runs(cats: &RateCategories, out: &mut Vec<CategoryRun>) {
    out.clear();
    let assignment = cats.assignment();
    let mut p = 0;
    while p < assignment.len() {
        let category = assignment[p] as usize;
        let start = p;
        while p < assignment.len() && assignment[p] as usize == category {
            p += 1;
        }
        out.push(CategoryRun {
            start,
            end: p,
            category,
        });
    }
}

/// Reusable per-workspace kernel state: the category-run decomposition plus
/// coefficient tables for the (at most two) branches of one kernel call.
///
/// The `Default` value is an inert placeholder (no runs, no pattern maxes)
/// left behind when a workspace's scratch is recycled; build usable scratch
/// with [`KernelScratch::new`].
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    runs: Vec<CategoryRun>,
    co_a: EdgeCoefficients,
    co_b: EdgeCoefficients,
    deriv: EdgeDerivCoefficients,
    maxes: Vec<f64>,
}

impl KernelScratch {
    /// Scratch bound to one category assignment (the runs are computed once
    /// here; a `RateCategories` is immutable for the scratch's lifetime).
    pub fn new(cats: &RateCategories) -> KernelScratch {
        KernelScratch {
            runs: category_runs(cats),
            co_a: EdgeCoefficients::new(),
            co_b: EdgeCoefficients::new(),
            deriv: EdgeDerivCoefficients::default(),
            maxes: vec![0.0; cats.num_patterns()],
        }
    }

    /// The category runs.
    pub fn runs(&self) -> &[CategoryRun] {
        &self.runs
    }
}

/// Reusable buffers for three-way junction scoring (`scorer`): the paired
/// CLV, its scale counts, the total-scale buffer, and the W-terms.
#[derive(Debug, Clone)]
pub struct JunctionScratch {
    /// Combined CLV of two junction arms.
    pub pair_clv: Vec<f64>,
    /// Scale counts of `pair_clv`.
    pub pair_scale: Vec<i32>,
    /// `pair_scale + third arm's scale`, for the final likelihood.
    pub scale_total: Vec<i32>,
    /// W-terms between `pair_clv` and the third arm.
    pub wterms: Vec<WTerms>,
}

impl JunctionScratch {
    /// Buffers sized for `np` patterns.
    pub fn new(np: usize) -> JunctionScratch {
        JunctionScratch {
            pair_clv: vec![0.0; np * 4],
            pair_scale: vec![0; np],
            scale_total: vec![0; np],
            wterms: vec![WTerms::ZERO; np],
        }
    }
}

/// A running product `Π f_p^{w_p}` kept as `mantissa · 2^exponent` (plus a
/// plain log-space accumulator for oversized powers), so the branch
/// log-likelihood needs one `ln` per *evaluation* instead of one per
/// pattern.
#[derive(Debug, Clone)]
pub struct LnProd {
    mantissa: f64,
    exponent: i64,
    extra: f64,
}

/// Largest weight folded into the product via `powi`; beyond this the
/// pattern falls back to `w·ln f` directly (accuracy of `powi` degrades and
/// the fallback is rare enough not to matter).
const POW_LIMIT: u32 = 512;

const MANTISSA_MASK: u64 = 0x000f_ffff_ffff_ffff;
const ONE_EXPONENT: u64 = 0x3ff0_0000_0000_0000;

impl LnProd {
    /// The empty product (value 1, log 0).
    #[allow(clippy::new_without_default)]
    pub fn new() -> LnProd {
        LnProd {
            mantissa: 1.0,
            exponent: 0,
            extra: 0.0,
        }
    }

    #[inline]
    fn renormalize(&mut self) {
        let bits = self.mantissa.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        if e != 0 {
            self.mantissa = f64::from_bits((bits & MANTISSA_MASK) | ONE_EXPONENT);
            self.exponent += e;
        }
    }

    /// Multiply `f^w` into the product. `f` must be positive, finite, and
    /// normal (callers clamp with `max(f64::MIN_POSITIVE)`).
    #[inline]
    pub fn mul_pow(&mut self, f: f64, w: u32) {
        debug_assert!(f >= f64::MIN_POSITIVE && f.is_finite());
        if w == 0 {
            return;
        }
        let bits = f.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let m = f64::from_bits((bits & MANTISSA_MASK) | ONE_EXPONENT);
        if w == 1 {
            // The common case (pattern weight 1): one multiply, and a
            // renormalize only when the mantissa has drifted far enough
            // that another factor in [1,2) could eventually overflow.
            self.mantissa *= m;
            self.exponent += e;
            if self.mantissa >= 1e128 {
                self.renormalize();
            }
        } else if w <= POW_LIMIT {
            // m ∈ [1,2) and w ≤ 512, so m^w ≤ 2^512 — representable, but
            // keep the running mantissa small around it.
            self.renormalize();
            self.mantissa *= m.powi(w as i32);
            self.exponent += e * w as i64;
            self.renormalize();
        } else {
            self.extra += w as f64 * f.ln();
        }
    }

    /// `ln` of the accumulated product.
    pub fn value(&self) -> f64 {
        self.mantissa.ln() + self.exponent as f64 * std::f64::consts::LN_2 + self.extra
    }
}

/// One pattern of division-free CLV propagation-and-product (the scalar
/// form; also the tail/fallback of the vectorized span kernel). Returns the
/// pattern's maximum entry, feeding the deferred rescale scan without a
/// second pass over the output.
#[inline]
fn combine_pattern(
    freqs: &[f64; 4],
    ca: &FoldedCoefficients,
    cb: &FoldedCoefficients,
    l1: &[f64],
    l2: &[f64],
    op: &mut [f64],
) -> f64 {
    let (fa, fc, fg, ft) = (freqs[A], freqs[C], freqs[G], freqs[T]);
    let sr1 = fa.mul_add(l1[A], fg * l1[G]);
    let sy1 = fc.mul_add(l1[C], ft * l1[T]);
    let s1 = sr1 + sy1;
    let wr1 = ca.c2r.mul_add(sr1, ca.c3 * s1);
    let wy1 = ca.c2y.mul_add(sy1, ca.c3 * s1);
    let sr2 = fa.mul_add(l2[A], fg * l2[G]);
    let sy2 = fc.mul_add(l2[C], ft * l2[T]);
    let s2 = sr2 + sy2;
    let wr2 = cb.c2r.mul_add(sr2, cb.c3 * s2);
    let wy2 = cb.c2y.mul_add(sy2, cb.c3 * s2);
    op[A] = ca.c1.mul_add(l1[A], wr1) * cb.c1.mul_add(l2[A], wr2);
    op[C] = ca.c1.mul_add(l1[C], wy1) * cb.c1.mul_add(l2[C], wy2);
    op[G] = ca.c1.mul_add(l1[G], wr1) * cb.c1.mul_add(l2[G], wr2);
    op[T] = ca.c1.mul_add(l1[T], wy1) * cb.c1.mul_add(l2[T], wy2);
    op[A].max(op[C]).max(op[G]).max(op[T])
}

/// Propagate-and-multiply one constant-category span of patterns, recording
/// each pattern's maximum entry in `maxes` (one slot per pattern).
/// Dispatches to the 4-pattern-wide AVX2+FMA kernel when those target
/// features are compiled in (`.cargo/config.toml` sets `target-cpu=native`),
/// with the scalar pattern loop covering the tail and other targets.
fn combine_span(
    model: &F84Model,
    ca: &FoldedCoefficients,
    cb: &FoldedCoefficients,
    x1: &[f64],
    x2: &[f64],
    out: &mut [f64],
    maxes: &mut [f64],
) {
    let freqs = &model.freqs;
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    let done = x86::combine_span_avx2(freqs, ca, cb, x1, x2, out, maxes);
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    let done = 0;
    for (((l1, l2), op), mx) in x1[done..]
        .chunks_exact(4)
        .zip(x2[done..].chunks_exact(4))
        .zip(out[done..].chunks_exact_mut(4))
        .zip(maxes[done / 4..].iter_mut())
    {
        *mx = combine_pattern(freqs, ca, cb, l1, l2, op);
    }
}

/// Explicitly vectorized x86-64 kernels. The CLV layout is pattern-major
/// (`[A,C,G,T]` per pattern), so cross-pattern SIMD needs a 4×4 transpose
/// to state-major registers; after that every step is a vertical packed
/// multiply-add over four patterns at once, which the scalar form's
/// per-pattern horizontal reductions (`sr`, `sy`) prevent the
/// autovectorizer from discovering on its own.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
mod x86 {
    use super::FoldedCoefficients;
    use core::arch::x86_64::*;

    /// 4×4 transpose: four pattern rows → four state lanes (or back).
    #[inline]
    fn transpose4(r0: __m256d, r1: __m256d, r2: __m256d, r3: __m256d) -> [__m256d; 4] {
        // Safe: these intrinsics are register-only and the avx2 target
        // feature is statically enabled for this module.
        unsafe {
            let t0 = _mm256_unpacklo_pd(r0, r1); // [r0.0 r1.0 r0.2 r1.2]
            let t1 = _mm256_unpackhi_pd(r0, r1); // [r0.1 r1.1 r0.3 r1.3]
            let t2 = _mm256_unpacklo_pd(r2, r3);
            let t3 = _mm256_unpackhi_pd(r2, r3);
            [
                _mm256_permute2f128_pd(t0, t2, 0x20),
                _mm256_permute2f128_pd(t1, t3, 0x20),
                _mm256_permute2f128_pd(t0, t2, 0x31),
                _mm256_permute2f128_pd(t1, t3, 0x31),
            ]
        }
    }

    /// Load four consecutive patterns and transpose to state-major lanes
    /// `[vA, vC, vG, vT]`.
    #[inline]
    unsafe fn load4(src: *const f64) -> [__m256d; 4] {
        let r0 = _mm256_loadu_pd(src);
        let r1 = _mm256_loadu_pd(src.add(4));
        let r2 = _mm256_loadu_pd(src.add(8));
        let r3 = _mm256_loadu_pd(src.add(12));
        transpose4(r0, r1, r2, r3)
    }

    /// Propagate four patterns of one child through its branch:
    /// state-major lanes in, state-major propagated lanes out.
    #[inline]
    fn propagate4(co: &FoldedCoefficients, f: [__m256d; 4], v: [__m256d; 4]) -> [__m256d; 4] {
        let [va, vc, vg, vt] = v;
        let [fa, fc, fg, ft] = f;
        unsafe {
            let sr = _mm256_fmadd_pd(fa, va, _mm256_mul_pd(fg, vg));
            let sy = _mm256_fmadd_pd(fc, vc, _mm256_mul_pd(ft, vt));
            let s = _mm256_add_pd(sr, sy);
            let c1 = _mm256_set1_pd(co.c1);
            let c3s = _mm256_mul_pd(_mm256_set1_pd(co.c3), s);
            let wr = _mm256_fmadd_pd(_mm256_set1_pd(co.c2r), sr, c3s);
            let wy = _mm256_fmadd_pd(_mm256_set1_pd(co.c2y), sy, c3s);
            [
                _mm256_fmadd_pd(c1, va, wr),
                _mm256_fmadd_pd(c1, vc, wy),
                _mm256_fmadd_pd(c1, vg, wr),
                _mm256_fmadd_pd(c1, vt, wy),
            ]
        }
    }

    /// The combine kernel over `x1.len()/4` patterns, four at a time, with
    /// per-pattern maxima recorded into `maxes` while the products are
    /// still in state-major registers (three packed `max` ops per quad).
    /// Returns how many *doubles* were processed (a multiple of 16); the
    /// caller's scalar loop finishes the remainder.
    #[allow(clippy::too_many_arguments)]
    pub fn combine_span_avx2(
        freqs: &[f64; 4],
        ca: &FoldedCoefficients,
        cb: &FoldedCoefficients,
        x1: &[f64],
        x2: &[f64],
        out: &mut [f64],
        maxes: &mut [f64],
    ) -> usize {
        let quads = x1.len() / 16;
        let f = unsafe {
            [
                _mm256_set1_pd(freqs[0]),
                _mm256_set1_pd(freqs[1]),
                _mm256_set1_pd(freqs[2]),
                _mm256_set1_pd(freqs[3]),
            ]
        };
        for q in 0..quads {
            let base = q * 16;
            // Safety: `base + 16 <= x1.len()` and the three slices share
            // that length by the kernel's contract.
            unsafe {
                let p1 = propagate4(ca, f, load4(x1.as_ptr().add(base)));
                let p2 = propagate4(cb, f, load4(x2.as_ptr().add(base)));
                let oa = _mm256_mul_pd(p1[0], p2[0]);
                let oc = _mm256_mul_pd(p1[1], p2[1]);
                let og = _mm256_mul_pd(p1[2], p2[2]);
                let ot = _mm256_mul_pd(p1[3], p2[3]);
                let vmax = _mm256_max_pd(_mm256_max_pd(oa, oc), _mm256_max_pd(og, ot));
                _mm256_storeu_pd(maxes.as_mut_ptr().add(q * 4), vmax);
                let rows = super::x86::transpose4(oa, oc, og, ot);
                let dst = out.as_mut_ptr().add(base);
                _mm256_storeu_pd(dst, rows[0]);
                _mm256_storeu_pd(dst.add(4), rows[1]);
                _mm256_storeu_pd(dst.add(8), rows[2]);
                _mm256_storeu_pd(dst.add(12), rows[3]);
            }
        }
        quads * 16
    }
}

/// Optimized [`reference::combine_children`]: folded coefficients, category
/// runs, multiply-add inner loop, deferred blocked rescaling. Numerics agree
/// with the reference to rounding (≤1e-12 per entry in the equivalence
/// suite); the rescale decision logic is identical per pattern.
#[allow(clippy::too_many_arguments)]
pub fn combine_folded(
    model: &F84Model,
    runs: &[CategoryRun],
    co1: &[FoldedCoefficients],
    clv1: &[f64],
    scale1: &[i32],
    co2: &[FoldedCoefficients],
    clv2: &[f64],
    scale2: &[i32],
    out: &mut [f64],
    scale_out: &mut [i32],
    maxes: &mut [f64],
) -> u64 {
    for run in runs {
        let ca = co1[run.category];
        let cb = co2[run.category];
        let (lo, hi) = (run.start * 4, run.end * 4);
        combine_span(
            model,
            &ca,
            &cb,
            &clv1[lo..hi],
            &clv2[lo..hi],
            &mut out[lo..hi],
            &mut maxes[run.start..run.end],
        );
    }
    // Deferred rescaling: scan the per-pattern maxima (recorded by the
    // combine loop while the products were in registers) a block at a time.
    // The fast path (every max comfortably above threshold — the
    // overwhelmingly common case) only copies scale sums; the cold path
    // replicates the reference per-pattern decision exactly.
    let np = scale_out.len();
    let mut p = 0;
    while p < np {
        let end = (p + SCALE_CHECK_BLOCK).min(np);
        let mut all_above = true;
        for &m in &maxes[p..end] {
            all_above &= m >= SCALE_THRESHOLD;
        }
        if all_above {
            for q in p..end {
                scale_out[q] = scale1[q] + scale2[q];
            }
        } else {
            for q in p..end {
                let m = maxes[q];
                let b = q * 4;
                let mut sc = scale1[q] + scale2[q];
                if m < SCALE_THRESHOLD && m > 0.0 {
                    for v in &mut out[b..b + 4] {
                        *v *= SCALE_FACTOR;
                    }
                    sc += 1;
                }
                scale_out[q] = sc;
            }
        }
        p = end;
    }
    np as u64
}

/// Optimized [`reference::edge_w_terms`]: reciprocal group frequencies
/// hoisted, multiply-add form.
pub fn w_terms_folded(model: &F84Model, u: &[f64], d: &[f64], out: &mut [WTerms]) -> u64 {
    let f = &model.freqs;
    let (fa, fc, fg, ft) = (f[A], f[C], f[G], f[T]);
    let inv_r = 1.0 / model.freq_r();
    let inv_y = 1.0 / model.freq_y();
    for ((w, uu), dd) in out.iter_mut().zip(u.chunks_exact(4)).zip(d.chunks_exact(4)) {
        let w1 = (fa * uu[A]).mul_add(
            dd[A],
            (fc * uu[C]).mul_add(dd[C], (fg * uu[G]).mul_add(dd[G], ft * uu[T] * dd[T])),
        );
        let ur = fa.mul_add(uu[A], fg * uu[G]);
        let uy = fc.mul_add(uu[C], ft * uu[T]);
        let dr = fa.mul_add(dd[A], fg * dd[G]);
        let dy = fc.mul_add(dd[C], ft * dd[T]);
        let w2 = (ur * dr).mul_add(inv_r, uy * dy * inv_y);
        let w3 = (ur + uy) * (dr + dy);
        *w = WTerms { w1, w2, w3 };
    }
    out.len() as u64
}

/// Optimized [`reference::edge_log_likelihood`] over a prefilled coefficient
/// table: category runs plus [`LnProd`] (one `ln` total instead of one per
/// pattern); the scale offset is accumulated exactly in integers.
pub fn branch_lnl_folded(
    co: &EdgeCoefficients,
    runs: &[CategoryRun],
    w: &[WTerms],
    weights: &[u32],
    scale: &[i32],
) -> f64 {
    let mut prod = LnProd::new();
    let mut scale_sum: i64 = 0;
    for run in runs {
        let c = &co.per_cat[run.category];
        for p in run.start..run.end {
            let terms = &w[p];
            let f =
                c.c1.mul_add(terms.w1, c.c2.mul_add(terms.w2, c.c3 * terms.w3))
                    .max(f64::MIN_POSITIVE);
            prod.mul_pow(f, weights[p]);
            scale_sum += weights[p] as i64 * scale[p] as i64;
        }
    }
    prod.value() + scale_sum as f64 * LN_SCALE
}

/// Fused W-terms → (lnL, d1, d2) evaluation for Newton: one pass over the
/// patterns computes the likelihood and both derivatives from a prefilled
/// derivative-coefficient table. Matches
/// [`crate::newton::log_likelihood_d012`] (which excludes the constant
/// scaling offset) to rounding.
pub fn lnl_d012_folded(
    deriv: &EdgeDerivCoefficients,
    runs: &[CategoryRun],
    w: &[WTerms],
    weights: &[u32],
) -> (f64, f64, f64) {
    let mut prod = LnProd::new();
    let mut d1 = 0.0;
    let mut d2 = 0.0;
    for run in runs {
        let co = &deriv.per_cat[run.category];
        let (v, g, h) = (&co.value, &co.d1, &co.d2);
        for p in run.start..run.end {
            let terms = &w[p];
            let f =
                v.c1.mul_add(terms.w1, v.c2.mul_add(terms.w2, v.c3 * terms.w3))
                    .max(f64::MIN_POSITIVE);
            let fp =
                g.c1.mul_add(terms.w1, g.c2.mul_add(terms.w2, g.c3 * terms.w3));
            let fpp =
                h.c1.mul_add(terms.w1, h.c2.mul_add(terms.w2, h.c3 * terms.w3));
            let wgt = weights[p] as f64;
            let inv = 1.0 / f;
            let r = fp * inv;
            prod.mul_pow(f, weights[p]);
            d1 += wgt * r;
            d2 += wgt * r.mul_add(-r, fpp * inv);
        }
    }
    (prod.value(), d1, d2)
}

/// Mode-dispatched internal-node CLV combine: fills the scratch coefficient
/// tables from the two branch lengths and runs the selected kernel.
/// `Reference` reproduces the seed behavior including its per-call
/// allocations, so benchmark baselines stay honest.
#[allow(clippy::too_many_arguments)]
pub fn combine_edges(
    mode: KernelMode,
    model: &F84Model,
    cats: &RateCategories,
    scratch: &mut KernelScratch,
    t1: f64,
    clv1: &[f64],
    scale1: &[i32],
    t2: f64,
    clv2: &[f64],
    scale2: &[i32],
    out: &mut [f64],
    scale_out: &mut [i32],
) -> u64 {
    match mode {
        KernelMode::Reference => {
            let co1 = reference::branch_coefficients(model, cats, t1);
            let co2 = reference::branch_coefficients(model, cats, t2);
            reference::combine_children(
                model, cats, &co1, clv1, scale1, &co2, clv2, scale2, out, scale_out,
            )
        }
        KernelMode::Optimized => {
            let KernelScratch {
                runs,
                co_a,
                co_b,
                maxes,
                ..
            } = scratch;
            co_a.fill(model, cats, t1);
            co_b.fill(model, cats, t2);
            combine_folded(
                model,
                runs,
                &co_a.per_cat,
                clv1,
                scale1,
                &co_b.per_cat,
                clv2,
                scale2,
                out,
                scale_out,
                maxes,
            )
        }
    }
}

/// Mode-dispatched W-term assembly.
pub fn compute_w_terms(
    mode: KernelMode,
    model: &F84Model,
    u: &[f64],
    d: &[f64],
    out: &mut [WTerms],
) -> u64 {
    match mode {
        KernelMode::Reference => reference::edge_w_terms(model, u, d, out),
        KernelMode::Optimized => w_terms_folded(model, u, d, out),
    }
}

/// Mode-dispatched branch log-likelihood.
#[allow(clippy::too_many_arguments)]
pub fn branch_lnl(
    mode: KernelMode,
    model: &F84Model,
    cats: &RateCategories,
    scratch: &mut KernelScratch,
    t: f64,
    w: &[WTerms],
    weights: &[u32],
    scale: &[i32],
) -> f64 {
    match mode {
        KernelMode::Reference => reference::edge_log_likelihood(model, cats, t, w, weights, scale),
        KernelMode::Optimized => {
            scratch.co_a.fill(model, cats, t);
            branch_lnl_folded(&scratch.co_a, &scratch.runs, w, weights, scale)
        }
    }
}

/// Mode-dispatched Newton branch-length optimization. The optimized arm
/// shares the safeguarded iteration in [`crate::newton`] but evaluates the
/// objective through the fused kernel with a reusable coefficient table —
/// no allocation per iteration (the reference arm keeps the seed's
/// per-iteration `Vec` collect).
#[allow(clippy::too_many_arguments)]
pub fn optimize_branch_dispatch(
    mode: KernelMode,
    model: &F84Model,
    cats: &RateCategories,
    scratch: &mut KernelScratch,
    w: &[WTerms],
    weights: &[u32],
    t0: f64,
    opts: &NewtonOptions,
    work: &mut WorkCounter,
) -> f64 {
    match mode {
        KernelMode::Reference => newton::optimize_branch(model, cats, w, weights, t0, opts, work),
        KernelMode::Optimized => {
            let KernelScratch { runs, deriv, .. } = scratch;
            newton::newton_loop(t0, opts, &mut |t| {
                deriv.fill(model, cats, t);
                work.newton_pattern_iters += w.len() as u64;
                lnl_d012_folded(deriv, runs, w, weights)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_optimized() {
        assert_eq!(KernelMode::default(), KernelMode::Optimized);
    }

    #[test]
    fn category_runs_cover_assignment() {
        let cats = RateCategories::new(vec![1.0, 2.0, 3.0], vec![0, 0, 1, 1, 1, 2, 0, 0]);
        let runs = category_runs(&cats);
        assert_eq!(
            runs,
            vec![
                CategoryRun {
                    start: 0,
                    end: 2,
                    category: 0
                },
                CategoryRun {
                    start: 2,
                    end: 5,
                    category: 1
                },
                CategoryRun {
                    start: 5,
                    end: 6,
                    category: 2
                },
                CategoryRun {
                    start: 6,
                    end: 8,
                    category: 0
                },
            ]
        );
        let covered: usize = runs.iter().map(|r| r.end - r.start).sum();
        assert_eq!(covered, cats.num_patterns());
    }

    #[test]
    fn category_runs_empty_assignment() {
        let cats = RateCategories::new(vec![1.0], vec![]);
        assert!(category_runs(&cats).is_empty());
    }

    #[test]
    fn folded_coefficients_match_divisions() {
        let m = F84Model::new([0.3, 0.2, 0.25, 0.25], 2.0);
        let cats = RateCategories::new(vec![0.5, 1.0, 2.0], vec![0, 1, 2]);
        let mut table = EdgeCoefficients::new();
        table.fill(&m, &cats, 0.37);
        for (c, folded) in table.per_cat().iter().enumerate() {
            let raw = m.coefficients(0.37, cats.rate(c));
            assert_eq!(folded.c1, raw.c1);
            assert_eq!(folded.c2, raw.c2);
            let rel = |x: f64, y: f64| (x - y).abs() <= 1e-15 * y.abs().max(1e-300);
            assert!(rel(folded.c2r, raw.c2 / m.freq_r()));
            assert!(rel(folded.c2y, raw.c2 / m.freq_y()));
            assert_eq!(folded.c3, raw.c3);
        }
        // Refill shrinks/reuses without reallocating semantics breakage.
        table.fill(&m, &cats, 1.2);
        assert_eq!(table.per_cat().len(), 3);
    }

    #[test]
    fn ln_prod_matches_direct_log_sum() {
        let mut prod = LnProd::new();
        let mut direct = 0.0;
        let factors = [
            (0.3_f64, 1_u32),
            (1.7e-102, 3),
            (0.999, 200),
            (2.5e-5, 1),
            (0.04, 1000), // beyond POW_LIMIT → ln fallback
            (0.87, 512),
            (f64::MIN_POSITIVE, 2),
        ];
        for &(f, w) in &factors {
            prod.mul_pow(f, w);
            direct += w as f64 * f.ln();
        }
        let got = prod.value();
        assert!(
            (got - direct).abs() < 1e-9 * direct.abs().max(1.0),
            "{got} vs {direct}"
        );
    }

    #[test]
    fn ln_prod_survives_many_tiny_factors() {
        // 10^5 factors of ~1e-100 would underflow any plain product; the
        // mantissa/exponent split keeps the log exact to rounding.
        let mut prod = LnProd::new();
        for i in 0..100_000u32 {
            let f = 1e-100 * (1.0 + (i % 7) as f64 * 0.1);
            prod.mul_pow(f, 1);
        }
        let got = prod.value();
        assert!(got.is_finite());
        let mut direct = 0.0;
        for i in 0..100_000u32 {
            direct += (1e-100 * (1.0 + (i % 7) as f64 * 0.1)).ln();
        }
        assert!(
            (got - direct).abs() < 1e-7 * direct.abs(),
            "{got} vs {direct}"
        );
    }

    #[test]
    fn zero_weight_is_identity() {
        let mut prod = LnProd::new();
        prod.mul_pow(0.5, 0);
        assert_eq!(prod.value(), 0.0);
    }
}
