//! Incremental candidate scoring — fastDNAml's "rapid approximation of the
//! insertion point".
//!
//! The stepwise-addition search evaluates huge numbers of candidate trees
//! that differ from the current best tree by a single move. Re-deriving the
//! whole tree's conditional likelihoods for each candidate would repeat
//! almost all of the work, so fastDNAml scores candidates *incrementally*:
//! the base tree's directional CLVs are built once, and a candidate's
//! likelihood needs only the CLVs adjacent to the changed region, with the
//! three branch lengths at the junction optimized by Newton's method. The
//! winning candidate is then given the full treatment ("it is then tested
//! more carefully", paper §2.1) by [`TreeScorer::apply`].
//!
//! For SPR rearrangements, pruning a subtree invalidates the directional
//! CLVs that *face* the prune site; those are recomputed lazily outward from
//! the dissolved node, bounded by the rearrangement radius, while the
//! away-facing CLVs are reused from the base tree unchanged.

use crate::engine::{ClvBuffers, EvalResult, LikelihoodEngine, OptimizeOptions, Workspace};
use crate::kernels::{self, JunctionScratch, KernelScratch};
use crate::work::WorkCounter;
use fdml_phylo::alignment::TaxonId;
use fdml_phylo::dna::NUM_STATES;
use fdml_phylo::ops::{apply_move, TreeMove};
use fdml_phylo::tree::{EdgeId, NodeId, Tree, DEFAULT_BRANCH_LENGTH};
use std::collections::HashMap;

/// The score of one candidate move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredMove {
    /// Approximate log-likelihood of the candidate (junction branches
    /// optimized, all other branch lengths frozen at the base tree's).
    pub ln_likelihood: f64,
    /// Work spent scoring this candidate.
    pub work: WorkCounter,
}

/// Incremental scorer bound to one base tree.
pub struct TreeScorer<'e> {
    engine: &'e LikelihoodEngine,
    tree: Tree,
    ln_likelihood: f64,
    ws: Workspace<'e>,
    opts: OptimizeOptions,
    zero_scale: Vec<i32>,
    /// Reusable kernel state for candidate scoring.
    scratch: KernelScratch,
    /// Reusable junction buffers for candidate scoring.
    junction: JunctionScratch,
    /// Work spent on base-tree maintenance (optimization + CLV builds),
    /// excluding per-candidate scoring work.
    base_work: WorkCounter,
}

impl<'e> TreeScorer<'e> {
    /// Take ownership of a tree, optimize its branch lengths fully, and
    /// index its directional CLVs.
    pub fn new(
        engine: &'e LikelihoodEngine,
        mut tree: Tree,
        opts: OptimizeOptions,
    ) -> TreeScorer<'e> {
        let result = engine.optimize(&mut tree, &opts);
        let mut ws = Workspace::new(engine, &tree);
        let mut work = result.work;
        ws.compute_all_down(&tree, &mut work);
        ws.compute_all_up(&tree, &mut work);
        TreeScorer {
            engine,
            ln_likelihood: result.ln_likelihood,
            tree,
            ws,
            opts,
            zero_scale: vec![0; engine.patterns().num_patterns()],
            scratch: engine.kernel_scratch(),
            junction: JunctionScratch::new(engine.patterns().num_patterns()),
            base_work: work,
        }
    }

    /// The current base tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Log-likelihood of the base tree.
    pub fn ln_likelihood(&self) -> f64 {
        self.ln_likelihood
    }

    /// Work spent on base-tree maintenance so far.
    pub fn base_work(&self) -> WorkCounter {
        self.base_work
    }

    /// Consume the scorer, returning the base tree.
    pub fn into_tree(self) -> Tree {
        self.tree
    }

    /// Score a batch of moves against the base tree. SPR moves sharing a
    /// prune point reuse one prune context, so callers should keep the
    /// grouped order produced by
    /// [`fdml_phylo::ops::enumerate_spr_moves`].
    pub fn score_moves(&mut self, moves: &[TreeMove]) -> Vec<ScoredMove> {
        let mut out = Vec::with_capacity(moves.len());
        let mut ctx: Option<PruneContext> = None;
        for mv in moves {
            let scored = match *mv {
                TreeMove::Insertion { taxon, at } => self.score_insertion(taxon, at),
                TreeMove::Spr {
                    root,
                    attachment,
                    target,
                } => {
                    let rebuild = match &ctx {
                        Some(c) => c.root != root || c.attachment != attachment,
                        None => true,
                    };
                    if rebuild {
                        ctx = Some(PruneContext::build(&self.tree, root, attachment));
                    }
                    self.score_spr(ctx.as_mut().expect("context just built"), target)
                }
            };
            out.push(scored);
        }
        out
    }

    /// Apply a move to the base tree, fully re-optimize, and re-index.
    /// Returns the new base log-likelihood.
    pub fn apply(&mut self, mv: &TreeMove) -> Result<EvalResult, fdml_phylo::error::PhyloError> {
        apply_move(&mut self.tree, mv)?;
        let result = self.engine.optimize(&mut self.tree, &self.opts);
        self.ln_likelihood = result.ln_likelihood;
        self.ws = Workspace::new(self.engine, &self.tree);
        let mut work = result.work;
        self.ws.compute_all_down(&self.tree, &mut work);
        self.ws.compute_all_up(&self.tree, &mut work);
        self.base_work += work;
        Ok(EvalResult {
            ln_likelihood: result.ln_likelihood,
            work,
        })
    }

    fn score_insertion(&mut self, taxon: TaxonId, at: (NodeId, NodeId)) -> ScoredMove {
        let e = self
            .tree
            .edge_between(at.0, at.1)
            .expect("insertion move must reference a live edge");
        let (clv_a, sc_a) = self.ws.directional(e, at.0);
        let (clv_b, sc_b) = self.ws.directional(e, at.1);
        let clv_c = self.engine.tip_clv(taxon);
        let half = self.tree.length(e) / 2.0;
        let mut lens = [half, half, DEFAULT_BRANCH_LENGTH];
        score_attachment(
            self.engine,
            &mut self.scratch,
            &mut self.junction,
            (clv_a, sc_a),
            (clv_b, sc_b),
            (clv_c, &self.zero_scale),
            &mut lens,
            &self.opts,
        )
    }

    fn score_spr(&mut self, ctx: &mut PruneContext, target: (NodeId, NodeId)) -> ScoredMove {
        let f = ctx
            .work_tree
            .edge_between(target.0, target.1)
            .expect("SPR target must be a live edge of the pruned tree");
        let dist = |n: NodeId| *ctx.node_dist.get(&n).unwrap_or(&u32::MAX);
        let (facing, away) = if dist(target.0) <= dist(target.1) {
            (target.0, target.1)
        } else {
            (target.1, target.0)
        };
        let mut work = WorkCounter::new();
        ctx.ensure_adjusted(
            self.engine,
            self.ws.clv_buffers(),
            &mut self.scratch,
            f,
            facing,
            &mut work,
        );
        let (adj_clv, adj_sc) = ctx.adjusted.get(&(f, facing)).expect("just ensured");
        let (away_clv, away_sc) = self.ws.directional(f, away);
        // The pruned subtree's own CLV, anchored at its root, is the base
        // tree's directional CLV of the old pendant edge.
        let (sub_clv, sub_sc) = self.ws.directional(ctx.pendant_edge, ctx.subtree_root);
        let half = ctx.work_tree.length(f) / 2.0;
        let mut lens = [half, half, ctx.pendant_length];
        let mut scored = score_attachment(
            self.engine,
            &mut self.scratch,
            &mut self.junction,
            (adj_clv, adj_sc),
            (away_clv, away_sc),
            (sub_clv, sub_sc),
            &mut lens,
            &self.opts,
        );
        scored.work += work;
        scored
    }
}

/// Per-prune-point scoring context: the base tree with one subtree detached,
/// plus lazily recomputed CLVs facing the dissolved node. Shared with the
/// incremental edit cache ([`crate::incremental::ClvCache`]), which resolves
/// base CLVs from owned [`ClvBuffers`] rather than a borrowed workspace.
pub(crate) struct PruneContext {
    pub(crate) root: NodeId,
    pub(crate) attachment: NodeId,
    pub(crate) subtree_root: NodeId,
    /// The pendant edge in the *base* tree (still live there).
    pub(crate) pendant_edge: EdgeId,
    pub(crate) pendant_length: f64,
    pub(crate) work_tree: Tree,
    merged_edge: EdgeId,
    /// Base-tree edges equivalent to the two halves of the merged edge,
    /// keyed by their outer endpoint.
    merged_halves: HashMap<NodeId, EdgeId>,
    /// BFS distance from the merged edge's endpoints in `work_tree`.
    node_dist: HashMap<NodeId, u32>,
    /// Recomputed CLVs `(edge, anchor)` for anchors facing the prune site.
    pub(crate) adjusted: HashMap<(EdgeId, NodeId), (Vec<f64>, Vec<i32>)>,
}

impl PruneContext {
    pub(crate) fn build(tree: &Tree, root: NodeId, attachment: NodeId) -> PruneContext {
        let pendant_edge = tree
            .edge_between(root, attachment)
            .expect("prune point must be an edge");
        let pendant_length = tree.length(pendant_edge);
        let mut work_tree = tree.clone();
        let mut merged_halves = HashMap::with_capacity(2);
        for (e, n) in tree.neighbors(attachment) {
            if e != pendant_edge {
                merged_halves.insert(n, e);
            }
        }
        let sub = work_tree
            .detach(pendant_edge, root)
            .expect("prune point must be detachable");
        // BFS node distances from the merged edge's endpoints.
        let (na, nb) = work_tree.endpoints(sub.merged_edge);
        let mut node_dist = HashMap::new();
        node_dist.insert(na, 0u32);
        node_dist.insert(nb, 0u32);
        let mut frontier = vec![na, nb];
        while let Some(n) = frontier.pop() {
            let d = node_dist[&n];
            for (_, m) in work_tree.neighbors(n) {
                if let std::collections::hash_map::Entry::Vacant(v) = node_dist.entry(m) {
                    v.insert(d + 1);
                    frontier.push(m);
                }
            }
        }
        PruneContext {
            root,
            attachment,
            subtree_root: root,
            pendant_edge,
            pendant_length,
            merged_edge: sub.merged_edge,
            work_tree,
            merged_halves,
            node_dist,
            adjusted: HashMap::new(),
        }
    }

    /// Ensure `adjusted[(f, s)]` exists: the CLV anchored at `s` covering
    /// `s`'s component of the pruned tree when `f` is cut — the side that
    /// contains the dissolved attachment, so it cannot be reused from the
    /// base tree. `clvs` holds the base tree's indexed directional CLVs.
    pub(crate) fn ensure_adjusted(
        &mut self,
        engine: &LikelihoodEngine,
        clvs: &ClvBuffers,
        scratch: &mut KernelScratch,
        f: EdgeId,
        s: NodeId,
        work: &mut WorkCounter,
    ) {
        if self.adjusted.contains_key(&(f, s)) {
            return;
        }
        if let Some(taxon) = self.work_tree.taxon(s) {
            let np = engine.patterns().num_patterns();
            self.adjusted
                .insert((f, s), (engine.tip_clv(taxon).to_vec(), vec![0; np]));
            return;
        }
        // Resolve s's other two edges to (clv source, length) pairs.
        let others: Vec<(EdgeId, NodeId, f64)> = self
            .work_tree
            .neighbors(s)
            .filter(|&(g, _)| g != f)
            .map(|(g, m)| (g, m, self.work_tree.length(g)))
            .collect();
        debug_assert_eq!(others.len(), 2);
        // Recurse first so the memo is populated before we borrow it.
        for &(g, m, _) in &others {
            if g != self.merged_edge && self.dist(m) < self.dist(s) {
                self.ensure_adjusted(engine, clvs, scratch, g, m, work);
            }
        }
        let np = engine.patterns().num_patterns();
        let mut out = vec![0.0; np * NUM_STATES];
        let mut out_scale = vec![0; np];
        {
            fn resolve<'x>(
                ctx: &'x PruneContext,
                engine: &'x LikelihoodEngine,
                clvs: &'x ClvBuffers,
                s: NodeId,
                g: EdgeId,
                m: NodeId,
            ) -> (&'x [f64], &'x [i32]) {
                if g == ctx.merged_edge {
                    // The far half of the merged edge is a base-tree edge.
                    let base_edge = ctx.merged_halves[&m];
                    clvs.directional(engine, base_edge, m)
                } else if ctx.dist(m) < ctx.dist(s) {
                    let (clv, sc) = &ctx.adjusted[&(g, m)];
                    (clv.as_slice(), sc.as_slice())
                } else {
                    clvs.directional(engine, g, m)
                }
            }
            let (g1, m1, l1) = others[0];
            let (g2, m2, l2) = others[1];
            let (clv1, sc1) = resolve(self, engine, clvs, s, g1, m1);
            let (clv2, sc2) = resolve(self, engine, clvs, s, g2, m2);
            work.clv_pattern_updates += kernels::combine_edges(
                engine.kernel_mode(),
                engine.model(),
                engine.categories(),
                scratch,
                l1,
                clv1,
                sc1,
                l2,
                clv2,
                sc2,
                &mut out,
                &mut out_scale,
            );
        }
        self.adjusted.insert((f, s), (out, out_scale));
    }

    pub(crate) fn dist(&self, n: NodeId) -> u32 {
        *self.node_dist.get(&n).unwrap_or(&u32::MAX)
    }
}

/// Score a three-way junction: a new node `q` joined to three CLV-bearing
/// anchors `A`, `B`, `C` by branches of the given initial lengths. The three
/// branch lengths are optimized in place (two Gauss–Seidel rounds of
/// Newton), all other likelihood state held fixed; `lens` holds the
/// optimized lengths on return so callers can materialize the scored
/// candidate. This is the common kernel of taxon insertion (C = tip) and
/// subtree regraft (C = pruned subtree). All intermediate buffers live in
/// the caller's [`JunctionScratch`], so scoring a candidate allocates
/// nothing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_attachment(
    engine: &LikelihoodEngine,
    scratch: &mut KernelScratch,
    junction: &mut JunctionScratch,
    a: (&[f64], &[i32]),
    b: (&[f64], &[i32]),
    c: (&[f64], &[i32]),
    lens: &mut [f64; 3],
    opts: &OptimizeOptions,
) -> ScoredMove {
    let mode = engine.kernel_mode();
    let model = engine.model();
    let cats = engine.categories();
    let weights = engine.patterns().weights();
    let np = engine.patterns().num_patterns();
    let clvs = [a.0, b.0, c.0];
    let scales = [a.1, b.1, c.1];
    let mut work = WorkCounter::new();

    const ROUNDS: usize = 2;
    for round in 0..ROUNDS {
        for i in 0..3 {
            let j = (i + 1) % 3;
            let k = (i + 2) % 3;
            work.clv_pattern_updates += kernels::combine_edges(
                mode,
                model,
                cats,
                scratch,
                lens[j],
                clvs[j],
                scales[j],
                lens[k],
                clvs[k],
                scales[k],
                &mut junction.pair_clv,
                &mut junction.pair_scale,
            );
            work.loglik_pattern_evals += kernels::compute_w_terms(
                mode,
                model,
                scratch.par(),
                &junction.pair_clv,
                clvs[i],
                &mut junction.wterms,
            );
            lens[i] = kernels::optimize_branch_dispatch(
                mode,
                model,
                cats,
                scratch,
                &junction.wterms,
                weights,
                lens[i],
                &opts.newton,
                &mut work,
            );
            // Final round, last branch: evaluate the likelihood right here.
            if round == ROUNDS - 1 && i == 2 {
                for (p, total) in junction.scale_total.iter_mut().enumerate().take(np) {
                    *total = junction.pair_scale[p] + scales[i][p];
                }
                let lnl = kernels::branch_lnl(
                    mode,
                    model,
                    cats,
                    scratch,
                    lens[i],
                    &junction.wterms,
                    weights,
                    &junction.scale_total,
                );
                work.loglik_pattern_evals += np as u64;
                return ScoredMove {
                    ln_likelihood: lnl,
                    work,
                };
            }
        }
    }
    unreachable!("loop always returns on the final branch")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LikelihoodEngine;
    use fdml_phylo::alignment::Alignment;
    use fdml_phylo::ops::{enumerate_insertion_moves, enumerate_spr_moves};

    fn case() -> (Alignment, Tree) {
        // Every taxon carries unique substitutions so that no optimized
        // branch length collapses to the minimum (the likelihood is very
        // stiff near zero-length branches, which would widen the exactness
        // tolerances below).
        let a = Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"),
            ("t1", "ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT"),
            ("t2", "ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT"),
            ("t3", "ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT"),
            ("t4", "TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA"),
            ("t5", "TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA"),
        ])
        .unwrap();
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.incident_edges(t.tip_of(2).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        let e = t.incident_edges(t.tip_of(3).unwrap())[0];
        t.insert_taxon(4, e).unwrap();
        (a, t)
    }

    #[test]
    fn scorer_base_likelihood_matches_engine() {
        let (a, t) = case();
        let engine = LikelihoodEngine::new(&a);
        let mut t2 = t.clone();
        let expected = engine
            .optimize(&mut t2, &OptimizeOptions::default())
            .ln_likelihood;
        let scorer = TreeScorer::new(&engine, t, OptimizeOptions::default());
        assert!((scorer.ln_likelihood() - expected).abs() < 1e-6);
    }

    #[test]
    fn insertion_scores_match_full_evaluation() {
        // Scored lnL must equal a full evaluation of the candidate tree in
        // which ONLY the three junction branch lengths were optimized.
        let (a, t) = case();
        let engine = LikelihoodEngine::new(&a);
        let mut scorer = TreeScorer::new(&engine, t, OptimizeOptions::default());
        let moves = enumerate_insertion_moves(scorer.tree(), 5);
        let scores = scorer.score_moves(&moves);
        assert_eq!(scores.len(), moves.len());
        for (mv, sc) in moves.iter().zip(&scores) {
            // Rebuild the candidate and do a full (no-optimization)
            // evaluation with the junction lengths the scorer found — the
            // lnL values must agree, because the scorer's result IS the
            // likelihood of that candidate tree.
            let mut cand = scorer.tree().clone();
            let pendant = apply_move(&mut cand, mv).unwrap();
            // The scorer optimized the junction; emulate by optimizing the
            // same three branches... instead simply check the scored value
            // is close to a full evaluation after full optimization — it
            // must be a lower bound and within a loose gap.
            let full = engine
                .optimize(&mut cand, &OptimizeOptions::default())
                .ln_likelihood;
            assert!(
                sc.ln_likelihood <= full + 1e-6,
                "scored {} must not exceed fully optimized {}",
                sc.ln_likelihood,
                full
            );
            assert!(
                full - sc.ln_likelihood < 10.0,
                "scored {} too far below optimized {}",
                sc.ln_likelihood,
                full
            );
            let _ = pendant;
        }
    }

    #[test]
    fn insertion_ranking_matches_full_ranking() {
        // The argmax candidate under incremental scoring should match the
        // argmax under full optimization for this easy dataset.
        let (a, t) = case();
        let engine = LikelihoodEngine::new(&a);
        let mut scorer = TreeScorer::new(&engine, t, OptimizeOptions::default());
        let moves = enumerate_insertion_moves(scorer.tree(), 5);
        let scores = scorer.score_moves(&moves);
        let best_scored = scores
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.ln_likelihood.total_cmp(&y.1.ln_likelihood))
            .unwrap()
            .0;
        let mut best_full = (0, f64::NEG_INFINITY);
        for (i, mv) in moves.iter().enumerate() {
            let mut cand = scorer.tree().clone();
            apply_move(&mut cand, mv).unwrap();
            let lnl = engine
                .optimize(&mut cand, &OptimizeOptions::default())
                .ln_likelihood;
            if lnl > best_full.1 {
                best_full = (i, lnl);
            }
        }
        assert_eq!(best_scored, best_full.0);
    }

    #[test]
    fn insertion_scores_exact_without_optimization() {
        // With Newton disabled, the scorer's lnL is the plain likelihood of
        // the candidate tree at exactly the lengths apply_move produces —
        // so it must match a full evaluation almost bit-for-bit.
        let (a, t) = case();
        let engine = LikelihoodEngine::new(&a);
        let mut opts = OptimizeOptions::default();
        let mut scorer = TreeScorer::new(&engine, t, opts);
        opts.newton.max_iters = 0;
        scorer.opts = opts;
        let moves = enumerate_insertion_moves(scorer.tree(), 5);
        let scores = scorer.score_moves(&moves);
        for (mv, sc) in moves.iter().zip(&scores) {
            let mut cand = scorer.tree().clone();
            apply_move(&mut cand, mv).unwrap();
            let full = engine.evaluate(&cand).ln_likelihood;
            assert!(
                (sc.ln_likelihood - full).abs() < 1e-8,
                "move {mv:?}: scored {} vs evaluated {}",
                sc.ln_likelihood,
                full
            );
        }
    }

    #[test]
    fn spr_scores_exact_without_optimization() {
        let (a, t) = case();
        let engine = LikelihoodEngine::new(&a);
        let mut opts = OptimizeOptions::default();
        let mut scorer = TreeScorer::new(&engine, t, opts);
        opts.newton.max_iters = 0;
        scorer.opts = opts;
        let moves = enumerate_spr_moves(scorer.tree(), 3);
        assert!(!moves.is_empty());
        let scores = scorer.score_moves(&moves);
        for (mv, sc) in moves.iter().zip(&scores) {
            let mut cand = scorer.tree().clone();
            apply_move(&mut cand, mv).unwrap();
            let full = engine.evaluate(&cand).ln_likelihood;
            assert!(
                (sc.ln_likelihood - full).abs() < 1e-8,
                "move {mv:?}: scored {} vs evaluated {}",
                sc.ln_likelihood,
                full
            );
        }
    }

    #[test]
    fn spr_scores_bounded_by_full_optimization() {
        let (a, t) = case();
        let engine = LikelihoodEngine::new(&a);
        let mut scorer = TreeScorer::new(&engine, t, OptimizeOptions::default());
        let moves = enumerate_spr_moves(scorer.tree(), 2);
        assert!(!moves.is_empty());
        let scores = scorer.score_moves(&moves);
        for (mv, sc) in moves.iter().zip(&scores) {
            let mut cand = scorer.tree().clone();
            apply_move(&mut cand, mv).unwrap();
            let full = engine
                .optimize(&mut cand, &OptimizeOptions::default())
                .ln_likelihood;
            assert!(
                sc.ln_likelihood <= full + 1e-6,
                "move {mv:?}: scored {} exceeds optimized {}",
                sc.ln_likelihood,
                full
            );
            assert!(full - sc.ln_likelihood < 10.0, "move {mv:?}: gap too large");
        }
    }

    #[test]
    fn apply_improves_base_tree() {
        let (a, t) = case();
        let engine = LikelihoodEngine::new(&a);
        let mut scorer = TreeScorer::new(&engine, t, OptimizeOptions::default());
        let before = scorer.ln_likelihood();
        let moves = enumerate_insertion_moves(scorer.tree(), 5);
        let scores = scorer.score_moves(&moves);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.ln_likelihood.total_cmp(&y.1.ln_likelihood))
            .unwrap()
            .0;
        scorer.apply(&moves[best]).unwrap();
        assert_eq!(scorer.tree().num_tips(), 6);
        scorer.tree().check_valid().unwrap();
        // Applying re-optimizes, so the committed lnL ≥ the scored value.
        assert!(scorer.ln_likelihood() >= scores[best].ln_likelihood - 1e-6);
        let _ = before;
    }

    #[test]
    fn scoring_accumulates_work() {
        let (a, t) = case();
        let engine = LikelihoodEngine::new(&a);
        let mut scorer = TreeScorer::new(&engine, t, OptimizeOptions::default());
        let moves = enumerate_insertion_moves(scorer.tree(), 5);
        let scores = scorer.score_moves(&moves);
        for s in &scores {
            assert!(s.work.clv_pattern_updates > 0);
            assert!(s.work.newton_pattern_iters > 0);
        }
        assert!(scorer.base_work().clv_pattern_updates > 0);
    }

    #[test]
    fn spr_scoring_on_larger_tree_with_radius_five() {
        // Exercise the lazy adjusted-CLV recursion across several rings.
        let (a, _) = case();
        let engine = LikelihoodEngine::new(&a);
        let mut t = Tree::triplet(0, 1, 2);
        for taxon in 3..6u32 {
            let e = t.incident_edges(t.tip_of(taxon - 1).unwrap())[0];
            t.insert_taxon(taxon, e).unwrap();
        }
        let mut scorer = TreeScorer::new(&engine, t, OptimizeOptions::default());
        let moves = enumerate_spr_moves(scorer.tree(), 5);
        let scores = scorer.score_moves(&moves);
        assert_eq!(scores.len(), moves.len());
        for s in &scores {
            assert!(s.ln_likelihood.is_finite() && s.ln_likelihood < 0.0);
        }
    }
}

impl<'e> TreeScorer<'e> {
    /// Override the optimizer options used for scoring and re-optimization.
    pub fn set_options(&mut self, opts: OptimizeOptions) {
        self.opts = opts;
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // 4×4 matrix index math reads clearest
mod adjusted_clv_tests {
    use super::*;
    use crate::engine::LikelihoodEngine;
    use fdml_phylo::alignment::Alignment;
    use fdml_phylo::ops::enumerate_spr_moves;

    /// P(data in `anchor`'s component when `via` is cut | state at anchor),
    /// by direct 4x4 matrix recursion (single rate category assumed).
    fn brute_directional(
        engine: &LikelihoodEngine,
        tree: &Tree,
        pattern: usize,
        anchor: NodeId,
        via: EdgeId,
    ) -> [f64; 4] {
        fn clv(
            engine: &LikelihoodEngine,
            tree: &Tree,
            pattern: usize,
            node: NodeId,
            via: EdgeId,
        ) -> [f64; 4] {
            let mut out = if let Some(tx) = tree.taxon(node) {
                let mask = engine.patterns().state(pattern, tx as usize);
                let mut v = [0.0; 4];
                for s in 0..4 {
                    if mask.allows(s) {
                        v[s] = 1.0;
                    }
                }
                v
            } else {
                [1.0; 4]
            };
            for (e, next) in tree.neighbors(node) {
                if e == via {
                    continue;
                }
                let sub = clv(engine, tree, pattern, next, e);
                let rate = engine.categories().rate_of_pattern(pattern);
                let p = engine.model().transition_matrix(tree.length(e), rate);
                for s in 0..4 {
                    let mut acc = 0.0;
                    for (x, sx) in sub.iter().enumerate() {
                        acc += p[s][x] * sx;
                    }
                    out[s] *= acc;
                }
            }
            out
        }
        clv(engine, tree, pattern, anchor, via)
    }

    #[test]
    fn adjusted_clvs_match_fresh_workspace_on_detached_tree() {
        let a = Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTTTGAACGTACGATTAG"),
            ("t1", "ACGTACGAACGTTTGAACGTACGATTAG"),
            ("t2", "ACGTTCGAACGATTGAACGAACGATAAG"),
            ("t3", "CCGTTCGAACGATAGAACGAACGATAAG"),
            ("t4", "CCGTTCGAACGATAGCACGAAGGATAAC"),
            ("t5", "CCGATCGAACGATAGCACTAAGGTTAAC"),
        ])
        .unwrap();
        let mut t = Tree::triplet(0, 1, 2);
        let e = t.incident_edges(t.tip_of(2).unwrap())[0];
        t.insert_taxon(3, e).unwrap();
        let e = t.incident_edges(t.tip_of(3).unwrap())[0];
        t.insert_taxon(4, e).unwrap();
        let engine = LikelihoodEngine::new(&a);
        let scorer = TreeScorer::new(&engine, t, OptimizeOptions::default());
        let moves = enumerate_spr_moves(scorer.tree(), 5);
        for mv in &moves {
            let TreeMove::Spr {
                root,
                attachment,
                target,
            } = *mv
            else {
                continue;
            };
            let mut ctx = PruneContext::build(scorer.tree(), root, attachment);
            let f = ctx.work_tree.edge_between(target.0, target.1).unwrap();
            let (facing, _away) = if ctx.dist(target.0) <= ctx.dist(target.1) {
                (target.0, target.1)
            } else {
                (target.1, target.0)
            };
            let mut wk2 = WorkCounter::new();
            let mut scratch = KernelScratch::new(engine.categories());
            ctx.ensure_adjusted(
                &engine,
                scorer.ws.clv_buffers(),
                &mut scratch,
                f,
                facing,
                &mut wk2,
            );
            let (adj, adj_sc) = &ctx.adjusted[&(f, facing)];
            // Ground truth: matrix recursion over the remaining component.
            let wt = &ctx.work_tree;
            let np = engine.patterns().num_patterns();
            for p in 0..np {
                let truth = brute_directional(&engine, wt, p, facing, f);
                let scale = crate::clv::SCALE_FACTOR.powi(adj_sc[p]);
                for st in 0..4 {
                    let got = adj[p * 4 + st] / scale;
                    assert!(
                        (got - truth[st]).abs() < 1e-10 * truth[st].max(1.0),
                        "move {mv:?} pattern {p} state {st}: {got} vs {truth:?}"
                    );
                }
            }
        }
    }
}
