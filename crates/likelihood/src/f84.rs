//! The F84 substitution model (Felsenstein 1984), the model of DNAml and
//! fastDNAml.
//!
//! F84 is a continuous-time reversible Markov model over `{A, C, G, T}` with
//! two kinds of events:
//!
//! * at rate `μ`, the base is replaced by a draw from the equilibrium
//!   frequencies `π` (possibly the same base);
//! * at rate `μ·k`, the base is replaced by a draw from `π` restricted to
//!   its own group (purines `{A,G}` or pyrimidines `{C,T}`), which generates
//!   the excess of transitions over transversions.
//!
//! The transition probability matrix has the closed form
//!
//! ```text
//! P(t) = c1(u)·I + c2(u)·B + c3(u)·Π
//! c1 = e^{-u(1+k)},   c2 = e^{-u}(1 - e^{-uk}),   c3 = 1 - e^{-u}
//! ```
//!
//! where `B[i][j] = [group(i)=group(j)]·π_j/π_group(j)`, `Π[i][j] = π_j`,
//! and `u = t·rate/fracchange` converts a branch length `t` in *expected
//! substitutions per site* into event time. `k` is derived from the
//! user-visible transition/transversion ratio exactly as PHYLIP's
//! `getbasefreqs` does. Derivatives of the three coefficients with respect
//! to `t` are available in closed form, which is what makes Newton
//! branch-length optimization cheap (see [`crate::newton`]).

use fdml_phylo::dna::{A, C, G, NUM_STATES, T};
use serde::{Deserialize, Serialize};

/// Default transition/transversion ratio, fastDNAml's default.
pub const DEFAULT_TT_RATIO: f64 = 2.0;

/// A fully specified F84 model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct F84Model {
    /// Equilibrium frequencies `π` (sum to one).
    pub freqs: [f64; NUM_STATES],
    /// Transition/transversion ratio `R` the model was built from.
    pub tt_ratio: f64,
    /// Within-group event rate multiplier `k` implied by `R`.
    k: f64,
    /// Expected substitutions per unit event-time: the normalizer that makes
    /// branch lengths mean substitutions per site.
    fracchange: f64,
    /// π_A + π_G.
    freq_r: f64,
    /// π_C + π_T.
    freq_y: f64,
}

impl F84Model {
    /// Build an F84 model from equilibrium frequencies and a
    /// transition/transversion ratio.
    ///
    /// Follows PHYLIP: `k = aa/bb` with
    /// `aa = R·π_R·π_Y − π_Aπ_G − π_Cπ_T` and
    /// `bb = π_Aπ_G/π_R + π_Cπ_T/π_Y`. Ratios too small to be achievable
    /// (`aa ≤ 0`) are clamped to a minimal transition excess, mirroring
    /// DNAml's warning-and-clamp behaviour.
    pub fn new(freqs: [f64; NUM_STATES], tt_ratio: f64) -> F84Model {
        let sum: f64 = freqs.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9 && freqs.iter().all(|&f| f > 0.0),
            "frequencies must be positive and sum to 1, got {freqs:?}"
        );
        let freq_r = freqs[A] + freqs[G];
        let freq_y = freqs[C] + freqs[T];
        let ag = freqs[A] * freqs[G];
        let ct = freqs[C] * freqs[T];
        let aa = tt_ratio * freq_r * freq_y - ag - ct;
        let bb = ag / freq_r + ct / freq_y;
        let k = if aa > 0.0 { aa / bb } else { 1e-6 };
        // Expected substitutions per unit time with event rates (1, k):
        //   type-1 events change the base with prob 1 - Σπ²;
        //   type-2 events with prob 2π_Aπ_G/π_R + 2π_Cπ_T/π_Y.
        let pi2: f64 = freqs.iter().map(|f| f * f).sum();
        let fracchange = (1.0 - pi2) + k * (2.0 * ag / freq_r + 2.0 * ct / freq_y);
        F84Model {
            freqs,
            tt_ratio,
            k,
            fracchange,
            freq_r,
            freq_y,
        }
    }

    /// Model with uniform frequencies: F84 degenerates toward Kimura's
    /// two-parameter model (and to Jukes–Cantor when `tt_ratio = 0.5`).
    pub fn uniform(tt_ratio: f64) -> F84Model {
        F84Model::new([0.25; NUM_STATES], tt_ratio)
    }

    /// Model from an alignment's empirical base composition with the default
    /// transition/transversion ratio — fastDNAml's defaults.
    pub fn from_alignment(alignment: &fdml_phylo::alignment::Alignment) -> F84Model {
        F84Model::new(alignment.empirical_frequencies(), DEFAULT_TT_RATIO)
    }

    /// The within-group rate multiplier `k` implied by the tt-ratio.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The branch-length normalizer.
    pub fn fracchange(&self) -> f64 {
        self.fracchange
    }

    /// Frequency of the group (purines or pyrimidines) containing `state`.
    #[inline]
    pub fn group_freq(&self, state: usize) -> f64 {
        if state == A || state == G {
            self.freq_r
        } else {
            self.freq_y
        }
    }

    /// Purine total frequency π_R.
    pub fn freq_r(&self) -> f64 {
        self.freq_r
    }

    /// Pyrimidine total frequency π_Y.
    pub fn freq_y(&self) -> f64 {
        self.freq_y
    }

    /// The coefficient triple `(c1, c2, c3)` for a branch of length `t`
    /// (expected substitutions per site) evolving at `rate`.
    #[inline]
    pub fn coefficients(&self, t: f64, rate: f64) -> Coefficients {
        let u = t * rate / self.fracchange;
        let e1 = (-u).exp();
        let ek = (-u * self.k).exp();
        let c1 = e1 * ek;
        Coefficients {
            c1,
            c2: e1 - c1,
            c3: 1.0 - e1,
        }
    }

    /// Coefficients plus their first and second derivatives with respect to
    /// the branch length `t` (at evolution rate `rate`).
    #[inline]
    pub fn coefficients_d2(&self, t: f64, rate: f64) -> CoefficientsD2 {
        let q = rate / self.fracchange;
        let u = t * q;
        let e1 = (-u).exp();
        let ek = (-u * self.k).exp();
        let c1 = e1 * ek;
        let kp1 = 1.0 + self.k;
        let value = Coefficients {
            c1,
            c2: e1 - c1,
            c3: 1.0 - e1,
        };
        let d1 = Coefficients {
            c1: -q * kp1 * c1,
            c2: q * (kp1 * c1 - e1),
            c3: q * e1,
        };
        let d2 = Coefficients {
            c1: q * q * kp1 * kp1 * c1,
            c2: q * q * (e1 - kp1 * kp1 * c1),
            c3: -q * q * e1,
        };
        CoefficientsD2 { value, d1, d2 }
    }

    /// The full 4×4 transition probability matrix `P[i][j](t)` at `rate`.
    /// Row `i` is the current state; column `j` the state after time `t`.
    #[allow(clippy::needless_range_loop)] // i/j index math over a 4×4 matrix
    pub fn transition_matrix(&self, t: f64, rate: f64) -> [[f64; NUM_STATES]; NUM_STATES] {
        let Coefficients { c1, c2, c3 } = self.coefficients(t, rate);
        let mut p = [[0.0; NUM_STATES]; NUM_STATES];
        for i in 0..NUM_STATES {
            for j in 0..NUM_STATES {
                let same_group =
                    self.group_freq(i) == self.group_freq(j) && is_purine(i) == is_purine(j);
                let within = if same_group {
                    self.freqs[j] / self.group_freq(j)
                } else {
                    0.0
                };
                p[i][j] = c3 * self.freqs[j] + c2 * within + if i == j { c1 } else { 0.0 };
            }
        }
        p
    }
}

#[inline]
fn is_purine(state: usize) -> bool {
    state == A || state == G
}

/// The F84 coefficient triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// Weight of the identity term.
    pub c1: f64,
    /// Weight of the within-group term.
    pub c2: f64,
    /// Weight of the equilibrium term.
    pub c3: f64,
}

/// Coefficients with first and second branch-length derivatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoefficientsD2 {
    /// `(c1, c2, c3)` at `t`.
    pub value: Coefficients,
    /// `d/dt` of each coefficient.
    pub d1: Coefficients,
    /// `d²/dt²` of each coefficient.
    pub d2: Coefficients,
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // 4×4 matrix index math reads clearest
mod tests {
    use super::*;

    fn hiv_like() -> F84Model {
        F84Model::new([0.36, 0.18, 0.24, 0.22], 2.0)
    }

    fn mat_mul(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
        let mut out = [[0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                for (k, bk) in b.iter().enumerate() {
                    out[i][j] += a[i][k] * bk[j];
                }
            }
        }
        out
    }

    #[test]
    fn rows_sum_to_one() {
        let m = hiv_like();
        for t in [0.0, 0.01, 0.1, 1.0, 10.0] {
            let p = m.transition_matrix(t, 1.0);
            for (i, row) in p.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "t={t} row {i} sums to {s}");
                assert!(row.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
            }
        }
    }

    #[test]
    fn p_zero_is_identity() {
        let p = hiv_like().transition_matrix(0.0, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((p[i][j] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn p_infinity_is_equilibrium() {
        let m = hiv_like();
        let p = m.transition_matrix(500.0, 1.0);
        for row in &p {
            for j in 0..4 {
                assert!((row[j] - m.freqs[j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn detailed_balance() {
        let m = hiv_like();
        let p = m.transition_matrix(0.3, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (m.freqs[i] * p[i][j] - m.freqs[j] * p[j][i]).abs() < 1e-12,
                    "π_{i}P[{i}{j}] ≠ π_{j}P[{j}{i}]"
                );
            }
        }
    }

    #[test]
    fn chapman_kolmogorov() {
        let m = hiv_like();
        let p1 = m.transition_matrix(0.2, 1.0);
        let p2 = m.transition_matrix(0.5, 1.0);
        let p12 = m.transition_matrix(0.7, 1.0);
        let prod = mat_mul(&p1, &p2);
        for i in 0..4 {
            for j in 0..4 {
                assert!((prod[i][j] - p12[i][j]).abs() < 1e-10, "entry {i}{j}");
            }
        }
    }

    #[test]
    fn branch_length_is_expected_substitutions() {
        // d/dt of P(change) at t=0 must equal 1 (per-site substitution rate).
        let m = hiv_like();
        let dt = 1e-7;
        let p = m.transition_matrix(dt, 1.0);
        let p_change: f64 = (0..4).map(|i| m.freqs[i] * (1.0 - p[i][i])).sum();
        assert!(
            (p_change / dt - 1.0).abs() < 1e-4,
            "expected change rate 1, got {}",
            p_change / dt
        );
    }

    #[test]
    fn rate_multiplier_scales_time() {
        let m = hiv_like();
        let a = m.transition_matrix(0.1, 3.0);
        let b = m.transition_matrix(0.3, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!((a[i][j] - b[i][j]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn tt_ratio_observed_matches_requested() {
        // At equilibrium, instantaneous transition/transversion flux ratio
        // should equal the requested R (when achievable: R = 0.5 is below
        // the zero-excess baseline for these frequencies and gets clamped,
        // which `unachievable_tt_ratio_clamped` covers).
        for r in [1.0, 2.0, 10.0] {
            let m = F84Model::new([0.3, 0.2, 0.25, 0.25], r);
            let dt = 1e-7;
            let p = m.transition_matrix(dt, 1.0);
            let mut ts = 0.0; // transitions
            let mut tv = 0.0; // transversions
            for i in 0..4 {
                for j in 0..4 {
                    if i == j {
                        continue;
                    }
                    let flux = m.freqs[i] * p[i][j];
                    if is_purine(i) == is_purine(j) {
                        ts += flux;
                    } else {
                        tv += flux;
                    }
                }
            }
            assert!(
                (ts / tv - r).abs() < 1e-3,
                "requested R={r}, observed {}",
                ts / tv
            );
        }
    }

    #[test]
    fn unachievable_tt_ratio_clamped() {
        // Very small R cannot be realized; k clamps near zero rather than
        // going negative.
        let m = F84Model::new([0.25; 4], 0.01);
        assert!(m.k() >= 0.0);
        let p = m.transition_matrix(0.1, 1.0);
        for row in &p {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn coefficients_sum_to_one_on_rows() {
        // c1 + c2 + c3 = 1 ensures stochasticity.
        let m = hiv_like();
        for t in [0.001, 0.1, 2.0] {
            let c = m.coefficients(t, 1.0);
            assert!((c.c1 + c.c2 + c.c3 - 1.0).abs() < 1e-12);
            assert!(c.c1 >= 0.0 && c.c2 >= 0.0 && c.c3 >= 0.0);
        }
    }

    #[test]
    fn derivative_coefficients_match_finite_differences() {
        let m = hiv_like();
        let t = 0.37;
        let h = 1e-6;
        let d = m.coefficients_d2(t, 1.3);
        let plus = m.coefficients(t + h, 1.3);
        let minus = m.coefficients(t - h, 1.3);
        for (get, name) in [
            (|c: &Coefficients| c.c1, "c1"),
            (|c: &Coefficients| c.c2, "c2"),
            (|c: &Coefficients| c.c3, "c3"),
        ] as [(fn(&Coefficients) -> f64, &str); 3]
        {
            let fd1 = (get(&plus) - get(&minus)) / (2.0 * h);
            let fd2 = (get(&plus) - 2.0 * get(&d.value) + get(&minus)) / (h * h);
            assert!((fd1 - get(&d.d1)).abs() < 1e-6, "{name} first derivative");
            assert!((fd2 - get(&d.d2)).abs() < 1e-3, "{name} second derivative");
        }
    }

    #[test]
    #[should_panic]
    fn bad_frequencies_panic() {
        F84Model::new([0.5, 0.5, 0.5, 0.5], 2.0);
    }

    #[test]
    fn uniform_model_is_symmetric() {
        let m = F84Model::uniform(2.0);
        let p = m.transition_matrix(0.4, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!((p[i][j] - p[j][i]).abs() < 1e-14);
            }
        }
    }
}
