//! Maximum-likelihood kernels for the fastDNAml reproduction.
//!
//! Implements the model and numerics that fastDNAml inherits from
//! Felsenstein's DNAml:
//!
//! * the **F84** substitution model with empirical base frequencies and a
//!   transition/transversion ratio ([`f84`]),
//! * per-site **rate categories** ([`categories`]),
//! * **Felsenstein pruning** over conditional likelihood vectors with
//!   underflow scaling (layout and constants in [`clv`]; the blocked,
//!   division-free default kernels in [`kernels`]; the scalar oracle in
//!   [`reference`]; runtime SIMD lane selection in [`isa`]; intra-rank
//!   pattern-block parallelism in [`par`]),
//! * **Newton–Raphson branch-length optimization** using the three-term
//!   F84 decomposition ([`newton`]),
//! * the full-tree evaluator with Gauss–Seidel smoothing passes
//!   ([`engine`]),
//! * exact **work accounting** used by the cluster simulator ([`work`]),
//! * pairwise **ML distances** feeding the neighbor-joining baseline
//!   ([`distances`]).

#![warn(missing_docs)]

pub mod categories;
pub mod clv;
pub mod distances;
pub mod engine;
pub mod f84;
pub mod incremental;
pub mod isa;
pub mod kernels;
pub mod newton;
pub mod par;
pub mod reference;
pub mod scorer;
pub mod work;

pub use categories::RateCategories;
pub use engine::{EvalResult, LikelihoodEngine, OptimizeOptions};
pub use f84::F84Model;
pub use incremental::{ClvCache, EditScore};
pub use isa::KernelIsa;
pub use kernels::KernelMode;
pub use par::{IntraPar, PAR_BLOCK};
pub use scorer::{ScoredMove, TreeScorer};
pub use work::WorkCounter;
