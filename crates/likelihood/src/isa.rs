//! Runtime instruction-set dispatch for the vectorized kernels.
//!
//! The seed gated the AVX2 combine kernel behind compile-time
//! `#[cfg(target_feature)]`, so one binary was either scalar everywhere or
//! assumed AVX2 everywhere. This module replaces that with a one-time
//! runtime probe (`is_x86_feature_detected!` on x86-64, always-on NEON on
//! aarch64): the widest supported [`KernelIsa`] is detected once and cached
//! in an atomic, and every SIMD path is compiled unconditionally behind
//! `#[target_feature]` so the same binary runs fast on AVX-512 servers and
//! correctly on SSE2-only hosts.
//!
//! All lanes are bit-identical by construction: each vector kernel performs
//! the exact same per-pattern multiply-add DAG as the scalar form (vertical
//! packed ops only — no horizontal reductions, no reassociation), so
//! selecting a different ISA can never change a likelihood bit. That is
//! what makes `--isa scalar` a pure *testing* override rather than a
//! numerics switch, and it is pinned by the cross-path equivalence suite.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which SIMD lane the combine kernel routes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelIsa {
    /// Portable scalar path (the tail/fallback loop), available everywhere.
    Scalar,
    /// 4-patterns-wide AVX2+FMA (x86-64).
    Avx2,
    /// 8-patterns-wide AVX-512F (x86-64).
    Avx512,
    /// 2-patterns-wide NEON (aarch64, baseline — always available).
    Neon,
}

impl KernelIsa {
    /// Stable lowercase name, as accepted by [`KernelIsa::parse`] and the
    /// `--isa` flag, and as reported in `RunReport.kernel_isa`.
    pub fn name(self) -> &'static str {
        match self {
            KernelIsa::Scalar => "scalar",
            KernelIsa::Avx2 => "avx2",
            KernelIsa::Avx512 => "avx512",
            KernelIsa::Neon => "neon",
        }
    }

    /// Parse a `--isa` flag value.
    pub fn parse(s: &str) -> Option<KernelIsa> {
        match s {
            "scalar" => Some(KernelIsa::Scalar),
            "avx2" => Some(KernelIsa::Avx2),
            "avx512" => Some(KernelIsa::Avx512),
            "neon" => Some(KernelIsa::Neon),
            _ => None,
        }
    }

    /// Whether the running host can execute this lane.
    pub fn supported(self) -> bool {
        match self {
            KernelIsa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelIsa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            KernelIsa::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            KernelIsa::Neon => true,
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
        }
    }

    fn encode(self) -> u8 {
        match self {
            KernelIsa::Scalar => 1,
            KernelIsa::Avx2 => 2,
            KernelIsa::Avx512 => 3,
            KernelIsa::Neon => 4,
        }
    }

    fn decode(v: u8) -> Option<KernelIsa> {
        match v {
            1 => Some(KernelIsa::Scalar),
            2 => Some(KernelIsa::Avx2),
            3 => Some(KernelIsa::Avx512),
            4 => Some(KernelIsa::Neon),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Probe the host once: the widest lane this build can execute.
fn probe() -> KernelIsa {
    if KernelIsa::Avx512.supported() {
        KernelIsa::Avx512
    } else if KernelIsa::Avx2.supported() {
        KernelIsa::Avx2
    } else if KernelIsa::Neon.supported() {
        KernelIsa::Neon
    } else {
        KernelIsa::Scalar
    }
}

// 0 = not yet probed; otherwise an encoded KernelIsa.
static DETECTED: AtomicU8 = AtomicU8::new(0);
// 0 = auto (use detected); otherwise an encoded KernelIsa override.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The widest ISA the host supports (probed once, then cached).
pub fn detected() -> KernelIsa {
    match KernelIsa::decode(DETECTED.load(Ordering::Relaxed)) {
        Some(isa) => isa,
        None => {
            let isa = probe();
            DETECTED.store(isa.encode(), Ordering::Relaxed);
            isa
        }
    }
}

/// The ISA the kernels will actually use: the process-wide override if one
/// is set (`--isa`), else the detected best.
pub fn active() -> KernelIsa {
    KernelIsa::decode(OVERRIDE.load(Ordering::Relaxed)).unwrap_or_else(detected)
}

/// The explicit override, if one is set — `None` means auto dispatch.
/// Spawning launchers use this to forward `--isa` to child processes so a
/// whole universe runs the same lane.
pub fn override_isa() -> Option<KernelIsa> {
    KernelIsa::decode(OVERRIDE.load(Ordering::Relaxed))
}

/// Set (or with `None`, clear) the process-wide ISA override. Rejects lanes
/// the host cannot execute — an override may narrow the dispatch, never
/// fake hardware.
pub fn set_isa(isa: Option<KernelIsa>) -> Result<(), String> {
    if let Some(isa) = isa {
        if !isa.supported() {
            return Err(format!("isa `{}` is not supported on this host", isa));
        }
        OVERRIDE.store(isa.encode(), Ordering::Relaxed);
    } else {
        OVERRIDE.store(0, Ordering::Relaxed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported() {
        assert!(KernelIsa::Scalar.supported());
        assert!(probe().supported());
    }

    #[test]
    fn names_round_trip() {
        for isa in [
            KernelIsa::Scalar,
            KernelIsa::Avx2,
            KernelIsa::Avx512,
            KernelIsa::Neon,
        ] {
            assert_eq!(KernelIsa::parse(isa.name()), Some(isa));
            assert_eq!(KernelIsa::decode(isa.encode()), Some(isa));
        }
        assert_eq!(KernelIsa::parse("mmx"), None);
    }

    #[test]
    fn detected_is_widest_supported() {
        let d = detected();
        assert!(d.supported());
        if KernelIsa::Avx512.supported() {
            assert_eq!(d, KernelIsa::Avx512);
        } else if KernelIsa::Avx2.supported() {
            assert_eq!(d, KernelIsa::Avx2);
        }
    }

    #[test]
    fn override_rejects_unsupported_lane() {
        #[cfg(target_arch = "x86_64")]
        assert!(set_isa(Some(KernelIsa::Neon)).is_err());
        #[cfg(target_arch = "aarch64")]
        assert!(set_isa(Some(KernelIsa::Avx2)).is_err());
        assert!(set_isa(Some(KernelIsa::Scalar)).is_ok());
        assert_eq!(active(), KernelIsa::Scalar);
        assert!(set_isa(None).is_ok());
        assert_eq!(active(), detected());
    }
}
