//! Pairwise maximum-likelihood distances under F84.
//!
//! The two-sequence special case of the likelihood machinery: for each
//! taxon pair, the branch length maximizing the two-tip likelihood is the
//! ML estimate of their evolutionary distance (what PHYLIP's `dnadist`
//! computes under the same model). Feeding the matrix to
//! [`fdml_phylo::nj::neighbor_joining`] yields the classic fast baseline
//! the paper's ML results are compared against.

use crate::clv::WTerms;
use crate::engine::LikelihoodEngine;
use crate::newton::{optimize_branch, NewtonOptions, MAX_BRANCH_LENGTH};
use crate::reference::edge_w_terms;
use crate::work::WorkCounter;
use fdml_phylo::nj::DistanceMatrix;

/// ML distance between two taxa of the engine's alignment, in expected
/// substitutions per site.
pub fn pairwise_distance(engine: &LikelihoodEngine, a: u32, b: u32) -> f64 {
    let np = engine.patterns().num_patterns();
    let mut w = vec![
        WTerms {
            w1: 0.0,
            w2: 0.0,
            w3: 0.0
        };
        np
    ];
    edge_w_terms(engine.model(), engine.tip_clv(a), engine.tip_clv(b), &mut w);
    let mut work = WorkCounter::new();
    let opts = NewtonOptions {
        max_iters: 60,
        tolerance: 1e-10,
    };
    optimize_branch(
        engine.model(),
        engine.categories(),
        &w,
        engine.patterns().weights(),
        0.1,
        &opts,
        &mut work,
    )
}

/// The full pairwise ML distance matrix.
pub fn distance_matrix(engine: &LikelihoodEngine) -> DistanceMatrix {
    let n = engine.patterns().num_taxa();
    let mut upper = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            // Saturated pairs clamp at the maximum representable length.
            let d = pairwise_distance(engine, i, j).min(MAX_BRANCH_LENGTH);
            upper.push(d);
        }
    }
    DistanceMatrix::from_upper_triangle(n, &upper).expect("ML distances form a valid matrix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::RateCategories;
    use crate::f84::F84Model;
    use fdml_phylo::alignment::Alignment;
    use fdml_phylo::bipartition::SplitSet;
    use fdml_phylo::nj::neighbor_joining;
    use fdml_phylo::patterns::PatternAlignment;

    #[test]
    fn identical_sequences_have_near_zero_distance() {
        let a = Alignment::from_strings(&[("x", "ACGTACGT"), ("y", "ACGTACGT")]).unwrap();
        let engine = LikelihoodEngine::new(&a);
        assert!(pairwise_distance(&engine, 0, 1) < 1e-6);
    }

    #[test]
    fn matches_jukes_cantor_formula() {
        // Uniform frequencies + clamped tt-ratio = JC: the ML distance has
        // the closed form -(3/4)·ln(1 - 4p/3).
        let n = 300;
        let k = 45;
        let s1 = "A".repeat(n);
        let s2 = format!("{}{}", "C".repeat(k), "A".repeat(n - k));
        let a = Alignment::from_strings(&[("x", &s1), ("y", &s2)]).unwrap();
        let patterns = PatternAlignment::compress(&a);
        let np = patterns.num_patterns();
        let engine = LikelihoodEngine::with_parts(
            patterns,
            F84Model::uniform(0.5),
            RateCategories::single(np),
        );
        let p = k as f64 / n as f64;
        let expected = -0.75 * (1.0 - 4.0 * p / 3.0).ln();
        let got = pairwise_distance(&engine, 0, 1);
        assert!(
            (got - expected).abs() < 1e-3,
            "expected {expected}, got {got}"
        );
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Alignment::from_strings(&[("x", "ACGTACGTAGGA"), ("y", "ACCTACGAAGGT")]).unwrap();
        let engine = LikelihoodEngine::new(&a);
        let d1 = pairwise_distance(&engine, 0, 1);
        let d2 = pairwise_distance(&engine, 1, 0);
        assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2} (reversibility)");
    }

    #[test]
    fn nj_on_ml_distances_recovers_clean_topology() {
        // Sequences generated conceptually from ((0,1),(2,3),(4,5)):
        // shared group mutations dominate.
        let a = Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"),
            ("t1", "ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT"),
            ("t2", "ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT"),
            ("t3", "ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT"),
            ("t4", "TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA"),
            ("t5", "TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA"),
        ])
        .unwrap();
        let engine = LikelihoodEngine::new(&a);
        let m = distance_matrix(&engine);
        assert_eq!(m.len(), 6);
        let tree = neighbor_joining(&m);
        tree.check_valid().unwrap();
        let splits = SplitSet::of_tree(&tree, 6);
        let s01 = fdml_phylo::bipartition::Bipartition::from_side(&[0, 1], 6);
        let s45 = fdml_phylo::bipartition::Bipartition::from_side(&[4, 5], 6);
        assert!(
            splits.splits().contains(&s01),
            "NJ must group (t0,t1): {splits:?}"
        );
        assert!(
            splits.splits().contains(&s45),
            "NJ must group (t4,t5): {splits:?}"
        );
    }

    #[test]
    fn ml_search_is_at_least_as_good_as_the_nj_tree() {
        // The point of paying for ML: its tree's likelihood can't be worse
        // than the distance-method tree's likelihood.
        let a = Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTACGTACGTACGTACGTACGT"),
            ("t1", "ACGTACGTACTTACGTACGTACGAACGTACGT"),
            ("t2", "ACGAACGTACGTACGGACGTACGTACCTAGGT"),
            ("t3", "ACGAACGTACGTACGGACGTACTTACCTAGTT"),
            ("t4", "TCGAACGGACGTACGGAAGTACGTACCTAGGA"),
        ])
        .unwrap();
        let engine = LikelihoodEngine::new(&a);
        let mut nj_tree = neighbor_joining(&distance_matrix(&engine));
        let nj_lnl = engine
            .optimize(&mut nj_tree, &crate::engine::OptimizeOptions::default())
            .ln_likelihood;
        // Evaluate every 5-taxon topology; the best must be ≥ NJ's.
        let mut best = f64::NEG_INFINITY;
        let base = fdml_phylo::tree::Tree::triplet(0, 1, 2);
        for e3 in base.edge_ids().collect::<Vec<_>>() {
            let mut t3 = base.clone();
            t3.insert_taxon(3, e3).unwrap();
            for e4 in t3.edge_ids().collect::<Vec<_>>() {
                let mut t4 = t3.clone();
                t4.insert_taxon(4, e4).unwrap();
                let lnl = engine
                    .optimize(&mut t4, &crate::engine::OptimizeOptions::default())
                    .ln_likelihood;
                best = best.max(lnl);
            }
        }
        assert!(best >= nj_lnl - 1e-6, "exhaustive ML {best} vs NJ {nj_lnl}");
    }
}
