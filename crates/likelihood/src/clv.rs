//! Conditional likelihood vector (CLV) layout, scaling constants, and tip
//! vectors: the pieces shared by both kernel implementations.
//!
//! A CLV anchored at node `m` for a region `X` of the tree stores, for every
//! site pattern `p` and state `s`, `P(data of X at pattern p | state(m)=s)`.
//! CLVs are laid out flat as `clv[p*4 + s]`, with a per-pattern scaling
//! exponent vector alongside to prevent underflow on large trees (the
//! normalization the paper lists among fastDNAml's improvements: "the
//! conditional likelihoods … have been normalized to prevent floating point
//! underflow in the case of very large trees").
//!
//! Propagation through a branch uses the F84 three-term decomposition: for
//! a CLV `L` crossing a branch with coefficients `(c1, c2, c3)`,
//!
//! ```text
//! prop(L)(x) = c1·L(x) + c2·S_group(x)/π_group(x) + c3·S
//! S_R = Σ_{s∈{A,G}} π_s L(s),   S_Y = Σ_{s∈{C,T}} π_s L(s),   S = S_R + S_Y
//! ```
//!
//! which is 4 multiply-adds for the sums plus ~3 flops per state — the whole
//! kernel is O(patterns), independent of any 4×4 matrix multiplication.
//!
//! The kernels themselves live in two sibling modules:
//! [`crate::kernels`] (blocked, division-free, autovectorization-friendly —
//! the default) and [`crate::reference`] (the original scalar code, kept as
//! the equivalence oracle and benchmark baseline).

use fdml_phylo::dna::NUM_STATES;
use fdml_phylo::patterns::PatternAlignment;

/// Rescaling threshold: when every state's CLV entry for a pattern drops
/// below this, the pattern is rescaled.
pub const SCALE_THRESHOLD: f64 = 1e-100;
/// The rescaling multiplier (1 / SCALE_THRESHOLD).
pub const SCALE_FACTOR: f64 = 1e100;
/// Natural log of the *true* factor each scale count represents
/// (`ln(1e-100)`), added per count when assembling the final log-likelihood.
pub const LN_SCALE: f64 = -230.25850929940458;

/// Fill `clv` with the tip vector of `taxon`: 1.0 for every state compatible
/// with the observed (possibly ambiguous) character, else 0.0.
pub fn fill_tip_clv(patterns: &PatternAlignment, taxon: usize, clv: &mut [f64]) {
    let np = patterns.num_patterns();
    debug_assert_eq!(clv.len(), np * NUM_STATES);
    for p in 0..np {
        let mask = patterns.state(p, taxon);
        for s in 0..NUM_STATES {
            clv[p * NUM_STATES + s] = if mask.allows(s) { 1.0 } else { 0.0 };
        }
    }
}

/// The three per-pattern terms of the F84 edge likelihood
/// `f_p(t) = c1·W1 + c2·W2 + c3·W3` between two CLVs anchored at the two
/// ends of a branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WTerms {
    /// Identity term `Σ_s π_s U(s) D(s)`.
    pub w1: f64,
    /// Within-group term `Σ_g R_g(U)·R_g(D)/π_g`.
    pub w2: f64,
    /// Equilibrium term `(Σ_s π_s U(s))·(Σ_s π_s D(s))`.
    pub w3: f64,
}

impl WTerms {
    /// The all-zero terms, used to size scratch buffers.
    pub const ZERO: WTerms = WTerms {
        w1: 0.0,
        w2: 0.0,
        w3: 0.0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::alignment::Alignment;

    #[test]
    fn tip_clv_respects_masks() {
        let a = Alignment::from_strings(&[("x", "ACGTN"), ("y", "AAGTC"), ("z", "TCGAA")]).unwrap();
        let p = PatternAlignment::compress(&a);
        let mut clv = vec![0.0; p.num_patterns() * 4];
        fill_tip_clv(&p, 0, &mut clv);
        for pat in 0..p.num_patterns() {
            let mask = p.state(pat, 0);
            for s in 0..4 {
                let v = clv[pat * 4 + s];
                assert_eq!(v, if mask.allows(s) { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn ln_scale_constant_is_consistent() {
        assert!((LN_SCALE - SCALE_THRESHOLD.ln()).abs() < 1e-9);
        assert!((SCALE_FACTOR * SCALE_THRESHOLD - 1.0).abs() < 1e-12);
    }
}
