//! Seeded randomized equivalence between the optimized kernels and the
//! scalar reference oracle.
//!
//! The optimized path reorders floating-point operations (folded
//! coefficients, `mul_add`, batched logarithms), so exact bit equality is
//! not expected; the contract is ≤1e-12 per CLV entry, ≤1e-9 on
//! log-likelihoods, and *identical* integer scale decisions.

use fdml_likelihood::categories::RateCategories;
use fdml_likelihood::clv::WTerms;
use fdml_likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fdml_likelihood::f84::F84Model;
use fdml_likelihood::kernels::{self, KernelMode, KernelScratch};
use fdml_likelihood::newton::NewtonOptions;
use fdml_likelihood::reference;
use fdml_likelihood::work::WorkCounter;
use fdml_phylo::alignment::{Alignment, TaxonId};
use fdml_phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CLV_TOL: f64 = 1e-12;
const LNL_TOL: f64 = 1e-9;

fn random_model(rng: &mut StdRng) -> F84Model {
    let raw = [
        rng.random_range(0.1f64..1.0),
        rng.random_range(0.1f64..1.0),
        rng.random_range(0.1f64..1.0),
        rng.random_range(0.1f64..1.0),
    ];
    let total: f64 = raw.iter().sum();
    let freqs = [
        raw[0] / total,
        raw[1] / total,
        raw[2] / total,
        raw[3] / total,
    ];
    F84Model::new(freqs, rng.random_range(0.8f64..8.0))
}

fn random_categories(rng: &mut StdRng, np: usize, ncat: usize) -> RateCategories {
    if ncat == 1 {
        return RateCategories::single(np);
    }
    let rates: Vec<f64> = (0..ncat).map(|_| rng.random_range(0.2f64..3.0)).collect();
    let assignment: Vec<u32> = (0..np).map(|_| rng.random_range(0..ncat as u32)).collect();
    RateCategories::new(rates, assignment)
}

/// A random strictly-positive CLV; `tiny` scales some patterns down to the
/// underflow regime so the rescaling paths are exercised.
fn random_clv(rng: &mut StdRng, np: usize, tiny: bool) -> Vec<f64> {
    (0..np * 4)
        .map(|i| {
            let v = rng.random_range(0.01f64..1.0);
            if tiny && (i / 4) % 3 == 0 {
                v * 1e-60
            } else {
                v
            }
        })
        .collect()
}

fn random_weights(rng: &mut StdRng, np: usize) -> Vec<u32> {
    (0..np).map(|_| rng.random_range(1u32..7)).collect()
}

#[test]
fn combine_matches_reference_across_category_counts() {
    for &ncat in &[1usize, 3, 35] {
        for &(np, tiny) in &[(1usize, false), (7, false), (64, false), (193, true)] {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ (ncat as u64) << 16 ^ np as u64);
            let model = random_model(&mut rng);
            let cats = random_categories(&mut rng, np, ncat.min(np));
            let mut scratch = KernelScratch::new(&cats);
            let clv1 = random_clv(&mut rng, np, tiny);
            let clv2 = random_clv(&mut rng, np, tiny);
            let scale1: Vec<i32> = (0..np).map(|_| rng.random_range(0u32..3) as i32).collect();
            let scale2: Vec<i32> = (0..np).map(|_| rng.random_range(0u32..3) as i32).collect();
            let t1 = rng.random_range(0.001f64..5.0);
            let t2 = rng.random_range(0.001f64..5.0);

            let mut out_ref = vec![0.0; np * 4];
            let mut sc_ref = vec![0i32; np];
            let co1 = reference::branch_coefficients(&model, &cats, t1);
            let co2 = reference::branch_coefficients(&model, &cats, t2);
            reference::combine_children(
                &model,
                &cats,
                &co1,
                &clv1,
                &scale1,
                &co2,
                &clv2,
                &scale2,
                &mut out_ref,
                &mut sc_ref,
            );

            let mut out_opt = vec![0.0; np * 4];
            let mut sc_opt = vec![0i32; np];
            kernels::combine_edges(
                KernelMode::Optimized,
                &model,
                &cats,
                &mut scratch,
                t1,
                &clv1,
                &scale1,
                t2,
                &clv2,
                &scale2,
                &mut out_opt,
                &mut sc_opt,
            );

            assert_eq!(
                sc_opt, sc_ref,
                "scale decisions diverged (np={np} ncat={ncat})"
            );
            for (i, (o, r)) in out_opt.iter().zip(&out_ref).enumerate() {
                let tol = CLV_TOL * r.abs().max(1.0);
                assert!(
                    (o - r).abs() <= tol,
                    "clv[{i}]: optimized {o} vs reference {r} (np={np} ncat={ncat})"
                );
            }
        }
    }
}

#[test]
fn w_terms_match_reference() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for np in [1usize, 13, 200] {
        let model = random_model(&mut rng);
        let u = random_clv(&mut rng, np, false);
        let d = random_clv(&mut rng, np, false);
        let mut w_ref = vec![WTerms::ZERO; np];
        let mut w_opt = vec![WTerms::ZERO; np];
        reference::edge_w_terms(&model, &u, &d, &mut w_ref);
        kernels::compute_w_terms(
            KernelMode::Optimized,
            &model,
            &fdml_likelihood::IntraPar::serial(),
            &u,
            &d,
            &mut w_opt,
        );
        for (p, (a, b)) in w_opt.iter().zip(&w_ref).enumerate() {
            for (x, y) in [(a.w1, b.w1), (a.w2, b.w2), (a.w3, b.w3)] {
                assert!(
                    (x - y).abs() <= CLV_TOL * y.abs().max(1.0),
                    "w[{p}]: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn branch_lnl_matches_reference() {
    for &ncat in &[1usize, 3, 35] {
        let mut rng = StdRng::seed_from_u64(0xABCD + ncat as u64);
        for np in [1usize, 17, 311] {
            let model = random_model(&mut rng);
            let cats = random_categories(&mut rng, np, ncat.min(np));
            let mut scratch = KernelScratch::new(&cats);
            let u = random_clv(&mut rng, np, false);
            let d = random_clv(&mut rng, np, false);
            let mut w = vec![WTerms::ZERO; np];
            reference::edge_w_terms(&model, &u, &d, &mut w);
            let weights = random_weights(&mut rng, np);
            let scale: Vec<i32> = (0..np).map(|_| rng.random_range(0u32..4) as i32).collect();
            let t = rng.random_range(0.001f64..8.0);
            let lnl_ref = reference::edge_log_likelihood(&model, &cats, t, &w, &weights, &scale);
            let lnl_opt = kernels::branch_lnl(
                KernelMode::Optimized,
                &model,
                &cats,
                &mut scratch,
                t,
                &w,
                &weights,
                &scale,
            );
            assert!(
                (lnl_opt - lnl_ref).abs() <= LNL_TOL * lnl_ref.abs().max(1.0),
                "lnL {lnl_opt} vs {lnl_ref} (np={np} ncat={ncat})"
            );
        }
    }
}

#[test]
fn newton_optimization_matches_reference() {
    for &ncat in &[1usize, 3, 35] {
        let mut rng = StdRng::seed_from_u64(0x7777 * (ncat as u64 + 1));
        for np in [5usize, 97] {
            let model = random_model(&mut rng);
            let cats = random_categories(&mut rng, np, ncat.min(np));
            let mut scratch = KernelScratch::new(&cats);
            let u = random_clv(&mut rng, np, false);
            let d = random_clv(&mut rng, np, false);
            let mut w = vec![WTerms::ZERO; np];
            reference::edge_w_terms(&model, &u, &d, &mut w);
            let weights = random_weights(&mut rng, np);
            let t0 = rng.random_range(0.01f64..2.0);
            let opts = NewtonOptions::default();
            let mut wk_ref = WorkCounter::new();
            let mut wk_opt = WorkCounter::new();
            let t_ref = kernels::optimize_branch_dispatch(
                KernelMode::Reference,
                &model,
                &cats,
                &mut scratch,
                &w,
                &weights,
                t0,
                &opts,
                &mut wk_ref,
            );
            let t_opt = kernels::optimize_branch_dispatch(
                KernelMode::Optimized,
                &model,
                &cats,
                &mut scratch,
                &w,
                &weights,
                t0,
                &opts,
                &mut wk_opt,
            );
            // Identical safeguarded iteration, same work accounting; the
            // optimum itself agrees to optimizer tolerance.
            assert_eq!(wk_opt.newton_pattern_iters, wk_ref.newton_pattern_iters);
            assert!(
                (t_opt - t_ref).abs() <= 1e-6 * t_ref.max(1e-3),
                "branch length {t_opt} vs {t_ref} (np={np} ncat={ncat})"
            );
        }
    }
}

fn random_alignment(taxa: usize, sites: usize, seed: u64) -> Alignment {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<(String, String)> = (0..taxa)
        .map(|t| {
            let seq: String = (0..sites)
                .map(|_| BASES[rng.random_range(0usize..4)])
                .collect();
            (format!("t{t}"), seq)
        })
        .collect();
    let refs: Vec<(&str, &str)> = rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    Alignment::from_strings(&refs).expect("well-formed")
}

fn random_tree(taxa: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = Tree::triplet(0, 1, 2);
    for t in 3..taxa as TaxonId {
        let edges: Vec<_> = tree.edge_ids().collect();
        let e = edges[rng.random_range(0..edges.len())];
        tree.insert_taxon(t, e).expect("insertable");
    }
    for e in tree.edge_ids().collect::<Vec<_>>() {
        tree.set_length(e, rng.random_range(0.01f64..0.6));
    }
    tree
}

#[test]
fn engine_modes_agree_on_evaluate_and_optimize() {
    for seed in 0..4u64 {
        let a = random_alignment(9, 160, 1000 + seed);
        let tree = random_tree(9, 2000 + seed);
        let opt_engine = LikelihoodEngine::new(&a);
        let ref_engine = LikelihoodEngine::new(&a).with_kernel_mode(KernelMode::Reference);
        assert_eq!(opt_engine.kernel_mode(), KernelMode::Optimized);

        let ev_opt = opt_engine.evaluate(&tree);
        let ev_ref = ref_engine.evaluate(&tree);
        assert!(
            (ev_opt.ln_likelihood - ev_ref.ln_likelihood).abs()
                <= LNL_TOL * ev_ref.ln_likelihood.abs(),
            "evaluate: {} vs {} (seed {seed})",
            ev_opt.ln_likelihood,
            ev_ref.ln_likelihood
        );
        // Work accounting is mode-independent by construction.
        assert_eq!(ev_opt.work, ev_ref.work);

        let mut t1 = tree.clone();
        let mut t2 = tree.clone();
        let op_opt = opt_engine.optimize(&mut t1, &OptimizeOptions::default());
        let op_ref = ref_engine.optimize(&mut t2, &OptimizeOptions::default());
        assert!(
            (op_opt.ln_likelihood - op_ref.ln_likelihood).abs()
                <= 1e-5 * op_ref.ln_likelihood.abs(),
            "optimize: {} vs {} (seed {seed})",
            op_opt.ln_likelihood,
            op_ref.ln_likelihood
        );
    }
}

#[test]
fn engine_modes_agree_under_deep_trees_with_rescaling() {
    // Enough taxa with long branches that CLV products underflow without
    // rescaling; both modes must take identical scale decisions.
    let a = random_alignment(40, 80, 42);
    let mut tree = random_tree(40, 43);
    for e in tree.edge_ids().collect::<Vec<_>>() {
        tree.set_length(e, 2.5);
    }
    let opt_engine = LikelihoodEngine::new(&a);
    let ref_engine = LikelihoodEngine::new(&a).with_kernel_mode(KernelMode::Reference);
    let l_opt = opt_engine.evaluate(&tree).ln_likelihood;
    let l_ref = ref_engine.evaluate(&tree).ln_likelihood;
    assert!(l_opt.is_finite());
    assert!(
        (l_opt - l_ref).abs() <= LNL_TOL * l_ref.abs(),
        "{l_opt} vs {l_ref}"
    );
}
