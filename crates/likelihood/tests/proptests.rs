//! Property-based tests of the likelihood kernels.

use fdml_likelihood::categories::RateCategories;
use fdml_likelihood::clv::WTerms;
use fdml_likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fdml_likelihood::f84::F84Model;
use fdml_likelihood::kernels::blocked_ln_prod;
use fdml_likelihood::newton::{optimize_branch, NewtonOptions};
use fdml_likelihood::reference::{edge_log_likelihood, edge_w_terms};
use fdml_likelihood::work::WorkCounter;
use fdml_phylo::alignment::{Alignment, TaxonId};
use fdml_phylo::patterns::PatternAlignment;
use fdml_phylo::tree::Tree;
use proptest::prelude::*;

fn arb_freqs() -> impl Strategy<Value = [f64; 4]> {
    [0.08f64..1.0, 0.08f64..1.0, 0.08f64..1.0, 0.08f64..1.0].prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        [
            raw[0] / total,
            raw[1] / total,
            raw[2] / total,
            raw[3] / total,
        ]
    })
}

/// Random alignment over the plain bases (no ambiguity) with a seeded
/// xorshift, so the strategy shrinks well.
fn random_alignment(taxa: usize, sites: usize, seed: u64) -> Alignment {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows: Vec<(String, String)> = (0..taxa)
        .map(|t| {
            let seq: String = (0..sites).map(|_| BASES[(next() % 4) as usize]).collect();
            (format!("t{t}"), seq)
        })
        .collect();
    let refs: Vec<(&str, &str)> = rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    Alignment::from_strings(&refs).expect("well-formed")
}

fn random_tree(taxa: usize, seed: u64) -> Tree {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut tree = Tree::triplet(0, 1, 2);
    for t in 3..taxa as TaxonId {
        let edges: Vec<_> = tree.edge_ids().collect();
        let e = edges[(next() % edges.len() as u64) as usize];
        tree.insert_taxon(t, e).expect("insertable");
    }
    for e in tree.edge_ids().collect::<Vec<_>>() {
        let len = 0.01 + (next() % 1000) as f64 / 2000.0;
        tree.set_length(e, len);
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn log_likelihood_is_always_negative_and_finite(
        taxa in 4usize..12,
        sites in 8usize..60,
        seed in 0u64..5_000,
    ) {
        let a = random_alignment(taxa, sites, seed);
        let tree = random_tree(taxa, seed ^ 0xABCD);
        let engine = LikelihoodEngine::new(&a);
        let lnl = engine.evaluate(&tree).ln_likelihood;
        prop_assert!(lnl.is_finite());
        prop_assert!(lnl < 0.0, "probability of a random alignment must be < 1");
    }

    #[test]
    fn optimization_never_reduces_the_likelihood(
        taxa in 4usize..10,
        sites in 10usize..50,
        seed in 0u64..5_000,
    ) {
        let a = random_alignment(taxa, sites, seed);
        let mut tree = random_tree(taxa, seed ^ 0x1111);
        let engine = LikelihoodEngine::new(&a);
        let before = engine.evaluate(&tree).ln_likelihood;
        let after = engine.optimize(&mut tree, &OptimizeOptions::default()).ln_likelihood;
        prop_assert!(after >= before - 1e-9, "{} → {}", before, after);
    }

    #[test]
    fn reversibility_edge_likelihood_is_direction_free(
        freqs in arb_freqs(),
        tt in 0.8f64..12.0,
        t in 0.001f64..3.0,
        u in proptest::collection::vec(0.01f64..1.0, 4),
        d in proptest::collection::vec(0.01f64..1.0, 4),
    ) {
        // Swapping the two CLVs across a branch must not change the
        // likelihood (time-reversibility of F84).
        let model = F84Model::new(freqs, tt);
        let cats = RateCategories::single(1);
        let mut w_ud = vec![WTerms { w1: 0.0, w2: 0.0, w3: 0.0 }];
        let mut w_du = vec![WTerms { w1: 0.0, w2: 0.0, w3: 0.0 }];
        edge_w_terms(&model, &u, &d, &mut w_ud);
        edge_w_terms(&model, &d, &u, &mut w_du);
        let a = edge_log_likelihood(&model, &cats, t, &w_ud, &[1], &[0]);
        let b = edge_log_likelihood(&model, &cats, t, &w_du, &[1], &[0]);
        prop_assert!((a - b).abs() < 1e-10, "{} vs {}", a, b);
    }

    #[test]
    fn newton_result_at_least_as_good_as_start(
        freqs in arb_freqs(),
        tt in 0.8f64..10.0,
        t0 in 0.001f64..5.0,
        u in proptest::collection::vec(0.01f64..1.0, 8),
        d in proptest::collection::vec(0.01f64..1.0, 8),
    ) {
        let model = F84Model::new(freqs, tt);
        let cats = RateCategories::single(2);
        let mut w = vec![WTerms { w1: 0.0, w2: 0.0, w3: 0.0 }; 2];
        edge_w_terms(&model, &u[..4], &d[..4], &mut w[0..1]);
        edge_w_terms(&model, &u[4..], &d[4..], &mut w[1..2]);
        let weights = [3u32, 2];
        let scales = [0i32; 2];
        let mut work = WorkCounter::new();
        let t = optimize_branch(&model, &cats, &w, &weights, t0, &NewtonOptions::default(), &mut work);
        let before = edge_log_likelihood(&model, &cats, t0.clamp(1e-8, 30.0), &w, &weights, &scales);
        let after = edge_log_likelihood(&model, &cats, t, &w, &weights, &scales);
        prop_assert!(after >= before - 1e-9, "start {} (lnl {}) → {} (lnl {})", t0, before, t, after);
    }

    #[test]
    fn blocked_ln_prod_partials_merge_bit_identically(
        n in 1usize..1500,
        seed in 0u64..10_000,
        block in 1usize..600,
    ) {
        // The parallel fold's determinism contract, in miniature: chunk
        // partials computed independently (here: in reverse chunk order,
        // standing in for any thread schedule) and merged in chunk order
        // reproduce the sequential blocked fold bit for bit.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let factors: Vec<(f64, u32)> = (0..n)
            .map(|_| {
                // Mantissas spanning the underflow regime the rescaled
                // kernels produce, weights like real pattern weights.
                let exp = (next() % 120) as i32 - 100;
                let m = (1.0 + (next() % 1000) as f64 / 1000.0) * 2f64.powi(exp);
                (m.max(f64::MIN_POSITIVE), 1 + (next() % 600) as u32)
            })
            .collect();
        let sequential = blocked_ln_prod(&factors, block);
        let mut partials: Vec<(usize, fdml_likelihood::kernels::LnProd)> = factors
            .chunks(block)
            .enumerate()
            .rev()
            .map(|(i, chunk)| {
                let mut p = fdml_likelihood::kernels::LnProd::new();
                for &(f, w) in chunk {
                    p.mul_pow(f, w);
                }
                (i, p)
            })
            .collect();
        partials.sort_by_key(|&(i, _)| i);
        let mut merged = fdml_likelihood::kernels::LnProd::new();
        for (_, p) in &partials {
            merged.merge(p);
        }
        prop_assert_eq!(
            merged.value().to_bits(),
            sequential.value().to_bits(),
            "schedule-independent merge diverged (n={}, block={})",
            n,
            block
        );
        // A block covering every factor degenerates to the serial fold.
        let serial = {
            let mut p = fdml_likelihood::kernels::LnProd::new();
            for &(f, w) in &factors {
                p.mul_pow(f, w);
            }
            p
        };
        let one_block = blocked_ln_prod(&factors, n.max(block));
        prop_assert_eq!(one_block.value().to_bits(), serial.value().to_bits());
    }

    #[test]
    fn pattern_weights_equal_repeated_columns(
        taxa in 4usize..8,
        seed in 0u64..3_000,
        repeat in 2usize..5,
    ) {
        // An alignment where every column appears `repeat` times has the
        // likelihood of the unique columns times the multiplicity.
        let base = random_alignment(taxa, 12, seed);
        let rows: Vec<(String, String)> = (0..taxa as TaxonId)
            .map(|t| {
                let chars: Vec<char> = fdml_phylo::dna::sequence_to_string(base.sequence(t)).chars().collect();
                let mut s = String::new();
                for &c in &chars {
                    for _ in 0..repeat {
                        s.push(c);
                    }
                }
                (base.name(t).to_string(), s)
            })
            .collect();
        let refs: Vec<(&str, &str)> = rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        let repeated = Alignment::from_strings(&refs).unwrap();
        let tree = random_tree(taxa, seed ^ 0x77);
        let model = F84Model::uniform(2.0);
        let e1 = LikelihoodEngine::with_parts(
            PatternAlignment::compress(&base),
            model.clone(),
            RateCategories::single(PatternAlignment::compress(&base).num_patterns()),
        );
        let e2 = LikelihoodEngine::with_parts(
            PatternAlignment::compress(&repeated),
            model,
            RateCategories::single(PatternAlignment::compress(&repeated).num_patterns()),
        );
        let l1 = e1.evaluate(&tree).ln_likelihood;
        let l2 = e2.evaluate(&tree).ln_likelihood;
        prop_assert!((l2 - repeat as f64 * l1).abs() < 1e-6, "{} vs {}×{}", l2, repeat, l1);
    }
}
