//! Deterministic chaos harness for the parallel runtime.
//!
//! The paper's fault-tolerance claim (§2.2) is that the foreman's
//! timeout-based work queue survives worker loss without stopping the
//! search. This crate turns that claim into a testable property: a
//! [`ChaosPlan`] is a *seeded, reproducible* schedule of per-message
//! drop / delay / duplicate / corrupt faults plus worker kills and
//! partition windows, applied through the [`ChaosTransport`] wrapper.
//! Running the same plan twice injects exactly the same fault sequence,
//! so a soak test can assert the strong property: the final tree must be
//! byte-identical to the fault-free run whenever at least one worker
//! survives.
//!
//! This generalizes `fdml_comm::fault::FaultPlan`, which only targets the
//! first N result messages with a single fault kind. Faults here are
//! *scheduled in message count, not wall clock*: the nth outgoing result
//! of a rank always draws the same fate, independent of thread timing.
//!
//! Fault semantics mirror what the wire layer does:
//!
//! * **drop** — the result vanishes; the foreman's timeout requeues it.
//! * **delay** — the result arrives late; the foreman may have requeued
//!   it already, in which case it is deduplicated.
//! * **duplicate** — the result arrives twice; the foreman ignores the
//!   second copy.
//! * **corrupt** — the payload is damaged in flight. In-process messages
//!   are typed and cannot carry garbage, so corruption models what the
//!   CRC32-checked TCP framing does on a bad checksum: the frame is
//!   *detected and discarded* (an [`Event::FrameCorrupt`] is emitted) —
//!   corruption degrades to loss, never to a parse panic.
//! * **kill** — after a scheduled number of results, the rank's link is
//!   severed for good: every send and receive fails with
//!   [`CommError::Disconnected`], the in-process stand-in for a worker
//!   process dying (`--net` runs kill the actual process instead).
//! * **partition** — a window in result-count space during which the
//!   rank's results are dropped, then connectivity returns.

#![warn(missing_docs)]

pub mod storage;

use fdml_comm::message::Message;
use fdml_comm::transport::{CommError, Rank, Transport};
use fdml_obs::{Event, Obs};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A deterministic pseudo-random stream (splitmix64). Not cryptographic;
/// chosen because it is tiny, dependency-free, and identical on every
/// platform — the properties a reproducible fault schedule needs.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw uniform in `0..bound` (`bound` of 0 returns 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A partition window in result-count space: outgoing results with index
/// in `start .. start + length` are dropped, then connectivity returns.
/// Counting messages rather than milliseconds keeps the schedule
/// reproducible across machines and load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First outgoing-result index affected.
    pub start: u64,
    /// How many consecutive results are dropped.
    pub length: u64,
}

impl PartitionWindow {
    fn contains(&self, idx: u64) -> bool {
        idx >= self.start && idx < self.start.saturating_add(self.length)
    }
}

/// A seeded, reproducible schedule of faults. Per-message fault
/// probabilities are in permille (0..=1000) and are drawn from a stream
/// derived from `seed` and the endpoint's rank, so every rank sees an
/// independent but fully deterministic fault sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Master seed; all per-rank streams derive from it.
    pub seed: u64,
    /// Permille of outgoing results silently dropped.
    pub drop_per_mille: u64,
    /// Permille of outgoing results delayed by [`ChaosPlan::delay`].
    pub delay_per_mille: u64,
    /// Permille of outgoing results sent twice.
    pub duplicate_per_mille: u64,
    /// Permille of outgoing results corrupted in flight (detected by the
    /// integrity check and discarded, like a CRC failure on the wire).
    pub corrupt_per_mille: u64,
    /// How long a delayed result is held.
    pub delay: Duration,
    /// Worker kills: `(rank, after)` severs `rank`'s link for good once it
    /// has sent `after` results. For `--net` runs the launcher maps this to
    /// killing the actual worker process.
    pub kills: Vec<(Rank, u64)>,
    /// Optional partition window applied to every wrapped rank.
    pub partition: Option<PartitionWindow>,
}

impl ChaosPlan {
    /// A plan with no faults at all (the control arm of a soak matrix).
    pub fn quiet(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            drop_per_mille: 0,
            delay_per_mille: 0,
            duplicate_per_mille: 0,
            corrupt_per_mille: 0,
            delay: Duration::ZERO,
            kills: Vec::new(),
            partition: None,
        }
    }

    /// A mixed-fault plan derived entirely from `seed`: each fault class
    /// gets a rate in 0..150‰ and the delay lands in 1..=20 ms, so a soak
    /// matrix over eight seeds exercises eight different fault mixes
    /// without hand-tuning.
    pub fn seeded(seed: u64) -> ChaosPlan {
        let mut rng = ChaosRng::new(seed);
        ChaosPlan {
            seed,
            drop_per_mille: rng.below(150),
            delay_per_mille: rng.below(150),
            duplicate_per_mille: rng.below(150),
            corrupt_per_mille: rng.below(150),
            delay: Duration::from_millis(1 + rng.below(20)),
            kills: Vec::new(),
            partition: None,
        }
    }

    /// Adds a worker kill: sever `rank` after it has sent `after` results.
    pub fn with_kill(mut self, rank: Rank, after: u64) -> ChaosPlan {
        self.kills.push((rank, after));
        self
    }

    /// Adds a partition window.
    pub fn with_partition(mut self, start: u64, length: u64) -> ChaosPlan {
        self.partition = Some(PartitionWindow { start, length });
        self
    }

    /// When this plan kills `rank`, the result count it is allowed first.
    pub fn kill_for(&self, rank: Rank) -> Option<u64> {
        self.kills
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|(_, after)| *after)
    }

    /// The fault stream for one endpoint: independent per rank, identical
    /// across runs.
    pub fn rng_for(&self, rank: Rank) -> ChaosRng {
        // Golden-ratio rank mixing keeps per-rank streams uncorrelated
        // even for adjacent ranks and seed 0.
        ChaosRng::new(
            self.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_CAFE_F00D_D00D,
        )
    }
}

/// What the plan decided for one outgoing result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Deliver,
    Drop,
    Delay,
    Duplicate,
    Corrupt,
}

/// Counts of injected faults, for assertions that a chaos run actually
/// exercised something.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Results silently dropped (including partition-window drops).
    pub dropped: u64,
    /// Results delayed.
    pub delayed: u64,
    /// Results sent twice.
    pub duplicated: u64,
    /// Results corrupted-and-discarded.
    pub corrupted: u64,
}

struct ChaosState {
    rng: ChaosRng,
    results_sent: u64,
    stats: ChaosStats,
}

/// A [`Transport`] wrapper applying a [`ChaosPlan`] to outgoing result
/// messages (`TreeResult` / `JumbleResult`). Control traffic (problem
/// data, readiness, shutdown) passes through untouched — chaos attacks
/// the data plane, which is where the fault-tolerance machinery lives.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    plan: ChaosPlan,
    state: Mutex<ChaosState>,
    severed: AtomicBool,
    kill_after: Option<u64>,
    corrupt_events: AtomicU64,
    obs: Obs,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` under `plan`, reporting corruption events to `obs`.
    pub fn new(inner: T, plan: ChaosPlan, obs: Obs) -> ChaosTransport<T> {
        let rank = inner.rank();
        let kill_after = plan.kill_for(rank);
        let severed = kill_after == Some(0);
        ChaosTransport {
            state: Mutex::new(ChaosState {
                rng: plan.rng_for(rank),
                results_sent: 0,
                stats: ChaosStats::default(),
            }),
            inner,
            plan,
            severed: AtomicBool::new(severed),
            kill_after,
            corrupt_events: AtomicU64::new(0),
            obs,
        }
    }

    /// Whether a scheduled kill has triggered.
    pub fn is_severed(&self) -> bool {
        self.severed.load(Ordering::SeqCst)
    }

    /// Fault counts so far.
    pub fn stats(&self) -> ChaosStats {
        self.state.lock().stats
    }

    /// How many corruption events were emitted.
    pub fn corrupt_count(&self) -> u64 {
        self.corrupt_events.load(Ordering::SeqCst)
    }

    fn draw_fate(&self, state: &mut ChaosState) -> Fate {
        let roll = state.rng.below(1000);
        let p = &self.plan;
        let mut edge = p.drop_per_mille;
        if roll < edge {
            return Fate::Drop;
        }
        edge += p.delay_per_mille;
        if roll < edge {
            return Fate::Delay;
        }
        edge += p.duplicate_per_mille;
        if roll < edge {
            return Fate::Duplicate;
        }
        edge += p.corrupt_per_mille;
        if roll < edge {
            return Fate::Corrupt;
        }
        Fate::Deliver
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: Rank, msg: &Message) -> Result<(), CommError> {
        if self.severed.load(Ordering::SeqCst) {
            return Err(CommError::Disconnected(self.inner.rank()));
        }
        if !matches!(
            msg,
            Message::TreeResult { .. } | Message::JumbleResult { .. }
        ) {
            return self.inner.send(to, msg);
        }

        let mut state = self.state.lock();
        let idx = state.results_sent;
        state.results_sent += 1;

        if let Some(after) = self.kill_after {
            if idx >= after {
                drop(state);
                self.severed.store(true, Ordering::SeqCst);
                return Err(CommError::Disconnected(self.inner.rank()));
            }
        }
        // The fate is drawn even for messages the partition eats, so each
        // rank's fault stream stays aligned with its result index.
        let fate = self.draw_fate(&mut state);
        if let Some(window) = self.plan.partition {
            if window.contains(idx) {
                state.stats.dropped += 1;
                return Ok(());
            }
        }
        match fate {
            Fate::Deliver => {
                drop(state);
                self.inner.send(to, msg)
            }
            Fate::Drop => {
                state.stats.dropped += 1;
                Ok(())
            }
            Fate::Delay => {
                state.stats.delayed += 1;
                drop(state);
                std::thread::sleep(self.plan.delay);
                self.inner.send(to, msg)
            }
            Fate::Duplicate => {
                state.stats.duplicated += 1;
                drop(state);
                self.inner.send(to, msg)?;
                self.inner.send(to, msg)
            }
            Fate::Corrupt => {
                state.stats.corrupted += 1;
                drop(state);
                // Corruption is *detected* (as the CRC32 wire check would)
                // and the damaged payload discarded: loss, not garbage.
                self.corrupt_events.fetch_add(1, Ordering::SeqCst);
                let rank = self.inner.rank();
                self.obs.emit(|| Event::FrameCorrupt { rank });
                Ok(())
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(Rank, Message)>, CommError> {
        if self.severed.load(Ordering::SeqCst) {
            return Err(CommError::Disconnected(self.inner.rank()));
        }
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_comm::threads::ThreadUniverse;
    use fdml_obs::MemorySink;

    fn result_msg(task: u64) -> Message {
        Message::TreeResult {
            task,
            newick: "(a,b);".into(),
            ln_likelihood: -1.0,
            work_units: 1,
        }
    }

    fn delivered_tasks(plan: &ChaosPlan, sends: u64) -> (Vec<u64>, ChaosStats) {
        let mut ends = ThreadUniverse::create(2);
        let receiver = ends.remove(0);
        let chaotic = ChaosTransport::new(ends.remove(0), plan.clone(), Obs::disabled());
        for t in 0..sends {
            // A killed link errors; the caller would stop sending.
            if chaotic.send(0, &result_msg(t)).is_err() {
                break;
            }
        }
        let mut got = Vec::new();
        while let Ok(Some((_, msg))) = receiver.try_recv() {
            match msg {
                Message::TreeResult { task, .. } => got.push(task),
                other => panic!("unexpected {other:?}"),
            }
        }
        (got, chaotic.stats())
    }

    #[test]
    fn same_seed_injects_the_same_fault_sequence() {
        let plan = ChaosPlan::seeded(42);
        let (a, sa) = delivered_tasks(&plan, 200);
        let (b, sb) = delivered_tasks(&plan, 200);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = delivered_tasks(&ChaosPlan::seeded(1), 200);
        let (b, _) = delivered_tasks(&ChaosPlan::seeded(2), 200);
        assert_ne!(
            a, b,
            "two seeds producing identical 200-message fates is ~impossible"
        );
    }

    #[test]
    fn seeded_plans_mix_fault_classes() {
        // Over a handful of seeds, every fault class shows up somewhere.
        let mut total = ChaosStats::default();
        for seed in 0..8 {
            let (_, s) = delivered_tasks(&ChaosPlan::seeded(seed), 300);
            total.dropped += s.dropped;
            total.delayed += s.delayed;
            total.duplicated += s.duplicated;
            total.corrupted += s.corrupted;
        }
        assert!(total.dropped > 0);
        assert!(total.duplicated > 0);
        assert!(total.corrupted > 0);
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let (got, stats) = delivered_tasks(&ChaosPlan::quiet(7), 50);
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(stats, ChaosStats::default());
    }

    #[test]
    fn duplicate_sends_twice_and_drop_sends_nothing() {
        let plan = ChaosPlan {
            duplicate_per_mille: 1000,
            ..ChaosPlan::quiet(0)
        };
        let (got, stats) = delivered_tasks(&plan, 3);
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(stats.duplicated, 3);

        let plan = ChaosPlan {
            drop_per_mille: 1000,
            ..ChaosPlan::quiet(0)
        };
        let (got, stats) = delivered_tasks(&plan, 3);
        assert!(got.is_empty());
        assert_eq!(stats.dropped, 3);
    }

    #[test]
    fn kill_severs_at_the_scheduled_count() {
        let plan = ChaosPlan::quiet(0).with_kill(1, 2);
        let mut ends = ThreadUniverse::create(2);
        let receiver = ends.remove(0);
        let chaotic = ChaosTransport::new(ends.remove(0), plan, Obs::disabled());
        chaotic.send(0, &result_msg(0)).unwrap();
        chaotic.send(0, &result_msg(1)).unwrap();
        assert_eq!(
            chaotic.send(0, &result_msg(2)),
            Err(CommError::Disconnected(1))
        );
        assert!(chaotic.is_severed());
        assert_eq!(
            chaotic.recv_timeout(Duration::from_millis(1)),
            Err(CommError::Disconnected(1))
        );
        // Control traffic also fails once severed: the process is "dead".
        assert_eq!(
            chaotic.send(0, &Message::WorkerReady),
            Err(CommError::Disconnected(1))
        );
        let mut got = 0;
        while let Ok(Some(_)) = receiver.try_recv() {
            got += 1;
        }
        assert_eq!(got, 2);
    }

    #[test]
    fn kill_after_zero_is_dead_on_arrival() {
        let plan = ChaosPlan::quiet(0).with_kill(1, 0);
        let mut ends = ThreadUniverse::create(2);
        let _receiver = ends.remove(0);
        let chaotic = ChaosTransport::new(ends.remove(0), plan, Obs::disabled());
        assert!(chaotic.is_severed());
    }

    #[test]
    fn corrupt_is_detected_dropped_and_reported() {
        let plan = ChaosPlan {
            corrupt_per_mille: 1000,
            ..ChaosPlan::quiet(0)
        };
        let mut ends = ThreadUniverse::create(2);
        let receiver = ends.remove(0);
        let mem = MemorySink::new();
        let chaotic = ChaosTransport::new(ends.remove(0), plan, Obs::new(Box::new(mem.clone())));
        chaotic.send(0, &result_msg(0)).unwrap();
        assert!(
            receiver.try_recv().unwrap().is_none(),
            "corrupt frame must not deliver"
        );
        assert_eq!(chaotic.corrupt_count(), 1);
        let records = mem.snapshot();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].event, Event::FrameCorrupt { rank: 1 });
        // Control traffic is untouched.
        chaotic.send(0, &Message::WorkerReady).unwrap();
        assert!(receiver.try_recv().unwrap().is_some());
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let plan = ChaosPlan::quiet(0).with_partition(1, 2);
        let (got, stats) = delivered_tasks(&plan, 5);
        assert_eq!(got, vec![0, 3, 4]);
        assert_eq!(stats.dropped, 2);
    }
}
