//! Seeded storage-fault plans for the crash-consistent storage layer.
//!
//! The network half of this crate attacks the data plane; this module
//! attacks the *control plane's disk*: the write-ahead logs, manifests,
//! and registries that make the coordinator restartable. A
//! [`StoragePlan`] is a deterministic schedule of filesystem faults —
//! torn writes, short writes, injected `EIO`/`ENOSPC`, and crash-points
//! between the write / fsync / rename steps of an atomic update —
//! consumed by `fdml-core`'s `durable` module at every storage
//! operation.
//!
//! Faults are scheduled in *operation count*, not wall clock: the nth
//! storage operation of a run always draws the same fate, so a recovery
//! test can enumerate every crash-point a real `kill -9` could hit and
//! assert byte-identical resume after each one.
//!
//! Plans are installed per thread ([`install`] / [`clear`]): a test
//! injects faults into exactly the storage traffic it drives, without
//! perturbing parallel tests or the surrounding harness.
//!
//! Crash semantics: once a [`StorageFault::Crash`] (or a torn write,
//! which only exists because a process died mid-`write`) has fired, every
//! later operation on the thread also fails — the "process" is dead until
//! [`clear`] resurrects it. `EIO`/`ENOSPC` are transient: the operation
//! fails, the process lives on.

use crate::ChaosRng;
use std::cell::RefCell;

/// One storage operation the durable layer performs, in the order the
/// atomic-write and log-append paths execute them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageOp {
    /// Writing the temporary sibling of an atomic update.
    TempWrite,
    /// `fsync` of the temporary file.
    SyncFile,
    /// Renaming the temporary over the target.
    Rename,
    /// `fsync` of the containing directory.
    SyncDir,
    /// Appending one framed record to a log.
    Append,
    /// `fdatasync` after a log append.
    SyncAppend,
}

impl StorageOp {
    /// Stable name for error messages and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            StorageOp::TempWrite => "temp-write",
            StorageOp::SyncFile => "sync-file",
            StorageOp::Rename => "rename",
            StorageOp::SyncDir => "sync-dir",
            StorageOp::Append => "append",
            StorageOp::SyncAppend => "sync-append",
        }
    }
}

/// The fate the plan assigns to one storage operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Proceed normally.
    None,
    /// Write only a prefix of the payload, then die (a crash mid-`write`).
    Torn,
    /// The kernel accepts fewer bytes than asked; the caller's retry loop
    /// must complete the write. Not fatal.
    Short,
    /// Transient `EIO`: the operation fails, the process survives.
    Eio,
    /// `ENOSPC`: the filesystem is full; the operation fails, the process
    /// survives.
    Enospc,
    /// The process dies *between* operations (e.g. after the temp write
    /// but before the rename). Everything after also fails.
    Crash,
}

/// A seeded, reproducible schedule of storage faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoragePlan {
    /// Master seed for the per-mille draws.
    pub seed: u64,
    /// Permille of writes torn mid-payload (fatal).
    pub torn_per_mille: u64,
    /// Permille of writes accepted only partially (retried, not fatal).
    pub short_per_mille: u64,
    /// Permille of operations failing with `EIO`.
    pub eio_per_mille: u64,
    /// Permille of operations failing with `ENOSPC`.
    pub enospc_per_mille: u64,
    /// Kill the process at exactly this operation index (0-based, counted
    /// across all operations on the thread).
    pub crash_at_op: Option<u64>,
}

impl StoragePlan {
    /// A plan with no faults (the control arm).
    pub fn quiet(seed: u64) -> StoragePlan {
        StoragePlan {
            seed,
            torn_per_mille: 0,
            short_per_mille: 0,
            eio_per_mille: 0,
            enospc_per_mille: 0,
            crash_at_op: None,
        }
    }

    /// A mixed transient-fault plan derived from `seed`: short writes and
    /// `EIO`/`ENOSPC` at rates in 0..150‰ each. Torn writes and
    /// crash-points are *not* drawn here — they kill the process, so soak
    /// tests schedule them explicitly per crash-point.
    pub fn seeded(seed: u64) -> StoragePlan {
        let mut rng = ChaosRng::new(seed ^ 0x57AB_1E5A_FE77_0000);
        StoragePlan {
            seed,
            torn_per_mille: 0,
            short_per_mille: rng.below(150),
            eio_per_mille: rng.below(150),
            enospc_per_mille: rng.below(150),
            crash_at_op: None,
        }
    }

    /// Schedule a kill at operation `op` (0-based).
    pub fn crash_at(mut self, op: u64) -> StoragePlan {
        self.crash_at_op = Some(op);
        self
    }

    /// Schedule a torn write: every write after `crash_at_op` would fail
    /// anyway, so a plan that tears its nth write is expressed as
    /// `quiet(seed).crash_at(n)` on a sync op or `torn_at` on a write op.
    pub fn torn(mut self, per_mille: u64) -> StoragePlan {
        self.torn_per_mille = per_mille;
        self
    }
}

/// Counters describing what an installed plan actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Storage operations observed.
    pub ops: u64,
    /// Writes torn.
    pub torn: u64,
    /// Writes shortened (and retried by the caller).
    pub short: u64,
    /// Transient errors injected (`EIO` + `ENOSPC`).
    pub errors: u64,
    /// Whether the simulated process died.
    pub crashed: bool,
}

struct StorageState {
    plan: StoragePlan,
    rng: ChaosRng,
    stats: StorageStats,
}

thread_local! {
    static STORAGE: RefCell<Option<StorageState>> = const { RefCell::new(None) };
}

/// Install `plan` for the current thread. Replaces any previous plan.
pub fn install(plan: StoragePlan) {
    let rng = ChaosRng::new(plan.seed ^ 0x00D1_5CFA_u64);
    STORAGE.with(|s| {
        *s.borrow_mut() = Some(StorageState {
            plan,
            rng,
            stats: StorageStats::default(),
        })
    });
}

/// Remove the current thread's plan, returning what it did.
pub fn clear() -> StorageStats {
    STORAGE.with(|s| s.borrow_mut().take().map(|st| st.stats).unwrap_or_default())
}

/// Whether a plan is installed on this thread (lets the durable layer
/// skip the bookkeeping entirely in production).
pub fn is_active() -> bool {
    STORAGE.with(|s| s.borrow().is_some())
}

/// Fault counters of the installed plan so far.
pub fn stats() -> StorageStats {
    STORAGE.with(|s| s.borrow().as_ref().map(|st| st.stats).unwrap_or_default())
}

/// Decide the fate of the next storage operation. Returns
/// [`StorageFault::None`] when no plan is installed.
pub fn decide(op: StorageOp) -> StorageFault {
    STORAGE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(state) = borrow.as_mut() else {
            return StorageFault::None;
        };
        let idx = state.stats.ops;
        state.stats.ops += 1;
        if state.stats.crashed {
            return StorageFault::Crash;
        }
        if state.plan.crash_at_op == Some(idx) {
            state.stats.crashed = true;
            return StorageFault::Crash;
        }
        // One draw per op keeps the stream aligned with the op index no
        // matter which fault classes are enabled.
        let roll = state.rng.below(1000);
        let p = &state.plan;
        let mut edge = p.torn_per_mille;
        if roll < edge {
            state.stats.torn += 1;
            state.stats.crashed = true;
            return StorageFault::Torn;
        }
        edge += p.short_per_mille;
        if roll < edge {
            // Only writes can be short; sync/rename ops ignore it.
            if matches!(op, StorageOp::TempWrite | StorageOp::Append) {
                state.stats.short += 1;
                return StorageFault::Short;
            }
            return StorageFault::None;
        }
        edge += p.eio_per_mille;
        if roll < edge {
            state.stats.errors += 1;
            return StorageFault::Eio;
        }
        edge += p.enospc_per_mille;
        if roll < edge {
            state.stats.errors += 1;
            return StorageFault::Enospc;
        }
        StorageFault::None
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_is_transparent() {
        assert!(!is_active());
        assert_eq!(decide(StorageOp::Append), StorageFault::None);
        assert_eq!(clear(), StorageStats::default());
    }

    #[test]
    fn crash_at_op_kills_exactly_there_and_stays_dead() {
        install(StoragePlan::quiet(1).crash_at(2));
        assert_eq!(decide(StorageOp::TempWrite), StorageFault::None);
        assert_eq!(decide(StorageOp::SyncFile), StorageFault::None);
        assert_eq!(decide(StorageOp::Rename), StorageFault::Crash);
        // Dead processes stay dead: the next op fails too.
        assert_eq!(decide(StorageOp::SyncDir), StorageFault::Crash);
        let stats = clear();
        assert!(stats.crashed);
        assert_eq!(stats.ops, 4);
    }

    #[test]
    fn same_seed_draws_the_same_fates() {
        let run = || {
            install(StoragePlan::seeded(9));
            let fates: Vec<StorageFault> = (0..200)
                .map(|i| {
                    decide(if i % 2 == 0 {
                        StorageOp::Append
                    } else {
                        StorageOp::SyncAppend
                    })
                })
                .collect();
            clear();
            fates
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn torn_write_is_fatal() {
        install(StoragePlan::quiet(3).torn(1000));
        assert_eq!(decide(StorageOp::Append), StorageFault::Torn);
        assert_eq!(decide(StorageOp::SyncAppend), StorageFault::Crash);
        assert!(clear().crashed);
    }

    #[test]
    fn short_writes_only_apply_to_write_ops() {
        install(StoragePlan {
            short_per_mille: 1000,
            ..StoragePlan::quiet(0)
        });
        assert_eq!(decide(StorageOp::TempWrite), StorageFault::Short);
        assert_eq!(decide(StorageOp::SyncFile), StorageFault::None);
        assert_eq!(decide(StorageOp::Append), StorageFault::Short);
        let stats = clear();
        assert_eq!(stats.short, 2);
        assert!(!stats.crashed);
    }
}
