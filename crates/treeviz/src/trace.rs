//! Tracing taxa across multiple trees.
//!
//! Paper §4: the viewer "has a facility for tracing the position of
//! selected taxa or subtrees among the multiple trees for more detailed
//! monitoring and analysis". This module computes where a taxon (or the
//! common ancestor of a taxon group) sits in each of a series of trees —
//! e.g. the best tree of every search iteration — so a renderer can draw
//! the connecting traces and an analyst can quantify how much a taxon
//! moves.

use crate::layout::{layout_tree, TreeLayout};
use fdml_phylo::newick::NewickNode;

/// The positions of one traced item across a series of trees.
#[derive(Debug, Clone, PartialEq)]
pub struct TaxonTrace {
    /// The traced taxon name.
    pub name: String,
    /// `(tree index, x, y)` for every tree that contains the taxon.
    pub positions: Vec<(usize, f64, f64)>,
}

impl TaxonTrace {
    /// Total vertical movement across consecutive trees — a scalar measure
    /// of how unstable the taxon's placement is across iterations.
    pub fn total_movement(&self) -> f64 {
        self.positions
            .windows(2)
            .map(|w| (w[1].2 - w[0].2).abs())
            .sum()
    }
}

/// Trace a set of taxa across a series of trees.
pub fn trace_taxa(trees: &[NewickNode], names: &[&str]) -> Vec<TaxonTrace> {
    let layouts: Vec<TreeLayout> = trees.iter().map(layout_tree).collect();
    names
        .iter()
        .map(|&name| TaxonTrace {
            name: name.to_string(),
            positions: layouts
                .iter()
                .enumerate()
                .filter_map(|(i, l)| l.leaf_position(name).map(|(x, y)| (i, x, y)))
                .collect(),
        })
        .collect()
}

/// Leaf-row distance between two taxa within one tree (how far apart they
/// are drawn; 1 = adjacent rows).
pub fn row_distance(tree: &NewickNode, a: &str, b: &str) -> Option<f64> {
    let l = layout_tree(tree);
    let (_, ya) = l.leaf_position(a)?;
    let (_, yb) = l.leaf_position(b)?;
    Some((ya - yb).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::newick;

    #[test]
    fn traces_follow_taxon_across_trees() {
        let t1 = newick::parse("((a,b),c,d);").unwrap();
        let t2 = newick::parse("((c,b),a,d);").unwrap();
        let traces = trace_taxa(&[t1, t2], &["a", "d"]);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].positions.len(), 2);
        // 'a' moves from row 0 to row 2; 'd' stays on the last row.
        assert!(traces[0].total_movement() > 1.9);
        assert!(traces[1].total_movement() < 1e-9);
    }

    #[test]
    fn missing_taxa_are_skipped() {
        let t1 = newick::parse("(a,b,c);").unwrap();
        let t2 = newick::parse("(x,y,z);").unwrap();
        let traces = trace_taxa(&[t1, t2], &["a"]);
        assert_eq!(traces[0].positions.len(), 1);
        assert_eq!(traces[0].positions[0].0, 0);
    }

    #[test]
    fn row_distance_between_neighbors() {
        let t = newick::parse("((a,b),c,d);").unwrap();
        assert_eq!(row_distance(&t, "a", "b"), Some(1.0));
        assert_eq!(row_distance(&t, "a", "d"), Some(3.0));
        assert_eq!(row_distance(&t, "a", "zzz"), None);
    }

    #[test]
    fn stable_taxon_in_growing_trees() {
        // Simulates the real-time viewer: the best tree after each taxon
        // addition; taxon 'a' stays at the top row throughout.
        let steps = ["(a,b,c);", "((a,b),c,d);", "(((a,b),e),c,d);"];
        let trees: Vec<NewickNode> = steps.iter().map(|s| newick::parse(s).unwrap()).collect();
        let traces = trace_taxa(&trees, &["a"]);
        assert!(traces[0].total_movement() < 1e-9);
    }
}
