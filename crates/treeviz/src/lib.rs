//! The tree viewer's core library.
//!
//! Paper §4: "We have developed a 3D tree viewer for fastDNAml … This
//! viewer is based on a core library that uses the Open Inventor graphics
//! API to convert ASCII-encoded tree files into planar 3D representations.
//! This permits visual analysis, searching, and interaction among multiple
//! trees." This crate is that core library, headless: it converts Newick
//! trees into planar layouts ([`layout`]), renders them as ASCII art and
//! SVG ([`ascii`], [`svg`]), traces selected taxa across multiple trees
//! ([`trace`], the Figure 5 feature), and pivots subtrees into a canonical
//! orientation so that trees that "only appear different because of
//! reversed branch orderings" compare equal ([`pivot`]).

#![warn(missing_docs)]

pub mod ascii;
pub mod layout;
pub mod pivot;
pub mod svg;
pub mod trace;

pub use layout::{layout_tree, LayoutNode, TreeLayout};
pub use pivot::{canonical, same_up_to_rotation};
