//! Planar tree layout.
//!
//! Converts a (possibly multifurcating) Newick AST into 2-D coordinates:
//! `x` is the cumulative branch length from the root (or unit depth when
//! lengths are absent), `y` spreads the leaves evenly and centers each
//! internal node over its children — the classic phylogram embedding.

use fdml_phylo::newick::NewickNode;

/// One positioned node.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutNode {
    /// Leaf or internal label, if any.
    pub name: Option<String>,
    /// Horizontal position (cumulative branch length from the root).
    pub x: f64,
    /// Vertical position (leaf row, or mean of children).
    pub y: f64,
    /// Index of the parent in [`TreeLayout::nodes`] (`None` for the root).
    pub parent: Option<usize>,
    /// Is this a leaf?
    pub is_leaf: bool,
}

/// A laid-out tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeLayout {
    /// All nodes, root first, children after their parents.
    pub nodes: Vec<LayoutNode>,
    /// Number of leaves.
    pub num_leaves: usize,
    /// Maximum x (tree depth).
    pub depth: f64,
}

impl TreeLayout {
    /// Position of a leaf by name.
    pub fn leaf_position(&self, name: &str) -> Option<(f64, f64)> {
        self.nodes
            .iter()
            .find(|n| n.is_leaf && n.name.as_deref() == Some(name))
            .map(|n| (n.x, n.y))
    }

    /// Indices of the children of node `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == Some(i))
            .map(|(j, _)| j)
            .collect()
    }
}

/// Lay out a Newick AST. Branch lengths default to 1 where absent.
pub fn layout_tree(ast: &NewickNode) -> TreeLayout {
    let mut nodes: Vec<LayoutNode> = Vec::new();
    let mut next_leaf_row = 0usize;
    let depth_of = build(ast, None, 0.0, &mut nodes, &mut next_leaf_row);
    let depth = nodes.iter().map(|n| n.x).fold(0.0, f64::max);
    let _ = depth_of;
    TreeLayout {
        nodes,
        num_leaves: next_leaf_row,
        depth,
    }
}

/// Returns this subtree's y position.
fn build(
    ast: &NewickNode,
    parent: Option<usize>,
    x: f64,
    nodes: &mut Vec<LayoutNode>,
    next_leaf_row: &mut usize,
) -> f64 {
    let my_index = nodes.len();
    nodes.push(LayoutNode {
        name: ast.name.clone(),
        x,
        y: 0.0,
        parent,
        is_leaf: ast.is_leaf(),
    });
    let y = if ast.is_leaf() {
        let row = *next_leaf_row as f64;
        *next_leaf_row += 1;
        row
    } else {
        let mut sum = 0.0;
        for child in &ast.children {
            let cx = x + child.length.unwrap_or(1.0).max(0.0);
            sum += build(child, Some(my_index), cx, nodes, next_leaf_row);
        }
        sum / ast.children.len() as f64
    };
    nodes[my_index].y = y;
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::newick;

    #[test]
    fn leaves_get_distinct_rows() {
        let ast = newick::parse("((a:1,b:1):1,c:2,d:1);").unwrap();
        let l = layout_tree(&ast);
        assert_eq!(l.num_leaves, 4);
        let mut ys: Vec<f64> = l.nodes.iter().filter(|n| n.is_leaf).map(|n| n.y).collect();
        ys.sort_by(f64::total_cmp);
        assert_eq!(ys, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn x_accumulates_branch_lengths() {
        let ast = newick::parse("((a:1.5,b:0.5):2,c:1);").unwrap();
        let l = layout_tree(&ast);
        let (ax, _) = l.leaf_position("a").unwrap();
        let (bx, _) = l.leaf_position("b").unwrap();
        let (cx, _) = l.leaf_position("c").unwrap();
        assert!((ax - 3.5).abs() < 1e-12);
        assert!((bx - 2.5).abs() < 1e-12);
        assert!((cx - 1.0).abs() < 1e-12);
        assert!((l.depth - 3.5).abs() < 1e-12);
    }

    #[test]
    fn internal_nodes_centered_over_children() {
        let ast = newick::parse("((a:1,b:1):1,c:1);").unwrap();
        let l = layout_tree(&ast);
        // Node 1 is the (a,b) clade parent: y = (0+1)/2.
        let ab = &l.nodes[1];
        assert!(!ab.is_leaf);
        assert!((ab.y - 0.5).abs() < 1e-12);
        // Root centered over clade (0.5) and c (2.0).
        assert!((l.nodes[0].y - 1.25).abs() < 1e-12);
    }

    #[test]
    fn missing_lengths_default_to_unit() {
        let ast = newick::parse("((a,b),c);").unwrap();
        let l = layout_tree(&ast);
        assert!((l.depth - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parents_precede_children() {
        let ast = newick::parse("(((a,b),c),d,e);").unwrap();
        let l = layout_tree(&ast);
        for (i, n) in l.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                assert!(p < i);
            }
        }
        assert_eq!(l.children(0).len(), 3);
    }

    #[test]
    fn multifurcations_supported() {
        let ast = newick::parse("(a,b,c,d,e);").unwrap();
        let l = layout_tree(&ast);
        assert_eq!(l.num_leaves, 5);
        assert_eq!(l.children(0).len(), 5);
    }
}
